"""Full-telemetry serving demo: metrics, events, invariants, timing.

One SLA gold-rush run at 1.5x overload with every observer attached —
spec-declared, so the run is still one JSON document:

* ``telemetry`` — tumbling-window acceptance / quality / fairness /
  renegotiation-density trajectories;
* ``events`` — every lifecycle event as a deterministic JSONL log
  (``--events PATH`` streams it to disk for offline analysis);
* ``invariants`` — the runtime invariant ledger, recording (or, with
  ``--enforce``, aborting on) any broken serving law;
* ``perf`` — wall-time breakdown of the controller phases.

Attaching all of it changes no result bit — observers are write-only.

Usage::

    PYTHONPATH=src python examples/telemetry.py
    PYTHONPATH=src python examples/telemetry.py --events out.jsonl --enforce
"""

from __future__ import annotations

import argparse

import repro
from repro.analysis.report import (
    invariant_table,
    sla_table,
    telemetry_table,
    timeline_table,
)
from repro.sla import resolve_classes

CLASSES = [
    {"name": "gold", "weight": 5.0, "admission_priority": 2,
     "min_quality": 0.5, "target_quality": 0.85, "preempt": True},
    {"name": "silver", "weight": 1.5, "admission_priority": 1,
     "min_quality": 0.25, "target_quality": 0.65},
    {"name": "bronze", "weight": 1.0, "admission_priority": 0,
     "min_quality": 0.05, "target_quality": 0.5},
]

GOLD_RUSH = {"bronze": 12, "gold": 6, "crowd_round": 3,
             "frames": 16, "scale": 27}


def telemetry_spec(events_path=None, enforce: bool = False) -> dict:
    """The gold-rush overload run with the full observer suite."""
    return {
        "scenario": {"name": "gold-rush", "kwargs": GOLD_RUSH},
        "capacity": {"utilization": 1 / 1.5},  # demand = 1.5x capacity
        "arbiter": {"name": "sla-quality-fair",
                    "kwargs": {"pressure": 3.0, "floor_share": 0.1}},
        "admission": {"name": "priority",
                      "kwargs": {"utilization_cap": 0.75, "queue_limit": 3}},
        "renegotiation": {"name": "step",
                          "kwargs": {"patience": 1, "step": 0.3}},
        "service_classes": CLASSES,
        "observers": [
            {"name": "telemetry", "kwargs": {"window": 6}},
            {"name": "events", "kwargs": {"path": events_path}},
            {"name": "invariants", "kwargs": {"enforce": enforce}},
            {"name": "perf"},
        ],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--events", metavar="PATH", default=None,
        help="also stream the JSONL event log to PATH",
    )
    parser.add_argument(
        "--enforce", action="store_true",
        help="abort at the first invariant violation instead of recording",
    )
    args = parser.parse_args(argv)

    result = repro.serve(telemetry_spec(args.events, args.enforce))
    telemetry, events, invariants, perf = result.observers

    print("== gold rush at 1.5x overload, per-class outcome ==")
    print(sla_table(result, classes=resolve_classes(CLASSES)))

    print("\n== timeline (last 10 events) ==")
    print(timeline_table(events.events, limit=10))

    print(f"\n== telemetry windows ({telemetry.window} rounds each) ==")
    print(telemetry_table(telemetry.windows))

    print("\n== invariant ledger ==")
    print(invariant_table(invariants))

    print("\n== controller phase timing ==")
    print(perf.report())

    if args.events:
        print(f"\nwrote {len(events.events)} events to {args.events}")
    if invariants.violations:
        for violation in invariants.violations:
            print(f"invariant violated: {violation}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
