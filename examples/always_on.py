"""Always-on serving demo: open-ended arrivals, elastic capacity.

A diurnal workload that never ends on its own — arrivals swing 3x
between trough and peak, sessions depart when their cameras go idle —
served by a small cluster whose size is run by a telemetry-driven
autoscaler instead of an operator.  The run is bounded only by the
spec's explicit ``max_rounds`` stop condition.

The control loop, end to end::

    TelemetryObserver windows  ->  SignalAutoscaler.plan()
         (renegotiation pressure,      |  ScaleAction add/remove
          rejects, queues, quality)    v
    ClusterRunner applies actions between rounds
         (provision / drain+relocate, conservation-checked)

Every serving law — scale conservation, graceful pacing, admission
soundness — is watched by the runtime invariant ledger; ``--enforce``
turns the ledger into a tripwire that aborts the run at the first
violation, which is how CI runs this script.

Usage::

    PYTHONPATH=src python examples/always_on.py
    PYTHONPATH=src python examples/always_on.py --rounds 200 --enforce
"""

from __future__ import annotations

import argparse

import repro
from repro.analysis.report import telemetry_table

#: Open-ended diurnal arrivals: 0.3 -> 0.9 streams/round over a
#: 60-round day, sessions looping 12-frame clips until idle departure.
WORKLOAD = {
    "shards": 2,
    "provision_concurrency": 8.0,
    "base_rate": 0.3,
    "peak": 0.9,
    "period_rounds": 60,
    "loop_frames": 12,
    "scale": 20,
    "seed": 7,
    "classes": ("gold", "bronze"),
}


def always_on_spec(max_rounds: int, enforce: bool) -> dict:
    return {
        "topology": "cluster",
        "scenario": {"name": "diurnal-cluster", "kwargs": WORKLOAD},
        "placement": "least-loaded",
        "balancer": "headroom",
        "arbiter": "sla-weighted",
        "admission": {"name": "priority", "kwargs": {"queue_limit": 4}},
        "renegotiation": {
            "name": "step",
            "kwargs": {"patience": 2, "recovery_patience": 2, "step": 0.15},
        },
        "service_classes": ["gold", "bronze"],
        "autoscaler": {
            "name": "signal",
            "kwargs": {
                "window": 10,
                "cooldown": 10,
                "sustain": 1,
                "up_pressure": 0.22,
                "min_shards": 2,
                "max_shards": 6,
                "down_quality": 5.0,
            },
        },
        "engine": "vectorized",
        "max_rounds": max_rounds,
        "observers": [
            {"name": "telemetry", "kwargs": {"window": 15}},
            {"name": "invariants", "kwargs": {"enforce": enforce}},
        ],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rounds", type=int, default=150,
        help="stop condition: serve this many rounds then drain",
    )
    parser.add_argument(
        "--enforce", action="store_true",
        help="abort at the first invariant violation instead of recording",
    )
    args = parser.parse_args(argv)

    result = repro.serve(always_on_spec(args.rounds, args.enforce))
    telemetry, invariants = result.observers
    cluster = result.raw
    summary = cluster.summary()

    print(
        f"== always-on diurnal cluster, {summary['rounds']} rounds, "
        f"{WORKLOAD['base_rate']}->{WORKLOAD['peak']} streams/round =="
    )
    print(
        f"served {summary['served']} sessions "
        f"(rejected {summary['rejected']}), "
        f"{summary['scale_actions']} scale actions, "
        f"final fleet {len(cluster.shard_demand_cycles)} shards"
    )

    print("\n== autoscaler action log ==")
    if not cluster.scale_actions:
        print("(the fleet never needed to change size)")
    for action in cluster.scale_actions:
        target = ", ".join(action.shards) or ", ".join(
            f"{c / 1e6:.0f}M" for c in action.capacities
        )
        print(f"  {action.kind:6s} {target:18s} {action.reason}")

    print(f"\n== telemetry windows ({telemetry.window} rounds each) ==")
    print(telemetry_table(telemetry.windows))

    print("\n== per-class outcome ==")
    for name, row in sorted(cluster.per_class().items()):
        print(
            f"  {name:8s} served={row['served']:3d} "
            f"acceptance={row['acceptance_ratio']:.3f} "
            f"mean_quality={row['mean_quality']:.2f}"
        )

    if invariants.violations:
        for violation in invariants.violations:
            print(f"invariant violated: {violation}")
        return 1
    print("\nall serving invariants held for the whole horizon")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
