"""SLA-tiered serving demo: gold, silver, and bronze under overload.

Two declarative runs through the serving API:

1. a **gold rush** — a premium flash crowd lands on a best-effort
   background at 1.5x the shared capacity, under the full SLA stack
   (class-weighted quality-fair arbitration, priority admission with
   queued-spec preemption, mid-stream renegotiation).  Gold holds its
   declared quality target; bronze yields and degrades gracefully.
   The same workload under the classless quality-fair arbiter shows
   what the SLA layer buys.
2. **class-mixed churn** — streams of all three tiers arriving and
   departing continuously; delivered quality orders by tier.

Usage::

    PYTHONPATH=src python examples/sla_serving.py
"""

from __future__ import annotations

import repro
from repro.analysis.report import sla_table
from repro.sla import resolve_classes

#: A declared catalog: gold pays for 5x weight, top queue priority and
#: preemption rights; bronze is the best-effort tier.
CLASSES = [
    {"name": "gold", "weight": 5.0, "admission_priority": 2,
     "min_quality": 0.5, "target_quality": 0.85, "preempt": True},
    {"name": "silver", "weight": 1.5, "admission_priority": 1,
     "min_quality": 0.25, "target_quality": 0.65},
    {"name": "bronze", "weight": 1.0, "admission_priority": 0,
     "min_quality": 0.05, "target_quality": 0.5},
]

GOLD_RUSH = {"bronze": 12, "gold": 6, "crowd_round": 3,
             "frames": 16, "scale": 27}


def gold_rush_demo() -> None:
    sla = repro.serve({
        "scenario": {"name": "gold-rush", "kwargs": GOLD_RUSH},
        "capacity": {"utilization": 1 / 1.5},  # demand = 1.5x capacity
        "arbiter": {"name": "sla-quality-fair",
                    "kwargs": {"pressure": 3.0, "floor_share": 0.1}},
        "admission": {"name": "priority",
                      "kwargs": {"utilization_cap": 0.75, "queue_limit": 3}},
        "renegotiation": {"name": "step",
                          "kwargs": {"patience": 1, "step": 0.3}},
        "service_classes": CLASSES,
    })
    print("== gold rush at 1.5x overload, SLA stack ==")
    print(sla_table(sla, classes=resolve_classes(CLASSES)))

    baseline = repro.serve({
        "scenario": {"name": "gold-rush", "kwargs": GOLD_RUSH},
        "capacity": {"utilization": 1 / 1.5},
        "arbiter": "quality-fair",
    })
    classes = sla.per_class()
    base = baseline.per_class()
    print(
        "SLA gold/bronze quality gap: "
        f"{classes['gold']['mean_quality'] - classes['bronze']['mean_quality']:.2f}"
        " quality levels; classless baseline gap: "
        f"{abs(base['gold']['mean_quality'] - base['bronze']['mean_quality']):.2f}"
    )
    print(
        f"renegotiations: bronze {classes['bronze']['renegotiations']}, "
        f"gold {classes['gold']['renegotiations']} "
        "(the lower tier yields its target, the premium tier keeps it)\n"
    )


def churn_demo() -> None:
    result = repro.serve({
        "scenario": {"name": "sla-churn",
                     "kwargs": {"rate": 1.0, "horizon": 18,
                                "mean_frames": 14, "min_frames": 7,
                                "seed": 5, "initial": 8}},
        "capacity": {"utilization": 0.6},
        "arbiter": {"name": "sla-quality-fair",
                    "kwargs": {"pressure": 3.0, "floor_share": 0.1}},
        "admission": {"name": "priority",
                      "kwargs": {"utilization_cap": 0.75, "queue_limit": 4}},
        "renegotiation": {"name": "step",
                          "kwargs": {"patience": 2, "step": 0.15}},
    })
    print("== class-mixed churn, 60% capacity, standard catalog ==")
    print(sla_table(result, classes=resolve_classes(None)))
    ordered = sorted(
        result.per_class().items(),
        key=lambda item: -item[1]["mean_quality"],
    )
    print(
        "tiers by delivered quality: "
        + " > ".join(name for name, _ in ordered)
    )


def main() -> None:
    gold_rush_demo()
    churn_demo()


if __name__ == "__main__":
    main()
