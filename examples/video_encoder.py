#!/usr/bin/env python
"""The paper's MPEG-4 encoder experiment, end to end (scaled down).

Reproduces the section-3 comparison on a 1/4-scale configuration
(405 macroblocks, P = 80 Mcycles — identical utilization operating
points as the paper's PAL-SD setup): the controlled encoder vs constant
quality q=3 (K=1) and q=4 (K=2), with per-frame encoding-time and PSNR
series rendered as ASCII charts.

Run:  python examples/video_encoder.py            (scaled, ~10 s)
      REPRO_FULL_SCALE=1 python examples/video_encoder.py   (paper scale)
"""

from __future__ import annotations

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.metrics import psnr_advantage, utilization_statistics
from repro.analysis.report import comparison_table
from repro.experiments.configs import benchmark_config
from repro.sim.runner import run_paper_comparison


def main() -> None:
    config = benchmark_config()
    print(
        f"benchmark: {config.macroblocks} macroblocks/frame, "
        f"P = {config.period / 1e6:.0f} Mcycles, K = {config.buffer_capacity}, "
        f"{config.rate_control.bitrate / 1e3:.0f} kbit/s"
    )
    runs = run_paper_comparison(config)
    controlled = runs["controlled"]
    constant_q3 = runs["constant_q3"]
    constant_q4 = runs["constant_q4_k2"]

    print("\n" + comparison_table([controlled, constant_q3, constant_q4]))

    print("\n" + ascii_plot(
        {
            controlled.label: controlled.encoding_times() / 1e6,
            constant_q3.label: constant_q3.encoding_times() / 1e6,
        },
        title="Fig. 6 analogue: encoding time per frame (Mcycles); gaps = skips",
        y_label="Mcycle",
    ))

    print("\n" + ascii_plot(
        {
            controlled.label: controlled.psnr_series(),
            constant_q3.label: constant_q3.psnr_series(),
        },
        title="Fig. 8 analogue: PSNR per frame; collapses = skipped frames",
        y_label="PSNR",
        y_min=15.0,
    ))

    stats = utilization_statistics(controlled)
    print(
        f"\ncontrolled encoder: {controlled.skip_count} skips, "
        f"{controlled.deadline_miss_count} deadline misses, "
        f"budget utilization mean {stats.mean:.1%} (p95 {stats.p95:.1%})"
    )
    comparison = psnr_advantage(controlled, constant_q3)
    print(
        f"PSNR vs constant q=3: {comparison.advantage_outside:+.2f} dB outside "
        f"skip regions, {comparison.advantage_inside_encoded:+.2f} dB inside "
        f"(constant quality spends the skipped frames' bits there, at half "
        f"the displayed frame rate)"
    )


if __name__ == "__main__":
    main()
