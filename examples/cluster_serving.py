"""Sharded cluster serving demo: multiple pools, one control plane.

Runs the skewed-arrival cluster scenario (heavy and light streams over
three unequal shards at fixed total capacity) under four placement
policies, then shows what migration and the arbiter-of-arbiters
(headroom lending) recover after blind placement, and finally rides
through a mid-run shard outage.

Usage::

    PYTHONPATH=src python examples/cluster_serving.py [--streams N]
"""

from __future__ import annotations

import argparse

from repro.analysis.report import cluster_compare_table, cluster_table
from repro.cluster import (
    BestFitPlacement,
    ClusterRunner,
    HeadroomBalancer,
    LeastLoadedPlacement,
    LoadBalanceMigration,
    QualityAwarePlacement,
    RoundRobinPlacement,
    compare_placements,
    shard_outage,
    skewed_cluster,
)


def placement_demo(streams: int) -> None:
    scenario = skewed_cluster(streams=streams)
    caps = ", ".join(f"{c / 1e6:.0f}M" for c in scenario.shard_capacities)
    print(
        f"== skewed cluster: {len(scenario.arrivals)} streams over "
        f"shards [{caps}] cyc/round =="
    )
    results = compare_placements(
        scenario,
        [
            RoundRobinPlacement(),
            LeastLoadedPlacement(),
            BestFitPlacement(),
            QualityAwarePlacement(),
        ],
    )
    print(cluster_compare_table(list(results.values())))
    blind = results["round-robin"]
    aware = results["best-fit"]
    print(
        f"feasibility-aware placement lifts acceptance "
        f"{blind.acceptance_ratio:.3f} -> {aware.acceptance_ratio:.3f}\n"
    )


def migration_demo(streams: int) -> None:
    scenario = skewed_cluster(streams=streams)
    print("== same scenario, round-robin placement, rescue mechanisms ==")
    frozen = ClusterRunner(RoundRobinPlacement()).run(scenario)
    mobile = ClusterRunner(
        RoundRobinPlacement(), migration=LoadBalanceMigration()
    ).run(scenario)
    lending = ClusterRunner(
        RoundRobinPlacement(), balancer=HeadroomBalancer()
    ).run(scenario)
    print(cluster_compare_table([frozen, mobile, lending]))
    print(
        f"migration lifts cross-shard fairness "
        f"{frozen.fairness_cross_shard():.3f} -> "
        f"{mobile.fairness_cross_shard():.3f} "
        f"({mobile.migration_count} moves); headroom lending lent "
        f"{lending.lent_cycles / 1e6:.0f} Mcyc at zero moves\n"
    )


def outage_demo() -> None:
    scenario = shard_outage()
    print(
        "== shard outage: shard-0 drops to 25% capacity at round 4 "
        "(migration on) =="
    )
    result = ClusterRunner(
        LeastLoadedPlacement(), migration=LoadBalanceMigration()
    ).run(scenario)
    print(cluster_table(result))
    print(
        f"{result.active_migration_count} sessions moved off the "
        f"degraded shard; {result.total_skips()} frames skipped "
        f"cluster-wide"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--streams", type=int, default=12,
        help="stream count for the skewed scenario (12 = calibrated "
        "regime where the smallest shard cannot host a heavy stream)",
    )
    args = parser.parse_args()
    placement_demo(args.streams)
    migration_demo(args.streams)
    outage_demo()


if __name__ == "__main__":
    main()
