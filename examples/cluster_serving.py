"""Sharded cluster serving demo: multiple pools, one control plane.

Runs the skewed-arrival cluster scenario (heavy and light streams over
three unequal shards at fixed total capacity) under four placement
policies, then shows what migration and the arbiter-of-arbiters
(headroom lending) recover after blind placement, and finally rides
through a mid-run shard outage — every run declared as a serving-API
``ServingSpec`` and executed by ``repro.serve``.

Usage::

    PYTHONPATH=src python examples/cluster_serving.py [--streams N]
"""

from __future__ import annotations

import argparse

import repro
from repro.analysis.report import cluster_compare_table, cluster_table
from repro.serving import ServingSpec

PLACEMENTS = ("round-robin", "least-loaded", "best-fit", "quality-aware")


def _cluster_spec(scenario: dict, **overrides) -> ServingSpec:
    document = {"topology": "cluster", "scenario": scenario}
    document.update(overrides)
    return ServingSpec.from_dict(document)


def placement_demo(streams: int) -> None:
    scenario = {"name": "skewed-cluster", "kwargs": {"streams": streams}}
    results = {
        name: repro.serve(_cluster_spec(scenario, placement=name))
        for name in PLACEMENTS
    }
    first = next(iter(results.values())).raw
    caps = ", ".join(
        f"{r.capacity / 1e6:.0f}M" for r in first.shard_results
    )
    print(
        f"== skewed cluster: {streams} streams over "
        f"shards [{caps}] cyc/round =="
    )
    print(cluster_compare_table([r.raw for r in results.values()]))
    blind = results["round-robin"]
    aware = results["best-fit"]
    print(
        f"feasibility-aware placement lifts acceptance "
        f"{blind.acceptance_ratio:.3f} -> {aware.acceptance_ratio:.3f}\n"
    )


def migration_demo(streams: int) -> None:
    scenario = {"name": "skewed-cluster", "kwargs": {"streams": streams}}
    print("== same scenario, round-robin placement, rescue mechanisms ==")
    frozen = repro.serve(_cluster_spec(scenario, placement="round-robin"))
    mobile = repro.serve(
        _cluster_spec(
            scenario, placement="round-robin", migration="load-balance"
        )
    )
    lending = repro.serve(
        _cluster_spec(scenario, placement="round-robin", balancer="headroom")
    )
    print(cluster_compare_table([frozen.raw, mobile.raw, lending.raw]))
    print(
        f"migration lifts cross-shard fairness "
        f"{frozen.raw.fairness_cross_shard():.3f} -> "
        f"{mobile.raw.fairness_cross_shard():.3f} "
        f"({mobile.raw.migration_count} moves); headroom lending lent "
        f"{lending.raw.lent_cycles / 1e6:.0f} Mcyc at zero moves\n"
    )


def outage_demo() -> None:
    print(
        "== shard outage: shard-0 drops to 25% capacity at round 4 "
        "(migration on) =="
    )
    result = repro.serve(
        _cluster_spec(
            {"name": "shard-outage", "kwargs": {}},
            placement="least-loaded",
            migration="load-balance",
        )
    )
    print(cluster_table(result.raw))
    print(
        f"{result.raw.active_migration_count} sessions moved off the "
        f"degraded shard; {result.total_skips()} frames skipped "
        f"cluster-wide"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--streams", type=int, default=12,
        help="stream count for the skewed scenario (12 = calibrated "
        "regime where the smallest shard cannot host a heavy stream)",
    )
    args = parser.parse_args()
    placement_demo(args.streams)
    migration_demo(args.streams)
    outage_demo()


if __name__ == "__main__":
    main()
