#!/usr/bin/env python
"""The quality-level mechanism on real pixels.

The big reproduction runs use an analytic rate-distortion model; this
demo shows the mechanism it models is real.  A toy block codec (full
pipeline: motion search, DCT, quantization, reconstruction) encodes a
synthetic clip at every quality level, where the level *is* the motion
search range — exactly the knob behind the paper's Motion_Estimate
timing table (Fig. 5): more search, more cycles, smaller residual.

Run:  python examples/pixel_codec_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.video.pixel import ToyVideoCodec
from repro.video.pixel.motion import SEARCH_RANGES, candidates_for_quality
from repro.video.pipeline import MOTION_ESTIMATE_TIMES
from repro.video.synthetic import SyntheticScene, generate_scene_frames


def main() -> None:
    frames = generate_scene_frames(
        SyntheticScene(width=96, height=96, motion=0.7, texture=0.6),
        frames=6,
        seed=11,
    )
    print("quality level -> search range, search cost, measured PSNR/bits")
    print(f"{'q':>2} {'range':>6} {'candidates':>11} {'Fig5 Cav':>10} "
          f"{'PSNR (dB)':>10} {'bits/frame':>11}")
    for quality in range(8):
        codec = ToyVideoCodec(quantizer=8)
        encoded = codec.encode_sequence(frames, qualities=quality)
        p_frames = [e for e in encoded if not e.is_iframe]
        mean_psnr = float(np.mean([e.psnr for e in p_frames]))
        mean_bits = float(np.mean([e.bits for e in p_frames]))
        print(
            f"{quality:>2} {SEARCH_RANGES[quality]:>6} "
            f"{candidates_for_quality(quality):>11} "
            f"{MOTION_ESTIMATE_TIMES[quality][0]:>10.0f} "
            f"{mean_psnr:>10.2f} {mean_bits:>11.0f}"
        )

    print()
    print("Higher quality searches a wider window: the residual shrinks, so")
    print("PSNR rises and the residual costs fewer bits -- while the search")
    print("cost (candidates, and the paper's published cycle counts) grows.")
    print("This is the time/quality trade the QoS controller arbitrates.")


if __name__ == "__main__":
    main()
