#!/usr/bin/env python
"""The prototype tool (Fig. 4): from model to generated C controller.

Runs the complete toolchain on a small instance of the paper's encoder:
dataflow analysis, table generation, overhead estimation, and emission
of the C controller a firmware build would link with the action code.

Run:  python examples/codegen_tool.py            (prints a summary)
      python examples/codegen_tool.py --emit     (prints the full C file)
"""

from __future__ import annotations

import sys

from repro.tool import compile_application
from repro.video.pipeline import macroblock_application

MACROBLOCKS = 12
PAPER_PERIOD_SHARE = 320e6 * MACROBLOCKS / 1620


def main() -> None:
    application = macroblock_application(MACROBLOCKS)
    system = application.system(budget=PAPER_PERIOD_SHARE)
    controlled = compile_application(
        system,
        application_loc=7000,          # the paper's encoder size
        decision_overhead_cycles=200.0,
        body_length=len(application.body),
    )

    report = controlled.dataflow
    print("dataflow analysis")
    print(f"  actions              : {len(report.actions)}")
    print(f"  EDF schedule prefix  : {' -> '.join(report.schedule[:4])} ...")
    print(f"  quality-sensitive    : {', '.join(report.quality_sensitive_actions)}")
    print(f"  critical path        : {report.critical_path_length} actions")
    print(f"  tool applicable      : {report.deadline_order_quality_independent}")

    overheads = controlled.overheads
    print("\ninstrumentation overheads (modelled as the paper measures them)")
    print(f"  code size : {overheads.code_ratio:6.2%}   (paper: ~2 %)")
    print(f"  memory    : {overheads.memory_ratio:6.2%}   (paper: <= 1 %)")
    print(f"  runtime   : {overheads.runtime_ratio:6.2%}   (paper: < 1.5 %)")

    source = controlled.c_source()
    lines = source.count("\n")
    print(f"\ngenerated controller: {lines} lines of C "
          f"({len(controlled.schedule)} schedule entries, "
          f"{len(controlled.tables.qualities)} quality levels)")

    if "--emit" in sys.argv:
        print("\n" + source)
    else:
        head = "\n".join(source.splitlines()[:28])
        print("\nfirst lines (use --emit for the whole file):\n")
        print(head)

    # prove the compiled artifact actually controls: run one cycle
    controller = controlled.controller()
    outcome = controller.run_cycle(
        lambda action, quality: system.average_times.time(action, quality)
    )
    print(f"\none controlled cycle: {len(outcome.qualities)} actions, "
          f"ME quality ramp {min(outcome.qualities)}..{max(outcome.qualities)}, "
          f"cycle time {outcome.total_time / 1e6:.2f} Mcycles "
          f"(budget {PAPER_PERIOD_SHARE / 1e6:.2f})")


if __name__ == "__main__":
    main()
