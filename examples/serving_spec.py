"""One serving API demo: whole runs declared as JSON documents.

Every run below — fleet and cluster alike — is a plain JSON
``ServingSpec``: topology, workload, capacity, and every policy chosen
by registry name with kwargs.  ``repro.serve`` resolves the names
through the policy registries, builds the matching runner, and returns
a unified ``ServingResult``, so the three documents land in one table
despite mixing topologies.  A ``CountingObserver`` rides along on the
last run to show the lifecycle-hook API.

Usage::

    PYTHONPATH=src python examples/serving_spec.py
"""

from __future__ import annotations

import json

import repro
from repro.analysis.report import serving_table
from repro.serving import CountingObserver, ServingSpec

SPECS_JSON = """
[
  {
    "topology": "fleet",
    "scenario": {"name": "heterogeneous-mix",
                 "kwargs": {"count": 9, "frames": 10, "seed": 11}},
    "capacity": {"utilization": 0.6},
    "arbiter": "equal-share",
    "admission": "none"
  },
  {
    "topology": "fleet",
    "scenario": {"name": "heterogeneous-mix",
                 "kwargs": {"count": 9, "frames": 10, "seed": 11}},
    "capacity": {"utilization": 0.6},
    "arbiter": {"name": "quality-fair", "kwargs": {"pressure": 2.0}},
    "admission": "none"
  },
  {
    "topology": "cluster",
    "scenario": {"name": "skewed-cluster",
                 "kwargs": {"streams": 8, "frames": 8}},
    "arbiter": "quality-fair",
    "placement": "best-fit",
    "migration": "load-balance",
    "balancer": "headroom"
  }
]
"""


def main() -> None:
    documents = json.loads(SPECS_JSON)
    specs = [ServingSpec.from_dict(document) for document in documents]

    # the JSON round trip is lossless: these specs could have been
    # loaded from files, a queue, or an API body
    assert all(ServingSpec.from_json(s.to_json()) == s for s in specs)

    print(f"== {len(specs)} serving runs declared as JSON ==")
    observer = CountingObserver()
    results = [
        repro.serve(spec, observers=[observer] if last else ())
        for last, spec in zip(
            [False] * (len(specs) - 1) + [True], specs
        )
    ]
    print(serving_table(results))

    equal, fair, cluster = results
    print(
        f"\nquality-fair arbitration lifts Jain fairness "
        f"{equal.fairness_quality():.3f} -> {fair.fairness_quality():.3f} "
        f"on the same JSON workload"
    )
    print(
        f"cluster spec: accept={cluster.acceptance_ratio:.3f} "
        f"moves={cluster.raw.migration_count} "
        f"lent={cluster.raw.lent_cycles / 1e6:.0f} Mcyc"
    )
    print(
        f"observer saw: {observer.counts()} "
        f"(rounds = cluster rounds x shards)"
    )


if __name__ == "__main__":
    main()
