#!/usr/bin/env python
"""Quickstart: build a QoS-controlled application from scratch.

A four-action processing pipeline with one quality-parameterized stage,
a cycle budget, and the paper's controller on top.  Shows the three
layers of the API:

1. model the application (precedence graph + per-quality timing tables),
2. compile the controller (tables + EDF schedule),
3. run cycles against a (here: deterministic, then randomized) platform.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    DeadlineFunction,
    ParameterizedSystem,
    PrecedenceGraph,
    QualityDeadlineTable,
    QualitySet,
    QualityTimeTable,
    ReferenceController,
    TableDrivenController,
)


def build_system() -> ParameterizedSystem:
    """A tiny audio-filter-like pipeline: grab -> enhance -> pack -> emit.

    Only `enhance` has quality levels (say, filter orders); times in
    cycles.  Every action must finish within the 60-cycle period.
    """
    graph = PrecedenceGraph.chain(["grab", "enhance", "pack", "emit"])
    levels = QualitySet.from_range(4)
    average = QualityTimeTable(levels, {
        "grab": 5.0,
        "enhance": [4.0, 10.0, 18.0, 30.0],   # non-decreasing in quality
        "pack": 6.0,
        "emit": 3.0,
    })
    worst = QualityTimeTable(levels, {
        "grab": 8.0,
        "enhance": [6.0, 16.0, 30.0, 48.0],   # Cav <= Cwc everywhere
        "pack": 9.0,
        "emit": 5.0,
    })
    deadlines = QualityDeadlineTable.quality_independent(
        levels, DeadlineFunction.uniform(graph.actions, 60.0)
    )
    return ParameterizedSystem(graph, levels, average, worst, deadlines)


def main() -> None:
    system = build_system()
    schedule = system.validate()  # raises if no safe schedule exists at qmin
    print(f"EDF schedule: {' -> '.join(schedule)}")

    print("\n-- reference controller, deterministic average-time platform --")
    reference = ReferenceController(system)
    result = reference.run_cycle(lambda a, q: system.average_times.time(a, q))
    for action, quality in zip(result.schedule, result.qualities):
        print(f"  run {action:<8} at quality {quality}")
    print(f"  cycle time {result.total_time:.0f} / 60 budget")

    print("\n-- compiled (table-driven) controller, randomized platform --")
    controller = TableDrivenController(system)
    rng = np.random.default_rng(7)

    def noisy_platform(action: str, quality: int) -> float:
        worst = system.worst_times.time(action, quality)
        average = system.average_times.time(action, quality)
        return float(rng.uniform(0.5 * average, worst))  # always <= Cwc

    for cycle in range(5):
        outcome = controller.run_cycle(noisy_platform)
        qualities = ",".join(str(q) for q in outcome.qualities)
        print(
            f"  cycle {cycle}: qualities [{qualities}]  "
            f"time {outcome.total_time:5.1f} / 60  "
            f"(degraded steps: {outcome.degraded_steps})"
        )
    print("\nNo deadline can be missed as long as actual times stay below")
    print("the worst-case table -- that is Proposition 2.1 of the paper.")


if __name__ == "__main__":
    main()
