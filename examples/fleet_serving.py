"""Multi-stream serving demo: a fleet of QoS-controlled encoders.

Runs a heterogeneous 12-stream mix on 60% of its aggregate demand under
three capacity arbiters, then pushes a flash crowd through admission
control — everything declared through the serving API's
``ServingSpec`` documents and run with ``repro.serve``.  Shows the
layer the paper's single-application controller scales into:
per-stream fine-grain quality control, fleet-level capacity
arbitration and feasibility-gated admission.

Usage::

    PYTHONPATH=src python examples/fleet_serving.py [--streams N]
"""

from __future__ import annotations

import argparse

import repro
from repro.analysis.report import fleet_table
from repro.serving import CountingObserver, ServingSpec

ARBITERS = ("equal-share", "weighted-share", "quality-fair")


def arbitration_demo(streams: int) -> None:
    results = {}
    for arbiter in ARBITERS:
        spec = ServingSpec.from_dict({
            "topology": "fleet",
            "scenario": {
                "name": "heterogeneous-mix",
                "kwargs": {"count": streams, "frames": 16, "seed": 11},
            },
            "capacity": {"utilization": 0.6},
            "arbiter": arbiter,
            "admission": "none",
        })
        results[arbiter] = repro.serve(spec)
    capacity = results["equal-share"].runner.capacity
    print(
        f"== {streams}-stream heterogeneous mix, "
        f"{capacity / 1e6:.0f} Mcyc/round shared (60% of demand) =="
    )
    print(fleet_table([r.raw for r in results.values()]))
    equal = results["equal-share"].fairness_quality()
    fair = results["quality-fair"].fairness_quality()
    print(
        f"quality-fair arbitration lifts Jain fairness "
        f"{equal:.3f} -> {fair:.3f}\n"
    )


def admission_demo() -> None:
    spec = ServingSpec.from_dict({
        "topology": "fleet",
        "scenario": {
            "name": "flash-crowd",
            "kwargs": {
                "base": 3, "crowd": 5, "crowd_round": 3,
                "frames": 10, "scale": 27,
            },
        },
        "capacity": 20e6,  # room for ~4 concurrent qmin streams
        "arbiter": "quality-fair",
        "admission": "feasibility",
    })
    observer = CountingObserver()
    result = repro.serve(spec, observers=[observer])
    offered = result.served_count + result.rejected_count
    print(
        f"== flash crowd ({offered} streams) through admission, "
        f"{result.runner.capacity / 1e6:.0f} Mcyc/round =="
    )
    summary = result.summary()
    print(
        f"offered={offered} served={summary['served']} "
        f"rejected={summary['rejected']} "
        f"queued={result.runner.admission.queued_count} "
        f"peak concurrency={result.raw.peak_concurrency}"
    )
    for outcome in result.outcomes:
        delay = outcome.admitted_round - outcome.spec.arrival_round
        tag = f" (waited {delay} rounds)" if delay else ""
        print(
            f"  {outcome.spec.name:>10}: q={outcome.result.mean_quality():.2f} "
            f"psnr={outcome.result.mean_psnr():.2f} "
            f"skips={outcome.result.skip_count}{tag}"
        )
    print(f"observer counted {observer.counts()}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--streams", type=int, default=12, help="mix size for the arbiter demo"
    )
    args = parser.parse_args()
    arbitration_demo(args.streams)
    admission_demo()


if __name__ == "__main__":
    main()
