"""Multi-stream serving demo: a fleet of QoS-controlled encoders.

Runs a heterogeneous 12-stream mix on 60% of its aggregate demand under
three capacity arbiters, then pushes a flash crowd through admission
control.  Shows the layer the paper's single-application controller
scales into: per-stream fine-grain quality control, fleet-level
capacity arbitration and feasibility-gated admission.

Usage::

    PYTHONPATH=src python examples/fleet_serving.py [--streams N]
"""

from __future__ import annotations

import argparse

from repro.analysis.report import fleet_table
from repro.streams import (
    AdmissionController,
    EqualShareArbiter,
    FleetRunner,
    QualityFairArbiter,
    WeightedShareArbiter,
    compare_arbiters,
    flash_crowd,
    heterogeneous_mix,
)


def arbitration_demo(streams: int) -> None:
    scenario = heterogeneous_mix(streams, frames=16, seed=11)
    capacity = 0.6 * scenario.total_demand()
    print(
        f"== {streams}-stream heterogeneous mix, "
        f"{capacity / 1e6:.0f} Mcyc/round shared (60% of demand) =="
    )
    results = compare_arbiters(
        scenario,
        capacity,
        [EqualShareArbiter(), WeightedShareArbiter(), QualityFairArbiter()],
    )
    print(fleet_table(list(results.values())))
    equal = results["equal-share"].fairness_quality()
    fair = results["quality-fair"].fairness_quality()
    print(
        f"quality-fair arbitration lifts Jain fairness "
        f"{equal:.3f} -> {fair:.3f}\n"
    )


def admission_demo() -> None:
    scenario = flash_crowd(base=3, crowd=5, crowd_round=3, frames=10, scale=27)
    capacity = 20e6  # room for ~4 concurrent qmin streams
    print(
        f"== flash crowd ({len(scenario)} streams) through admission, "
        f"{capacity / 1e6:.0f} Mcyc/round =="
    )
    admission = AdmissionController(capacity)
    runner = FleetRunner(capacity, QualityFairArbiter(), admission)
    result = runner.run(scenario)
    summary = result.summary()
    print(
        f"offered={len(scenario)} served={summary['served']} "
        f"rejected={summary['rejected']} queued={admission.queued_count} "
        f"peak concurrency={summary['peak_concurrency']}"
    )
    for outcome in result.streams:
        delay = outcome.admitted_round - outcome.spec.arrival_round
        tag = f" (waited {delay} rounds)" if delay else ""
        print(
            f"  {outcome.spec.name:>10}: q={outcome.result.mean_quality():.2f} "
            f"psnr={outcome.result.mean_psnr():.2f} "
            f"skips={outcome.result.skip_count}{tag}"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--streams", type=int, default=12, help="mix size for the arbiter demo"
    )
    args = parser.parse_args()
    arbitration_demo(args.streams)
    admission_demo()


if __name__ == "__main__":
    main()
