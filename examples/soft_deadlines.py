#!/usr/bin/env python
"""Soft vs hard deadlines: the two constraint modes (paper section 4).

"Notice also that our method can be applied to systems with hard and
soft deadlines.  For soft deadlines, the Quality Manager applies only
the average quality constraint."

This example runs the scaled encoder benchmark in both modes and shows
the trade: soft mode fills the budget in expectation and accepts
shallow overruns; hard mode adds the worst-case landing path and never
overruns.

Run:  python examples/soft_deadlines.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import comparison_table
from repro.experiments.configs import scaled_config
from repro.sim.runner import run_controlled


def main() -> None:
    config = scaled_config(scale=4)
    hard = run_controlled(config, constraint_mode="both")
    soft = run_controlled(config, constraint_mode="average")

    print(comparison_table([hard, soft]))

    overruns = [
        (f.encode_cycles - f.budget) / f.budget
        for f in soft.frames
        if f.missed_budget
    ]
    print(f"\nhard mode:  {hard.deadline_miss_count} overruns "
          f"(guaranteed: Qual_Const_wc keeps a worst-case landing path)")
    print(f"soft mode:  {len(overruns)} overruns out of {len(soft.frames)} frames")
    if overruns:
        print(f"            median overshoot {np.median(overruns):+.1%}, "
              f"p95 {np.percentile(overruns, 95):+.1%} of the budget")
    print(f"\nquality:    hard {hard.mean_quality():.2f}  "
          f"vs soft {soft.mean_quality():.2f}")
    print(f"PSNR:       hard {hard.mean_psnr():.2f} dB "
          f"vs soft {soft.mean_psnr():.2f} dB")
    print("\nSoft mode suits decode/playback pipelines where a late frame is")
    print("a glitch, not a failure; hard mode suits the paper's examples --")
    print("'quality should remain above some minimal level or hard deadlines")
    print("must be respected, e.g. communications of cellular phones'.")


if __name__ == "__main__":
    main()
