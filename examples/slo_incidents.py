"""SLO burn-rate alerting + incident attribution demo.

The observability loop, end to end, on the always-on diurnal workload:
a gold quality SLO is declared **on the spec**, the serving run
evaluates it as a rolling error budget with SRE-style fast/slow
burn-rate windows, and when the budget burns the causal traces are
walked backward to rank what actually caused it.

Two deployments of the same 3x diurnal swing make the contrast:

* **autoscaled** — a 2-shard fleet plus the signal autoscaler.  The
  budget survives the whole horizon and no alert fires.
* **static-trough** — the same cluster frozen at what the diurnal
  *minimum* needs.  Every peak starves it: the gold SLO fires, and
  attribution blames the capacity shortfall (sustained renegotiation
  pressure under a flat capacity line — not a burst, storm, or
  scale lag).

The starved run's causal traces and machine-readable incident report
are written as deterministic JSON artifacts (CI uploads them), and the
invariant ledger — including ``slo-budget-conservation`` — runs in
enforce mode the whole way when ``--enforce`` is set.

Usage::

    PYTHONPATH=src python examples/slo_incidents.py
    PYTHONPATH=src python examples/slo_incidents.py --enforce \\
        --trace-out traces.jsonl --incidents-out incidents.json
"""

from __future__ import annotations

import argparse
from pathlib import Path

import repro
from repro.analysis.report import incident_table, slo_table
from repro.obs import (
    InvariantObserver,
    TraceObserver,
    attribute_incidents,
    canonical_document,
)

#: Three diurnal periods, arrivals swinging 0.25 -> 0.75 streams/round
#: (the always-on bench workload).
MAX_ROUNDS = 300
WORKLOAD = {
    "base_rate": 0.25,
    "peak": 0.75,
    "period_rounds": 100,
    "loop_frames": 24,
    "scale": 20,
    "seed": 11,
    "classes": ("gold", "bronze"),
}

#: What the diurnal *minimum* needs: base_rate x mean session lifetime
#: concurrent streams.  Freezing the cluster here guarantees peak-hour
#: starvation.
MEAN_LIFETIME = 40.8125
TROUGH = WORKLOAD["base_rate"] * MEAN_LIFETIME

#: The contract: 95% of gold departures at or above 0.35 normalized
#: quality, alerting when both burn windows exceed 2x the budget rate.
SLOS = [
    {
        "name": "gold-quality",
        "objective": "quality",
        "service_class": "gold",
        "threshold": 0.35,
        "target": 0.95,
        "fast_window": 15,
        "slow_window": 60,
        "burn_threshold": 2.0,
    }
]

AUTOSCALER = {
    "name": "signal",
    "kwargs": {
        "window": 10,
        "cooldown": 10,
        "sustain": 1,
        "up_pressure": 0.22,
        "min_shards": 2,
        "max_shards": 6,
        "down_utilization": 0.5,
        "down_quality": 5.0,
    },
}


def build_spec(provision=None, autoscaler=None) -> dict:
    kwargs = dict(WORKLOAD, shards=2)
    if provision is not None:
        kwargs["provision_concurrency"] = provision
    document = {
        "topology": "cluster",
        "scenario": {"name": "diurnal-cluster", "kwargs": kwargs},
        "placement": "least-loaded",
        "balancer": "headroom",
        "arbiter": "sla-weighted",
        "admission": {"name": "priority", "kwargs": {"queue_limit": 4}},
        "renegotiation": {
            "name": "step",
            "kwargs": {"patience": 2, "recovery_patience": 2, "step": 0.15},
        },
        "service_classes": ["gold", "bronze"],
        "engine": "vectorized",
        "max_rounds": MAX_ROUNDS,
        "slos": SLOS,
    }
    if autoscaler is not None:
        document["autoscaler"] = autoscaler
    return document


def serve_traced(document, enforce):
    """One deployment: causal traces + (optionally enforced) ledger.

    ``serve`` auto-attaches the SLO engine because the spec declares
    ``slos``; the same declaration is forwarded to the invariant suite
    so ``slo-budget-conservation`` audits the budget books live.
    """
    tracer = TraceObserver()
    invariants = InvariantObserver(
        enforce=enforce,
        classes=document["service_classes"],
        slos=document["slos"],
    )
    result = repro.serve(document, observers=[tracer, invariants])
    return result, tracer, invariants


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--enforce", action="store_true",
        help="abort at the first invariant violation instead of recording",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write the starved run's causal traces as JSONL",
    )
    parser.add_argument(
        "--incidents-out", metavar="PATH", default=None,
        help="write the starved run's attributed incidents as JSON",
    )
    args = parser.parse_args(argv)

    failures = 0
    runs = {}
    for name, spec in (
        ("autoscaled", build_spec(provision=8.0, autoscaler=AUTOSCALER)),
        ("static-trough", build_spec(provision=TROUGH)),
    ):
        result, tracer, invariants = serve_traced(spec, args.enforce)
        runs[name] = (result, tracer, invariants)
        report = result.slo_reports()[0]
        firing = [a for a in result.alerts() if a.state == "firing"]
        print(f"== {name}: gold SLO over {result.rounds} rounds ==")
        print(slo_table(result.slo_reports()))
        print(f"  burn-rate alerts fired: {len(firing)}")
        if invariants.violations:
            failures += 1
            for violation in invariants.violations:
                print(f"  invariant violated: {violation}")
        if name == "autoscaled" and (firing or report.bad_units):
            failures += 1
            print("  FAIL: the elastic deployment burned its budget")
        if name == "static-trough" and not firing:
            failures += 1
            print("  FAIL: the starved deployment never alerted")
        print()

    result, tracer, _ = runs["static-trough"]
    incidents = result.incidents()
    print(f"== incident report: static-trough ({len(incidents)} "
          f"fired alert{'' if len(incidents) == 1 else 's'}) ==")
    print(incident_table(incidents))
    top = [incident.top_cause for incident in incidents]
    if top and all(kind == "capacity-shortfall" for kind in top):
        print("attribution: every burn traces to the capacity shortfall")
    else:
        failures += 1
        print(f"FAIL: expected capacity-shortfall attribution, got {top}")
    # attribute_incidents is pure: recomputing from the observers gives
    # identical records to the result's view
    slo_observer = next(
        o for o in result.observers if hasattr(o, "trackers")
    )
    assert tuple(incidents) == attribute_incidents(slo_observer, tracer)

    if args.trace_out:
        path = tracer.dump(args.trace_out)
        print(f"wrote {len(tracer.records())} causal traces to {path}")
    if args.incidents_out:
        Path(args.incidents_out).write_text(canonical_document(
            [incident.to_dict() for incident in incidents]
        ) + "\n")
        print(f"wrote {len(incidents)} incidents to {args.incidents_out}")

    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
