"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 517
editable installs (which must build a wheel) fail.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` take the
classic ``setup.py develop`` path; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
