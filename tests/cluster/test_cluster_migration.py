"""Migration policies: queue drains, starvation moves, guard rails."""

import pytest

from repro.cluster.migration import (
    LoadBalanceMigration,
    NoMigration,
    QueueRebalanceMigration,
    make_migration,
)
from repro.cluster.shard import Shard
from repro.errors import ConfigurationError
from repro.experiments.configs import scaled_config
from repro.streams import AdmissionController, WeightedShareArbiter, qmin_demand
from repro.streams.scenarios import StreamSpec


def spec(name, scale=27, seed=3, frames=8):
    return StreamSpec(
        name=name,
        arrival_round=0,
        config=scaled_config(scale=scale, seed=seed, frames=frames),
    )


def shard(shard_id, capacity):
    return Shard(
        shard_id,
        capacity,
        WeightedShareArbiter(),
        AdmissionController(capacity),
    )


class TestNoMigration:
    def test_never_moves(self):
        shards = [shard("s0", 8e6), shard("s1", 30e6)]
        shards[0].offer(spec("a"), 0)
        shards[0].offer(spec("b", seed=9), 0)  # queued
        assert NoMigration().plan(shards, 5) == []


class TestQueueRebalance:
    def test_moves_queued_spec_toward_headroom(self):
        crowded = shard("s0", 8e6)
        idle = shard("s1", 30e6)
        crowded.offer(spec("running"), 0)
        crowded.offer(spec("parked", seed=9), 0)
        assert len(crowded.queue) == 1
        moves = QueueRebalanceMigration().plan([crowded, idle], 3)
        assert len(moves) == 1
        move = moves[0]
        assert (move.stream_id, move.source, move.dest, move.kind) == (
            "parked", "s0", "s1", "queued"
        )

    def test_no_move_without_destination_headroom(self):
        crowded = shard("s0", 8e6)
        tiny = shard("s1", 3e6)  # below qmin, never feasible
        crowded.offer(spec("running"), 0)
        crowded.offer(spec("parked", seed=9), 0)
        assert QueueRebalanceMigration().plan([crowded, tiny], 3) == []

    def test_claims_headroom_across_moves(self):
        # destination can absorb ONE queued stream, not two
        crowded = shard("s0", 8e6)
        dest = shard("s1", 1.5 * qmin_demand(spec("x").config))
        crowded.offer(spec("running"), 0)
        crowded.offer(spec("parked-1", seed=9), 0)
        crowded.offer(spec("parked-2", seed=10), 0)
        moves = QueueRebalanceMigration().plan([crowded, dest], 3)
        assert len(moves) == 1


class TestLoadBalance:
    def _overloaded_pair(self):
        # four streams on a pool sized for ~1.2: deeply starved
        crowded = shard("s0", 1.2 * 11.85e6)
        idle = shard("s1", 60e6)
        for i in range(2):
            crowded.offer(spec(f"c{i}", seed=20 + i), 0)
        return crowded, idle

    def test_moves_starved_session_after_residency(self):
        crowded, idle = self._overloaded_pair()
        policy = LoadBalanceMigration(min_residency=2, max_moves_per_round=1)
        # starve for a few rounds so recent quality drops
        for round_index in range(4):
            crowded.step(round_index)
        assert crowded.load > policy.overload
        moves = policy.plan([crowded, idle], 4)
        assert len(moves) == 1
        assert moves[0].kind == "active"
        assert moves[0].dest == "s1"

    def test_residency_blocks_fresh_streams(self):
        crowded, idle = self._overloaded_pair()
        policy = LoadBalanceMigration(min_residency=10)
        for round_index in range(4):
            crowded.step(round_index)
        assert policy.plan([crowded, idle], 4) == []

    def test_no_move_when_balanced(self):
        a = shard("s0", 60e6)
        b = shard("s1", 60e6)
        a.offer(spec("a"), 0)
        b.offer(spec("b", seed=9), 0)
        a.step(0)
        b.step(0)
        assert LoadBalanceMigration().plan([a, b], 5) == []

    def test_max_moves_cap(self):
        crowded = shard("s0", 1.2 * 11.85e6)
        idle = shard("s1", 120e6)
        for i in range(4):
            crowded.offer(spec(f"c{i}", seed=30 + i), 0)
        policy = LoadBalanceMigration(min_residency=1, max_moves_per_round=2)
        for round_index in range(5):
            crowded.step(round_index)
        moves = policy.plan([crowded, idle], 5)
        assert len([m for m in moves if m.kind == "active"]) <= 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LoadBalanceMigration(quality_threshold=1.5)
        with pytest.raises(ConfigurationError):
            LoadBalanceMigration(min_residency=0)
        with pytest.raises(ConfigurationError):
            LoadBalanceMigration(max_moves_per_round=0)


class TestFactory:
    def test_make_migration(self):
        for name in ("none", "queue-rebalance", "load-balance"):
            assert make_migration(name).name == name
        with pytest.raises(ConfigurationError):
            make_migration("nope")
