"""Shard mechanics: admission routing, stepping, migration primitives."""

import pytest

from repro.cluster.shard import Shard
from repro.errors import ConfigurationError
from repro.experiments.configs import scaled_config
from repro.streams import (
    AdmissionController,
    AdmissionDecision,
    WeightedShareArbiter,
    qmin_demand,
)
from repro.streams.scenarios import StreamSpec


def spec(name, scale=27, seed=3, frames=6, arrival=0):
    return StreamSpec(
        name=name,
        arrival_round=arrival,
        config=scaled_config(scale=scale, seed=seed, frames=frames),
    )


def make_shard(capacity=30e6, admission=True):
    gate = AdmissionController(capacity) if admission else None
    return Shard("s0", capacity, WeightedShareArbiter(), gate)


class TestOfferAndStep:
    def test_accepted_stream_runs_to_completion(self):
        shard = make_shard()
        decision = shard.offer(spec("a"), round_index=0)
        assert decision is AdmissionDecision.ACCEPTED
        assert shard.busy
        rounds = 0
        while shard.busy:
            shard.step(rounds)
            rounds += 1
        assert len(shard.outcomes) == 1
        outcome = shard.outcomes[0]
        assert outcome.spec.name == "a"
        assert outcome.admitted_round == 0
        assert len(outcome.result) == 6
        # committed demand fully released on departure
        assert shard.admission.committed == pytest.approx(0.0)

    def test_rejected_when_infeasible_alone(self):
        shard = make_shard(capacity=3e6)  # below scale-27 qmin (~4.7M)
        decision = shard.offer(spec("big"), round_index=0)
        assert decision is AdmissionDecision.REJECTED
        assert shard.rejected[0].name == "big"
        assert not shard.busy

    def test_ungated_shard_accepts_everything(self):
        shard = make_shard(admission=False)
        for i in range(5):
            assert shard.offer(spec(f"s{i}", seed=i), 0) is (
                AdmissionDecision.ACCEPTED
            )
        assert len(shard.active) == 5

    def test_queued_then_admitted_on_departure(self):
        capacity = 1.5 * qmin_demand(spec("x").config)
        shard = make_shard(capacity=capacity)
        assert shard.offer(spec("first", frames=4), 0) is (
            AdmissionDecision.ACCEPTED
        )
        assert shard.offer(spec("second", seed=9), 0) is (
            AdmissionDecision.QUEUED
        )
        assert len(shard.queue) == 1
        rounds = 0
        while shard.spec_of.get("first"):
            shard.step(rounds)
            shard.admit_queued(rounds + 1)
            rounds += 1
        assert "second" in shard.spec_of

    def test_load_and_headroom_signals(self):
        shard = make_shard(capacity=30e6)
        assert shard.load == 0.0
        assert shard.headroom() == pytest.approx(30e6)
        shard.offer(spec("a"), 0)
        assert shard.active_demand == pytest.approx(spec("a").config.period)
        assert shard.load > 0
        assert shard.headroom() < 30e6
        assert shard.mean_recent_quality() == 1.0  # nothing encoded yet


class TestCapacityEvents:
    def test_set_capacity_shrinks_admission_budget(self):
        shard = make_shard(capacity=30e6)
        shard.set_capacity(6e6)
        assert shard.capacity == 6e6
        assert shard.admission.budget == pytest.approx(6e6)
        assert shard.nominal_capacity == 30e6
        with pytest.raises(ConfigurationError):
            shard.set_capacity(0.0)

    def test_reject_stuck_queue_flushes_unservable(self):
        capacity = 1.5 * qmin_demand(spec("x").config)
        shard = make_shard(capacity=capacity)
        shard.offer(spec("running", frames=4), 0)
        assert shard.offer(spec("waiting", seed=9), 0) is (
            AdmissionDecision.QUEUED
        )
        # capacity collapses below qmin: the queued spec can never fit
        shard.set_capacity(0.5 * qmin_demand(spec("x").config))
        flushed = shard.reject_stuck_queue()
        assert flushed == 1
        assert not shard.queue
        assert shard.rejected[-1].name == "waiting"


class TestMigrationPrimitives:
    def test_detach_attach_preserves_commitment(self):
        a = make_shard(capacity=30e6)
        b = make_shard(capacity=30e6)
        my_spec = spec("mover", frames=8)
        a.offer(my_spec, 0)
        a.step(0)
        committed = a.admission.committed
        assert committed > 0
        session, moved_spec, admitted = a.detach("mover")
        assert a.admission.committed == pytest.approx(0.0)
        assert not a.active
        b.attach(session, moved_spec, admitted)
        assert b.admission.committed == pytest.approx(committed)
        # the session continues where it left off on the new shard
        rounds = 1
        while b.busy:
            b.step(rounds)
            rounds += 1
        assert len(b.outcomes) == 1
        assert len(b.outcomes[0].result) == 8

    def test_detach_unknown_stream_raises(self):
        shard = make_shard()
        with pytest.raises(ConfigurationError):
            shard.detach("ghost")

    def test_attach_duplicate_raises(self):
        a = make_shard()
        my_spec = spec("dup")
        a.offer(my_spec, 0)
        session = a.active[0]
        with pytest.raises(ConfigurationError):
            a.attach(session, my_spec, 0)

    def test_pop_queued_unblocks_head_of_line(self):
        """Migrating a blocking queued spec away must wake the retry
        logic: the spec behind it may now be feasible."""
        heavy = spec("heavy", scale=12)   # qmin ~10.7M
        light1 = spec("light1", seed=8)   # qmin ~4.7M
        big = spec("big", scale=12, seed=9)
        light2 = spec("light2", seed=10)
        shard = make_shard(capacity=16e6)
        assert shard.offer(heavy, 0) is AdmissionDecision.ACCEPTED
        assert shard.offer(light1, 0) is AdmissionDecision.ACCEPTED
        assert shard.offer(big, 0) is AdmissionDecision.QUEUED
        assert shard.offer(light2, 0) is AdmissionDecision.QUEUED
        # a light departure frees capacity; retry stops at the blocked
        # head-of-line ('big' still does not fit) and clears the flag
        shard.admission.release(light1.config)
        assert shard.admit_queued(1) == 0
        assert shard.admit_queued(2) == 0  # flag consumed, no recheck
        # migration pops 'big' -> 'light2' is feasible and must start
        # on the next ordinary (non-forced) retry
        assert shard.pop_queued("big") is not None
        assert shard.admit_queued(3) == 1
        assert "light2" in shard.spec_of

    def test_pop_queued(self):
        capacity = 1.2 * qmin_demand(spec("x").config)
        shard = make_shard(capacity=capacity)
        shard.offer(spec("running"), 0)
        shard.offer(spec("parked", seed=9), 0)
        popped = shard.pop_queued("parked")
        assert popped is not None and popped.name == "parked"
        assert shard.pop_queued("parked") is None
        assert not shard.queue


class TestValidation:
    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            Shard("bad", 0.0, WeightedShareArbiter())

    def test_duplicate_start_rejected(self):
        shard = make_shard(capacity=60e6)
        shard.offer(spec("same"), 0)
        with pytest.raises(ConfigurationError):
            shard.offer(spec("same"), 0)

    def test_result_snapshot(self):
        shard = make_shard()
        shard.offer(spec("a", frames=4), 0)
        rounds = 0
        while shard.busy:
            shard.step(rounds)
            rounds += 1
        result = shard.result("scenario-x", rounds)
        assert result.scenario_name == "scenario-x"
        assert result.served_count == 1
        assert result.capacity == shard.nominal_capacity
