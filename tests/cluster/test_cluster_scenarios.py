"""Cluster scenario generators: shapes, validation, determinism."""

import pytest

from repro.cluster.scenarios import (
    CapacityEvent,
    ClusterScenario,
    flash_crowd_split,
    shard_outage,
    skewed_cluster,
)
from repro.errors import ConfigurationError
from repro.streams.scenarios import steady_fleet


class TestClusterScenario:
    def test_validation(self):
        arrivals = steady_fleet(2, frames=5)
        with pytest.raises(ConfigurationError):
            ClusterScenario("bad", arrivals, shard_capacities=())
        with pytest.raises(ConfigurationError):
            ClusterScenario("bad", arrivals, shard_capacities=(1e6, -1.0))
        with pytest.raises(ConfigurationError):
            ClusterScenario(
                "bad",
                arrivals,
                shard_capacities=(1e6,),
                events=(CapacityEvent(0, 5, 0.5),),  # shard out of range
            )
        with pytest.raises(ConfigurationError):
            CapacityEvent(round_index=-1, shard_index=0, factor=0.5)
        with pytest.raises(ConfigurationError):
            CapacityEvent(round_index=0, shard_index=0, factor=0.0)

    def test_events_at(self):
        arrivals = steady_fleet(1, frames=5)
        events = (CapacityEvent(3, 0, 0.5), CapacityEvent(3, 1, 0.5),
                  CapacityEvent(7, 0, 1.0))
        scenario = ClusterScenario(
            "ev", arrivals, shard_capacities=(1e6, 1e6), events=events
        )
        assert len(scenario.events_at(3)) == 2
        assert len(scenario.events_at(4)) == 0
        assert scenario.last_event_round == 7
        assert scenario.shard_count == 2


class TestGenerators:
    def test_skewed_cluster_shape(self):
        scenario = skewed_cluster(streams=12, shards=3)
        assert scenario.shard_count == 3
        assert len(scenario.arrivals) == 12
        caps = scenario.shard_capacities
        # geometric skew, decreasing
        assert caps[0] > caps[1] > caps[2]
        assert caps[0] / caps[2] == pytest.approx(8.0)
        # fixed total: utilization fraction of the aggregate demand
        assert scenario.total_capacity == pytest.approx(
            0.5 * scenario.arrivals.total_demand()
        )

    def test_skewed_cluster_smallest_shard_cannot_host_heavy(self):
        from repro.streams import qmin_demand

        scenario = skewed_cluster()
        heavy = next(
            s for s in scenario.arrivals.specs if "-s12" in s.name
        )
        light = next(
            s for s in scenario.arrivals.specs if "-s27" in s.name
        )
        smallest = min(scenario.shard_capacities)
        largest = max(scenario.shard_capacities)
        # the regime the generator promises: placement decides service
        assert qmin_demand(heavy.config) > smallest
        assert qmin_demand(light.config) < smallest
        assert qmin_demand(heavy.config) < largest

    def test_shard_outage_events(self):
        scenario = shard_outage(outage_round=4, outage_factor=0.25,
                                recovery_round=9)
        assert len(scenario.events) == 2
        drop, recover = scenario.events
        assert drop.round_index == 4 and drop.factor == 0.25
        assert recover.round_index == 9 and recover.factor == 1.0
        # equal pools
        caps = set(round(c) for c in scenario.shard_capacities)
        assert len(caps) == 1

    def test_flash_crowd_split_arrivals(self):
        scenario = flash_crowd_split(base=4, crowd=8, crowd_round=3)
        assert len(scenario.arrivals.arrivals_at(0)) == 4
        assert len(scenario.arrivals.arrivals_at(3)) == 8

    def test_generators_are_deterministic(self):
        a = skewed_cluster()
        b = skewed_cluster()
        assert a == b
        assert shard_outage() == shard_outage()
        assert flash_crowd_split() == flash_crowd_split()
