"""Predictive placement: the ROADMAP's quality-collapse regression.

Best-fit maximizes acceptance by packing streams into the tightest
feasible shard — and under churn that keeps wedging newcomers into the
small shards of a skewed cluster, collapsing per-stream quality there
while the big shard idles.  Predictive placement keeps the feasibility
gate but ranks accepting shards by the *projected per-stream share*;
this regression pins the improvement on the skewed-churn scenario.
"""

import pytest

from repro.cluster import PredictivePlacement, skewed_churn
from repro.cluster.runner import build_shards
from repro.errors import ConfigurationError
from repro.experiments.configs import scaled_config
from repro.serving import serve
from repro.streams.scenarios import StreamSpec

CHURN_KWARGS = {"rate": 1.2, "horizon": 14, "seed": 7}


def cluster_spec(placement):
    return {
        "topology": "cluster",
        "scenario": {"name": "skewed-churn", "kwargs": CHURN_KWARGS},
        "placement": placement,
    }


class TestSkewedChurnRegression:
    @pytest.fixture(scope="class")
    def results(self):
        return {
            name: serve(cluster_spec(name))
            for name in ("best-fit", "predictive")
        }

    def test_quality_no_longer_collapses(self, results):
        best_fit, predictive = results["best-fit"], results["predictive"]
        # same acceptance: the feasibility gate is untouched
        assert predictive.acceptance_ratio >= best_fit.acceptance_ratio
        # and the packing-induced collapse is gone: the worst-served
        # stream under churn is far healthier...
        assert min(predictive.per_stream_quality()) > min(
            best_fit.per_stream_quality()
        ) + 1.0
        # ...lifting both mean quality and per-stream fairness
        assert predictive.mean_quality() > best_fit.mean_quality() + 0.5
        assert (
            predictive.fairness_quality()
            > best_fit.fairness_quality() + 0.15
        )

    def test_deterministic_replay(self):
        first = serve(cluster_spec("predictive"))
        second = serve(cluster_spec("predictive"))
        assert first.summary() == second.summary()


class TestProjectedShare:
    def test_share_counts_active_queued_and_the_arrival(self):
        placement = PredictivePlacement()
        shard = build_shards([60e6], admission=False)[0]
        assert placement.projected_share(shard) == pytest.approx(60e6)
        spec = StreamSpec("s", 0, scaled_config(scale=27, seed=1, frames=4))
        shard.offer(spec, 0)
        assert placement.projected_share(shard) == pytest.approx(30e6)

    def test_prefers_the_biggest_projected_share(self):
        placement = PredictivePlacement()
        small, big = build_shards([12e6, 48e6])
        spec = StreamSpec("s", 0, scaled_config(scale=27, seed=1, frames=4))
        assert placement.choose(spec, [small, big], 0) is big

    def test_headroom_bias_validated(self):
        with pytest.raises(ConfigurationError):
            PredictivePlacement(headroom_bias=1.5)
