"""Placement policies over hand-built shard states."""

import pytest

from repro.cluster.placement import (
    BestFitPlacement,
    LeastLoadedPlacement,
    QualityAwarePlacement,
    RoundRobinPlacement,
    make_placement,
)
from repro.cluster.shard import Shard
from repro.errors import ConfigurationError
from repro.experiments.configs import scaled_config
from repro.streams import AdmissionController, WeightedShareArbiter
from repro.streams.scenarios import StreamSpec


def spec(name, scale=27, seed=3, frames=6):
    return StreamSpec(
        name=name,
        arrival_round=0,
        config=scaled_config(scale=scale, seed=seed, frames=frames),
    )


def shard(shard_id, capacity):
    return Shard(
        shard_id,
        capacity,
        WeightedShareArbiter(),
        AdmissionController(capacity),
    )


class TestRoundRobin:
    def test_cycles_blindly(self):
        shards = [shard(f"s{i}", 30e6) for i in range(3)]
        policy = RoundRobinPlacement()
        chosen = [policy.choose(spec(f"x{i}", seed=i), shards, 0) for i in range(6)]
        assert [c.shard_id for c in chosen] == ["s0", "s1", "s2"] * 2

    def test_empty_cluster_raises(self):
        with pytest.raises(ConfigurationError):
            RoundRobinPlacement().choose(spec("x"), [], 0)


class TestLeastLoaded:
    def test_prefers_lowest_relative_load(self):
        shards = [shard("s0", 30e6), shard("s1", 30e6)]
        shards[0].offer(spec("busy"), 0)
        policy = LeastLoadedPlacement()
        assert policy.choose(spec("new", seed=9), shards, 0).shard_id == "s1"

    def test_accounts_for_queued_demand(self):
        small = shard("s0", 7e6)  # fits one scale-27 qmin (~4.7M)
        big = shard("s1", 30e6)
        small.offer(spec("a"), 0)
        small.offer(spec("b", seed=9), 0)  # queued on s0
        assert len(small.queue) == 1
        # relative load counts the parked stream too
        assert small.load > big.load
        assert LeastLoadedPlacement().choose(
            spec("c", seed=10), [small, big], 0
        ).shard_id == "s1"


class TestBestFit:
    def test_picks_tightest_feasible_shard(self):
        # both fit; s1 leaves the smaller hole
        shards = [shard("s0", 60e6), shard("s1", 8e6)]
        policy = BestFitPlacement()
        assert policy.choose(spec("x"), shards, 0).shard_id == "s1"

    def test_avoids_infeasible_shard(self):
        # s1's whole budget is below a heavy stream's qmin demand
        shards = [shard("s0", 60e6), shard("s1", 3e6)]
        heavy = spec("heavy", scale=12)
        assert BestFitPlacement().choose(heavy, shards, 0).shard_id == "s0"

    def test_prefers_queueing_over_rejection(self):
        # nothing accepts now, but s0 could serve the stream alone
        s0 = shard("s0", 8e6)
        s0.offer(spec("occupant"), 0)  # commits most of s0
        s1 = shard("s1", 3e6)  # can never serve it
        choice = BestFitPlacement().choose(spec("x", seed=9), [s0, s1], 0)
        assert choice.shard_id == "s0"


class TestQualityAware:
    def test_avoids_struggling_shard(self):
        healthy = shard("s0", 30e6)
        struggling = shard("s1", 30e6)
        struggling.offer(spec("starved"), 0)
        # run the starved stream at a trickle so its quality is poor
        for round_index in range(4):
            struggling.step(round_index, capacity=0.3 * 11.85e6)
        assert struggling.mean_recent_quality() < 0.5
        choice = QualityAwarePlacement().choose(
            spec("new", seed=9), [struggling, healthy], 0
        )
        assert choice.shard_id == "s0"


class TestFactory:
    def test_make_placement(self):
        for name in ("round-robin", "least-loaded", "best-fit", "quality-aware"):
            assert make_placement(name).name == name
        with pytest.raises(ConfigurationError):
            make_placement("nope")
