"""End-to-end cluster runs: the PR's acceptance criteria, determinism,
outages, headroom lending, conservation."""

import math

import pytest

from repro.cluster import (
    BestFitPlacement,
    ClusterRunner,
    HeadroomBalancer,
    LeastLoadedPlacement,
    LoadBalanceMigration,
    RoundRobinPlacement,
    build_shards,
    compare_placements,
    flash_crowd_split,
    shard_outage,
    skewed_cluster,
)
from repro.errors import ConfigurationError
from repro.sim.runner import reset_caches


class TestAcceptanceCriteria:
    """ISSUE 2: skewed arrivals, fixed total capacity."""

    def test_feasibility_aware_placement_beats_round_robin_on_acceptance(self):
        scenario = skewed_cluster()
        results = compare_placements(
            scenario, [RoundRobinPlacement(), BestFitPlacement()]
        )
        blind = results["round-robin"]
        aware = results["best-fit"]
        # round-robin sends heavy streams to a shard whose whole budget
        # is below their qmin demand; best-fit never does
        assert blind.rejected_count >= 2
        assert aware.rejected_count == 0
        assert aware.acceptance_ratio > blind.acceptance_ratio + 0.1
        # everything offered is eventually decided under both policies
        offered = len(scenario.arrivals)
        for result in (blind, aware):
            assert result.served_count + result.rejected_count == offered

    def test_migration_improves_cross_shard_fairness(self):
        scenario = skewed_cluster()
        frozen = ClusterRunner(RoundRobinPlacement()).run(scenario)
        mobile = ClusterRunner(
            RoundRobinPlacement(), migration=LoadBalanceMigration()
        ).run(scenario)
        assert mobile.migration_count > 0
        assert (
            mobile.fairness_cross_shard()
            > frozen.fairness_cross_shard() + 0.1
        )
        # per-stream fairness improves too, and served totals match
        assert mobile.fairness_streams() > frozen.fairness_streams()
        assert mobile.served_count == frozen.served_count


class TestDeterminism:
    def test_rerunning_the_same_runner_reproduces_the_run(self):
        # policies carry per-run state (rotation counters, migration
        # cooldowns, lent-cycle tallies) that must reset between runs
        runner = ClusterRunner(
            RoundRobinPlacement(),
            migration=LoadBalanceMigration(),
            balancer=HeadroomBalancer(),
        )
        scenario = skewed_cluster(streams=8, frames=8)
        first = runner.run(scenario)
        second = runner.run(scenario)
        assert first.summary() == second.summary()
        assert first.lent_cycles == second.lent_cycles
        assert first.migrations == second.migrations

    def test_cluster_run_is_deterministic_under_fixed_seed(self):
        first = ClusterRunner(
            RoundRobinPlacement(), migration=LoadBalanceMigration()
        ).run(skewed_cluster())
        reset_caches()
        second = ClusterRunner(
            RoundRobinPlacement(), migration=LoadBalanceMigration()
        ).run(skewed_cluster())
        def canon(summary):
            # nan != nan; an idle shard's quality metrics are nan
            return {
                k: "nan" if isinstance(v, float) and math.isnan(v) else v
                for k, v in summary.items()
            }

        assert canon(first.summary()) == canon(second.summary())
        assert first.migrations == second.migrations
        for a, b in zip(first.shard_results, second.shard_results):
            assert canon(a.summary()) == canon(b.summary())


class TestConservation:
    def test_every_stream_served_exactly_once(self):
        scenario = skewed_cluster()
        result = ClusterRunner(
            LeastLoadedPlacement(), migration=LoadBalanceMigration()
        ).run(scenario)
        served = [
            o.spec.name for r in result.shard_results for o in r.streams
        ]
        rejected = [
            s.name for r in result.shard_results for s in r.rejected
        ]
        assert len(served) == len(set(served))  # no duplicates
        assert sorted(served + rejected) == sorted(
            s.name for s in scenario.arrivals.specs
        )

    def test_migrated_streams_keep_their_full_clip(self):
        scenario = skewed_cluster()
        result = ClusterRunner(
            RoundRobinPlacement(), migration=LoadBalanceMigration()
        ).run(scenario)
        assert result.active_migration_count > 0
        for shard in result.shard_results:
            for outcome in shard.streams:
                assert len(outcome.result) == outcome.spec.config.frames

    def test_balancer_conserves_total_capacity(self):
        shards = build_shards((40e6, 20e6, 10e6))
        from repro.streams.scenarios import steady_fleet

        for i, spec in enumerate(steady_fleet(4, frames=6).specs):
            shards[i % 2].offer(spec, 0)  # load only the first two
        balancer = HeadroomBalancer()
        effective = balancer.effective_capacities(shards)
        assert sum(effective.values()) == pytest.approx(70e6)
        # idle shard donated, loaded shards gained
        assert effective["shard-2"] < 10e6
        assert effective["shard-0"] + effective["shard-1"] > 60e6


class TestOutage:
    def test_outage_migration_rescues_streams(self):
        scenario = shard_outage()
        frozen = ClusterRunner(LeastLoadedPlacement()).run(scenario)
        mobile = ClusterRunner(
            LeastLoadedPlacement(), migration=LoadBalanceMigration()
        ).run(scenario)
        # the outage starves the degraded shard's streams; migration
        # moves them off and closes the fairness gap
        assert mobile.active_migration_count > 0
        assert mobile.fairness_streams() > frozen.fairness_streams()
        assert mobile.total_skips() < frozen.total_skips()
        assert mobile.served_count == frozen.served_count == 9

    def test_headroom_balancer_lends_into_skew(self):
        scenario = skewed_cluster()
        plain = ClusterRunner(RoundRobinPlacement()).run(scenario)
        lent = ClusterRunner(
            RoundRobinPlacement(), balancer=HeadroomBalancer()
        ).run(scenario)
        assert lent.lent_cycles > 0
        assert lent.mean_quality() > plain.mean_quality()


class TestRecovery:
    def test_queued_stream_admitted_promptly_after_capacity_recovery(self):
        """A capacity event changes feasibility without a release, so
        the round it fires the queue must be force-rechecked."""
        from repro.cluster.scenarios import CapacityEvent, ClusterScenario
        from repro.experiments.configs import scaled_config
        from repro.streams import qmin_demand
        from repro.streams.scenarios import Scenario, StreamSpec

        def stream(name, seed, frames, arrival=0):
            return StreamSpec(
                name=name,
                arrival_round=arrival,
                config=scaled_config(scale=27, seed=seed, frames=frames),
            )

        demand = qmin_demand(stream("x", 1, 4).config)
        # shard 0: one short clip + one queued stream; shard 1 busy for
        # a long time so the cluster never goes globally idle early
        # order matters: short -> shard 0, long -> shard 1, parked ties
        # back to shard 0 (equal loads) where it must queue
        arrivals = Scenario(
            "recovery",
            specs=(
                stream("short", 1, frames=3),
                stream("long", 3, frames=30),
                stream("parked", 2, frames=4),
            ),
        )
        scenario = ClusterScenario(
            "recovery",
            arrivals,
            shard_capacities=(1.5 * demand, 1.5 * demand),
            events=(
                CapacityEvent(1, 0, 0.4),   # drop below qmin
                CapacityEvent(10, 0, 1.0),  # recover
            ),
        )
        # least-loaded routes short+long apart; parked queues on shard 0
        result = ClusterRunner(LeastLoadedPlacement()).run(scenario)
        assert result.served_count == 3
        parked = next(
            o
            for r in result.shard_results
            for o in r.streams
            if o.spec.name == "parked"
        )
        # admitted the round capacity recovered, not at global idle
        assert parked.admitted_round == 10


class TestMigrationSafety:
    def test_active_moves_never_overcommit_destination(self):
        """Two starved sessions, destination headroom for one: only one
        may move per plan (claimed headroom is tracked)."""
        from repro.cluster import build_shards
        from repro.experiments.configs import scaled_config
        from repro.streams import qmin_demand
        from repro.streams.scenarios import StreamSpec

        def stream(name, seed):
            return StreamSpec(
                name=name,
                arrival_round=0,
                config=scaled_config(scale=27, seed=seed, frames=10),
            )

        demand = qmin_demand(stream("x", 1).config)
        crowded, dest = build_shards((2.2 * demand, 1.5 * demand))
        for i in range(2):
            crowded.offer(stream(f"c{i}", seed=20 + i), 0)
        # starve both so they are migration candidates
        for round_index in range(5):
            crowded.step(round_index, capacity=0.3 * crowded.capacity)
        policy = LoadBalanceMigration(
            min_residency=1, max_moves_per_round=4, margin=0.0
        )
        moves = policy.plan([crowded, dest], 5)
        active = [m for m in moves if m.kind == "active"]
        assert len(active) == 1  # the second would overcommit dest


class TestFlashCrowd:
    def test_crowd_splits_across_shards(self):
        scenario = flash_crowd_split()
        result = ClusterRunner(LeastLoadedPlacement()).run(scenario)
        assert result.served_count == 12
        assert result.rejected_count == 0
        # the crowd cannot fit on one shard: every shard served some
        assert all(r.served_count > 0 for r in result.shard_results)


class TestResultShape:
    def test_summary_keys_and_table(self):
        from repro.analysis.report import cluster_compare_table, cluster_table

        result = ClusterRunner(LeastLoadedPlacement()).run(
            flash_crowd_split(base=2, crowd=2, shards=2, frames=6)
        )
        summary = result.summary()
        for key in (
            "scenario", "placement", "migration", "shards", "served",
            "rejected", "acceptance_ratio", "migrations", "mean_quality",
            "fairness_streams", "fairness_cross_shard", "load_imbalance",
        ):
            assert key in summary
        assert "shard-0" in cluster_table(result)
        assert "least-loaded" in cluster_compare_table([result])
        assert not math.isnan(result.load_imbalance())


class TestValidation:
    def test_shard_count_mismatch(self):
        scenario = flash_crowd_split(shards=2, base=1, crowd=1, frames=4)
        runner = ClusterRunner(LeastLoadedPlacement())
        with pytest.raises(ConfigurationError):
            runner.run(scenario, shards=build_shards((1e6,) * 3))

    def test_max_rounds_guard(self):
        with pytest.raises(ConfigurationError):
            ClusterRunner(LeastLoadedPlacement(), max_rounds=0)
        scenario = flash_crowd_split(shards=2, base=1, crowd=1, frames=8)
        runner = ClusterRunner(LeastLoadedPlacement(), max_rounds=2)
        with pytest.raises(ConfigurationError):
            runner.run(scenario)
