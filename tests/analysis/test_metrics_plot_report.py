"""Tests for repro.analysis: metrics, ASCII plotting, reporting."""

import math

import numpy as np
import pytest

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.metrics import (
    burst_count,
    mean_outside_regions,
    psnr_advantage,
    utilization_statistics,
)
from repro.analysis.report import comparison_table, format_summary, markdown_table
from repro.sim.results import FrameRecord, RunResult


def make_run(label, specs, period=100.0):
    """specs: list of (cycles_or_None, psnr); None = skipped."""
    run = RunResult(label=label, period=period, buffer_capacity=1)
    for index, (cycles, psnr) in enumerate(specs):
        if cycles is None:
            run.frames.append(FrameRecord(
                index=index, is_iframe=False, skipped=True,
                arrival=index * period, motion=0.5, psnr=psnr,
            ))
        else:
            run.frames.append(FrameRecord(
                index=index, is_iframe=False, skipped=False,
                arrival=index * period, motion=0.5,
                start=index * period, end=index * period + cycles,
                budget=period, encode_cycles=cycles,
                mean_quality=3.0, min_quality=3, max_quality=3, psnr=psnr,
            ))
    return run


class TestBurstCount:
    def test_empty(self):
        assert burst_count([]) == 0

    def test_single_burst(self):
        assert burst_count([10, 12, 15]) == 1

    def test_two_bursts(self):
        assert burst_count([10, 12, 200, 205], max_gap=30) == 2

    def test_gap_threshold(self):
        assert burst_count([10, 45], max_gap=30) == 2
        assert burst_count([10, 35], max_gap=30) == 1

    def test_unsorted_input(self):
        assert burst_count([205, 10, 200, 12], max_gap=30) == 2


class TestMeanOutsideRegions:
    def test_exclusion(self):
        values = [10.0, 20.0, 30.0]
        assert mean_outside_regions(values, {1}) == 20.0

    def test_nan_dropped(self):
        values = [10.0, math.nan, 30.0]
        assert mean_outside_regions(values, set()) == 20.0

    def test_all_excluded_is_nan(self):
        assert math.isnan(mean_outside_regions([1.0], {0}))


class TestPsnrAdvantage:
    def test_split_by_region(self):
        controlled = make_run("c", [(90, 36.0), (90, 33.0), (90, 36.0), (90, 36.0)])
        baseline = make_run("b", [(90, 34.0), (None, 20.0), (90, 35.0), (90, 34.0)])
        comparison = psnr_advantage(controlled, baseline, margin=1)
        # region = {0, 1, 2}; outside = {3}
        assert comparison.advantage_outside == pytest.approx(2.0)
        # inside, all frames: (36+33+36)/3 - (34+20+35)/3
        assert comparison.advantage_inside == pytest.approx(35.0 - 89.0 / 3)
        # inside, baseline-encoded frames only: indices {0, 2}
        assert comparison.advantage_inside_encoded == pytest.approx(36.0 - 34.5)
        assert comparison.baseline_skip_count == 1
        assert comparison.region_size == 3


class TestUtilizationStatistics:
    def test_stats(self):
        run = make_run("u", [(50, 35.0), (100, 35.0), (150, 35.0)])
        stats = utilization_statistics(run)
        assert stats.mean == pytest.approx(1.0)
        assert stats.median == pytest.approx(1.0)
        assert stats.above_budget_frames == 1

    def test_empty(self):
        run = make_run("e", [(None, 20.0)])
        stats = utilization_statistics(run)
        assert math.isnan(stats.mean)


class TestAsciiPlot:
    def test_contains_legend_and_axis(self):
        chart = ascii_plot({"alpha": [1, 2, 3], "beta": [3, 2, 1]}, title="T")
        assert "T" in chart
        assert "* alpha" in chart
        assert "o beta" in chart
        assert "frame 0 .. 2" in chart

    def test_nan_leaves_gaps(self):
        chart = ascii_plot({"s": [1.0, math.nan, 1.0]}, width=3, height=3)
        rows = [line for line in chart.splitlines() if "|" in line]
        marks = sum(row.count("*") for row in rows)
        assert marks == 2  # the NaN column stays blank

    def test_empty_series(self):
        assert ascii_plot({}) == "(no data)"

    def test_y_limits_respected(self):
        chart = ascii_plot({"s": [5.0]}, y_min=0.0, y_max=10.0)
        assert "10" in chart and "0" in chart

    def test_resampling_long_series(self):
        chart = ascii_plot({"s": list(range(1000))}, width=50)
        assert "frame 0 .. 999" in chart


class TestReport:
    def test_format_summary_mentions_key_fields(self):
        run = make_run("myrun", [(90, 35.0)])
        text = format_summary(run)
        assert "myrun" in text
        assert "mean_psnr" in text

    def test_comparison_table_aligned(self):
        a = make_run("short", [(90, 35.0)])
        b = make_run("a-much-longer-label", [(90, 30.0)])
        table = comparison_table([a, b])
        lines = table.splitlines()
        assert len({len(line) for line in lines if line}) == 1  # equal widths
        assert "short" in table and "a-much-longer-label" in table

    def test_markdown_table(self):
        table = markdown_table(["a", "b"], [[1, 2], [3, 4]])
        assert table.splitlines()[0] == "| a | b |"
        assert "| 3 | 4 |" in table


class TestFleetReporting:
    def test_jain_fairness_index(self):
        from repro.analysis.metrics import jain_fairness_index

        assert jain_fairness_index([3.0, 3.0, 3.0, 3.0]) == pytest.approx(1.0)
        assert jain_fairness_index([1.0, 0.0]) == pytest.approx(0.5)
        assert math.isnan(jain_fairness_index([]))
        # nans count as zero shares, not missing data
        assert jain_fairness_index([1.0, float("nan")]) == pytest.approx(0.5)

    def test_fleet_table_renders_arbiters(self):
        from repro.analysis.report import fleet_table
        from repro.streams import EqualShareArbiter, FleetRunner, steady_fleet

        scenario = steady_fleet(2, frames=4, scale=27)
        result = FleetRunner(
            scenario.total_demand(), EqualShareArbiter()
        ).run(scenario)
        table = fleet_table([result])
        lines = table.splitlines()
        assert "equal-share" in table
        assert "fair(q)" in lines[0]
        assert len({len(line) for line in lines if line}) == 1  # aligned

    def test_fleet_stream_table_lists_streams(self):
        from repro.analysis.report import fleet_stream_table
        from repro.streams import EqualShareArbiter, FleetRunner, steady_fleet

        scenario = steady_fleet(2, frames=4, scale=27)
        result = FleetRunner(
            scenario.total_demand(), EqualShareArbiter()
        ).run(scenario)
        table = fleet_stream_table(result)
        assert "steady-0" in table and "steady-1" in table
        assert table.splitlines()[0].startswith("| stream |")
