"""Mid-stream renegotiation: targets step down under starvation, back up."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments.configs import scaled_config
from repro.sla import GOLD, StepRenegotiation
from repro.streams.session import StreamSession


def session(policy=None, frames=30, target=GOLD.target_quality,
            floor=GOLD.min_quality):
    return StreamSession(
        stream_id="s",
        config=scaled_config(scale=27, seed=3, frames=frames),
        service_class="gold",
        quality_target=target,
        quality_floor=floor,
        renegotiation=policy,
    )


def starve(s, rounds):
    """Step with a grant far below dedicated speed."""
    events = []
    for _ in range(rounds):
        step = s.step(0.05 * s.demand)
        if step.renegotiated is not None:
            events.append(step.renegotiated)
    return events


class TestStepDown:
    def test_sustained_starvation_steps_the_target_down(self):
        policy = StepRenegotiation(patience=2, step=0.1)
        s = session(policy)
        events = starve(s, 10)
        assert events, "expected at least one step down"
        old, new = events[0]
        assert old == pytest.approx(GOLD.target_quality)
        assert new == pytest.approx(GOLD.target_quality - 0.1)
        assert s.renegotiation_count == len(events)
        # every event is a strict step in one direction, floor-clamped
        for old, new in events:
            assert new < old
            assert new >= GOLD.min_quality

    def test_target_never_steps_below_the_class_floor(self):
        policy = StepRenegotiation(patience=1, step=0.3)
        s = session(policy)
        starve(s, 20)
        assert s.quality_target == pytest.approx(GOLD.min_quality)
        count = s.renegotiation_count
        starve(s, 5)
        assert s.renegotiation_count == count  # parked at the floor

    def test_no_policy_means_no_renegotiation(self):
        s = session(None)
        assert starve(s, 8) == []
        assert s.quality_target == pytest.approx(GOLD.target_quality)

    def test_unclassed_session_never_renegotiates(self):
        s = StreamSession(
            stream_id="u",
            config=scaled_config(scale=27, seed=3, frames=20),
            renegotiation=StepRenegotiation(patience=1),
        )
        assert math.isnan(s.quality_target)
        for _ in range(6):
            assert s.step(0.05 * s.demand).renegotiated is None
        assert s.renegotiation_count == 0


class TestStepUp:
    def test_headroom_steps_the_target_back_up(self):
        policy = StepRenegotiation(patience=1, recovery_patience=2, step=0.2)
        s = session(policy)
        starve(s, 6)
        stepped_down = s.quality_target
        assert stepped_down < GOLD.target_quality
        # dedicated-speed grants: recovery after recovery_patience rounds
        ups = []
        for _ in range(10):
            step = s.step(1.2 * s.demand)
            if step.renegotiated is not None:
                ups.append(step.renegotiated)
            if s.finished:
                break
        assert ups, "expected a step back up"
        assert all(new > old for old, new in ups)
        # never above the original contract
        assert s.quality_target <= GOLD.target_quality + 1e-12

    def test_counters_reset_between_directions(self):
        policy = StepRenegotiation(patience=3, recovery_patience=3)
        s = session(policy)
        # alternate starved/headroom rounds: neither side accumulates
        for i in range(12):
            grant = 0.05 * s.demand if i % 2 == 0 else 1.2 * s.demand
            s.step(grant)
        assert s.renegotiation_count == 0


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"patience": 0},
            {"recovery_patience": 0},
            {"step": 0.0},
            {"step": -0.1},
            {"tolerance": -0.01},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            StepRenegotiation(**kwargs)

    def test_session_target_validation(self):
        with pytest.raises(ConfigurationError):
            session(target=1.5)
        with pytest.raises(ConfigurationError):
            session(target=0.3, floor=0.6)
