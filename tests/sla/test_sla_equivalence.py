"""serve(spec) with SLA policies is bit-identical to hand-wiring.

The SLA acceptance criterion: naming the SLA arbiter, priority
admission, renegotiation, placement and migration **in JSON** (classes
included) reproduces direct construction exactly — same summaries,
same per-stream series, same per-class breakdowns — and a no-op
observer changes nothing.
"""

from __future__ import annotations

import math

from repro.cluster import ClusterRunner
from repro.serving import RoundObserver, ServingSpec, serve
from repro.sla import (
    PriorityAdmissionController,
    ServiceClass,
    SlaMigration,
    SlaPlacement,
    SlaQualityFairArbiter,
    StepRenegotiation,
    gold_rush,
    sla_skewed_cluster,
)
from repro.streams import FleetRunner

CAPACITY = 24e6

CUSTOM_CLASSES = (
    ServiceClass("gold", weight=4.0, admission_priority=2,
                 min_quality=0.4, target_quality=0.9, preempt=True),
    ServiceClass("bronze", weight=1.0, admission_priority=0,
                 min_quality=0.1, target_quality=0.45),
)


def assert_values_equal(mine, theirs):
    assert len(mine) == len(theirs)
    for x, y in zip(mine, theirs):
        if isinstance(x, float) and math.isnan(x):
            assert isinstance(y, float) and math.isnan(y)
        else:
            assert x == y


def assert_summaries_equal(mine, theirs):
    assert mine.keys() == theirs.keys()
    assert_values_equal(list(mine.values()), list(theirs.values()))


def assert_breakdowns_equal(mine, theirs):
    assert mine.keys() == theirs.keys()
    for name in mine:
        assert_summaries_equal(mine[name], theirs[name])


class TestFleetSlaEquivalence:
    KWARGS = {"bronze": 6, "gold": 3, "crowd_round": 2, "frames": 5,
              "scale": 27}

    def test_standard_catalog(self):
        served = serve(ServingSpec.from_dict({
            "scenario": {"name": "gold-rush", "kwargs": self.KWARGS},
            "capacity": CAPACITY,
            "arbiter": "sla-quality-fair",
            "admission": {"name": "priority", "kwargs": {"queue_limit": 2}},
            "renegotiation": {"name": "step", "kwargs": {"patience": 2}},
        }))
        direct = FleetRunner(
            CAPACITY,
            SlaQualityFairArbiter(),
            PriorityAdmissionController(CAPACITY, queue_limit=2),
            renegotiation=StepRenegotiation(patience=2),
        ).run(gold_rush(**self.KWARGS))
        assert_summaries_equal(served.raw.summary(), direct.summary())
        assert_values_equal(
            served.raw.per_stream_quality(), direct.per_stream_quality()
        )
        assert_breakdowns_equal(served.raw.per_class(), direct.per_class())

    def test_custom_classes_from_json(self):
        spec = ServingSpec.from_dict({
            "scenario": {"name": "gold-rush", "kwargs": self.KWARGS},
            "capacity": CAPACITY,
            "arbiter": "sla-quality-fair",
            "admission": "priority",
            "renegotiation": "step",
            "service_classes": [c.to_dict() for c in CUSTOM_CLASSES],
        })
        # the JSON document round-trips losslessly
        assert ServingSpec.from_json(spec.to_json()) == spec
        served = serve(spec)
        direct = FleetRunner(
            CAPACITY,
            SlaQualityFairArbiter(classes=CUSTOM_CLASSES),
            PriorityAdmissionController(CAPACITY, classes=CUSTOM_CLASSES),
            service_classes=CUSTOM_CLASSES,
            renegotiation=StepRenegotiation(),
        ).run(gold_rush(**self.KWARGS))
        assert_summaries_equal(served.raw.summary(), direct.summary())
        assert_values_equal(
            served.raw.per_stream_quality(), direct.per_stream_quality()
        )
        assert_breakdowns_equal(served.raw.per_class(), direct.per_class())


class TestClusterSlaEquivalence:
    KWARGS = {"streams": 8, "shards": 3, "frames": 4}

    def test_sla_cluster_stack(self):
        served = serve(ServingSpec.from_dict({
            "topology": "cluster",
            "scenario": {"name": "sla-skewed-cluster", "kwargs": self.KWARGS},
            "arbiter": "sla-quality-fair",
            "admission": "priority",
            "placement": "sla-aware",
            "migration": "sla-aware",
            "renegotiation": "step",
        }))
        direct = ClusterRunner(
            placement=SlaPlacement(),
            migration=SlaMigration(),
            arbiter=SlaQualityFairArbiter(),
            admission=True,
            admission_factory=lambda capacity: PriorityAdmissionController(
                capacity
            ),
            renegotiation=StepRenegotiation(),
        ).run(sla_skewed_cluster(**self.KWARGS))
        assert_summaries_equal(served.raw.summary(), direct.summary())
        assert_values_equal(
            served.raw.per_stream_quality(), direct.per_stream_quality()
        )
        assert_breakdowns_equal(served.raw.per_class(), direct.per_class())
        assert served.raw.migrations == direct.migrations
        for mine, theirs in zip(
            served.raw.shard_results, direct.shard_results
        ):
            assert_summaries_equal(mine.summary(), theirs.summary())


class TestNoOpObserversChangeNothing:
    def test_sla_fleet(self):
        spec = {
            "scenario": {"name": "gold-rush",
                         "kwargs": {"bronze": 4, "gold": 2, "crowd_round": 2,
                                    "frames": 4, "scale": 27}},
            "capacity": 18e6,
            "arbiter": "sla-quality-fair",
            "admission": {"name": "priority", "kwargs": {"queue_limit": 1}},
            "renegotiation": "step",
        }
        bare = serve(spec)
        observed = serve(spec, observers=[RoundObserver(), RoundObserver()])
        assert bare.summary() == observed.summary()
        assert bare.per_stream_quality() == observed.per_stream_quality()
        assert_breakdowns_equal(bare.per_class(), observed.per_class())
