"""ServiceClass declarations: validation, JSON, catalogs, registry."""

import pytest

from repro.errors import ConfigurationError
from repro.serving import SLA_CLASSES, register_service_class
from repro.sla import (
    BRONZE,
    GOLD,
    SILVER,
    STANDARD_CLASSES,
    UNCLASSED,
    ServiceClass,
    class_of,
    resolve_classes,
)


class TestServiceClass:
    def test_round_trips_through_dict(self):
        for cls in STANDARD_CLASSES:
            assert ServiceClass.from_dict(cls.to_dict()) == cls

    def test_standard_catalog_ordering(self):
        # the tiers are ordered in every dimension that matters
        assert GOLD.weight > SILVER.weight > BRONZE.weight
        assert (
            GOLD.admission_priority
            > SILVER.admission_priority
            > BRONZE.admission_priority
        )
        assert GOLD.target_quality > SILVER.target_quality > BRONZE.target_quality
        assert GOLD.min_quality > SILVER.min_quality > BRONZE.min_quality
        assert GOLD.preempt and not BRONZE.preempt

    @pytest.mark.parametrize(
        "bad",
        [
            {"name": ""},
            {"name": "x", "weight": 0.0},
            {"name": "x", "weight": -1.0},
            {"name": "x", "admission_priority": 1.5},
            {"name": "x", "admission_priority": True},
            {"name": "x", "min_quality": -0.1},
            {"name": "x", "target_quality": 1.1},
            {"name": "x", "min_quality": 0.8, "target_quality": 0.5},
            {"name": "x", "preempt": "yes"},
        ],
    )
    def test_invalid_fields_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            ServiceClass.from_dict(bad)

    def test_unknown_and_missing_fields_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown service class"):
            ServiceClass.from_dict({"name": "x", "color": "blue"})
        with pytest.raises(ConfigurationError, match="needs a 'name'"):
            ServiceClass.from_dict({"weight": 2.0})


class TestResolveClasses:
    def test_none_is_the_standard_catalog(self):
        catalog = resolve_classes(None)
        assert set(catalog) == {"gold", "silver", "bronze"}
        assert catalog["gold"] == GOLD

    def test_accepts_names_dicts_and_instances(self):
        custom = ServiceClass("platinum", weight=5.0, admission_priority=9)
        catalog = resolve_classes(
            ["gold", {"name": "basic", "weight": 0.5}, custom]
        )
        assert catalog["gold"] == GOLD
        assert catalog["basic"].weight == 0.5
        assert catalog["platinum"] is custom

    def test_accepts_a_mapping(self):
        catalog = resolve_classes({"gold": GOLD, "bronze": BRONZE})
        assert set(catalog) == {"gold", "bronze"}

    def test_mapping_alias_keys_rejected(self):
        # an alias key would never match a stream's service_class, so
        # the tier would silently degrade to UNCLASSED — refuse it
        with pytest.raises(ConfigurationError, match="alias"):
            resolve_classes({"premium": GOLD})

    def test_duplicates_and_empties_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            resolve_classes(["gold", "gold"])
        with pytest.raises(ConfigurationError, match="empty"):
            resolve_classes([])
        with pytest.raises(ConfigurationError, match="unknown service class"):
            resolve_classes(["no-such-tier"])

    def test_class_of_falls_back_to_unclassed(self):
        catalog = resolve_classes(None)
        assert class_of(catalog, "gold") == GOLD
        assert class_of(catalog, None) == UNCLASSED
        assert class_of(catalog, "mystery") == UNCLASSED
        # the neutral fallback never preempts and pulls full-scale
        assert not UNCLASSED.preempt
        assert UNCLASSED.target_quality == 1.0


class TestRegistry:
    def test_standard_classes_registered(self):
        assert SLA_CLASSES.names() == ["bronze", "gold", "silver"]
        assert SLA_CLASSES.create("gold") == GOLD

    def test_register_custom_class(self):
        cls = ServiceClass("test-tier", weight=2.0)
        register_service_class(cls)
        try:
            assert SLA_CLASSES.create("test-tier") == cls
            assert resolve_classes(["test-tier"])["test-tier"] == cls
        finally:
            SLA_CLASSES.unregister("test-tier")

    def test_register_rejects_non_classes(self):
        with pytest.raises(ConfigurationError, match="ServiceClass"):
            register_service_class({"name": "oops"})
