"""SLA arbitration: class weights and targets steer the surplus."""

import math

import pytest

from repro.sla import ServiceClass, SlaQualityFairArbiter, SlaWeightedArbiter
from repro.streams.arbiter import CapacityRequest

CAPACITY = 100.0


def request(stream_id, service_class, quality=0.3, target=math.nan,
            demand=10.0, weight=1.0):
    return CapacityRequest(
        stream_id=stream_id,
        demand=demand,
        weight=weight,
        recent_quality=quality,
        service_class=service_class,
        target_quality=target,
    )


class TestSlaWeighted:
    def test_class_weight_scales_the_share(self):
        arbiter = SlaWeightedArbiter(floor_share=0.0)
        grants = arbiter.allocate(
            [request("g", "gold"), request("b", "bronze")], CAPACITY
        )
        # gold weight 3.0 vs bronze 1.0, identical demand
        assert grants["g"] == pytest.approx(3.0 * grants["b"])
        assert sum(grants.values()) == pytest.approx(CAPACITY)

    def test_unclassed_streams_get_neutral_weight(self):
        arbiter = SlaWeightedArbiter(floor_share=0.0)
        grants = arbiter.allocate(
            [request("u", None), request("b", "bronze")], CAPACITY
        )
        assert grants["u"] == pytest.approx(grants["b"])

    def test_conservation_with_floor(self):
        arbiter = SlaWeightedArbiter(floor_share=0.5)
        grants = arbiter.allocate(
            [request("g", "gold"), request("b", "bronze")], CAPACITY
        )
        assert sum(grants.values()) == pytest.approx(CAPACITY)
        # the floor guarantees bronze at least half its equal share
        assert grants["b"] >= 0.5 * CAPACITY / 2


class TestSlaQualityFair:
    def test_gold_below_target_outpulls_bronze_below_target(self):
        arbiter = SlaQualityFairArbiter(floor_share=0.0)
        # both at the same delivered quality; gold's target (0.85) is
        # further away than bronze's (0.5) AND its class weight is 3x
        grants = arbiter.allocate(
            [request("g", "gold", quality=0.4),
             request("b", "bronze", quality=0.4)],
            CAPACITY,
        )
        assert grants["g"] > 2 * grants["b"]

    def test_stream_above_its_target_yields_surplus(self):
        arbiter = SlaQualityFairArbiter(floor_share=0.0)
        grants = arbiter.allocate(
            [request("done", "bronze", quality=0.9),
             request("hungry", "bronze", quality=0.1)],
            CAPACITY,
        )
        assert grants["hungry"] > 5 * grants["done"]

    def test_renegotiated_target_overrides_class_target(self):
        arbiter = SlaQualityFairArbiter(floor_share=0.0)
        # same class, same quality; the renegotiated-down stream
        # (target 0.4, nearly met) should pull far less than the one
        # still holding the class contract
        grants = arbiter.allocate(
            [request("stepped", "gold", quality=0.35, target=0.4),
             request("contract", "gold", quality=0.35)],
            CAPACITY,
        )
        assert grants["contract"] > grants["stepped"]

    def test_custom_catalog(self):
        vip = ServiceClass("vip", weight=10.0, target_quality=1.0)
        arbiter = SlaQualityFairArbiter(floor_share=0.0, classes=[vip, "bronze"])
        grants = arbiter.allocate(
            [request("v", "vip", quality=0.3),
             request("b", "bronze", quality=0.3)],
            CAPACITY,
        )
        assert grants["v"] > grants["b"]

    def test_nan_quality_treated_as_maximally_deficient(self):
        arbiter = SlaQualityFairArbiter(floor_share=0.0)
        grants = arbiter.allocate(
            [request("new", "bronze", quality=math.nan),
             request("old", "bronze", quality=0.45)],
            CAPACITY,
        )
        assert grants["new"] > grants["old"]
