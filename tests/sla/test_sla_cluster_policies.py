"""SLA placement/migration: gold gets comfort and first claim."""

from repro.cluster.migration import QueueRebalanceMigration
from repro.cluster.runner import build_shards
from repro.experiments.configs import scaled_config
from repro.sla import SlaMigration, SlaPlacement, sla_skewed_cluster
from repro.sla.scenarios import gold_rush, sla_churn
from repro.streams.admission import qmin_demand
from repro.streams.scenarios import StreamSpec


def small_config(seed=1, frames=5):
    return scaled_config(scale=27, seed=seed, frames=frames)


def spec(name, service_class, seed=1):
    return StreamSpec(name, 0, small_config(seed=seed), service_class=service_class)


def two_shards(small=12e6, big=48e6):
    return build_shards([small, big])


class TestSlaPlacement:
    def test_gold_takes_the_comfortable_shard(self):
        placement = SlaPlacement()
        shards = two_shards()
        chosen = placement.choose(spec("g", "gold"), shards, 0)
        # projected share is biggest on the big shard
        assert chosen.shard_id == shards[1].shard_id

    def test_bronze_packs_the_tight_shard(self):
        placement = SlaPlacement()
        shards = two_shards()
        chosen = placement.choose(spec("b", "bronze"), shards, 0)
        # best-fit: tightest accepting headroom preserves the big hole
        assert chosen.shard_id == shards[0].shard_id

    def test_silver_is_premium_by_default(self):
        placement = SlaPlacement()
        shards = two_shards()
        assert (
            placement.choose(spec("s", "silver"), shards, 0).shard_id
            == shards[1].shard_id
        )
        # raising the threshold demotes silver to packing
        strict = SlaPlacement(premium_priority=2)
        assert (
            strict.choose(spec("s2", "silver"), shards, 0).shard_id
            == shards[0].shard_id
        )

    def test_unclassed_streams_pack(self):
        placement = SlaPlacement()
        shards = two_shards()
        assert (
            placement.choose(spec("u", None), shards, 0).shard_id
            == shards[0].shard_id
        )


class TestSlaMigration:
    def _queued_setup(self):
        """A source whose queue holds bronze-then-gold, and a dest with
        headroom for exactly one of them."""
        demand = qmin_demand(small_config())
        source, dest = build_shards([1.4 * demand, 1.5 * demand])
        keeper_src = spec("keeper-src", "bronze", seed=9)
        keeper_dst = spec("keeper-dst", "bronze", seed=8)
        assert source.offer(keeper_src, 0).value == "accepted"
        assert dest.offer(keeper_dst, 0).value == "accepted"
        # both queue at the source (only ~0.4 demand headroom left)
        assert source.offer(spec("q-bronze", "bronze", seed=2), 0).value == "queued"
        assert source.offer(spec("q-gold", "gold", seed=3), 0).value == "queued"
        # free the destination: one slot opens
        dest.detach("keeper-dst")
        return source, dest

    def test_gold_claims_the_queue_headroom_first(self):
        source, dest = self._queued_setup()
        moves = SlaMigration().plan([source, dest], 1)
        queued = [m for m in moves if m.kind == "queued"]
        assert [m.stream_id for m in queued] == ["q-gold"]

    def test_plain_rebalance_would_move_bronze_instead(self):
        source, dest = self._queued_setup()
        moves = QueueRebalanceMigration().plan([source, dest], 1)
        queued = [m for m in moves if m.kind == "queued"]
        assert [m.stream_id for m in queued] == ["q-bronze"]

    def test_active_candidates_ordered_by_priority(self):
        shards = build_shards([60e6], admission=False)
        shard = shards[0]
        shard.offer(spec("b", "bronze", seed=1), 0)
        shard.offer(spec("g", "gold", seed=2), 0)
        shard.offer(spec("s", "silver", seed=3), 0)
        order = [
            shard.spec_of[session.stream_id].service_class
            for session in SlaMigration()._active_candidates(shard)
        ]
        assert order == ["gold", "silver", "bronze"]


class TestSlaScenarios:
    def test_sla_churn_assigns_the_class_cycle(self):
        scenario = sla_churn(rate=1.0, horizon=6, seed=5, initial=2)
        classes = [s.service_class for s in scenario.specs]
        assert set(classes) <= {"gold", "silver", "bronze"}
        assert "gold" in classes and "bronze" in classes
        # deterministic under a fixed seed
        again = sla_churn(rate=1.0, horizon=6, seed=5, initial=2)
        assert again.specs == scenario.specs

    def test_gold_rush_layers_gold_over_bronze(self):
        scenario = gold_rush(bronze=4, gold=2, crowd_round=3, frames=5)
        bronze = [s for s in scenario.specs if s.service_class == "bronze"]
        gold = [s for s in scenario.specs if s.service_class == "gold"]
        assert len(bronze) == 4 and len(gold) == 2
        assert all(s.arrival_round == 0 for s in bronze)
        assert all(s.arrival_round == 3 for s in gold)

    def test_sla_skewed_cluster_keeps_the_skew(self):
        scenario = sla_skewed_cluster(streams=8, shards=3, frames=4)
        assert scenario.shard_count == 3
        assert scenario.shard_capacities[0] > scenario.shard_capacities[-1]
        assert all(
            s.service_class in {"gold", "silver", "bronze"}
            for s in scenario.arrivals.specs
        )
