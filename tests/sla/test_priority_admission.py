"""Priority admission: class-ordered queues, queued-spec preemption."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.configs import scaled_config
from repro.sla import PriorityAdmissionController, ServiceClass
from repro.streams.admission import AdmissionDecision, qmin_demand
from repro.streams.scenarios import StreamSpec


def small_config(seed=1, frames=5):
    return scaled_config(scale=27, seed=seed, frames=frames)


def spec(name, service_class, seed=1):
    return StreamSpec(name, 0, small_config(seed=seed), service_class=service_class)


def tight_controller(**kwargs):
    """Room for exactly one qmin stream: everybody else queues."""
    config = small_config()
    return PriorityAdmissionController(
        capacity=1.5 * qmin_demand(config), **kwargs
    )


class TestPriorityDrain:
    def test_gold_drains_before_earlier_bronze(self):
        controller = tight_controller()
        first = spec("keeper", "bronze", seed=9)
        assert controller.offer(first).decision is AdmissionDecision.ACCEPTED
        b = spec("waiting-bronze", "bronze", seed=2)
        g = spec("waiting-gold", "gold", seed=3)
        assert controller.offer(b).decision is AdmissionDecision.QUEUED
        assert controller.offer(g).decision is AdmissionDecision.QUEUED
        controller.release(first.config)
        admitted = controller.admit_queued()
        # gold queued later but drains first
        assert [s.name for s in admitted] == ["waiting-gold"]
        controller.release(g.config)
        assert [s.name for s in controller.admit_queued()] == ["waiting-bronze"]

    def test_fifo_within_a_priority(self):
        controller = tight_controller()
        keeper = spec("keeper", "bronze", seed=9)
        controller.offer(keeper)
        early = spec("early-gold", "gold", seed=2)
        late = spec("late-gold", "gold", seed=3)
        controller.offer(early)
        controller.offer(late)
        controller.release(keeper.config)
        assert [s.name for s in controller.admit_queued()] == ["early-gold"]

    def test_highest_priority_head_blocks_the_line(self):
        # strict priority: while the gold head does not fit, feasible
        # bronze behind it must NOT be admitted around it
        config = small_config()
        controller = PriorityAdmissionController(
            capacity=1.5 * qmin_demand(config)
        )
        keeper = spec("keeper", "bronze", seed=9)
        controller.offer(keeper)
        controller.offer(spec("gold-head", "gold", seed=2))
        controller.offer(spec("bronze-tail", "bronze", seed=3))
        # nothing released: no admissions at all
        assert controller.admit_queued(force=True) == []
        assert len(controller.queue) == 2


class TestPreemption:
    def test_gold_evicts_queued_bronze_when_full(self):
        controller = tight_controller(queue_limit=1)
        keeper = spec("keeper", "bronze", seed=9)
        controller.offer(keeper)
        bronze = spec("victim", "bronze", seed=2)
        assert controller.offer(bronze).decision is AdmissionDecision.QUEUED
        verdict = controller.offer(spec("gold", "gold", seed=3))
        assert verdict.decision is AdmissionDecision.QUEUED
        assert [s.name for s in verdict.preempted] == ["victim"]
        assert [s.name for s in controller.queue] == ["gold"]
        assert controller.preempted_count == 1
        # the eviction is the victim's final rejection — counted once
        assert controller.rejected_count == 1

    def test_latest_of_the_lowest_priority_loses(self):
        controller = tight_controller(queue_limit=3)
        controller.offer(spec("keeper", "bronze", seed=9))
        controller.offer(spec("b-old", "bronze", seed=2))
        controller.offer(spec("s-mid", "silver", seed=3))
        controller.offer(spec("b-new", "bronze", seed=4))
        verdict = controller.offer(spec("gold", "gold", seed=5))
        assert [s.name for s in verdict.preempted] == ["b-new"]
        assert [s.name for s in controller.queue] == ["b-old", "s-mid", "gold"]

    def test_no_preemption_without_rights_or_lower_victim(self):
        controller = tight_controller(queue_limit=1)
        controller.offer(spec("keeper", "bronze", seed=9))
        controller.offer(spec("queued-gold", "gold", seed=2))
        # bronze has no preempt right: plain rejection on a full queue
        verdict = controller.offer(spec("bronze", "bronze", seed=3))
        assert verdict.decision is AdmissionDecision.REJECTED
        assert verdict.preempted == ()
        # gold may preempt, but only strictly lower priorities
        verdict = controller.offer(spec("second-gold", "gold", seed=4))
        assert verdict.decision is AdmissionDecision.REJECTED
        assert controller.preempted_count == 0
        assert [s.name for s in controller.queue] == ["queued-gold"]

    def test_running_streams_are_never_preempted(self):
        # an accepted stream's commitment is untouched by any later
        # gold arrival — only the queue is ever evicted
        controller = tight_controller(queue_limit=0)
        keeper = spec("keeper", "bronze", seed=9)
        controller.offer(keeper)
        committed_before = controller.committed
        verdict = controller.offer(spec("gold", "gold", seed=2))
        assert verdict.decision is AdmissionDecision.REJECTED
        assert verdict.preempted == ()
        assert controller.committed == committed_before

    def test_unbounded_queue_never_preempts(self):
        controller = tight_controller()
        controller.offer(spec("keeper", "bronze", seed=9))
        controller.offer(spec("victim", "bronze", seed=2))
        verdict = controller.offer(spec("gold", "gold", seed=3))
        assert verdict.decision is AdmissionDecision.QUEUED
        assert verdict.preempted == ()
        assert controller.preempted_count == 0


class TestCatalogAndReset:
    def test_custom_catalog_controls_priorities(self):
        vip = ServiceClass(
            "vip", weight=2.0, admission_priority=5, preempt=True
        )
        basic = ServiceClass("basic", weight=1.0, admission_priority=0)
        controller = PriorityAdmissionController(
            capacity=1.5 * qmin_demand(small_config()),
            queue_limit=1,
            classes=[vip, basic],
        )
        controller.offer(spec("keeper", "basic", seed=9))
        controller.offer(spec("victim", "basic", seed=2))
        verdict = controller.offer(spec("vip", "vip", seed=3))
        assert [s.name for s in verdict.preempted] == ["victim"]

    def test_unclassed_streams_queue_at_lowest_priority(self):
        controller = tight_controller()
        assert controller.priority_of(spec("x", None)) == 0
        assert not controller.may_preempt(spec("x", None))

    def test_reset_clears_preemption_state(self):
        controller = tight_controller(queue_limit=1)
        controller.offer(spec("keeper", "bronze", seed=9))
        controller.offer(spec("victim", "bronze", seed=2))
        controller.offer(spec("gold", "gold", seed=3))
        assert controller.preempted_count == 1
        controller.reset()
        assert controller.preempted_count == 0
        assert controller.rejected_count == 0
        assert not controller.queue

    def test_queue_limit_zero_still_validates(self):
        with pytest.raises(ConfigurationError):
            PriorityAdmissionController(capacity=1e6, queue_limit=-1)
