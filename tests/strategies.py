"""Hypothesis strategies for randomized core-model instances.

All generated execution times are *integers* (cycle counts, as in the
paper) so that float64 arithmetic is exact and the table-driven
controller can be required to agree with the reference implementation
bit-for-bit.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core import (
    DeadlineFunction,
    ParameterizedSystem,
    PrecedenceGraph,
    QualityDeadlineTable,
    QualitySet,
    QualityTimeTable,
)


@st.composite
def dags(draw, max_actions: int = 7) -> PrecedenceGraph:
    """Random DAGs: edges only go forward in a random vocabulary order."""
    count = draw(st.integers(min_value=1, max_value=max_actions))
    actions = [f"a{i}" for i in range(count)]
    edges = []
    for i in range(count):
        for j in range(i + 1, count):
            if draw(st.booleans()):
                edges.append((actions[i], actions[j]))
    return PrecedenceGraph.from_edges(edges, actions)


@st.composite
def quality_tables(
    draw, graph: PrecedenceGraph, quality_set: QualitySet, max_time: int = 20
) -> tuple[QualityTimeTable, QualityTimeTable]:
    """Random (Cav, Cwc) tables: non-decreasing in q, Cav <= Cwc."""
    av_entries = {}
    wc_entries = {}
    for action in graph.actions:
        av_base = draw(st.integers(min_value=0, max_value=max_time))
        wc_extra = draw(st.integers(min_value=0, max_value=max_time))
        av_levels = [av_base]
        wc_levels = [av_base + wc_extra]
        for _ in range(len(quality_set) - 1):
            av_step = draw(st.integers(min_value=0, max_value=max_time))
            wc_step = draw(st.integers(min_value=av_step, max_value=2 * max_time))
            av_levels.append(av_levels[-1] + av_step)
            wc_levels.append(wc_levels[-1] + wc_step)
        av_entries[action] = [float(v) for v in av_levels]
        wc_entries[action] = [float(v) for v in wc_levels]
    return (
        QualityTimeTable(quality_set, av_entries),
        QualityTimeTable(quality_set, wc_entries),
    )


@st.composite
def feasible_systems(draw, max_actions: int = 6, max_levels: int = 4) -> ParameterizedSystem:
    """Random systems guaranteed feasible at qmin under worst-case times.

    The uniform cycle budget is drawn at or above the qmin worst-case
    total load, so the Problem precondition always holds.
    """
    graph = draw(dags(max_actions=max_actions))
    level_count = draw(st.integers(min_value=1, max_value=max_levels))
    quality_set = QualitySet.from_range(level_count)
    average, worst = draw(quality_tables(graph, quality_set))
    qmin = quality_set.qmin
    wc_total = sum(worst.time(a, qmin) for a in graph.actions)
    headroom = draw(st.integers(min_value=0, max_value=100))
    budget = float(wc_total + headroom)
    deadlines = QualityDeadlineTable.quality_independent(
        quality_set, DeadlineFunction.uniform(graph.actions, budget)
    )
    return ParameterizedSystem(graph, quality_set, average, worst, deadlines)


@st.composite
def actual_time_fractions(draw, count: int) -> list[float]:
    """Per-step fractions in [0, 1] placing actual times in [0, Cwc]."""
    return [
        draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
        for _ in range(count)
    ]
