"""Tests for repro.video.ratecontrol and repro.video.buffering."""

import pytest

from repro.errors import ConfigurationError
from repro.video.buffering import FrameBuffer
from repro.video.ratecontrol import RateControlConfig, VirtualBufferRateController


class TestRateControlConfig:
    def test_target_bits_per_frame(self):
        config = RateControlConfig(bitrate=1_100_000.0, fps=25.0)
        assert config.target_bits_per_frame == 44_000.0

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigurationError):
            RateControlConfig(bitrate=0.0)
        with pytest.raises(ConfigurationError):
            RateControlConfig(reaction=0.0)
        with pytest.raises(ConfigurationError):
            RateControlConfig(min_allocation_fraction=2.0, max_allocation_fraction=1.0)


class TestVirtualBufferRateController:
    def test_nominal_allocation_equals_target(self):
        controller = VirtualBufferRateController()
        assert controller.allocate() == controller.target

    def test_overspending_reduces_next_allocation(self):
        controller = VirtualBufferRateController()
        controller.commit(controller.target * 2)
        assert controller.allocate() < controller.target

    def test_underspending_raises_next_allocation(self):
        controller = VirtualBufferRateController()
        controller.commit(controller.target * 0.2)
        assert controller.allocate() > controller.target

    def test_skip_frees_almost_a_full_frame_of_bits(self):
        controller = VirtualBufferRateController()
        controller.commit_skip()
        boost = controller.allocate() - controller.target
        expected = controller.config.reaction * (
            controller.target - controller.config.skip_flag_bits
        )
        assert boost == pytest.approx(expected)

    def test_iframe_boost(self):
        controller = VirtualBufferRateController()
        assert controller.allocate(is_iframe=True) == pytest.approx(
            2.0 * controller.target
        )

    def test_allocation_clamped(self):
        controller = VirtualBufferRateController()
        for _ in range(50):
            controller.commit(controller.target * 3)  # massive overspend
        assert controller.allocate() >= 0.3 * controller.target
        for _ in range(100):
            controller.commit_skip()
        assert controller.allocate() <= 3.0 * controller.target

    def test_long_run_converges_to_bitrate(self):
        """Closed loop: spending what is allocated tracks the target rate."""
        controller = VirtualBufferRateController()
        for _ in range(500):
            controller.commit(controller.allocate())
        achieved = controller.achieved_bitrate()
        assert achieved == pytest.approx(controller.config.bitrate, rel=0.02)

    def test_negative_spend_rejected(self):
        with pytest.raises(ConfigurationError):
            VirtualBufferRateController().commit(-1.0)


class TestFrameBuffer:
    def test_push_pop_fifo(self):
        buffer = FrameBuffer(capacity=2)
        assert buffer.try_push("f0")
        assert buffer.try_push("f1")
        assert buffer.pop() == "f0"
        assert buffer.pop() == "f1"

    def test_overflow_drops_and_counts(self):
        buffer = FrameBuffer(capacity=1)
        assert buffer.try_push("f0")
        assert not buffer.try_push("f1")
        assert buffer.dropped == 1
        assert buffer.accepted == 1
        assert len(buffer) == 1

    def test_peek_does_not_remove(self):
        buffer = FrameBuffer(capacity=1)
        buffer.try_push("f0")
        assert buffer.peek() == "f0"
        assert len(buffer) == 1

    def test_flags(self):
        buffer = FrameBuffer(capacity=1)
        assert buffer.empty and not buffer.full
        buffer.try_push("x")
        assert buffer.full and not buffer.empty

    def test_pop_empty_raises(self):
        with pytest.raises(ConfigurationError):
            FrameBuffer(capacity=1).pop()
        with pytest.raises(ConfigurationError):
            FrameBuffer(capacity=1).peek()

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            FrameBuffer(capacity=0)

    def test_clear(self):
        buffer = FrameBuffer(capacity=3)
        buffer.try_push("a")
        buffer.clear()
        assert buffer.empty
