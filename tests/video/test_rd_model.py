"""Tests for repro.video.rd_model: PSNR monotonicities and bands."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.video.content import FrameContent
from repro.video.rd_model import RateDistortionModel

PIXELS = 720 * 576
BITS = 44_000.0


def frame(motion=0.4, texture=400.0, iframe=False, index=0):
    return FrameContent(
        index=index,
        sequence=0,
        frame_in_sequence=index,
        is_scene_start=iframe,
        motion_activity=motion,
        texture_variance=texture,
    )


@pytest.fixture
def model():
    return RateDistortionModel()


class TestMonotonicities:
    def test_psnr_increases_with_quality(self, model):
        psnrs = [model.encoded_psnr(frame(), q, BITS, PIXELS) for q in range(8)]
        assert all(a < b for a, b in zip(psnrs, psnrs[1:]))

    def test_quality_gain_saturates(self, model):
        gains = [model.quality_gain(q) for q in range(8)]
        first_step = gains[1] - gains[0]
        last_step = gains[7] - gains[6]
        assert first_step > last_step > 0

    def test_psnr_increases_with_bits(self, model):
        low = model.encoded_psnr(frame(), 3, BITS / 2, PIXELS)
        high = model.encoded_psnr(frame(), 3, BITS * 2, PIXELS)
        assert high > low

    def test_psnr_decreases_with_motion(self, model):
        calm = model.encoded_psnr(frame(motion=0.1), 3, BITS, PIXELS)
        wild = model.encoded_psnr(frame(motion=0.9), 3, BITS, PIXELS)
        assert calm > wild

    def test_psnr_decreases_with_texture(self, model):
        flat = model.encoded_psnr(frame(texture=200.0), 3, BITS, PIXELS)
        busy = model.encoded_psnr(frame(texture=600.0), 3, BITS, PIXELS)
        assert flat > busy

    def test_quality_matters_more_at_high_motion(self, model):
        """MC efficiency degrades with motion, so q buys more there."""
        calm_gap = (
            model.encoded_psnr(frame(motion=0.1), 7, BITS, PIXELS)
            - model.encoded_psnr(frame(motion=0.1), 1, BITS, PIXELS)
        )
        wild_gap = (
            model.encoded_psnr(frame(motion=0.9), 7, BITS, PIXELS)
            - model.encoded_psnr(frame(motion=0.9), 1, BITS, PIXELS)
        )
        assert wild_gap > 0
        assert calm_gap > 0


class TestBands:
    def test_operating_point_in_paper_band(self, model):
        """q3 at the paper's bitrate lands in the 30-44 dB band of Fig. 8."""
        for motion in (0.2, 0.4, 0.8):
            psnr = model.encoded_psnr(frame(motion=motion), 3, BITS, PIXELS)
            assert 30.0 < psnr < 44.0

    def test_skip_psnr_below_paper_bound(self, model):
        """Skipped frames score below 25 dB (paper section 3)."""
        for motion in (0.1, 0.5, 0.9):
            for texture in (300.0, 560.0):
                psnr = model.skip_psnr(frame(motion=motion, texture=texture))
                assert psnr < 25.0

    def test_skip_psnr_decreases_with_motion(self, model):
        assert model.skip_psnr(frame(motion=0.2)) > model.skip_psnr(frame(motion=0.9))

    def test_encoded_always_beats_skip(self, model):
        for q in range(8):
            assert (
                model.encoded_psnr(frame(), q, BITS, PIXELS)
                > model.skip_psnr(frame())
            )

    def test_psnr_clamped(self, model):
        absurd = model.encoded_psnr(frame(texture=1e-9), 7, BITS * 100, PIXELS)
        assert absurd <= model.max_psnr


class TestIntraPath:
    def test_iframe_ignores_me_quality(self, model):
        low = model.encoded_psnr(frame(iframe=True), 0, BITS, PIXELS)
        high = model.encoded_psnr(frame(iframe=True), 7, BITS, PIXELS)
        assert low == high

    def test_intra_residual_fraction_applied(self, model):
        content = frame(iframe=True, texture=400.0)
        assert model.residual_variance(content, 3) == pytest.approx(
            400.0 * model.intra_residual_fraction
        )


class TestHelpers:
    def test_per_macroblock_quality_array(self, model):
        mixed = model.encoded_psnr(frame(), np.array([1, 7] * 100), BITS, PIXELS)
        uniform_low = model.encoded_psnr(frame(), 1, BITS, PIXELS)
        uniform_high = model.encoded_psnr(frame(), 7, BITS, PIXELS)
        assert uniform_low < mixed < uniform_high

    def test_quality_for_target_psnr(self, model):
        target = model.encoded_psnr(frame(), 4, BITS, PIXELS)
        q = model.quality_for_target_psnr(frame(), BITS, PIXELS, target - 0.01)
        assert q is not None and q <= 4

    def test_quality_for_unreachable_target(self, model):
        assert model.quality_for_target_psnr(frame(), BITS, PIXELS, 49.9) is None

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            RateDistortionModel(rate_knee_bpp=0.0)
        with pytest.raises(ConfigurationError):
            RateDistortionModel(mc_efficiency_base=0.0)

    def test_rate_factor_rejects_zero_pixels(self, model):
        with pytest.raises(ConfigurationError):
            model.rate_factor(BITS, 0)
