"""Tests for repro.video.content: the synthetic camera benchmark."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.video.content import (
    MotionLoadModel,
    SequenceSpec,
    generate_content,
    macroblock_motion,
    mean_motion,
    paper_benchmark_sequences,
)


class TestBenchmarkLayout:
    def test_582_frames_in_9_sequences(self):
        specs = paper_benchmark_sequences()
        assert len(specs) == 9
        assert sum(s.frames for s in specs) == 582

    def test_two_high_motion_sequences(self):
        specs = paper_benchmark_sequences()
        high = [s for s in specs if s.motion > 0.6]
        assert len(high) == 2

    def test_generated_content_has_nine_scene_starts(self):
        frames = generate_content()
        starts = [f for f in frames if f.is_scene_start]
        assert len(starts) == 9
        assert starts[0].index == 0

    def test_scene_starts_are_iframes(self):
        frames = generate_content()
        for frame in frames:
            assert frame.is_iframe == frame.is_scene_start

    def test_sequence_ids_and_positions(self):
        frames = generate_content()
        specs = paper_benchmark_sequences()
        boundary = specs[0].frames
        assert frames[boundary - 1].sequence == 0
        assert frames[boundary].sequence == 1
        assert frames[boundary].frame_in_sequence == 0


class TestContentStatistics:
    def test_motion_within_bounds(self):
        for frame in generate_content():
            assert 0.0 < frame.motion_activity < 1.0
            assert frame.texture_variance > 0

    def test_high_motion_sequences_have_high_activity(self):
        frames = generate_content()
        by_sequence = {}
        for frame in frames:
            by_sequence.setdefault(frame.sequence, []).append(frame.motion_activity)
        means = {k: np.mean(v) for k, v in by_sequence.items()}
        assert means[3] > 0.6
        assert means[6] > 0.6
        assert means[2] < 0.4

    def test_mean_motion_near_calibration_point(self):
        """The load model is calibrated around the benchmark's mean motion."""
        frames = generate_content()
        motion = mean_motion(frames)
        load = MotionLoadModel()
        assert 0.9 < load.scale(motion) < 1.15

    def test_deterministic_given_seed(self):
        first = generate_content(seed=5)
        second = generate_content(seed=5)
        assert [f.motion_activity for f in first] == [f.motion_activity for f in second]

    def test_different_seeds_differ(self):
        first = generate_content(seed=5)
        second = generate_content(seed=6)
        assert [f.motion_activity for f in first] != [f.motion_activity for f in second]

    def test_motion_is_autocorrelated(self):
        """AR(1) persistence: adjacent frames correlate more than distant."""
        frames = generate_content()
        series = np.array([f.motion_activity for f in frames[:60]])  # one sequence
        adjacent = np.corrcoef(series[:-1], series[1:])[0, 1]
        distant = np.corrcoef(series[:-10], series[10:])[0, 1]
        assert adjacent > distant


class TestValidation:
    def test_bad_sequence_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            SequenceSpec("x", 0, motion=0.5, texture=100.0)
        with pytest.raises(ConfigurationError):
            SequenceSpec("x", 10, motion=1.5, texture=100.0)
        with pytest.raises(ConfigurationError):
            SequenceSpec("x", 10, motion=0.5, texture=-1.0)
        with pytest.raises(ConfigurationError):
            SequenceSpec("x", 10, motion=0.5, texture=100.0, motion_persistence=1.0)

    def test_mean_motion_of_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            mean_motion([])


class TestMacroblockMotion:
    def test_clipped_and_centered(self):
        rng = np.random.default_rng(0)
        values = macroblock_motion(rng, 0.5, 2000)
        assert values.min() >= 0.02
        assert values.max() <= 0.98
        assert abs(values.mean() - 0.5) < 0.02

    def test_load_model_is_affine(self):
        model = MotionLoadModel(base=0.5, slope=1.0)
        assert model.scale(0.0) == 0.5
        assert model.scale(1.0) == 1.5
        scales = model.scales(np.array([0.0, 1.0]))
        assert list(scales) == [0.5, 1.5]
