"""Tests for the pixel-level toy codec — and its agreement with the
analytic rate-distortion model's monotonicities."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.video.pixel.bits import (
    estimate_block_bits,
    estimate_frame_bits,
    estimate_motion_bits,
)
from repro.video.pixel.codec import ToyVideoCodec
from repro.video.pixel.dct import blockwise_dct, blockwise_idct
from repro.video.pixel.motion import (
    SEARCH_RANGES,
    candidates_for_quality,
    motion_compensate,
    motion_search,
)
from repro.video.pixel.quant import dequantize, quantize, step_for_quantizer
from repro.video.psnr import mse, psnr
from repro.video.synthetic import SyntheticScene, generate_scene_frames, generate_video


def rng(seed=0):
    return np.random.default_rng(seed)


class TestPsnr:
    def test_identical_frames_infinite(self):
        frame = rng().integers(0, 255, (16, 16))
        assert psnr(frame, frame) == float("inf")

    def test_known_mse(self):
        a = np.zeros((8, 8))
        b = np.full((8, 8), 10.0)
        assert mse(a, b) == 100.0
        assert psnr(a, b) == pytest.approx(10 * np.log10(255**2 / 100.0))

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            mse(np.zeros((4, 4)), np.zeros((8, 8)))


class TestDct:
    def test_roundtrip_is_identity(self):
        frame = rng().uniform(0, 255, (32, 32))
        assert np.allclose(blockwise_idct(blockwise_dct(frame)), frame)

    def test_constant_block_energy_in_dc(self):
        frame = np.full((8, 8), 100.0)
        coefficients = blockwise_dct(frame)
        assert coefficients[0, 0] == pytest.approx(800.0)  # 100 * 8 (ortho)
        assert np.allclose(coefficients.ravel()[1:], 0.0, atol=1e-9)

    def test_parseval(self):
        frame = rng(1).uniform(-50, 50, (16, 16))
        coefficients = blockwise_dct(frame)
        assert np.sum(frame**2) == pytest.approx(np.sum(coefficients**2))

    def test_bad_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            blockwise_dct(np.zeros((10, 10)))


class TestQuant:
    def test_roundtrip_error_bounded_by_half_step(self):
        values = rng(2).uniform(-100, 100, (8, 8))
        step = 4.0
        recovered = dequantize(quantize(values, step), step)
        assert np.abs(recovered - values).max() <= step / 2 + 1e-9

    def test_finer_step_means_lower_error(self):
        values = rng(3).uniform(-100, 100, (8, 8))
        fine = dequantize(quantize(values, 2.0), 2.0)
        coarse = dequantize(quantize(values, 16.0), 16.0)
        assert mse(values, fine) < mse(values, coarse)

    def test_step_mapping(self):
        assert step_for_quantizer(8) == 16.0
        with pytest.raises(ConfigurationError):
            step_for_quantizer(0)
        with pytest.raises(ConfigurationError):
            quantize(np.zeros((2, 2)), 0.0)


class TestMotionSearch:
    def test_recovers_pure_translation(self):
        reference = rng(4).uniform(0, 255, (48, 48))
        # current[y, x] = reference[y - 2, x + 3]: the best match for a
        # current block sits at displacement (-2, +3) in the reference
        current = np.roll(reference, (2, -3), axis=(0, 1))
        vectors = motion_search(current, reference, quality=4)
        interior = vectors[1:-1, 1:-1]
        assert (interior[..., 0] == -2).all()
        assert (interior[..., 1] == 3).all()

    def test_zero_quality_searches_nothing(self):
        reference = rng(5).uniform(0, 255, (32, 32))
        current = np.roll(reference, 1, axis=0)
        vectors = motion_search(current, reference, quality=0)
        assert (vectors == 0).all()

    def test_prediction_error_decreases_with_quality(self):
        frames = generate_scene_frames(SyntheticScene(motion=0.7), 2, seed=9)
        reference, current = (f.astype(float) for f in frames)
        errors = []
        for q in (0, 2, 4, 7):
            vectors = motion_search(current, reference, q)
            predicted = motion_compensate(reference, vectors)
            errors.append(mse(current, predicted))
        assert errors == sorted(errors, reverse=True)
        assert errors[-1] < errors[0]

    def test_search_cost_grows_with_quality(self):
        counts = [candidates_for_quality(q) for q in range(8)]
        assert counts == sorted(counts)
        assert counts[0] == 1
        assert counts[7] == (2 * SEARCH_RANGES[7] + 1) ** 2

    def test_compensation_uses_vectors(self):
        reference = rng(6).uniform(0, 255, (32, 32))
        vectors = np.zeros((2, 2, 2), dtype=np.int32)
        assert np.array_equal(motion_compensate(reference, vectors), reference)

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            motion_search(np.zeros((32, 32)), np.zeros((16, 16)), 1)
        with pytest.raises(ConfigurationError):
            motion_search(np.zeros((20, 20)), np.zeros((20, 20)), 1)


class TestBits:
    def test_zero_block_costs_only_overhead(self):
        assert estimate_block_bits(np.zeros((8, 8), dtype=int)) == 2.0

    def test_bits_grow_with_energy(self):
        small = estimate_block_bits(np.ones((8, 8), dtype=int))
        large = estimate_block_bits(np.full((8, 8), 100, dtype=int))
        assert large > small

    def test_frame_bits_sum_blocks(self):
        levels = np.zeros((16, 16), dtype=int)
        assert estimate_frame_bits(levels) == 4 * 2.0

    def test_motion_bits(self):
        assert estimate_motion_bits(np.zeros((2, 2, 2))) == 8.0  # 1 bit each


class TestToyCodec:
    @pytest.fixture(scope="class")
    def frames(self):
        return generate_scene_frames(SyntheticScene(motion=0.5, texture=0.5), 4, seed=3)

    def test_first_frame_is_intra(self, frames):
        codec = ToyVideoCodec()
        encoded = codec.encode_frame(frames[0], quality=3)
        assert encoded.is_iframe
        assert encoded.motion_vectors is None

    def test_p_frames_use_prediction(self, frames):
        codec = ToyVideoCodec()
        codec.encode_frame(frames[0], quality=3)
        p_frame = codec.encode_frame(frames[1], quality=3)
        assert not p_frame.is_iframe
        assert p_frame.motion_vectors is not None

    def test_reconstruction_quality_reasonable(self, frames):
        codec = ToyVideoCodec(quantizer=6)
        results = codec.encode_sequence(frames, qualities=4)
        assert all(r.psnr > 28.0 for r in results)

    def test_higher_quality_gives_higher_psnr_and_fewer_bits(self, frames):
        """The analytic model's central monotonicity, on real pixels:
        better motion search -> smaller residual -> better quality AND
        cheaper residual coding at a fixed quantizer."""
        low = ToyVideoCodec(quantizer=8).encode_sequence(frames, qualities=0)
        high = ToyVideoCodec(quantizer=8).encode_sequence(frames, qualities=7)
        low_p = [r for r in low if not r.is_iframe]
        high_p = [r for r in high if not r.is_iframe]
        assert np.mean([r.psnr for r in high_p]) > np.mean([r.psnr for r in low_p])
        assert np.mean([r.bits for r in high_p]) < np.mean([r.bits for r in low_p])

    def test_finer_quantizer_trades_bits_for_psnr(self, frames):
        coarse = ToyVideoCodec(quantizer=16).encode_sequence(frames, qualities=4)
        fine = ToyVideoCodec(quantizer=4).encode_sequence(frames, qualities=4)
        assert np.mean([r.psnr for r in fine]) > np.mean([r.psnr for r in coarse])
        assert np.mean([r.bits for r in fine]) > np.mean([r.bits for r in coarse])

    def test_scene_starts_force_iframes(self, frames):
        codec = ToyVideoCodec()
        results = codec.encode_sequence(frames, qualities=3, scene_starts=[0, 2])
        assert results[0].is_iframe and results[2].is_iframe
        assert not results[1].is_iframe

    def test_quality_count_mismatch_rejected(self, frames):
        with pytest.raises(ConfigurationError):
            ToyVideoCodec().encode_sequence(frames, qualities=[1, 2])

    def test_reset(self, frames):
        codec = ToyVideoCodec()
        codec.encode_frame(frames[0], 3)
        codec.reset()
        assert codec.encode_frame(frames[1], 3).is_iframe


class TestSynthetic:
    def test_dimensions_and_dtype(self):
        frames = generate_scene_frames(SyntheticScene(), 3, seed=1)
        assert len(frames) == 3
        assert frames[0].shape == (96, 96)
        assert frames[0].dtype == np.uint8

    def test_motion_parameter_moves_pixels(self):
        calm = generate_scene_frames(SyntheticScene(motion=0.0), 2, seed=2)
        wild = generate_scene_frames(SyntheticScene(motion=1.0), 2, seed=2)
        calm_delta = mse(calm[0], calm[1])
        wild_delta = mse(wild[0], wild[1])
        assert wild_delta > calm_delta

    def test_video_concatenates_scenes(self):
        frames, starts = generate_video(
            [SyntheticScene(motion=0.2), SyntheticScene(motion=0.8)], 3, seed=4
        )
        assert len(frames) == 6
        assert starts == [0, 3]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SyntheticScene(width=20)
        with pytest.raises(ConfigurationError):
            SyntheticScene(motion=2.0)
        with pytest.raises(ConfigurationError):
            generate_scene_frames(SyntheticScene(), 0)
