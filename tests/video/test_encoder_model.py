"""Tests for repro.video.encoder_model: the analytic frame encoder."""

import numpy as np
import pytest

from repro.video.content import FrameContent
from repro.video.encoder_model import AnalyticEncoder, FrameOutcome
from repro.video.ratecontrol import VirtualBufferRateController


def frame(index=0, motion=0.4, iframe=False):
    return FrameContent(
        index=index,
        sequence=0,
        frame_in_sequence=index,
        is_scene_start=iframe,
        motion_activity=motion,
        texture_variance=400.0,
    )


@pytest.fixture
def encoder():
    return AnalyticEncoder(rng=np.random.default_rng(3), bits_noise=0.0)


class TestEncodeFrame:
    def test_outcome_fields(self, encoder):
        outcome = encoder.encode_frame(frame(), qualities=3)
        assert isinstance(outcome, FrameOutcome)
        assert not outcome.skipped
        assert outcome.mean_quality == 3.0
        assert outcome.bits > 0
        assert 12.0 < outcome.psnr < 50.0

    def test_rate_controller_committed(self, encoder):
        before = encoder.rate_controller.frames_committed
        encoder.encode_frame(frame(), qualities=3)
        assert encoder.rate_controller.frames_committed == before + 1

    def test_per_macroblock_qualities_averaged(self, encoder):
        outcome = encoder.encode_frame(frame(), qualities=np.array([2, 4, 6]))
        assert outcome.mean_quality == 4.0

    def test_bits_noise_perturbs_spending(self):
        noisy = AnalyticEncoder(rng=np.random.default_rng(1), bits_noise=0.2)
        outcomes = {noisy.encode_frame(frame(i), 3).bits for i in range(5)}
        assert len(outcomes) == 5  # all different

    def test_quality_improves_psnr(self, encoder):
        low = encoder.encode_frame(frame(0), qualities=1)
        high = encoder.encode_frame(frame(1), qualities=7)
        assert high.psnr > low.psnr


class TestSkipFrame:
    def test_skip_outcome(self, encoder):
        outcome = encoder.skip_frame(frame())
        assert outcome.skipped
        assert outcome.psnr < 25.0
        assert np.isnan(outcome.mean_quality)

    def test_skip_frees_bits_for_the_next_frame(self):
        """The paper's observation behind Figs. 8/9."""
        with_skip = AnalyticEncoder(
            rate_controller=VirtualBufferRateController(),
            rng=np.random.default_rng(0),
            bits_noise=0.0,
        )
        without_skip = AnalyticEncoder(
            rate_controller=VirtualBufferRateController(),
            rng=np.random.default_rng(0),
            bits_noise=0.0,
        )
        with_skip.skip_frame(frame(0))
        without_skip.encode_frame(frame(0), 3)
        after_skip = with_skip.encode_frame(frame(1), 3)
        after_encode = without_skip.encode_frame(frame(1), 3)
        assert after_skip.bits > after_encode.bits
        assert after_skip.psnr > after_encode.psnr

    def test_invalid_pixels_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            AnalyticEncoder(pixels=0)
