"""Tests for repro.video.pipeline: the Fig. 2 graph and Fig. 5 tables."""

import pytest

from repro.video.pipeline import (
    COMPRESS_ACTION,
    DEFAULT_MACROBLOCKS,
    ENCODER_QUALITY_LEVELS,
    FIXED_ACTION_TIMES,
    GRAB_ACTION,
    MACROBLOCK_ACTIONS,
    ME_ACTION,
    MOTION_ESTIMATE_TIMES,
    RECONSTRUCT_ACTION,
    macroblock_application,
    macroblock_graph,
    paper_timing_tables,
    per_macroblock_average_load,
    per_macroblock_worst_load,
)


class TestGraph:
    def test_nine_actions(self):
        graph = macroblock_graph()
        assert len(graph) == 9
        assert set(graph.actions) == set(MACROBLOCK_ACTIONS)

    def test_grab_is_the_only_source(self):
        assert macroblock_graph().sources() == (GRAB_ACTION,)

    def test_sinks_are_bitstream_and_reconstruction(self):
        assert set(macroblock_graph().sinks()) == {COMPRESS_ACTION, RECONSTRUCT_ACTION}

    def test_me_before_dct(self):
        graph = macroblock_graph()
        order = graph.topological_order()
        assert order.index(ME_ACTION) < order.index("Discrete_Cosine_Transform")

    def test_vocabulary_order_is_a_valid_schedule(self):
        graph = macroblock_graph()
        assert graph.is_schedule(list(MACROBLOCK_ACTIONS))


class TestFig5Tables:
    def test_published_me_values(self):
        # spot checks against the printed Fig. 5
        assert MOTION_ESTIMATE_TIMES[0] == (215.0, 1_000.0)
        assert MOTION_ESTIMATE_TIMES[3] == (95_000.0, 350_000.0)
        assert MOTION_ESTIMATE_TIMES[7] == (200_000.0, 1_500_000.0)

    def test_published_fixed_values(self):
        assert FIXED_ACTION_TIMES["Grab_Macro_Block"] == (12_000.0, 24_000.0)
        assert FIXED_ACTION_TIMES["Compress"] == (5_000.0, 50_000.0)
        assert FIXED_ACTION_TIMES["Discrete_Cosine_Transform"] == (16_000.0, 16_000.0)

    def test_tables_validate_definition_2_3(self):
        average, worst = paper_timing_tables()
        from repro.core.timing import QualityTimeTable

        QualityTimeTable.validate_bounds(average, worst)

    def test_only_motion_estimate_is_quality_sensitive(self):
        average, worst = paper_timing_tables()
        for action in MACROBLOCK_ACTIONS:
            sensitive = average.depends_on_quality(action) or worst.depends_on_quality(action)
            assert sensitive == (action == ME_ACTION)

    def test_per_macroblock_loads(self):
        # fixed actions sum: 12+16+6+4+5+4+20+10 = 77 kcycles
        assert per_macroblock_average_load(0) == 77_000.0 + 215.0
        assert per_macroblock_average_load(3) == 77_000.0 + 95_000.0
        assert per_macroblock_worst_load(0) == 175_000.0 + 1_000.0


class TestApplication:
    def test_default_macroblock_count_matches_pal_sd(self):
        assert DEFAULT_MACROBLOCKS == (720 // 16) * (576 // 16)

    def test_paper_operating_points(self):
        """The DESIGN.md 3.3 calibration: q3 ~87 %, q4 ~95 % of P."""
        period = 320e6
        app = macroblock_application()
        assert app.average_cycle_load(3) / period == pytest.approx(0.87, abs=0.02)
        assert app.average_cycle_load(4) / period == pytest.approx(0.95, abs=0.02)
        # q5 is the last level that fits on average; q6 overloads
        assert app.average_cycle_load(5) <= period
        assert app.average_cycle_load(6) > period

    def test_qmin_worst_case_fits_the_period(self):
        """The Problem precondition holds for the paper's deployment."""
        app = macroblock_application()
        assert app.worst_cycle_load(0) <= 320e6

    def test_static_wcet_design_point_is_q0(self):
        """Classic WCET design caps at q=0 — the paper's motivation.

        Already q=1's worst-case frame load is 139 % of P; a designer
        forced to guarantee deadlines from Cwc alone must ship minimum
        quality and waste ~60 % of the budget on average.
        """
        app = macroblock_application()
        assert app.max_sustainable_quality(320e6, worst_case=True) == 0
        assert app.worst_cycle_load(1) > 320e6

    def test_small_application_system_validates(self):
        app = macroblock_application(macroblocks=10)
        system = app.system(budget=320e6 * 10 / 1620)
        assert system.is_valid()
        assert system.supports_precomputed_schedule()
