"""Tests for repro.experiments: paper constants and configurations."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.configs import (
    benchmark_config,
    full_config,
    scaled_config,
    tiny_config,
)
from repro.experiments.paper_data import PAPER


class TestPaperConstants:
    def test_section3_setup(self):
        assert PAPER.period == 320e6
        assert PAPER.frames == 582
        assert PAPER.sequences == 9
        assert PAPER.bitrate == 1.1e6
        assert PAPER.fps == 25.0
        assert PAPER.target_bits_per_frame == 44_000.0

    def test_period_consistent_with_clock_and_fps(self):
        """25 fps at 8 GHz is exactly 320 Mcycles per frame."""
        assert PAPER.clock_hz / PAPER.fps == PAPER.period

    def test_reported_overheads(self):
        assert PAPER.code_size_overhead == 0.02
        assert PAPER.memory_overhead == 0.01
        assert PAPER.runtime_overhead == 0.015

    def test_design_point_calibration(self):
        """DESIGN.md 3.3: q3 ~87 %, q4 ~95 %, q5 last fitting level."""
        assert PAPER.average_utilization(3) == pytest.approx(0.871, abs=0.005)
        assert PAPER.average_utilization(4) == pytest.approx(0.947, abs=0.005)
        assert PAPER.average_utilization(5) < 1.0
        assert PAPER.average_utilization(6) > 1.0

    def test_frame_loads_scale_with_macroblocks(self):
        assert PAPER.average_frame_load(3) == 1620 * 172_000.0
        assert PAPER.worst_frame_load(0) == 1620 * 176_000.0


class TestConfigs:
    def test_full_config_matches_paper(self):
        config = full_config()
        assert config.period == PAPER.period
        assert config.macroblocks == PAPER.macroblocks
        assert config.rate_control.bitrate == PAPER.bitrate
        assert config.buffer_capacity == 1

    def test_scaled_config_preserves_operating_points(self):
        full = full_config()
        scaled = scaled_config(scale=4)
        # per-frame load fraction of the period is scale-invariant
        full_ratio = PAPER.average_frame_load(3) / full.period
        scaled_load = PAPER.average_frame_load(3) * scaled.macroblocks / PAPER.macroblocks
        assert scaled_load / scaled.period == pytest.approx(full_ratio)
        # bits per pixel are preserved too
        assert (
            scaled.rate_control.bitrate / scaled.frame_pixels
            == pytest.approx(full.rate_control.bitrate / full.frame_pixels)
        )

    def test_scale_must_divide_macroblocks(self):
        with pytest.raises(ConfigurationError):
            scaled_config(scale=7)

    def test_tiny_config_is_small(self):
        config = tiny_config()
        assert config.macroblocks <= 100
        assert config.frames <= 100

    def test_benchmark_config_honours_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL_SCALE", "1")
        assert benchmark_config().macroblocks == PAPER.macroblocks
        monkeypatch.delenv("REPRO_FULL_SCALE")
        assert benchmark_config().macroblocks == PAPER.macroblocks // 4

    def test_configs_are_hashable_for_the_run_cache(self):
        {full_config(), scaled_config(4), tiny_config()}
