"""Shared fixtures and builders for the test suite."""

from __future__ import annotations

import pytest

from repro.core import (
    DeadlineFunction,
    ParameterizedSystem,
    PrecedenceGraph,
    QualityDeadlineTable,
    QualitySet,
    QualityTimeTable,
)


def build_system(
    edges,
    actions,
    quality_count,
    av_entries,
    wc_entries,
    budget,
) -> ParameterizedSystem:
    """Assemble a ParameterizedSystem with a uniform cycle deadline."""
    graph = PrecedenceGraph.from_edges(edges, actions)
    quality_set = QualitySet.from_range(quality_count)
    average = QualityTimeTable(quality_set, av_entries)
    worst = QualityTimeTable(quality_set, wc_entries)
    deadlines = QualityDeadlineTable.quality_independent(
        quality_set, DeadlineFunction.uniform(graph.actions, budget)
    )
    return ParameterizedSystem(graph, quality_set, average, worst, deadlines)


@pytest.fixture
def diamond_system() -> ParameterizedSystem:
    """A 4-action diamond graph with 3 quality levels and integer times.

    grab -> {transform, predict} -> emit; quality only affects transform
    (mirroring the paper's Motion_Estimate being the only
    quality-sensitive action).
    """
    return build_system(
        edges=[("grab", "transform"), ("grab", "predict"),
               ("transform", "emit"), ("predict", "emit")],
        actions=["grab", "transform", "predict", "emit"],
        quality_count=3,
        av_entries={
            "grab": 2.0,
            "transform": [1.0, 4.0, 9.0],
            "predict": 1.0,
            "emit": 2.0,
        },
        wc_entries={
            "grab": 4.0,
            "transform": [2.0, 8.0, 20.0],
            "predict": 2.0,
            "emit": 3.0,
        },
        budget=30.0,
    )


@pytest.fixture
def chain_system() -> ParameterizedSystem:
    """A 3-action pipeline with 4 quality levels, all quality-sensitive."""
    return build_system(
        edges=[("a", "b"), ("b", "c")],
        actions=["a", "b", "c"],
        quality_count=4,
        av_entries={
            "a": [1.0, 2.0, 3.0, 5.0],
            "b": [2.0, 3.0, 5.0, 8.0],
            "c": [1.0, 1.0, 2.0, 2.0],
        },
        wc_entries={
            "a": [2.0, 4.0, 6.0, 9.0],
            "b": [3.0, 5.0, 9.0, 14.0],
            "c": [2.0, 2.0, 4.0, 4.0],
        },
        budget=40.0,
    )
