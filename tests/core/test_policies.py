"""Tests for repro.core.policies: quality-manager selection strategies."""

import pytest

from repro.core.action import QualitySet
from repro.core.policies import (
    BoundedStepPolicy,
    DecisionContext,
    FixedQualityPolicy,
    HysteresisPolicy,
    MaximalQualityPolicy,
)
from repro.errors import ConfigurationError


def ctx(previous=None, levels=8, step=0):
    return DecisionContext(
        step=step, previous_quality=previous, quality_set=QualitySet.from_range(levels)
    )


class TestMaximalQualityPolicy:
    def test_picks_max(self):
        assert MaximalQualityPolicy().select((0, 1, 2, 5), ctx()) == 5

    def test_single_option(self):
        assert MaximalQualityPolicy().select((0,), ctx()) == 0


class TestBoundedStepPolicy:
    def test_first_decision_unbounded(self):
        assert BoundedStepPolicy(1).select((0, 1, 2, 3), ctx(previous=None)) == 3

    def test_upgrade_limited_to_band(self):
        policy = BoundedStepPolicy(1)
        assert policy.select((0, 1, 2, 3, 4), ctx(previous=1)) == 2

    def test_wider_band_allows_bigger_jump(self):
        policy = BoundedStepPolicy(3)
        assert policy.select((0, 1, 2, 3, 4), ctx(previous=1)) == 4

    def test_forced_drop_below_band_takes_closest(self):
        policy = BoundedStepPolicy(1)
        # previous 5, band [4,6], but only 0..2 feasible -> take 2
        assert policy.select((0, 1, 2), ctx(previous=5)) == 2

    def test_stays_within_band_downwards(self):
        policy = BoundedStepPolicy(1)
        # previous 3, feasible up to 2: within band (2 >= 3-1)
        assert policy.select((0, 1, 2), ctx(previous=3)) == 2

    def test_invalid_step_rejected(self):
        with pytest.raises(ConfigurationError):
            BoundedStepPolicy(0)

    def test_non_contiguous_quality_set_uses_ranks(self):
        context = DecisionContext(
            step=0, previous_quality=4, quality_set=QualitySet((0, 4, 9))
        )
        # rank(4)=1, max_step=1 allows rank 2 -> level 9
        assert BoundedStepPolicy(1).select((0, 4, 9), context) == 9


class TestHysteresisPolicy:
    def test_downgrade_is_immediate(self):
        policy = HysteresisPolicy(patience=3)
        policy.select((0, 1, 2, 3), ctx(previous=None))
        assert policy.select((0, 1), ctx(previous=3)) == 1

    def test_upgrade_requires_patience(self):
        policy = HysteresisPolicy(patience=2)
        # previous 2; 5 feasible but debounced once
        first = policy.select((0, 1, 2, 3, 4, 5), ctx(previous=2))
        assert first == 2
        second = policy.select((0, 1, 2, 3, 4, 5), ctx(previous=2))
        assert second == 5

    def test_interrupted_upgrade_resets_counter(self):
        policy = HysteresisPolicy(patience=2)
        policy.select((0, 1, 2, 3), ctx(previous=1))      # pending upgrade to 3
        policy.select((0, 1), ctx(previous=1))            # drop kills pending
        assert policy.select((0, 1, 2, 3), ctx(previous=1)) == 1  # debounce restarts

    def test_hold_when_previous_infeasible_but_no_upgrade(self):
        policy = HysteresisPolicy(patience=5)
        # previous 3 not feasible anymore, best is 2 -> go down to 2
        assert policy.select((0, 1, 2), ctx(previous=3)) == 2

    def test_reset_clears_state(self):
        policy = HysteresisPolicy(patience=2)
        policy.select((0, 5), ctx(previous=0))
        policy.reset()
        # counter restarted: still debounced
        assert policy.select((0, 5), ctx(previous=0)) == 0

    def test_invalid_patience(self):
        with pytest.raises(ConfigurationError):
            HysteresisPolicy(0)


class TestFixedQualityPolicy:
    def test_exact_level_when_feasible(self):
        assert FixedQualityPolicy(3).select((0, 1, 2, 3, 4), ctx()) == 3

    def test_clamps_down_when_infeasible(self):
        assert FixedQualityPolicy(5).select((0, 1, 2), ctx()) == 2

    def test_takes_minimum_when_nothing_lower(self):
        assert FixedQualityPolicy(0).select((2, 3), ctx()) == 2
