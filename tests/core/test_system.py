"""Tests for repro.core.system: the parameterized real-time system."""

import pytest

from repro.core import (
    DeadlineFunction,
    ParameterizedSystem,
    PrecedenceGraph,
    QualityDeadlineTable,
    QualitySet,
    QualityTimeTable,
)
from repro.errors import InfeasibleError, TimingError

from tests.conftest import build_system


class TestValidation:
    def test_valid_system_returns_qmin_edf_schedule(self, chain_system):
        schedule = chain_system.validate()
        assert chain_system.graph.is_schedule(schedule)

    def test_infeasible_at_qmin_raises(self, chain_system):
        tight = chain_system.with_uniform_deadline(6.9)  # qmin wc total = 7
        with pytest.raises(InfeasibleError):
            tight.validate()
        assert not tight.is_valid()

    def test_exactly_feasible_boundary(self, chain_system):
        boundary = chain_system.with_uniform_deadline(7.0)
        assert boundary.is_valid()

    def test_av_above_wc_rejected(self):
        with pytest.raises(TimingError):
            build_system(
                edges=[],
                actions=["a"],
                quality_count=1,
                av_entries={"a": [5.0]},
                wc_entries={"a": [4.0]},
                budget=100.0,
            )

    def test_mismatched_quality_sets_rejected(self):
        graph = PrecedenceGraph.independent(["a"])
        qs2 = QualitySet.from_range(2)
        qs3 = QualitySet.from_range(3)
        t2 = QualityTimeTable(qs2, {"a": [1.0, 2.0]})
        t3 = QualityTimeTable(qs3, {"a": [1.0, 2.0, 3.0]})
        deadlines = QualityDeadlineTable.quality_independent(
            qs2, DeadlineFunction.uniform(["a"], 10.0)
        )
        with pytest.raises(TimingError):
            ParameterizedSystem(graph, qs2, t2, t3, deadlines)

    def test_missing_timing_for_graph_action_rejected(self):
        graph = PrecedenceGraph.independent(["a", "b"])
        qs = QualitySet.from_range(1)
        times = QualityTimeTable(qs, {"a": [1.0]})
        deadlines = QualityDeadlineTable.quality_independent(
            qs, DeadlineFunction.uniform(["a", "b"], 10.0)
        )
        with pytest.raises(TimingError):
            ParameterizedSystem(graph, qs, times, times, deadlines)


class TestAccessors:
    def test_qmin_qmax(self, chain_system):
        assert chain_system.qmin == 0
        assert chain_system.qmax == 3

    def test_cav_cwc_callables(self, chain_system):
        assert chain_system.cav(1)("a") == 2.0
        assert chain_system.cwc(1)("a") == 4.0

    def test_deadline_at(self, chain_system):
        assert chain_system.deadline_at(0)("a") == 40.0

    def test_supports_precomputed_schedule(self, chain_system):
        assert chain_system.supports_precomputed_schedule()

    def test_with_uniform_deadline_preserves_everything_else(self, chain_system):
        changed = chain_system.with_uniform_deadline(100.0)
        assert changed.deadline_at(0)("a") == 100.0
        assert changed.graph is chain_system.graph
        assert changed.average_times is chain_system.average_times

    def test_baseline_schedule_is_deterministic(self, diamond_system):
        assert diamond_system.baseline_schedule() == diamond_system.baseline_schedule()
