"""Tests for repro.core.controller: the reference abstract algorithm."""

import pytest

from repro.core.controller import ReferenceController
from repro.core.policies import FixedQualityPolicy
from repro.core.sequences import cumulative
from repro.errors import ConfigurationError, InfeasibleError, SequenceError


class TestLifecycle:
    def test_decide_then_record_advances_step(self, chain_system):
        controller = ReferenceController(chain_system)
        decision = controller.decide()
        assert decision.step == 0
        controller.record_completion(1.0)
        assert controller.step == 1
        assert controller.elapsed == 1.0

    def test_double_decide_rejected(self, chain_system):
        controller = ReferenceController(chain_system)
        controller.decide()
        with pytest.raises(SequenceError):
            controller.decide()

    def test_record_without_decision_rejected(self, chain_system):
        controller = ReferenceController(chain_system)
        with pytest.raises(SequenceError):
            controller.record_completion(1.0)

    def test_negative_actual_time_rejected(self, chain_system):
        controller = ReferenceController(chain_system)
        controller.decide()
        with pytest.raises(ConfigurationError):
            controller.record_completion(-1.0)

    def test_decide_after_done_rejected(self, chain_system):
        controller = ReferenceController(chain_system)
        controller.run_cycle(lambda a, q: 0.0)
        with pytest.raises(SequenceError):
            controller.decide()

    def test_start_cycle_resets(self, chain_system):
        controller = ReferenceController(chain_system)
        controller.run_cycle(lambda a, q: 1.0)
        controller.start_cycle()
        assert controller.step == 0
        assert controller.elapsed == 0.0
        assert not controller.done

    def test_invalid_system_rejected_at_construction(self, chain_system):
        tight = chain_system.with_uniform_deadline(1.0)  # qmin wc total is 7
        with pytest.raises(InfeasibleError):
            ReferenceController(tight)

    def test_validation_can_be_skipped(self, chain_system):
        tight = chain_system.with_uniform_deadline(1.0)
        controller = ReferenceController(tight, validate=False)
        decision = controller.decide()
        assert decision.degraded  # no level satisfies the constraints
        assert decision.quality == tight.qmin


class TestDecisions:
    def test_fast_execution_sustains_high_quality(self, chain_system):
        # everything takes zero time -> qmax everywhere
        controller = ReferenceController(chain_system)
        result = controller.run_cycle(lambda a, q: 0.0)
        assert result.qualities == (3, 3, 3)

    def test_worst_case_execution_never_misses(self, chain_system):
        controller = ReferenceController(chain_system)
        result = controller.run_cycle(
            lambda a, q: chain_system.worst_times.time(a, q)
        )
        budget = chain_system.deadlines.deadline("c", 0)
        assert result.total_time <= budget
        assert result.degraded_steps == 0

    def test_quality_maximality(self, chain_system):
        """Optimality: the chosen q satisfies Qual_Const and q+1 does not."""
        controller = ReferenceController(chain_system)
        while not controller.done:
            t = controller.elapsed
            decision = controller.decide()
            chosen = decision.quality
            assert chosen in decision.feasible_qualities
            higher = [
                q for q in chain_system.quality_set if q > chosen
            ]
            for q in higher:
                assert q not in decision.feasible_qualities
                assert not decision.evaluations[q].satisfied(t, "both")
            controller.record_completion(
                chain_system.worst_times.time(decision.action, chosen)
            )

    def test_schedule_is_valid_execution_sequence(self, diamond_system):
        controller = ReferenceController(diamond_system)
        result = controller.run_cycle(
            lambda a, q: diamond_system.average_times.time(a, q)
        )
        assert diamond_system.graph.is_schedule(list(result.schedule))

    def test_elapsed_time_equals_sum_of_actuals(self, diamond_system):
        controller = ReferenceController(diamond_system)
        actuals = []

        def source(action, quality):
            value = diamond_system.average_times.time(action, quality) * 0.5
            actuals.append(value)
            return value

        result = controller.run_cycle(source)
        assert result.total_time == pytest.approx(cumulative(actuals)[-1])

    def test_degraded_flag_set_when_contract_broken(self, chain_system):
        """Actual times exceeding Cwc (contract violation) degrade to qmin."""
        controller = ReferenceController(chain_system)
        # blow the entire budget on the first action
        decision = controller.decide()
        controller.record_completion(39.5)
        decision = controller.decide()
        assert decision.degraded
        assert decision.quality == chain_system.qmin

    def test_soft_mode_ignores_worst_case_constraint(self, chain_system):
        hard = ReferenceController(chain_system, constraint_mode="both")
        soft = ReferenceController(chain_system, constraint_mode="average")
        d_hard = hard.decide()
        d_soft = soft.decide()
        # soft mode can only be at least as optimistic
        assert d_soft.quality >= d_hard.quality
        assert set(d_hard.feasible_qualities) <= set(d_soft.feasible_qualities)

    def test_invalid_constraint_mode_rejected(self, chain_system):
        with pytest.raises(ConfigurationError):
            ReferenceController(chain_system, constraint_mode="bogus")

    def test_policy_is_honored(self, chain_system):
        controller = ReferenceController(chain_system, policy=FixedQualityPolicy(1))
        result = controller.run_cycle(lambda a, q: 0.0)
        assert result.qualities == (1, 1, 1)


class TestSafetyProposition:
    """Proposition 2.1 (safety) on a deterministic adversarial grid."""

    @pytest.mark.parametrize("fraction", [0.0, 0.3, 0.7, 1.0])
    def test_no_deadline_miss_for_bounded_times(self, chain_system, fraction):
        controller = ReferenceController(chain_system)
        result = controller.run_cycle(
            lambda a, q: fraction * chain_system.worst_times.time(a, q)
        )
        deadline_of = chain_system.deadlines.under(controller.assignment)
        elapsed = 0.0
        for action, quality in zip(result.schedule, result.qualities):
            elapsed += fraction * chain_system.worst_times.time(action, quality)
            assert elapsed <= deadline_of(action)
        assert result.degraded_steps == 0
