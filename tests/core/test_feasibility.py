"""Tests for repro.core.feasibility: Definition 2.2."""

from repro.core.feasibility import (
    check_feasibility,
    is_feasible_schedule,
    slack_sequence,
    worst_slack,
)
from repro.core.precedence import PrecedenceGraph
from repro.core.sequences import INFINITY


def times(mapping):
    return mapping.__getitem__


class TestCheckFeasibility:
    def test_feasible_when_all_slacks_nonnegative(self):
        report = check_feasibility(
            ["a", "b"], times({"a": 2.0, "b": 3.0}), times({"a": 2.0, "b": 5.0})
        )
        assert report.feasible
        assert report.worst_slack == 0.0
        assert report.completion_times == (2.0, 5.0)
        assert report.first_violation is None

    def test_infeasible_reports_first_violation(self):
        report = check_feasibility(
            ["a", "b", "c"],
            times({"a": 4.0, "b": 1.0, "c": 1.0}),
            times({"a": 3.0, "b": 10.0, "c": 10.0}),
        )
        assert not report.feasible
        assert report.first_violation == 0
        assert report.worst_slack == -1.0

    def test_start_time_offsets_completions(self):
        report = check_feasibility(
            ["a"], times({"a": 2.0}), times({"a": 5.0}), start_time=4.0
        )
        assert not report.feasible  # 4 + 2 = 6 > 5

    def test_empty_sequence_is_feasible(self):
        report = check_feasibility([], times({}), times({}))
        assert report.feasible
        assert report.worst_slack == INFINITY

    def test_infinite_deadline_always_met(self):
        report = check_feasibility(
            ["a"], times({"a": 1e12}), times({"a": INFINITY})
        )
        assert report.feasible


class TestSlackHelpers:
    def test_slack_sequence_matches_definition(self):
        slacks = slack_sequence(
            ["a", "b"], times({"a": 1.0, "b": 2.0}), times({"a": 4.0, "b": 4.0})
        )
        # completions 1, 3; deadlines 4, 4
        assert slacks == [3.0, 1.0]

    def test_worst_slack(self):
        assert (
            worst_slack(["a", "b"], times({"a": 1.0, "b": 2.0}), times({"a": 4.0, "b": 4.0}))
            == 1.0
        )

    def test_worst_slack_empty_is_infinite(self):
        assert worst_slack([], times({}), times({})) == INFINITY


class TestIsFeasibleSchedule:
    def test_requires_full_schedule(self):
        g = PrecedenceGraph.chain(["a", "b"])
        t = times({"a": 1.0, "b": 1.0})
        d = times({"a": 10.0, "b": 10.0})
        assert is_feasible_schedule(g, ["a", "b"], t, d)
        assert not is_feasible_schedule(g, ["a"], t, d)  # not all actions

    def test_requires_precedence_compatibility(self):
        g = PrecedenceGraph.chain(["a", "b"])
        t = times({"a": 1.0, "b": 1.0})
        d = times({"a": 10.0, "b": 10.0})
        assert not is_feasible_schedule(g, ["b", "a"], t, d)

    def test_deadline_violation_detected(self):
        g = PrecedenceGraph.chain(["a", "b"])
        t = times({"a": 6.0, "b": 6.0})
        d = times({"a": 10.0, "b": 10.0})
        assert not is_feasible_schedule(g, ["a", "b"], t, d)
