"""Tests for repro.core.action: quality sets and iterated action names."""

import pytest

from repro.core.action import (
    QualitySet,
    iterated_action,
    split_iterated_action,
)
from repro.errors import ConfigurationError


class TestQualitySet:
    def test_from_range_produces_contiguous_levels(self):
        qs = QualitySet.from_range(8)
        assert qs.levels == tuple(range(8))
        assert qs.qmin == 0
        assert qs.qmax == 7

    def test_from_range_with_offset_start(self):
        qs = QualitySet.from_range(3, start=5)
        assert qs.levels == (5, 6, 7)

    def test_levels_are_sorted_regardless_of_input_order(self):
        qs = QualitySet((3, 1, 2))
        assert qs.levels == (1, 2, 3)

    def test_of_deduplicates(self):
        qs = QualitySet.of([4, 2, 4, 2])
        assert qs.levels == (2, 4)

    def test_empty_set_rejected(self):
        with pytest.raises(ConfigurationError):
            QualitySet(())

    def test_duplicate_levels_rejected(self):
        with pytest.raises(ConfigurationError):
            QualitySet((1, 1, 2))

    def test_non_contiguous_levels_allowed(self):
        qs = QualitySet((0, 5, 10))
        assert qs.qmin == 0
        assert qs.qmax == 10
        assert 5 in qs
        assert 3 not in qs

    def test_membership_and_iteration(self):
        qs = QualitySet.from_range(3)
        assert list(qs) == [0, 1, 2]
        assert len(qs) == 3

    def test_index_ranks_levels(self):
        qs = QualitySet((2, 4, 8))
        assert qs.index(4) == 1

    def test_index_of_unknown_level_raises(self):
        qs = QualitySet((2, 4, 8))
        with pytest.raises(ConfigurationError):
            qs.index(3)

    def test_below_returns_prefix(self):
        qs = QualitySet.from_range(5)
        assert qs.below(2) == (0, 1, 2)

    def test_descending_reverses(self):
        qs = QualitySet.from_range(3)
        assert qs.descending() == (2, 1, 0)


class TestIteratedActions:
    def test_roundtrip(self):
        name = iterated_action("Motion_Estimate", 12)
        assert name == "Motion_Estimate#12"
        assert split_iterated_action(name) == ("Motion_Estimate", 12)

    def test_split_plain_name_returns_none_iteration(self):
        assert split_iterated_action("Quantize") == ("Quantize", None)

    def test_negative_iteration_rejected(self):
        with pytest.raises(ConfigurationError):
            iterated_action("a", -1)

    def test_split_with_non_numeric_suffix(self):
        assert split_iterated_action("weird#name") == ("weird#name", None)
