"""Tests for repro.core.cycles: iterated-body (frame = N x macroblock) systems."""

import pytest

from repro.core import PrecedenceGraph, QualitySet, QualityTimeTable
from repro.core.cycles import CyclicApplication
from repro.errors import ConfigurationError


@pytest.fixture
def small_app() -> CyclicApplication:
    body = PrecedenceGraph.chain(["grab", "process", "emit"])
    qs = QualitySet.from_range(3)
    av = QualityTimeTable(qs, {"grab": 2.0, "process": [3.0, 6.0, 12.0], "emit": 1.0})
    wc = QualityTimeTable(qs, {"grab": 4.0, "process": [5.0, 10.0, 25.0], "emit": 2.0})
    return CyclicApplication(
        body=body, iterations=4, quality_set=qs, average_times=av, worst_times=wc
    )


class TestConstruction:
    def test_actions_per_cycle(self, small_app):
        assert small_app.actions_per_cycle == 12

    def test_unfolded_graph_serializes_iterations(self, small_app):
        graph = small_app.unfolded_graph()
        assert len(graph) == 12
        assert ("emit#0", "grab#1") in graph.edges

    def test_nonpositive_iterations_rejected(self, small_app):
        with pytest.raises(ConfigurationError):
            CyclicApplication(
                body=small_app.body,
                iterations=0,
                quality_set=small_app.quality_set,
                average_times=small_app.average_times,
                worst_times=small_app.worst_times,
            )


class TestLoads:
    def test_average_cycle_load(self, small_app):
        # per body at q0: 2 + 3 + 1 = 6; x4 iterations
        assert small_app.average_cycle_load(0) == 24.0
        assert small_app.average_cycle_load(2) == (2 + 12 + 1) * 4

    def test_worst_cycle_load(self, small_app):
        assert small_app.worst_cycle_load(0) == (4 + 5 + 2) * 4

    def test_max_sustainable_quality_average(self, small_app):
        # loads: q0=24, q1=36, q2=60
        assert small_app.max_sustainable_quality(40.0) == 1
        assert small_app.max_sustainable_quality(100.0) == 2

    def test_max_sustainable_quality_worst_case(self, small_app):
        # wc loads: q0=44, q1=64, q2=124
        assert small_app.max_sustainable_quality(70.0, worst_case=True) == 1

    def test_budget_below_minimum_raises(self, small_app):
        with pytest.raises(ConfigurationError):
            small_app.max_sustainable_quality(1.0)


class TestSystemConstruction:
    def test_uniform_pattern_deadline(self, small_app):
        system = small_app.system(budget=100.0, pattern="uniform")
        assert system.deadline_at(0)("grab#0") == 100.0
        assert system.deadline_at(0)("emit#3") == 100.0

    def test_linear_pattern_paces_iterations(self, small_app):
        system = small_app.system(budget=100.0, pattern="linear", slack_fraction=0.0)
        assert system.deadline_at(0)("emit#0") == 25.0
        assert system.deadline_at(0)("emit#3") == 100.0

    def test_unknown_pattern_rejected(self, small_app):
        with pytest.raises(ConfigurationError):
            small_app.system(budget=10.0, pattern="spiral")

    def test_system_validates_when_budget_covers_qmin_worst(self, small_app):
        system = small_app.system(budget=44.0)
        assert system.is_valid()

    def test_system_infeasible_when_budget_too_small(self, small_app):
        system = small_app.system(budget=43.0)
        assert not system.is_valid()

    def test_timing_tables_resolve_unfolded_names(self, small_app):
        system = small_app.system(budget=100.0)
        assert system.average_times.time("process#2", 1) == 6.0


class TestPositions:
    def test_positions_of_body_action(self, small_app):
        positions = small_app.positions_of("process")
        graph = small_app.unfolded_graph()
        assert [graph.actions[i] for i in positions] == [
            "process#0", "process#1", "process#2", "process#3",
        ]

    def test_positions_match_schedule_vocabulary_order(self, small_app):
        # vocabulary order is iteration-major: 3 actions per iteration
        assert small_app.positions_of("grab") == [0, 3, 6, 9]
