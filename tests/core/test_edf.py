"""Tests for repro.core.edf: Best_Sched and EDF orders."""

import pytest

from repro.core.edf import best_sched, edf_schedule, is_edf_order
from repro.core.precedence import PrecedenceGraph
from repro.errors import SequenceError


@pytest.fixture
def fork() -> PrecedenceGraph:
    # a -> {b, c}, both -> d
    return PrecedenceGraph.from_edges(
        [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
    )


def deadline(mapping):
    return mapping.__getitem__


class TestEdfSchedule:
    def test_orders_ready_actions_by_deadline(self, fork):
        d = deadline({"a": 100.0, "b": 50.0, "c": 10.0, "d": 100.0})
        assert edf_schedule(fork, d) == ["a", "c", "b", "d"]

    def test_is_valid_schedule(self, fork):
        d = deadline({"a": 1.0, "b": 2.0, "c": 3.0, "d": 4.0})
        schedule = edf_schedule(fork, d)
        assert fork.is_schedule(schedule)

    def test_ties_broken_by_vocabulary_order(self, fork):
        d = deadline({"a": 5.0, "b": 5.0, "c": 5.0, "d": 5.0})
        assert edf_schedule(fork, d) == ["a", "b", "c", "d"]

    def test_precedence_dominates_deadline(self):
        # b has the earliest deadline but depends on a
        g = PrecedenceGraph.chain(["a", "b"])
        d = deadline({"a": 100.0, "b": 1.0})
        assert edf_schedule(g, d) == ["a", "b"]


class TestBestSched:
    def test_preserves_executed_prefix(self, fork):
        d = deadline({"a": 100.0, "b": 50.0, "c": 10.0, "d": 100.0})
        # prefix [a, b] executed even though EDF would have run c first
        result = best_sched(fork, ["a", "b", "c", "d"], d, prefix_length=2)
        assert result[:2] == ["a", "b"]
        assert set(result) == {"a", "b", "c", "d"}

    def test_reorders_remaining_by_deadline(self, fork):
        d = deadline({"a": 1.0, "b": 50.0, "c": 10.0, "d": 100.0})
        result = best_sched(fork, ["a", "b", "c", "d"], d, prefix_length=1)
        assert result == ["a", "c", "b", "d"]

    def test_zero_prefix_equals_edf(self, fork):
        d = deadline({"a": 1.0, "b": 9.0, "c": 2.0, "d": 10.0})
        assert best_sched(fork, list(fork.actions), d, 0) == edf_schedule(fork, d)

    def test_full_prefix_is_identity(self, fork):
        d = deadline({"a": 1.0, "b": 2.0, "c": 3.0, "d": 4.0})
        seq = ["a", "b", "c", "d"]
        assert best_sched(fork, seq, d, 4) == seq

    def test_invalid_prefix_rejected(self, fork):
        d = deadline({"a": 1.0, "b": 2.0, "c": 3.0, "d": 4.0})
        with pytest.raises(SequenceError):
            best_sched(fork, ["b", "a", "c", "d"], d, prefix_length=1)

    def test_prefix_length_out_of_range(self, fork):
        d = deadline({"a": 1.0, "b": 2.0, "c": 3.0, "d": 4.0})
        with pytest.raises(SequenceError):
            best_sched(fork, ["a"], d, prefix_length=5)

    def test_result_is_execution_sequence(self, fork):
        d = deadline({"a": 3.0, "b": 2.0, "c": 1.0, "d": 0.5})
        result = best_sched(fork, ["a", "c", "b", "d"], d, prefix_length=1)
        fork.validate_execution_sequence(result)


class TestIsEdfOrder:
    def test_accepts_edf_order(self, fork):
        d = deadline({"a": 100.0, "b": 50.0, "c": 10.0, "d": 100.0})
        assert is_edf_order(fork, ["a", "c", "b", "d"], d)

    def test_rejects_non_edf_order(self, fork):
        d = deadline({"a": 100.0, "b": 50.0, "c": 10.0, "d": 100.0})
        # valid execution sequence, but b runs while c (earlier deadline) ready
        assert not is_edf_order(fork, ["a", "b", "c", "d"], d)

    def test_rejects_non_schedule(self, fork):
        d = deadline({"a": 1.0, "b": 2.0, "c": 3.0, "d": 4.0})
        assert not is_edf_order(fork, ["a", "b"], d)

    def test_edf_schedule_always_passes(self, fork):
        d = deadline({"a": 9.0, "b": 1.0, "c": 5.0, "d": 2.0})
        assert is_edf_order(fork, edf_schedule(fork, d), d)
