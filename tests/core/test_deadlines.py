"""Tests for repro.core.deadlines."""

import pytest

from repro.core.action import QualitySet
from repro.core.deadlines import (
    DeadlineFunction,
    QualityDeadlineTable,
    linear_iteration_deadlines,
)
from repro.core.sequences import INFINITY
from repro.core.timing import QualityAssignment
from repro.errors import TimingError


class TestDeadlineFunction:
    def test_lookup_and_over(self):
        d = DeadlineFunction({"a": 5.0, "b": 10.0})
        assert d("a") == 5.0
        assert d.over(["b", "a"]) == [10.0, 5.0]

    def test_negative_deadline_rejected(self):
        with pytest.raises(TimingError):
            DeadlineFunction({"a": -2.0})

    def test_missing_action_raises_when_total(self):
        d = DeadlineFunction({"a": 5.0})
        with pytest.raises(TimingError):
            d("b")

    def test_missing_action_is_infinite_when_partial(self):
        d = DeadlineFunction({"a": 5.0}, total=False)
        assert d("b") == INFINITY

    def test_base_name_fallback_for_unfolded_instances(self):
        d = DeadlineFunction({"ME": 7.0})
        assert d("ME#3") == 7.0

    def test_shift_moves_finite_deadlines_only(self):
        d = DeadlineFunction({"a": 5.0, "b": INFINITY})
        s = d.shifted(3.0)
        assert s("a") == 8.0
        assert s("b") == INFINITY

    def test_scale(self):
        d = DeadlineFunction({"a": 5.0}).scaled(2.0)
        assert d("a") == 10.0

    def test_scale_rejects_nonpositive(self):
        with pytest.raises(TimingError):
            DeadlineFunction({"a": 5.0}).scaled(0.0)

    def test_uniform_builder(self):
        d = DeadlineFunction.uniform(["a", "b"], 20.0)
        assert d("a") == d("b") == 20.0

    def test_unconstrained_builder(self):
        d = DeadlineFunction.unconstrained(["a"])
        assert d("a") == INFINITY


class TestQualityDeadlineTable:
    def test_quality_independent(self):
        qs = QualitySet.from_range(3)
        table = QualityDeadlineTable.quality_independent(
            qs, DeadlineFunction({"a": 5.0})
        )
        assert table.deadline("a", 0) == table.deadline("a", 2) == 5.0

    def test_missing_level_rejected(self):
        qs = QualitySet.from_range(2)
        with pytest.raises(TimingError):
            QualityDeadlineTable(qs, {0: DeadlineFunction({"a": 1.0})})

    def test_under_assignment(self):
        qs = QualitySet.from_range(2)
        table = QualityDeadlineTable(
            qs,
            {
                0: DeadlineFunction({"a": 10.0}),
                1: DeadlineFunction({"a": 8.0}),
            },
        )
        theta = QualityAssignment({"a": 1})
        assert table.under(theta)("a") == 8.0

    def test_order_independence_detection_positive(self):
        qs = QualitySet.from_range(2)
        table = QualityDeadlineTable(
            qs,
            {
                0: DeadlineFunction({"a": 1.0, "b": 2.0}),
                1: DeadlineFunction({"a": 10.0, "b": 20.0}),
            },
        )
        assert table.order_is_quality_independent(["a", "b"])

    def test_order_independence_detection_negative(self):
        qs = QualitySet.from_range(2)
        table = QualityDeadlineTable(
            qs,
            {
                0: DeadlineFunction({"a": 1.0, "b": 2.0}),
                1: DeadlineFunction({"a": 20.0, "b": 10.0}),
            },
        )
        assert not table.order_is_quality_independent(["a", "b"])

    def test_shifted(self):
        qs = QualitySet.from_range(1)
        table = QualityDeadlineTable.quality_independent(
            qs, DeadlineFunction({"a": 5.0})
        ).shifted(2.0)
        assert table.deadline("a", 0) == 7.0

    def test_unknown_quality_raises(self):
        qs = QualitySet.from_range(1)
        table = QualityDeadlineTable.quality_independent(
            qs, DeadlineFunction({"a": 5.0})
        )
        with pytest.raises(TimingError):
            table.at_quality(3)


class TestLinearIterationDeadlines:
    def test_paces_iterations_evenly(self):
        d = linear_iteration_deadlines(["x", "y"], iterations=4, cycle_budget=100.0)
        assert d("x#0") == 25.0
        assert d("y#1") == 50.0
        assert d("x#3") == 100.0

    def test_slack_fraction_relaxes_early_iterations(self):
        d = linear_iteration_deadlines(
            ["x"], iterations=2, cycle_budget=100.0, slack_fraction=0.2
        )
        assert d("x#0") == 70.0  # 50 + 20 slack
        assert d("x#1") == 100.0  # last iteration keeps the hard budget

    def test_last_iteration_never_exceeds_budget(self):
        d = linear_iteration_deadlines(
            ["x"], iterations=3, cycle_budget=90.0, slack_fraction=1.0
        )
        assert d("x#2") == 90.0

    def test_rejects_bad_arguments(self):
        with pytest.raises(TimingError):
            linear_iteration_deadlines(["x"], 0, 10.0)
        with pytest.raises(TimingError):
            linear_iteration_deadlines(["x"], 1, 10.0, slack_fraction=2.0)
