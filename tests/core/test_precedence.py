"""Tests for repro.core.precedence: DAG validation, traversals, unfolding."""

import pytest

from repro.core.precedence import PrecedenceGraph
from repro.errors import GraphError, SequenceError


@pytest.fixture
def diamond() -> PrecedenceGraph:
    return PrecedenceGraph.from_edges(
        [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
    )


class TestConstruction:
    def test_from_edges_infers_vocabulary_in_first_seen_order(self):
        g = PrecedenceGraph.from_edges([("x", "y"), ("x", "z")])
        assert g.actions == ("x", "y", "z")

    def test_cycle_rejected(self):
        with pytest.raises(GraphError):
            PrecedenceGraph.from_edges([("a", "b"), ("b", "a")])

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            PrecedenceGraph.from_edges([("a", "a")])

    def test_edge_to_unknown_action_rejected(self):
        with pytest.raises(GraphError):
            PrecedenceGraph(("a",), frozenset({("a", "ghost")}))

    def test_duplicate_actions_rejected(self):
        with pytest.raises(GraphError):
            PrecedenceGraph(("a", "a"), frozenset())

    def test_chain_builder(self):
        g = PrecedenceGraph.chain(["p", "q", "r"])
        assert g.successors("p") == ("q",)
        assert g.predecessors("r") == ("q",)

    def test_independent_builder_has_no_edges(self):
        g = PrecedenceGraph.independent(["a", "b"])
        assert not g.edges


class TestQueries:
    def test_sources_and_sinks(self, diamond):
        assert diamond.sources() == ("a",)
        assert diamond.sinks() == ("d",)

    def test_successors_predecessors(self, diamond):
        assert set(diamond.successors("a")) == {"b", "c"}
        assert set(diamond.predecessors("d")) == {"b", "c"}

    def test_unknown_action_raises(self, diamond):
        with pytest.raises(GraphError):
            diamond.successors("nope")

    def test_ancestors_descendants(self, diamond):
        assert diamond.ancestors("d") == frozenset({"a", "b", "c"})
        assert diamond.descendants("a") == frozenset({"b", "c", "d"})
        assert diamond.ancestors("a") == frozenset()

    def test_len_and_contains(self, diamond):
        assert len(diamond) == 4
        assert "b" in diamond
        assert "zz" not in diamond


class TestTopologicalOrder:
    def test_respects_precedence(self, diamond):
        order = diamond.topological_order()
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")

    def test_priority_breaks_ties(self, diamond):
        # priority reverses the default b-before-c tiebreak
        order = diamond.topological_order(priority=lambda a: {"b": 1, "c": 0}.get(a, 0))
        assert order.index("c") < order.index("b")

    def test_deterministic_default(self, diamond):
        assert diamond.topological_order() == diamond.topological_order()


class TestExecutionSequences:
    def test_valid_sequence_accepted(self, diamond):
        assert diamond.is_execution_sequence(["a", "b", "c", "d"])
        assert diamond.is_execution_sequence(["a", "c"])  # prefix-closed partial

    def test_predecessor_violation_rejected(self, diamond):
        assert not diamond.is_execution_sequence(["b"])
        assert not diamond.is_execution_sequence(["a", "d"])

    def test_repeated_action_rejected(self, diamond):
        assert not diamond.is_execution_sequence(["a", "a"])

    def test_unknown_action_rejected(self, diamond):
        assert not diamond.is_execution_sequence(["a", "zz"])

    def test_validate_reports_position_and_cause(self, diamond):
        with pytest.raises(SequenceError, match="position 1"):
            diamond.validate_execution_sequence(["a", "d", "b"])

    def test_is_schedule_requires_all_actions(self, diamond):
        assert diamond.is_schedule(["a", "b", "c", "d"])
        assert not diamond.is_schedule(["a", "b", "c"])


class TestUnfold:
    def test_unfold_serializes_iterations(self):
        body = PrecedenceGraph.chain(["x", "y"])
        unfolded = body.unfold(3)
        assert len(unfolded) == 6
        # iteration k's sink precedes iteration k+1's source
        assert ("y#0", "x#1") in unfolded.edges
        assert ("y#1", "x#2") in unfolded.edges

    def test_unfold_without_serialization(self):
        body = PrecedenceGraph.chain(["x", "y"])
        unfolded = body.unfold(2, serialize=False)
        assert ("y#0", "x#1") not in unfolded.edges
        assert ("x#0", "y#0") in unfolded.edges

    def test_unfold_once_is_renamed_body(self):
        body = PrecedenceGraph.chain(["x", "y"])
        unfolded = body.unfold(1)
        assert unfolded.actions == ("x#0", "y#0")

    def test_unfold_rejects_nonpositive(self):
        with pytest.raises(GraphError):
            PrecedenceGraph.chain(["x"]).unfold(0)

    def test_unfolded_topological_order_is_iteration_major(self):
        body = PrecedenceGraph.chain(["x", "y"])
        order = body.unfold(2).topological_order()
        assert order == ["x#0", "y#0", "x#1", "y#1"]


class TestRestriction:
    def test_restricted_to_keeps_internal_edges(self, diamond):
        sub = diamond.restricted_to(["a", "b", "d"])
        assert sub.actions == ("a", "b", "d")
        assert ("a", "b") in sub.edges
        assert ("b", "d") in sub.edges
        assert all("c" not in e for e in sub.edges)
