"""Tests for repro.core.sequences: the paper's sequence operators."""

import pytest

from repro.core.sequences import (
    INFINITY,
    cumulative,
    minimum,
    pointwise_difference,
    prefixes_agree,
    sequence_times,
    suffix,
)


class TestCumulative:
    def test_matches_paper_hat_operator(self):
        assert cumulative([1.0, 2.0, 3.0]) == [1.0, 3.0, 6.0]

    def test_empty(self):
        assert cumulative([]) == []

    def test_single(self):
        assert cumulative([5.0]) == [5.0]

    def test_preserves_length(self):
        values = [0.5] * 10
        assert len(cumulative(values)) == 10


class TestMinimum:
    def test_minimum_of_values(self):
        assert minimum([3.0, -1.0, 2.0]) == -1.0

    def test_empty_sequence_is_infinite(self):
        # convention: constraints over empty suffixes hold vacuously
        assert minimum([]) == INFINITY


class TestPointwiseDifference:
    def test_difference(self):
        assert pointwise_difference([10.0, 10.0], [3.0, 7.0]) == [7.0, 3.0]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            pointwise_difference([1.0], [1.0, 2.0])


class TestSuffixAndPrefix:
    def test_suffix_from_position(self):
        assert suffix(["a", "b", "c"], 1) == ["b", "c"]

    def test_suffix_from_zero_is_whole(self):
        assert suffix(["a", "b"], 0) == ["a", "b"]

    def test_suffix_past_end_is_empty(self):
        assert suffix(["a"], 5) == []

    def test_suffix_negative_raises(self):
        with pytest.raises(ValueError):
            suffix(["a"], -1)

    def test_prefixes_agree(self):
        assert prefixes_agree(["a", "b", "c"], ["a", "b", "x"], 2)
        assert not prefixes_agree(["a", "b"], ["a", "x"], 2)
        assert prefixes_agree(["a"], ["a", "b"], 1)

    def test_prefixes_agree_length_overflow(self):
        assert not prefixes_agree(["a"], ["a"], 2)


class TestSequenceTimes:
    def test_extends_time_function(self):
        times = {"a": 1.0, "b": 2.0}
        assert sequence_times(["b", "a", "b"], times.__getitem__) == [2.0, 1.0, 2.0]
