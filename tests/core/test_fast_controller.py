"""Tests for repro.core.fast_controller: table-driven controller.

The central requirement: on identical inputs the table-driven controller
takes exactly the decisions of the reference implementation (integer
times keep float64 arithmetic exact).
"""

import pytest

from repro.core.controller import ReferenceController
from repro.core.fast_controller import TableDrivenController
from repro.core.policies import HysteresisPolicy
from repro.errors import ConfigurationError, SequenceError


def lockstep_qualities(system, time_source):
    """Run reference and fast controllers in lockstep; return traces."""
    reference = ReferenceController(system)
    fast = TableDrivenController(system)
    ref_trace, fast_trace = [], []
    while not reference.done:
        d_ref = reference.decide()
        d_fast = fast.decide()
        assert d_ref.action == d_fast.action
        ref_trace.append(d_ref.quality)
        fast_trace.append(d_fast.quality)
        actual = time_source(d_ref.action, d_ref.quality)
        reference.record_completion(actual)
        fast.record_completion(actual)
    return ref_trace, fast_trace


class TestEquivalenceWithReference:
    def test_average_time_execution(self, chain_system):
        ref, fast = lockstep_qualities(
            chain_system, lambda a, q: chain_system.average_times.time(a, q)
        )
        assert ref == fast

    def test_worst_case_execution(self, chain_system):
        ref, fast = lockstep_qualities(
            chain_system, lambda a, q: chain_system.worst_times.time(a, q)
        )
        assert ref == fast

    def test_zero_time_execution(self, diamond_system):
        ref, fast = lockstep_qualities(diamond_system, lambda a, q: 0.0)
        assert ref == fast

    def test_half_worst_case(self, diamond_system):
        ref, fast = lockstep_qualities(
            diamond_system,
            lambda a, q: diamond_system.worst_times.time(a, q) / 2.0,
        )
        assert ref == fast


class TestGranularity:
    def test_granularity_one_redecides_every_step(self, chain_system):
        controller = TableDrivenController(chain_system, granularity=1)
        controller.run_cycle(lambda a, q: 1.0)
        assert controller.decisions_made == 3

    def test_coarse_granularity_decides_once(self, chain_system):
        controller = TableDrivenController(chain_system, granularity=100)
        controller.run_cycle(lambda a, q: 1.0)
        assert controller.decisions_made == 1

    def test_coarse_control_keeps_initial_quality(self, chain_system):
        controller = TableDrivenController(chain_system, granularity=100)
        result = controller.run_cycle(lambda a, q: 1.0)
        assert len(set(result.qualities)) == 1

    def test_fine_grain_can_react_where_coarse_cannot(self, chain_system):
        """A slow first action forces a downgrade only fine grain sees."""

        def slow_first(action, quality):
            return 31.0 if action == "a" else chain_system.average_times.time(action, quality)

        fine = TableDrivenController(chain_system, granularity=1)
        fine_result = fine.run_cycle(slow_first)
        coarse = TableDrivenController(chain_system, granularity=100)
        coarse_result = coarse.run_cycle(slow_first)
        # fine grain downgraded after the slow action; coarse kept its plan
        assert fine_result.qualities[1] < coarse_result.qualities[1]

    def test_invalid_granularity(self, chain_system):
        with pytest.raises(ConfigurationError):
            TableDrivenController(chain_system, granularity=0)


class TestCycleShifts:
    def test_positive_shift_raises_quality(self, chain_system):
        nominal = TableDrivenController(chain_system)
        shifted = TableDrivenController(chain_system)
        source = lambda a, q: chain_system.average_times.time(a, q)
        base = nominal.run_cycle(source, deadline_shift=0.0)
        extra = shifted.run_cycle(source, deadline_shift=200.0)
        assert min(extra.qualities) >= min(base.qualities)
        assert extra.qualities[0] == chain_system.qmax

    def test_negative_shift_lowers_quality(self, chain_system):
        controller = TableDrivenController(chain_system)
        source = lambda a, q: chain_system.average_times.time(a, q)
        base = controller.run_cycle(source, deadline_shift=0.0)
        tight = controller.run_cycle(source, deadline_shift=-20.0)
        assert max(tight.qualities) <= max(base.qualities)

    def test_extreme_negative_shift_degrades(self, chain_system):
        controller = TableDrivenController(chain_system)
        result = controller.run_cycle(lambda a, q: 1.0, deadline_shift=-1000.0)
        assert result.degraded_steps > 0
        assert set(result.qualities) == {chain_system.qmin}


class TestLifecycle:
    def test_reuse_across_cycles(self, chain_system):
        controller = TableDrivenController(chain_system)
        source = lambda a, q: chain_system.average_times.time(a, q)
        first = controller.run_cycle(source)
        second = controller.run_cycle(source)
        assert first.qualities == second.qualities

    def test_protocol_violations_raise(self, chain_system):
        controller = TableDrivenController(chain_system)
        with pytest.raises(SequenceError):
            controller.record_completion(1.0)
        controller.decide()
        with pytest.raises(SequenceError):
            controller.decide()

    def test_stateful_policy_reset_between_cycles(self, chain_system):
        policy = HysteresisPolicy(patience=2)
        controller = TableDrivenController(chain_system, policy=policy)
        source = lambda a, q: chain_system.average_times.time(a, q)
        first = controller.run_cycle(source)
        second = controller.run_cycle(source)
        assert first.qualities == second.qualities

    def test_peek_does_not_mutate(self, chain_system):
        controller = TableDrivenController(chain_system)
        before = controller.step
        controller.peek_max_quality(0, 0.0)
        assert controller.step == before
