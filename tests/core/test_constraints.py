"""Tests for repro.core.constraints: Qual_Const_av / Qual_Const_wc.

Hand-computed slacks on the chain system of conftest:
    actions a -> b -> c, budget 40 (uniform deadline),
    Cav: a=[1,2,3,5], b=[2,3,5,8], c=[1,1,2,2]
    Cwc: a=[2,4,6,9], b=[3,5,9,14], c=[2,2,4,4]
"""

import pytest

from repro.core.constraints import (
    average_constraint_slack,
    evaluate_constraints,
    qual_const_av,
    qual_const_wc,
    worst_case_constraint_slack,
)
from repro.core.sequences import INFINITY
from repro.core.timing import QualityAssignment


SCHEDULE = ["a", "b", "c"]


def assign_all(system, q):
    return QualityAssignment.constant(system.graph.actions, q)


class TestAverageConstraintSlack:
    def test_full_suffix_at_q0(self, chain_system):
        theta = assign_all(chain_system, 0)
        # cumulative av: 1, 3, 4 -> slacks 39, 37, 36 -> min 36
        slack = average_constraint_slack(
            SCHEDULE, theta, chain_system.average_times, chain_system.deadlines, 0
        )
        assert slack == 36.0

    def test_full_suffix_at_qmax(self, chain_system):
        theta = assign_all(chain_system, 3)
        # cumulative av: 5, 13, 15 -> slacks 35, 27, 25 -> min 25
        slack = average_constraint_slack(
            SCHEDULE, theta, chain_system.average_times, chain_system.deadlines, 0
        )
        assert slack == 25.0

    def test_mid_cycle_suffix(self, chain_system):
        theta = assign_all(chain_system, 3)
        # suffix [b, c]: cumulative 8, 10 -> slacks 32, 30 -> min 30
        slack = average_constraint_slack(
            SCHEDULE, theta, chain_system.average_times, chain_system.deadlines, 1
        )
        assert slack == 30.0

    def test_empty_suffix_is_infinite(self, chain_system):
        theta = assign_all(chain_system, 0)
        slack = average_constraint_slack(
            SCHEDULE, theta, chain_system.average_times, chain_system.deadlines, 3
        )
        assert slack == INFINITY

    def test_mixed_assignment_uses_per_action_quality(self, chain_system):
        theta = QualityAssignment({"a": 3, "b": 0, "c": 1})
        # cumulative: 5, 7, 8 -> slacks 35, 33, 32 -> min 32
        slack = average_constraint_slack(
            SCHEDULE, theta, chain_system.average_times, chain_system.deadlines, 0
        )
        assert slack == 32.0


class TestWorstCaseConstraintSlack:
    def test_next_action_at_q_then_landing_at_qmin(self, chain_system):
        theta = assign_all(chain_system, 3)
        # next a at q3 wc=9; then b,c at q0 wc 3,2
        # cumulative: 9, 12, 14 -> slacks 31, 28, 26 -> min 26
        slack = worst_case_constraint_slack(
            SCHEDULE, theta, chain_system.worst_times, chain_system.deadlines, 0,
            qmin=0,
        )
        assert slack == 26.0

    def test_only_first_suffix_action_keeps_theta_quality(self, chain_system):
        # theta assigns q3 to b but qmin path must be used for c
        theta = QualityAssignment({"a": 0, "b": 3, "c": 3})
        # suffix [b, c]: b at q3 wc=14, c at qmin wc=2
        # cumulative: 14, 16 -> slacks 26, 24 -> min 24
        slack = worst_case_constraint_slack(
            SCHEDULE, theta, chain_system.worst_times, chain_system.deadlines, 1,
            qmin=0,
        )
        assert slack == 24.0

    def test_empty_suffix_is_infinite(self, chain_system):
        theta = assign_all(chain_system, 0)
        slack = worst_case_constraint_slack(
            SCHEDULE, theta, chain_system.worst_times, chain_system.deadlines, 3,
            qmin=0,
        )
        assert slack == INFINITY


class TestPredicates:
    def test_qual_const_av_threshold(self, chain_system):
        theta = assign_all(chain_system, 3)
        av = chain_system.average_times
        dl = chain_system.deadlines
        assert qual_const_av(SCHEDULE, theta, av, dl, elapsed=25.0, position=0)
        assert not qual_const_av(SCHEDULE, theta, av, dl, elapsed=25.0001, position=0)

    def test_qual_const_wc_threshold(self, chain_system):
        theta = assign_all(chain_system, 3)
        wc = chain_system.worst_times
        dl = chain_system.deadlines
        assert qual_const_wc(SCHEDULE, theta, wc, dl, elapsed=26.0, position=0, qmin=0)
        assert not qual_const_wc(SCHEDULE, theta, wc, dl, elapsed=26.5, position=0, qmin=0)

    def test_evaluate_constraints_combines_both(self, chain_system):
        theta = assign_all(chain_system, 3)
        ev = evaluate_constraints(
            SCHEDULE,
            theta,
            chain_system.average_times,
            chain_system.worst_times,
            chain_system.deadlines,
            0,
            qmin=0,
        )
        assert ev.average_slack == 25.0
        assert ev.worst_case_slack == 26.0
        assert ev.combined_slack == 25.0

    def test_satisfied_modes(self, chain_system):
        theta = assign_all(chain_system, 3)
        ev = evaluate_constraints(
            SCHEDULE,
            theta,
            chain_system.average_times,
            chain_system.worst_times,
            chain_system.deadlines,
            0,
            qmin=0,
        )
        # t between the two slacks separates the modes
        assert ev.satisfied(25.5, "worst")
        assert not ev.satisfied(25.5, "average")
        assert not ev.satisfied(25.5, "both")
        assert ev.satisfied(25.0, "both")

    def test_unknown_mode_rejected(self, chain_system):
        theta = assign_all(chain_system, 0)
        ev = evaluate_constraints(
            SCHEDULE,
            theta,
            chain_system.average_times,
            chain_system.worst_times,
            chain_system.deadlines,
            0,
            qmin=0,
        )
        with pytest.raises(ValueError):
            ev.satisfied(0.0, "hardest")
