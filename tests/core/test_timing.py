"""Tests for repro.core.timing: time tables and quality assignments."""

import pytest

from repro.core.action import QualitySet
from repro.core.timing import QualityAssignment, QualityTimeTable, TimeFunction
from repro.errors import TimingError


@pytest.fixture
def qs3() -> QualitySet:
    return QualitySet.from_range(3)


class TestTimeFunction:
    def test_lookup(self):
        f = TimeFunction({"a": 2.0})
        assert f("a") == 2.0

    def test_missing_action_raises(self):
        with pytest.raises(TimingError):
            TimeFunction({"a": 2.0})("b")

    def test_negative_time_rejected(self):
        with pytest.raises(TimingError):
            TimeFunction({"a": -1.0})

    def test_over_sequence(self):
        f = TimeFunction({"a": 2.0, "b": 3.0})
        assert f.over(["a", "b", "a"]) == [2.0, 3.0, 2.0]

    def test_constant_builder(self):
        f = TimeFunction.constant(["a", "b"], 4.0)
        assert f("a") == f("b") == 4.0


class TestQualityTimeTable:
    def test_list_spec(self, qs3):
        t = QualityTimeTable(qs3, {"a": [1.0, 2.0, 3.0]})
        assert t.time("a", 0) == 1.0
        assert t.time("a", 2) == 3.0

    def test_scalar_spec_is_quality_independent(self, qs3):
        t = QualityTimeTable(qs3, {"a": 5.0})
        assert t.time("a", 0) == t.time("a", 2) == 5.0
        assert not t.depends_on_quality("a")

    def test_mapping_spec(self, qs3):
        t = QualityTimeTable(qs3, {"a": {0: 1.0, 1: 1.0, 2: 9.0}})
        assert t.time("a", 2) == 9.0
        assert t.depends_on_quality("a")

    def test_monotonicity_enforced(self, qs3):
        with pytest.raises(TimingError, match="non-decreasing"):
            QualityTimeTable(qs3, {"a": [3.0, 2.0, 4.0]})

    def test_wrong_level_count_rejected(self, qs3):
        with pytest.raises(TimingError):
            QualityTimeTable(qs3, {"a": [1.0, 2.0]})

    def test_missing_level_in_mapping_rejected(self, qs3):
        with pytest.raises(TimingError):
            QualityTimeTable(qs3, {"a": {0: 1.0, 2: 2.0}})

    def test_unknown_quality_rejected(self, qs3):
        t = QualityTimeTable(qs3, {"a": [1.0, 2.0, 3.0]})
        with pytest.raises(TimingError):
            t.time("a", 7)

    def test_unfolded_instance_falls_back_to_base_name(self, qs3):
        t = QualityTimeTable(qs3, {"ME": [1.0, 2.0, 3.0]})
        assert t.time("ME#42", 1) == 2.0

    def test_unknown_action_raises(self, qs3):
        t = QualityTimeTable(qs3, {"a": [1.0, 2.0, 3.0]})
        with pytest.raises(TimingError):
            t.time("zz", 0)

    def test_at_quality_callable(self, qs3):
        t = QualityTimeTable(qs3, {"a": [1.0, 2.0, 3.0]})
        c1 = t.at_quality(1)
        assert c1("a") == 2.0

    def test_under_assignment(self, qs3):
        t = QualityTimeTable(qs3, {"a": [1.0, 2.0, 3.0], "b": [5.0, 6.0, 7.0]})
        theta = QualityAssignment({"a": 0, "b": 2})
        f = t.under(theta)
        assert f("a") == 1.0
        assert f("b") == 7.0

    def test_validate_bounds_rejects_av_above_wc(self, qs3):
        av = QualityTimeTable(qs3, {"a": [5.0, 5.0, 5.0]})
        wc = QualityTimeTable(qs3, {"a": [4.0, 6.0, 6.0]})
        with pytest.raises(TimingError, match="Cav"):
            QualityTimeTable.validate_bounds(av, wc)

    def test_validate_bounds_accepts_equal(self, qs3):
        t = QualityTimeTable(qs3, {"a": [4.0, 5.0, 6.0]})
        QualityTimeTable.validate_bounds(t, t)  # no raise


class TestQualityAssignment:
    def test_constant(self):
        theta = QualityAssignment.constant(["a", "b"], 3)
        assert theta("a") == theta("b") == 3

    def test_missing_action_raises(self):
        theta = QualityAssignment({"a": 1})
        with pytest.raises(TimingError):
            theta("b")

    def test_override_suffix_matches_paper_operator(self):
        # theta |>i q keeps the first i scheduled actions, sets the rest
        theta = QualityAssignment({"a": 0, "b": 1, "c": 2})
        updated = theta.override_suffix(["a", "b", "c"], 1, 9)
        assert updated("a") == 0
        assert updated("b") == 9
        assert updated("c") == 9

    def test_override_suffix_zero_prefix_sets_everything(self):
        theta = QualityAssignment({"a": 0, "b": 1})
        updated = theta.override_suffix(["a", "b"], 0, 5)
        assert updated("a") == updated("b") == 5

    def test_override_suffix_full_prefix_changes_nothing(self):
        theta = QualityAssignment({"a": 0, "b": 1})
        updated = theta.override_suffix(["a", "b"], 2, 5)
        assert updated("a") == 0
        assert updated("b") == 1

    def test_original_is_immutable(self):
        theta = QualityAssignment({"a": 0, "b": 0})
        theta.override_suffix(["a", "b"], 0, 7)
        assert theta("a") == 0

    def test_restricted_agrees(self):
        t1 = QualityAssignment({"a": 1, "b": 2, "c": 3})
        t2 = QualityAssignment({"a": 1, "b": 2, "c": 9})
        assert t1.restricted_agrees(t2, ["a", "b"])
        assert not t1.restricted_agrees(t2, ["a", "c"])

    def test_with_action(self):
        theta = QualityAssignment({"a": 1}).with_action("b", 2)
        assert theta("b") == 2
