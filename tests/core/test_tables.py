"""Tests for repro.core.tables: pre-computed slack-bound tables.

The tables must agree with the reference constraint evaluation at every
(location, quality) pair: table[i][q] is exactly the largest elapsed
time t for which the corresponding predicate still holds.
"""

import numpy as np
import pytest

from repro.core.constraints import (
    average_constraint_slack,
    worst_case_constraint_slack,
)
from repro.core.tables import ControllerTables
from repro.core.timing import QualityAssignment
from repro.errors import ConfigurationError

from tests.conftest import build_system


class TestAgainstReference:
    def test_average_bounds_match_reference(self, chain_system):
        tables = ControllerTables.from_system(chain_system)
        schedule = list(tables.schedule)
        for i in range(len(schedule)):
            for q in chain_system.quality_set:
                theta = QualityAssignment.constant(schedule, q)
                expected = average_constraint_slack(
                    schedule, theta, chain_system.average_times,
                    chain_system.deadlines, i,
                )
                column = tables.qualities.index(q)
                assert tables.average_bound[i][column] == expected

    def test_worst_bounds_match_reference(self, chain_system):
        tables = ControllerTables.from_system(chain_system)
        schedule = list(tables.schedule)
        for i in range(len(schedule)):
            for q in chain_system.quality_set:
                theta = QualityAssignment.constant(schedule, q)
                expected = worst_case_constraint_slack(
                    schedule, theta, chain_system.worst_times,
                    chain_system.deadlines, i, chain_system.qmin,
                )
                column = tables.qualities.index(q)
                assert tables.worst_bound[i][column] == expected

    def test_combined_is_elementwise_min(self, diamond_system):
        tables = ControllerTables.from_system(diamond_system)
        assert np.array_equal(
            tables.combined_bound,
            np.minimum(tables.average_bound, tables.worst_bound),
        )


class TestRuntimeQueries:
    def test_max_feasible_quality_is_max_of_feasible_set(self, chain_system):
        tables = ControllerTables.from_system(chain_system)
        for i in range(len(tables.schedule)):
            for t in [0.0, 5.0, 20.0, 33.0]:
                feasible = tables.feasible_qualities(i, t)
                top = tables.max_feasible_quality(i, t)
                if feasible:
                    assert top == max(feasible)
                else:
                    assert top is None

    def test_shift_extends_budget(self, chain_system):
        tables = ControllerTables.from_system(chain_system)
        base = tables.max_feasible_quality(0, 30.0)
        extended = tables.max_feasible_quality(0, 30.0, shift=100.0)
        assert extended == chain_system.qmax
        assert base is None or base <= extended

    def test_negative_shift_tightens_budget(self, chain_system):
        tables = ControllerTables.from_system(chain_system)
        q_nominal = tables.max_feasible_quality(0, 0.0)
        q_tight = tables.max_feasible_quality(0, 0.0, shift=-15.0)
        assert q_tight is None or q_tight <= q_nominal

    def test_slack_lookup(self, chain_system):
        tables = ControllerTables.from_system(chain_system)
        assert tables.slack(0, 0) == tables.combined_bound[0][0]
        assert tables.slack(0, 0, shift=5.0) == tables.combined_bound[0][0] + 5.0

    def test_mode_selection(self, chain_system):
        tables = ControllerTables.from_system(chain_system)
        i, t = 0, 25.5
        # from test_constraints: AV slack 25.0 < t <= WC slack 26.0 at qmax
        assert 3 not in tables.feasible_qualities(i, t, mode="average")
        assert 3 in tables.feasible_qualities(i, t, mode="worst")
        assert 3 not in tables.feasible_qualities(i, t, mode="both")

    def test_unknown_mode_raises(self, chain_system):
        tables = ControllerTables.from_system(chain_system)
        with pytest.raises(ConfigurationError):
            tables.feasible_qualities(0, 0.0, mode="???")


class TestApplicability:
    def test_quality_dependent_deadline_order_rejected(self):
        from repro.core import (
            DeadlineFunction,
            ParameterizedSystem,
            PrecedenceGraph,
            QualityDeadlineTable,
            QualitySet,
            QualityTimeTable,
        )

        graph = PrecedenceGraph.independent(["a", "b"])
        qs = QualitySet.from_range(2)
        times = QualityTimeTable(qs, {"a": 1.0, "b": 1.0})
        deadlines = QualityDeadlineTable(
            qs,
            {
                0: DeadlineFunction({"a": 1.0, "b": 2.0}),
                1: DeadlineFunction({"a": 20.0, "b": 10.0}),
            },
        )
        system = ParameterizedSystem(graph, qs, times, times, deadlines)
        with pytest.raises(ConfigurationError, match="deadline order"):
            ControllerTables.from_system(system)

    def test_invalid_schedule_rejected(self, chain_system):
        with pytest.raises(ConfigurationError):
            ControllerTables.from_system(chain_system, schedule=["c", "b", "a"])

    def test_memory_footprint_scales_with_cells(self, chain_system):
        tables = ControllerTables.from_system(chain_system)
        cells = 2 * len(tables.schedule) * len(tables.qualities)
        assert tables.memory_bytes(cell_bytes=4) == 4 * cells
        assert tables.memory_bytes(cell_bytes=8) == 8 * cells


class TestMonotonicity:
    def test_bounds_non_increasing_in_quality_for_uniform_deadlines(self):
        system = build_system(
            edges=[("a", "b")],
            actions=["a", "b"],
            quality_count=3,
            av_entries={"a": [1.0, 2.0, 3.0], "b": [1.0, 3.0, 6.0]},
            wc_entries={"a": [2.0, 4.0, 7.0], "b": [2.0, 5.0, 9.0]},
            budget=25.0,
        )
        tables = ControllerTables.from_system(system)
        diffs_av = np.diff(tables.average_bound, axis=1)
        diffs_wc = np.diff(tables.worst_bound, axis=1)
        assert (diffs_av <= 0).all()
        assert (diffs_wc <= 0).all()
