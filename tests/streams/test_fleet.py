"""End-to-end fleet runs: determinism, fairness, admission coupling.

Carries the PR's acceptance criteria: a >= 20-stream Poisson-churn
fleet is bit-deterministic under a fixed seed, and the quality-fair
arbiter beats equal-share on Jain fairness over a heterogeneous mix.
"""

import pytest

from repro.analysis.metrics import jain_fairness_index
from repro.errors import ConfigurationError
from repro.sim.runner import reset_caches
from repro.streams import (
    AdmissionController,
    EqualShareArbiter,
    FleetRunner,
    QualityFairArbiter,
    WeightedShareArbiter,
    compare_arbiters,
    flash_crowd,
    heterogeneous_mix,
    poisson_churn,
    steady_fleet,
)


def churn_scenario():
    """>= 20 concurrent streams at round 0 plus Poisson arrival churn."""
    return poisson_churn(
        rate=0.8, horizon=18, mean_frames=14, min_frames=8, seed=5, initial=20
    )


class TestSmallFleet:
    def test_uncontended_fleet_serves_everyone_well(self):
        scenario = steady_fleet(4, frames=12)
        capacity = scenario.total_demand()  # dedicated speed for all
        runner = FleetRunner(capacity, WeightedShareArbiter())
        result = runner.run(scenario)
        assert result.served_count == 4
        assert result.rejected_count == 0
        assert result.acceptance_ratio == 1.0
        assert result.total_frames() == 4 * 12
        assert result.total_skips() == 0
        assert result.peak_concurrency == 4
        assert result.mean_quality() > 3.0
        assert result.fairness_quality() > 0.95
        summary = result.summary()
        for key in (
            "scenario", "arbiter", "served", "acceptance_ratio",
            "fairness_quality", "mean_psnr", "skips", "deadline_misses",
        ):
            assert key in summary

    def test_contention_costs_quality(self):
        scenario = steady_fleet(4, frames=12)
        full = FleetRunner(
            scenario.total_demand(), WeightedShareArbiter()
        ).run(scenario)
        halved = FleetRunner(
            0.5 * scenario.total_demand(), WeightedShareArbiter()
        ).run(scenario)
        assert halved.mean_quality() < full.mean_quality() - 1.0


class TestDeterminism:
    def test_churn_fleet_is_deterministic_under_fixed_seed(self):
        scenario = churn_scenario()
        assert len(scenario) >= 20
        capacity = 0.6 * 20 * 16e6  # tight shared budget
        first = FleetRunner(
            capacity, QualityFairArbiter(), AdmissionController(capacity)
        ).run(scenario)
        assert first.peak_concurrency >= 20
        # drop every memoized simulation: the replay must rebuild from
        # seeds alone, not reuse shared state
        reset_caches()
        second = FleetRunner(
            capacity, QualityFairArbiter(), AdmissionController(capacity)
        ).run(churn_scenario())
        assert first.summary() == second.summary()
        assert [o.result.summary() for o in first.streams] == [
            o.result.summary() for o in second.streams
        ]
        assert [
            list(o.result.psnr_series()) for o in first.streams
        ] == [list(o.result.psnr_series()) for o in second.streams]


class TestFairness:
    def test_quality_fair_beats_equal_share_on_heterogeneous_mix(self):
        scenario = heterogeneous_mix(21, frames=20, seed=11)
        capacity = 0.55 * scenario.total_demand()
        results = compare_arbiters(
            scenario, capacity, [EqualShareArbiter(), QualityFairArbiter()]
        )
        equal = results["equal-share"]
        fair = results["quality-fair"]
        assert equal.served_count == fair.served_count == 21
        # the headline criterion, with a wide margin
        assert fair.fairness_quality() > equal.fairness_quality() + 0.1
        # fairness is not bought with a collapse of total quality
        assert fair.mean_quality() > 0.6 * equal.mean_quality()

    def test_jain_index_units(self):
        assert jain_fairness_index([1.0, 1.0, 1.0]) == pytest.approx(1.0)
        assert jain_fairness_index([1.0, 0.0, 0.0]) == pytest.approx(1 / 3)
        assert jain_fairness_index([]) != jain_fairness_index([])  # nan
        assert jain_fairness_index([0.0, 0.0]) == 1.0
        # nan = stream that never delivered -> counts as zero share
        assert jain_fairness_index([2.0, float("nan")]) == pytest.approx(0.5)


class TestAdmissionCoupling:
    def test_flash_crowd_queues_then_serves(self):
        scenario = flash_crowd(base=2, crowd=4, crowd_round=2, frames=8, scale=27)
        # room for ~3 concurrent qmin streams only
        capacity = 15e6
        runner = FleetRunner(
            capacity, QualityFairArbiter(), AdmissionController(capacity)
        )
        result = runner.run(scenario)
        # everything is eventually served (queued streams start late)
        assert result.served_count == 6
        crowd = [o for o in result.streams if o.spec.name.startswith("crowd")]
        delays = [o.admitted_round - o.spec.arrival_round for o in crowd]
        assert max(delays) > 0  # at least one crowd stream had to wait
        assert result.peak_concurrency <= 4

    def test_oversized_streams_are_rejected(self):
        from repro.streams import qmin_demand

        scenario = steady_fleet(3, frames=6, scale=15)  # heavy streams
        # below a single heavy stream's qmin demand: nothing can ever fit
        capacity = 0.9 * qmin_demand(scenario.specs[0].config)
        runner = FleetRunner(
            capacity, EqualShareArbiter(), AdmissionController(capacity)
        )
        result = runner.run(scenario)
        assert result.served_count == 0
        assert result.rejected_count == 3
        assert result.acceptance_ratio == 0.0

    def test_without_admission_everything_runs(self):
        scenario = flash_crowd(base=2, crowd=3, crowd_round=1, frames=6, scale=27)
        runner = FleetRunner(5e6, EqualShareArbiter())  # heavily overloaded
        result = runner.run(scenario)
        assert result.served_count == 5
        assert result.rejected_count == 0


class TestValidation:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            FleetRunner(0.0, EqualShareArbiter())
        with pytest.raises(ConfigurationError):
            FleetRunner(1.0, EqualShareArbiter(), max_rounds=0)

    def test_duplicate_stream_names_rejected(self):
        from repro.streams.scenarios import Scenario, steady_fleet

        base = steady_fleet(2, frames=5)
        doubled = Scenario(name="dup", specs=base.specs + base.specs[:1])
        runner = FleetRunner(1e9, EqualShareArbiter())
        with pytest.raises(ConfigurationError):
            runner.run(doubled)
