"""Fleet and cluster runs reproduce bit-identically across processes.

PR 1 replaced ``hash()`` with ``zlib.crc32`` in
``EncoderSimulation._rng`` because ``hash()`` of a str is randomized
per interpreter (PYTHONHASHSEED): the same seed gave different numbers
in different pytest invocations.  These tests extend that guarantee to
the serving layers — a fleet and a cluster run executed in a *fresh
subprocess* (fresh interpreter, fresh hash randomization, cold caches)
must produce exactly the metrics the in-process run produced.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parents[2] / "src")

FLEET_SNIPPET = """
import json
from repro.streams import FleetRunner, QualityFairArbiter, AdmissionController, poisson_churn

scenario = poisson_churn(rate=0.8, horizon=10, mean_frames=10, min_frames=6, seed=5, initial=6)
capacity = 6 * 16e6
runner = FleetRunner(capacity, QualityFairArbiter(), AdmissionController(capacity))
result = runner.run(scenario)
summary = result.summary()
summary["psnr_digest"] = [round(sum(o.result.psnr_series()), 6) for o in result.streams]
print(json.dumps(summary))
"""

CLUSTER_SNIPPET = """
import json
from repro.cluster import ClusterRunner, RoundRobinPlacement, LoadBalanceMigration, skewed_cluster

result = ClusterRunner(RoundRobinPlacement(), migration=LoadBalanceMigration()).run(
    skewed_cluster(streams=8, frames=8)
)
summary = result.summary()
summary["moves"] = [[m.stream_id, m.source, m.dest, m.kind] for m in result.migrations]
print(json.dumps(summary))
"""


def run_in_subprocess(snippet: str, hash_seed: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    # force a *different* hash randomization per run: determinism must
    # not depend on it (the original bug this guards against)
    env["PYTHONHASHSEED"] = hash_seed
    completed = subprocess.run(
        [sys.executable, "-c", snippet],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
        check=True,
    )
    return json.loads(completed.stdout.strip().splitlines()[-1])


class TestCrossProcess:
    def test_fleet_metrics_identical_across_processes(self):
        first = run_in_subprocess(FLEET_SNIPPET, hash_seed="1")
        second = run_in_subprocess(FLEET_SNIPPET, hash_seed="4242")
        assert first == second
        assert first["served"] > 0
        assert first["psnr_digest"]  # non-trivial run

    def test_cluster_metrics_identical_across_processes(self):
        first = run_in_subprocess(CLUSTER_SNIPPET, hash_seed="7")
        second = run_in_subprocess(CLUSTER_SNIPPET, hash_seed="31337")
        assert first == second
        assert first["served"] > 0

    def test_subprocess_matches_in_process_fleet(self):
        from repro.sim.runner import reset_caches
        from repro.streams import (
            AdmissionController,
            FleetRunner,
            QualityFairArbiter,
            poisson_churn,
        )

        reset_caches()
        scenario = poisson_churn(
            rate=0.8, horizon=10, mean_frames=10, min_frames=6, seed=5,
            initial=6,
        )
        capacity = 6 * 16e6
        result = FleetRunner(
            capacity, QualityFairArbiter(), AdmissionController(capacity)
        ).run(scenario)
        local = result.summary()
        local["psnr_digest"] = [
            round(sum(o.result.psnr_series()), 6) for o in result.streams
        ]
        remote = run_in_subprocess(FLEET_SNIPPET, hash_seed="99")
        assert json.loads(json.dumps(local)) == remote
