"""Arbiter invariants: conservation, no starvation, fairness steering."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.streams.arbiter import (
    CapacityRequest,
    EqualShareArbiter,
    QualityFairArbiter,
    WeightedShareArbiter,
    make_arbiter,
)

CAPACITY = 100.0

ALL_ARBITERS = [
    EqualShareArbiter(),
    WeightedShareArbiter(),
    QualityFairArbiter(),
    QualityFairArbiter(floor_share=0.5, pressure=4.0),
]


def mixed_requests():
    """Heterogeneous demands, weights, qualities — incl. a nan newcomer."""
    return [
        CapacityRequest("a", demand=30.0, weight=1.0, recent_quality=0.9),
        CapacityRequest("b", demand=20.0, weight=2.0, recent_quality=0.2),
        CapacityRequest("c", demand=45.0, weight=1.0, recent_quality=math.nan),
        CapacityRequest("d", demand=10.0, weight=0.5, recent_quality=0.5, backlog=2),
    ]


class TestInvariants:
    @pytest.mark.parametrize("arbiter", ALL_ARBITERS, ids=lambda a: a.name)
    def test_allocations_sum_to_capacity(self, arbiter):
        allocations = arbiter.allocate(mixed_requests(), CAPACITY)
        assert sum(allocations.values()) == pytest.approx(CAPACITY)

    @pytest.mark.parametrize("arbiter", ALL_ARBITERS, ids=lambda a: a.name)
    def test_no_starvation_floor(self, arbiter):
        requests = mixed_requests()
        allocations = arbiter.allocate(requests, CAPACITY)
        floor = arbiter.floor_share * CAPACITY / len(requests)
        for request in requests:
            assert allocations[request.stream_id] >= floor - 1e-9
            assert allocations[request.stream_id] > 0

    @pytest.mark.parametrize("arbiter", ALL_ARBITERS, ids=lambda a: a.name)
    def test_every_request_answered(self, arbiter):
        requests = mixed_requests()
        allocations = arbiter.allocate(requests, CAPACITY)
        assert set(allocations) == {r.stream_id for r in requests}

    @pytest.mark.parametrize("arbiter", ALL_ARBITERS, ids=lambda a: a.name)
    def test_empty_requests(self, arbiter):
        assert arbiter.allocate([], CAPACITY) == {}

    def test_duplicate_ids_rejected(self):
        requests = [
            CapacityRequest("x", demand=1.0),
            CapacityRequest("x", demand=2.0),
        ]
        with pytest.raises(ConfigurationError):
            EqualShareArbiter().allocate(requests, CAPACITY)


class TestEqualShare:
    def test_splits_evenly_whatever_the_demands(self):
        allocations = EqualShareArbiter().allocate(mixed_requests(), CAPACITY)
        expected = CAPACITY / 4
        for value in allocations.values():
            assert value == pytest.approx(expected)


class TestWeightedShare:
    def test_proportional_to_weight_times_demand(self):
        arbiter = WeightedShareArbiter(floor_share=0.0)
        requests = [
            CapacityRequest("small", demand=10.0, weight=1.0),
            CapacityRequest("big", demand=30.0, weight=1.0),
            CapacityRequest("vip", demand=10.0, weight=3.0),
        ]
        allocations = arbiter.allocate(requests, CAPACITY)
        assert allocations["big"] == pytest.approx(3 * allocations["small"])
        assert allocations["vip"] == pytest.approx(3 * allocations["small"])


class TestQualityFair:
    def test_low_quality_attracts_capacity(self):
        arbiter = QualityFairArbiter(floor_share=0.0)
        requests = [
            CapacityRequest("happy", demand=10.0, recent_quality=0.9),
            CapacityRequest("hurting", demand=10.0, recent_quality=0.1),
        ]
        allocations = arbiter.allocate(requests, 10.0)
        assert allocations["hurting"] > allocations["happy"]

    def test_newcomer_nan_treated_as_max_deficit(self):
        arbiter = QualityFairArbiter(floor_share=0.0)
        requests = [
            CapacityRequest("old", demand=10.0, recent_quality=0.5),
            CapacityRequest("new", demand=10.0, recent_quality=math.nan),
        ]
        allocations = arbiter.allocate(requests, 10.0)
        assert allocations["new"] > allocations["old"]

    def test_zero_pressure_degenerates_to_weighted(self):
        flat = QualityFairArbiter(floor_share=0.0, pressure=0.0)
        weighted = WeightedShareArbiter(floor_share=0.0)
        requests = mixed_requests()
        assert flat.allocate(requests, CAPACITY) == pytest.approx(
            weighted.allocate(requests, CAPACITY)
        )

    def test_higher_pressure_widens_the_gap(self):
        requests = [
            CapacityRequest("happy", demand=10.0, recent_quality=0.9),
            CapacityRequest("hurting", demand=10.0, recent_quality=0.1),
        ]
        gentle = QualityFairArbiter(floor_share=0.0, pressure=1.0)
        harsh = QualityFairArbiter(floor_share=0.0, pressure=4.0)
        g = gentle.allocate(requests, 10.0)
        h = harsh.allocate(requests, 10.0)
        assert h["hurting"] > g["hurting"]


class TestValidation:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            EqualShareArbiter(floor_share=1.5)
        with pytest.raises(ConfigurationError):
            QualityFairArbiter(pressure=-1.0)
        with pytest.raises(ConfigurationError):
            QualityFairArbiter(deficit_margin=0.0)
        with pytest.raises(ConfigurationError):
            CapacityRequest("x", demand=0.0)
        with pytest.raises(ConfigurationError):
            CapacityRequest("x", demand=1.0, weight=0.0)
        with pytest.raises(ConfigurationError):
            EqualShareArbiter().allocate([CapacityRequest("x", demand=1.0)], -1.0)

    def test_factory(self):
        assert isinstance(make_arbiter("equal-share"), EqualShareArbiter)
        assert isinstance(make_arbiter("weighted-share"), WeightedShareArbiter)
        arbiter = make_arbiter("quality-fair", pressure=3.0)
        assert isinstance(arbiter, QualityFairArbiter)
        assert arbiter.pressure == 3.0
        with pytest.raises(ConfigurationError):
            make_arbiter("round-robin")
