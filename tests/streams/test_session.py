"""StreamSession: the steppable single-stream wrapper."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments.configs import scaled_config
from repro.sim.runner import reset_caches, simulation_for
from repro.streams.session import StreamSession


def config(seed=3, frames=15, scale=27):
    return scaled_config(scale=scale, seed=seed, frames=frames)


class TestSoloSession:
    def test_full_allocation_serves_every_frame(self):
        cfg = config()
        session = StreamSession("solo", cfg)
        steps = []
        while not session.finished:
            steps.append(session.step(cfg.period))
        result = session.result()
        assert len(result) == cfg.frames
        assert result.skip_count == 0
        assert result.deadline_miss_count == 0
        assert result.mean_quality() > 3.0  # healthy dedicated-speed run
        assert steps[-1].finished
        # records arrive in display order with signal-side PSNR filled in
        assert [f.index for f in result.frames] == list(range(cfg.frames))
        assert all(math.isfinite(f.psnr) for f in result.frames)

    def test_starvation_degrades_quality(self):
        cfg = config()
        rich = StreamSession("rich", cfg)
        poor = StreamSession("poor", cfg)
        while not rich.finished:
            rich.step(cfg.period)
        while not poor.finished:
            poor.step(0.45 * cfg.period)
        assert poor.result().mean_quality() < rich.result().mean_quality() - 1.0
        assert poor.result().mean_psnr() < rich.result().mean_psnr()

    def test_zero_allocation_pauses_and_skips(self):
        cfg = config(frames=8)
        session = StreamSession("paused", cfg)
        steps = [session.step(0.0) for _ in range(8)]
        # the encoder is effectively paused: one frame starts, stays
        # in flight for ~1000 periods, and later arrivals overflow the
        # K=1 input buffer and drop
        skipped = sum(1 for s in steps if s.arrival_skipped)
        assert skipped >= cfg.frames - 2 * cfg.buffer_capacity
        assert not session.finished

    def test_deterministic_per_stream_id(self):
        cfg = config()
        a = StreamSession("same", cfg)
        b = StreamSession("same", cfg)
        while not a.finished:
            a.step(cfg.period)
        while not b.finished:
            b.step(cfg.period)
        assert a.result().summary() == b.result().summary()

    def test_stream_id_salts_the_draws(self):
        cfg = config()
        a = StreamSession("alpha", cfg)
        b = StreamSession("beta", cfg)
        while not a.finished:
            a.step(cfg.period)
        while not b.finished:
            b.step(cfg.period)
        assert list(a.result().encoding_times()) != list(b.result().encoding_times())


class TestSharing:
    def test_same_config_sessions_share_the_simulation(self):
        cfg = config()
        a = StreamSession("a", cfg)
        b = StreamSession("b", cfg)
        assert a.simulation is b.simulation
        assert a.simulation is simulation_for(cfg)

    def test_reset_caches_detaches_future_sessions(self):
        cfg = config()
        before = StreamSession("x", cfg).simulation
        reset_caches()
        after = StreamSession("y", cfg).simulation
        assert before is not after


class TestFeedbackSignals:
    def test_recent_quality_tracks_encoded_frames(self):
        cfg = config(frames=10)
        session = StreamSession("fb", cfg)
        assert math.isnan(session.normalized_recent_quality())
        while not session.finished:
            session.step(cfg.period)
        assert 0.0 <= session.normalized_recent_quality() <= 1.0

    def test_utilization_reflects_grant_consumption(self):
        cfg = config(frames=10)
        session = StreamSession("util", cfg)
        while not session.finished:
            session.step(cfg.period)
        assert 0.0 < session.utilization() <= 1.2


class TestValidation:
    def test_step_after_finished_raises(self):
        cfg = config(frames=3)
        session = StreamSession("done", cfg)
        while not session.finished:
            session.step(cfg.period)
        with pytest.raises(ConfigurationError):
            session.step(cfg.period)

    def test_invalid_parameters(self):
        cfg = config()
        with pytest.raises(ConfigurationError):
            StreamSession("w", cfg, weight=0.0)
        with pytest.raises(ConfigurationError):
            StreamSession("m", cfg, constraint_mode="bogus")
        with pytest.raises(ConfigurationError):
            StreamSession("e", cfg, quality_ewma=0.0)
        session = StreamSession("n", cfg)
        with pytest.raises(ConfigurationError):
            session.step(-1.0)
