"""Admission control against the paper's feasibility analysis."""

import pytest

from repro.core.feasibility import FeasibilityReport
from repro.errors import ConfigurationError
from repro.experiments.configs import scaled_config
from repro.streams.admission import (
    AdmissionController,
    AdmissionDecision,
    qmin_demand,
)
from repro.streams.scenarios import StreamSpec


def small_config(seed=1, frames=5):
    """Scale-27 stream: period ~11.85 Mcyc, qmin avg demand ~4.7 Mcyc."""
    return scaled_config(scale=27, seed=seed, frames=frames)


class TestQminDemand:
    def test_average_below_worst(self):
        config = small_config()
        assert qmin_demand(config, "average") < qmin_demand(config, "worst")

    def test_demand_below_period(self):
        # the scaled operating point leaves qmin headroom inside a period
        config = small_config()
        assert 0 < qmin_demand(config, "average") < config.period


class TestDecisions:
    def test_accept_when_feasible(self):
        config = small_config()
        controller = AdmissionController(capacity=10 * config.period)
        verdict = controller.offer(StreamSpec("s0", 0, config))
        assert verdict.decision is AdmissionDecision.ACCEPTED
        assert isinstance(verdict.report, FeasibilityReport)
        assert verdict.report.worst_slack >= 0
        assert controller.committed == pytest.approx(qmin_demand(config))

    def test_reject_when_infeasible_even_alone(self):
        config = small_config()
        controller = AdmissionController(capacity=qmin_demand(config) / 2)
        verdict = controller.offer(StreamSpec("big", 0, config))
        assert verdict.decision is AdmissionDecision.REJECTED
        assert not verdict.report.feasible
        assert verdict.report.worst_slack < 0
        assert verdict.report.first_violation is not None
        assert controller.committed == 0.0

    def test_queue_then_admit_after_release(self):
        config = small_config()
        demand = qmin_demand(config)
        controller = AdmissionController(capacity=1.5 * demand)
        first = StreamSpec("first", 0, config)
        second = StreamSpec("second", 0, small_config(seed=2))
        assert controller.offer(first).decision is AdmissionDecision.ACCEPTED
        assert controller.offer(second).decision is AdmissionDecision.QUEUED
        assert len(controller.queue) == 1
        # nothing departs: queue stays parked
        assert controller.admit_queued() == []
        controller.release(first.config)
        admitted = controller.admit_queued()
        assert admitted == [second]
        assert not controller.queue

    def test_queue_limit_zero_rejects(self):
        config = small_config()
        demand = qmin_demand(config)
        controller = AdmissionController(capacity=1.5 * demand, queue_limit=0)
        controller.offer(StreamSpec("first", 0, config))
        verdict = controller.offer(StreamSpec("second", 0, small_config(seed=2)))
        assert verdict.decision is AdmissionDecision.REJECTED

    def test_worst_mode_more_conservative(self):
        config = small_config()
        # capacity between average and worst qmin demand: statistical
        # admission accepts, hard admission does not
        capacity = (qmin_demand(config, "average") + qmin_demand(config, "worst")) / 2
        statistical = AdmissionController(capacity=capacity, mode="average")
        hard = AdmissionController(capacity=capacity, mode="worst")
        assert (
            statistical.offer(StreamSpec("s", 0, config)).decision
            is AdmissionDecision.ACCEPTED
        )
        assert (
            hard.offer(StreamSpec("s", 0, config)).decision
            is AdmissionDecision.REJECTED
        )

    def test_utilization_cap_shrinks_budget(self):
        config = small_config()
        demand = qmin_demand(config)
        controller = AdmissionController(capacity=2 * demand, utilization_cap=0.5)
        assert controller.budget == pytest.approx(demand)
        assert controller.offer(StreamSpec("a", 0, config)).decision is (
            AdmissionDecision.ACCEPTED
        )
        # a second stream exceeds the capped budget even though raw
        # capacity would fit it
        follow_up = controller.offer(StreamSpec("b", 0, small_config(seed=3)))
        assert follow_up.decision is not AdmissionDecision.ACCEPTED

    def test_acceptance_ratio(self):
        config = small_config()
        controller = AdmissionController(capacity=10 * config.period)
        assert controller.acceptance_ratio == 1.0
        controller.offer(StreamSpec("a", 0, config))
        tiny = AdmissionController(capacity=qmin_demand(config) / 2)
        tiny.offer(StreamSpec("b", 0, config))
        assert controller.acceptance_ratio == 1.0
        assert tiny.acceptance_ratio == 0.0


class TestValidation:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(capacity=0.0)
        with pytest.raises(ConfigurationError):
            AdmissionController(capacity=1.0, mode="optimistic")
        with pytest.raises(ConfigurationError):
            AdmissionController(capacity=1.0, utilization_cap=0.0)
        with pytest.raises(ConfigurationError):
            AdmissionController(capacity=1.0, queue_limit=-1)
