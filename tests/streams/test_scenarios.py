"""Workload generators: shapes, determinism, bounds."""

import pytest

from repro.errors import ConfigurationError
from repro.streams.scenarios import (
    MIX_SCALES,
    flash_crowd,
    heterogeneous_mix,
    poisson_churn,
    steady_fleet,
    with_frames,
)


class TestSteadyFleet:
    def test_shape(self):
        scenario = steady_fleet(6, frames=12)
        assert len(scenario) == 6
        assert all(s.arrival_round == 0 for s in scenario.specs)
        assert all(s.config.frames == 12 for s in scenario.specs)
        # distinct content seeds, same shape
        seeds = {s.config.seed for s in scenario.specs}
        assert len(seeds) == 6
        periods = {s.config.period for s in scenario.specs}
        assert len(periods) == 1

    def test_invalid_count(self):
        with pytest.raises(ConfigurationError):
            steady_fleet(0)


class TestHeterogeneousMix:
    def test_cycles_scales(self):
        scenario = heterogeneous_mix(7, frames=10)
        periods = [s.config.period for s in scenario.specs]
        assert len(set(periods)) == len(MIX_SCALES)
        # demand ordering: smaller scale = heavier stream
        assert scenario.total_demand() == pytest.approx(sum(periods))

    def test_weights_cycle(self):
        scenario = heterogeneous_mix(4, frames=10, weights=(1.0, 2.0))
        assert [s.weight for s in scenario.specs] == [1.0, 2.0, 1.0, 2.0]


class TestPoissonChurn:
    def test_deterministic_under_fixed_seed(self):
        first = poisson_churn(rate=1.5, horizon=20, seed=9, initial=3)
        second = poisson_churn(rate=1.5, horizon=20, seed=9, initial=3)
        assert first.specs == second.specs

    def test_seed_changes_the_draw(self):
        first = poisson_churn(rate=1.5, horizon=20, seed=9)
        second = poisson_churn(rate=1.5, horizon=20, seed=10)
        assert first.specs != second.specs

    def test_bounds(self):
        scenario = poisson_churn(
            rate=2.0, horizon=15, mean_frames=20, min_frames=8, seed=4, initial=2
        )
        assert scenario.last_arrival_round < 15
        assert all(s.config.frames >= 8 for s in scenario.specs)
        initial = [s for s in scenario.specs if s.name.startswith("churn-0")]
        assert initial and initial[0].arrival_round == 0

    def test_zero_rate_only_initial(self):
        scenario = poisson_churn(rate=0.0, horizon=10, seed=1, initial=4)
        assert len(scenario) == 4
        assert all(s.arrival_round == 0 for s in scenario.specs)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            poisson_churn(rate=-1.0, horizon=10)
        with pytest.raises(ConfigurationError):
            poisson_churn(rate=1.0, horizon=0)
        with pytest.raises(ConfigurationError):
            poisson_churn(rate=1.0, horizon=10, mean_frames=5, min_frames=8)


class TestFlashCrowd:
    def test_shape(self):
        scenario = flash_crowd(base=3, crowd=5, crowd_round=7, frames=10)
        assert len(scenario) == 8
        assert scenario.arrivals_at(0) == list(scenario.specs[:3])
        assert len(scenario.arrivals_at(7)) == 5
        assert scenario.last_arrival_round == 7


class TestHelpers:
    def test_with_frames_truncates(self):
        scenario = with_frames(steady_fleet(3, frames=30), 5)
        assert all(s.config.frames == 5 for s in scenario.specs)

    def test_arrivals_at_empty_round(self):
        scenario = steady_fleet(3, frames=10)
        assert scenario.arrivals_at(99) == []
