"""The bench-regression gate: rules, verdicts, CLI exit codes.

The gate is the CI tripwire for the bench trajectories, so its own
semantics must be pinned: each rule kind accepts and rejects exactly
where documented, a missing trajectory or metric fails loudly (a bench
that silently stopped running must not pass the gate), and the CLI
exit code is what the workflow step keys off.
"""

from __future__ import annotations

import json

import pytest

from repro.tool.bench_gate import (
    evaluate_metric,
    main,
    run_gate,
    update_baselines,
)


class TestRules:
    def test_min_rule(self):
        assert evaluate_metric(5.2, {"min": 5.0}) == ()
        assert evaluate_metric(5.0, {"min": 5.0}) == ()
        assert evaluate_metric(4.9, {"min": 5.0})

    def test_max_rule(self):
        assert evaluate_metric(0.07, {"max": 0.10}) == ()
        assert evaluate_metric(0.11, {"max": 0.10})

    def test_equal_exact(self):
        assert evaluate_metric(256, {"equal": 256}) == ()
        assert evaluate_metric(255, {"equal": 256})

    def test_equal_with_tolerance(self):
        rule = {"equal": 2.852, "tolerance": 0.01}
        assert evaluate_metric(2.8525, rule) == ()
        assert evaluate_metric(2.87, rule)

    def test_equal_non_numeric(self):
        assert evaluate_metric("steady", {"equal": "steady"}) == ()
        assert evaluate_metric("burst", {"equal": "steady"})

    def test_combined_band(self):
        rule = {"min": 0.0, "max": 1.0}
        assert evaluate_metric(0.5, rule) == ()
        assert len(evaluate_metric(-0.1, rule)) == 1
        assert len(evaluate_metric(1.5, rule)) == 1

    def test_missing_metric_fails(self):
        assert evaluate_metric(None, {"min": 1.0})

    def test_nan_never_passes_bounds(self):
        nan = float("nan")
        assert evaluate_metric(nan, {"min": 0.0})
        assert evaluate_metric(nan, {"max": 10.0})

    def test_unknown_rule_key_rejected(self):
        with pytest.raises(ValueError, match="unknown rule"):
            evaluate_metric(1.0, {"mim": 1.0})

    def test_tolerance_requires_equal(self):
        with pytest.raises(ValueError, match="tolerance"):
            evaluate_metric(1.0, {"tolerance": 0.1})


def write_gate_fixture(root, value, baseline_rule):
    (root / "BENCH_demo.json").write_text(
        json.dumps({"speedup": value}) + "\n"
    )
    baselines = root / "benchmarks" / "baselines.json"
    baselines.parent.mkdir()
    baselines.write_text(
        json.dumps(
            {
                "demo": {
                    "source": "BENCH_demo.json",
                    "metrics": {"speedup": baseline_rule},
                }
            }
        )
        + "\n"
    )
    return baselines


class TestGate:
    def test_passing_gate(self, tmp_path):
        baselines = write_gate_fixture(tmp_path, 6.0, {"min": 5.0})
        checks = run_gate(baselines, tmp_path)
        assert [c.ok for c in checks] == [True]

    def test_regression_caught(self, tmp_path):
        baselines = write_gate_fixture(tmp_path, 3.0, {"min": 5.0})
        checks = run_gate(baselines, tmp_path)
        assert [c.ok for c in checks] == [False]
        assert "3.0 < min 5.0" in checks[0].failures[0]

    def test_missing_trajectory_fails(self, tmp_path):
        baselines = write_gate_fixture(tmp_path, 6.0, {"min": 5.0})
        (tmp_path / "BENCH_demo.json").unlink()
        checks = run_gate(baselines, tmp_path)
        assert not checks[0].ok
        assert "not found" in checks[0].failures[0]

    def test_missing_metric_fails(self, tmp_path):
        baselines = write_gate_fixture(tmp_path, 6.0, {"min": 5.0})
        (tmp_path / "BENCH_demo.json").write_text(json.dumps({}) + "\n")
        checks = run_gate(baselines, tmp_path)
        assert not checks[0].ok


class TestCli:
    def test_exit_zero_on_pass(self, tmp_path, capsys):
        write_gate_fixture(tmp_path, 6.0, {"min": 5.0})
        assert main(["--root", str(tmp_path)]) == 0
        assert "all 1 checks passed" in capsys.readouterr().out

    def test_exit_nonzero_on_regression(self, tmp_path, capsys):
        write_gate_fixture(tmp_path, 3.0, {"min": 5.0})
        assert main(["--root", str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "[FAIL] demo.speedup" in captured.out
        assert "1 of 1 checks failed" in captured.err

    def test_update_repins_equal_values(self, tmp_path):
        baselines = write_gate_fixture(tmp_path, 6.0, {"equal": 5.0})
        assert main(["--root", str(tmp_path)]) == 1
        assert main(["--root", str(tmp_path), "--update"]) == 0
        assert json.loads(baselines.read_text())["demo"]["metrics"][
            "speedup"
        ] == {"equal": 6.0}
        assert main(["--root", str(tmp_path)]) == 0

    def test_update_leaves_bounds_alone(self, tmp_path):
        baselines = write_gate_fixture(tmp_path, 6.0, {"min": 5.0})
        update_baselines(baselines, tmp_path)
        assert json.loads(baselines.read_text())["demo"]["metrics"][
            "speedup"
        ] == {"min": 5.0}

    def test_repo_baselines_cover_every_trajectory(self):
        """Each committed BENCH_*.json is gated by a baseline entry."""
        from pathlib import Path

        repo = Path(__file__).resolve().parent.parent.parent
        baselines = json.loads(
            (repo / "benchmarks" / "baselines.json").read_text()
        )
        gated = {entry["source"] for entry in baselines.values()}
        present = {p.name for p in repo.glob("BENCH_*.json")}
        assert present == gated
