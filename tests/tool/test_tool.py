"""Tests for the prototype-tool pipeline (repro.tool)."""

import numpy as np
import pytest

from repro.core import QualitySet, QualityTimeTable
from repro.core.tables import CompressedPeriodicTables, ControllerTables
from repro.errors import ConfigurationError, TimingError
from repro.platform.trace import ActionEvent, ExecutionTrace
from repro.tool.codegen import generate_c_controller
from repro.tool.compiler import compile_application
from repro.tool.dataflow import analyze_dataflow, critical_path_length
from repro.tool.timing_analysis import (
    EwmaAverageEstimator,
    TimingProfile,
    estimate_tables_from_profile,
)
from repro.video.pipeline import ME_ACTION, macroblock_application

from tests.conftest import build_system


@pytest.fixture(scope="module")
def encoder_system():
    app = macroblock_application(macroblocks=6)
    return app.system(budget=6 * 320e6 / 1620)


class TestDataflowAnalysis:
    def test_report_fields(self, encoder_system):
        report = analyze_dataflow(encoder_system)
        assert len(report.actions) == 54
        assert report.deadline_order_quality_independent
        assert report.quality_sensitive_actions == (ME_ACTION,)
        assert encoder_system.graph.is_schedule(list(report.schedule))

    def test_critical_path_of_chain(self, chain_system):
        assert critical_path_length(chain_system.graph) == 3

    def test_parallelism_of_pipeline_is_one(self, chain_system):
        report = analyze_dataflow(chain_system)
        assert report.parallelism == 1.0

    def test_diamond_has_parallelism(self, diamond_system):
        report = analyze_dataflow(diamond_system)
        assert report.parallelism > 1.0


class TestTimingAnalysis:
    def test_profile_recovers_deterministic_times(self):
        qs = QualitySet.from_range(2)
        profile = TimingProfile()
        for q, duration in [(0, 10.0), (1, 20.0)]:
            for _ in range(5):
                profile.add("a#3", q, duration)
        average, worst = estimate_tables_from_profile(profile, qs, wcet_margin=1.0)
        assert average.time("a", 0) == 10.0
        assert worst.time("a", 1) == 20.0

    def test_profile_from_trace(self):
        trace = ExecutionTrace()
        trace.record(ActionEvent("a#0", 0, 0.0, 4.0))
        trace.record(ActionEvent("a#1", 0, 4.0, 6.0))
        profile = TimingProfile()
        profile.add_trace(trace)
        assert profile.count("a", 0) == 2

    def test_missing_level_raises(self):
        qs = QualitySet.from_range(2)
        profile = TimingProfile()
        profile.add("a", 0, 1.0)
        with pytest.raises(TimingError):
            estimate_tables_from_profile(profile, qs)

    def test_monotonicity_enforced_on_noisy_samples(self):
        """Sample means may invert; estimates must stay monotone."""
        qs = QualitySet.from_range(2)
        profile = TimingProfile()
        for _ in range(3):
            profile.add("a", 0, 10.0)
            profile.add("a", 1, 9.0)  # noise: q1 sampled faster than q0
        average, worst = estimate_tables_from_profile(profile, qs, wcet_margin=1.0)
        assert average.time("a", 1) >= average.time("a", 0)
        QualityTimeTable.validate_bounds(average, worst)

    def test_wcet_margin_validated(self):
        with pytest.raises(ConfigurationError):
            estimate_tables_from_profile(TimingProfile(), QualitySet.from_range(1), 0.5)


class TestEwmaEstimator:
    @pytest.fixture
    def prior(self):
        return QualityTimeTable(QualitySet.from_range(2), {"a": [10.0, 20.0]})

    def test_falls_back_to_prior(self, prior):
        estimator = EwmaAverageEstimator(prior)
        assert estimator.estimate("a", 0) == 10.0

    def test_learns_from_observations(self, prior):
        estimator = EwmaAverageEstimator(prior, alpha=0.5)
        for _ in range(20):
            estimator.observe("a#1", 0, 14.0)
        assert estimator.estimate("a", 0) == pytest.approx(14.0, abs=0.1)
        assert estimator.observations("a", 0) == 20

    def test_learned_table_is_monotone(self, prior):
        estimator = EwmaAverageEstimator(prior, alpha=1.0)
        estimator.observe("a", 0, 30.0)  # above the q1 prior of 20
        table = estimator.learned_table(QualitySet.from_range(2))
        assert table.time("a", 1) >= table.time("a", 0)

    def test_alpha_validated(self, prior):
        with pytest.raises(ConfigurationError):
            EwmaAverageEstimator(prior, alpha=0.0)


class TestCompiler:
    def test_compile_produces_working_controller(self, encoder_system):
        application = compile_application(encoder_system, body_length=9)
        controller = application.controller()
        result = controller.run_cycle(
            lambda a, q: encoder_system.average_times.time(a, q)
        )
        assert len(result.qualities) == 54
        assert result.degraded_steps == 0

    def test_overheads_within_paper_band(self, encoder_system):
        application = compile_application(encoder_system, body_length=9)
        report = application.overheads
        assert 0 < report.code_ratio <= 0.03
        assert 0 < report.memory_ratio <= 0.01
        assert 0 < report.runtime_ratio < 0.015

    def test_infeasible_system_rejected(self, chain_system):
        tight = chain_system.with_uniform_deadline(1.0)
        from repro.errors import InfeasibleError

        with pytest.raises(InfeasibleError):
            compile_application(tight)


class TestCompressedTables:
    def test_compression_roundtrip_exact(self, encoder_system):
        tables = ControllerTables.from_system(encoder_system)
        compressed = CompressedPeriodicTables.from_tables(tables, body_length=9)
        for position in range(len(tables.schedule)):
            for q in encoder_system.quality_set:
                column = tables.qualities.index(q)
                assert compressed.average_bound_at(position, q) == (
                    tables.average_bound[position][column]
                )
                assert compressed.worst_bound_at(position, q) == (
                    tables.worst_bound[position][column]
                )
                assert compressed.combined_bound_at(position, q) == (
                    tables.combined_bound[position][column]
                )

    def test_compression_shrinks_footprint(self, encoder_system):
        tables = ControllerTables.from_system(encoder_system)
        compressed = CompressedPeriodicTables.from_tables(tables, body_length=9)
        assert compressed.memory_bytes() < tables.memory_bytes()

    def test_footprint_independent_of_iterations(self):
        small = macroblock_application(4).system(budget=1e9)
        large = macroblock_application(12).system(budget=1e9)
        c_small = CompressedPeriodicTables.from_tables(
            ControllerTables.from_system(small), 9
        )
        c_large = CompressedPeriodicTables.from_tables(
            ControllerTables.from_system(large), 9
        )
        assert c_small.memory_bytes() == c_large.memory_bytes()

    def test_non_dividing_body_length_rejected(self, encoder_system):
        tables = ControllerTables.from_system(encoder_system)
        with pytest.raises(ConfigurationError):
            CompressedPeriodicTables.from_tables(tables, body_length=7)

    def test_non_periodic_tables_rejected(self):
        """A non-cyclic system's bounds are not affine in any 'iteration'."""
        system = build_system(
            edges=[],
            actions=["a", "b", "c", "d"],
            quality_count=2,
            av_entries={"a": [1.0, 2.0], "b": [7.0, 9.0], "c": [2.0, 30.0], "d": 1.0},
            wc_entries={"a": [2.0, 4.0], "b": [9.0, 12.0], "c": [4.0, 60.0], "d": 2.0},
            budget=200.0,
        )
        tables = ControllerTables.from_system(system)
        with pytest.raises(ConfigurationError):
            CompressedPeriodicTables.from_tables(tables, body_length=1)


class TestCodegen:
    def test_generated_c_is_structurally_sound(self, encoder_system):
        application = compile_application(encoder_system, body_length=9)
        source = generate_c_controller(application)
        assert source.count("{") == source.count("}")
        assert "qos_next_quality" in source
        assert "qos_run_cycle" in source
        assert "int32_t qos_slack_av" in source
        assert "int32_t qos_slack_wc" in source
        assert f"#define QOS_N_ACTIONS {9 * 6}" in source
        # every base action gets a prototype
        assert "extern void action_Motion_Estimate(int quality);" in source

    def test_int32_clamping(self, encoder_system):
        application = compile_application(encoder_system, body_length=9)
        source = generate_c_controller(application)
        for token in source.split():
            token = token.strip(",;{}")
            if token.lstrip("-").isdigit():
                assert abs(int(token)) <= 2**31 - 1
