"""The batched decision kernel is the scalar kernel, lane for lane.

``batch_decide`` performs the exact IEEE-double operation sequence of
``scalar_decide`` per lane, so on identical inputs every output —
cycles, per-macroblock quality decisions, degraded counts — must match
to the bit, for any granularity and any budget (including starvation
and surplus).  The bank tests pin the draw-order determinism contract:
one draw per (frame, macroblock, action), independent of scheduling.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import ENGINES, validate_engine
from repro.engine.bank import FrameTimeBank
from repro.engine.kernel import (
    batch_decide,
    decision_kernel,
    kernel_for,
    scalar_decide,
)
from repro.errors import ConfigurationError
from repro.experiments.configs import tiny_config
from repro.sim.runner import simulation_for


@pytest.fixture(scope="module")
def simulation():
    return simulation_for(tiny_config(seed=11, frames=6))


@pytest.fixture(scope="module")
def kernel(simulation):
    return kernel_for(simulation, "both")


def random_inputs(kernel, lanes, seed):
    """Synthetic pre-fused grab/me arrays in the kernel's shape."""
    rng = np.random.default_rng(seed)
    count = kernel.macroblocks
    levels = len(kernel.levels)
    grab = rng.uniform(50.0, 500.0, size=(lanes, count))
    me = rng.uniform(500.0, 50_000.0, size=(lanes, count, levels))
    me.sort(axis=2)  # higher level, higher cost — like the real tables
    budgets = rng.uniform(
        0.05 * kernel.nominal_budget, 2.0 * kernel.nominal_budget, size=lanes
    )
    return grab, me, budgets


class TestKernelIdentity:
    @pytest.mark.parametrize("granularity", [1, 2, 5, 9])
    @pytest.mark.parametrize("lanes", [1, 2, 7])
    def test_batch_matches_scalar_bitwise(self, kernel, granularity, lanes):
        grab, me, budgets = random_inputs(kernel, lanes, seed=granularity)
        batched = batch_decide(kernel, granularity, grab, me, budgets)
        for lane in range(lanes):
            scalar = scalar_decide(
                kernel,
                granularity,
                grab[lane].tolist(),
                me[lane].tolist(),
                float(budgets[lane]),
            )
            assert batched[lane].cycles == scalar.cycles
            assert list(batched[lane].qualities) == list(scalar.qualities)
            assert batched[lane].decisions == scalar.decisions
            assert batched[lane].degraded == scalar.degraded
            assert (
                batched[lane].controller_cycles == scalar.controller_cycles
            )
            # the folded-in quality statistics are part of the contract:
            # integer sums are exact, so these match to the bit too
            assert batched[lane].mean_quality == scalar.mean_quality
            assert batched[lane].min_quality == scalar.min_quality
            assert batched[lane].max_quality == scalar.max_quality
            assert batched[lane].quality_churn == scalar.quality_churn

    def test_starved_budget_degrades_identically(self, kernel):
        """Near-zero budgets force the qmin fallback in both kernels."""
        grab, me, _ = random_inputs(kernel, 3, seed=99)
        budgets = np.full(3, 1.0)  # essentially no time at all
        batched = batch_decide(kernel, 1, grab, me, budgets)
        for lane in range(3):
            scalar = scalar_decide(
                kernel, 1,
                grab[lane].tolist(), me[lane].tolist(),
                1.0,
            )
            assert batched[lane].degraded == scalar.degraded > 0
            assert batched[lane].cycles == scalar.cycles

    def test_banked_frames_match_bitwise(self, simulation, kernel):
        """On real banked draws, not just synthetic ones."""
        bank = FrameTimeBank(simulation, simulation._rng("identity-test"))
        budget = 0.6 * kernel.nominal_budget
        frames = range(bank.frames)
        batched = batch_decide(
            kernel,
            1,
            np.stack([bank.grab_plus[f] for f in frames]),
            np.stack([bank.me_plus[f] for f in frames]),
            np.full(bank.frames, budget),
        )
        for f in frames:
            scalar = scalar_decide(
                kernel, 1, *bank.frame_lists(f), budget
            )
            assert batched[f].cycles == scalar.cycles
            assert list(batched[f].qualities) == list(scalar.qualities)

    def test_kernel_is_cached_per_shape(self, simulation):
        a = kernel_for(simulation, "both")
        b = kernel_for(simulation, "both")
        assert a is b
        assert kernel_for(simulation, "worst") is not a

    def test_kernel_rows_are_read_only(self, kernel):
        with pytest.raises(ValueError):
            kernel.rows[0, 0] = 0.0


class TestFrameTimeBank:
    def test_same_salt_same_bank(self, simulation):
        a = FrameTimeBank(simulation, simulation._rng("bank-salt"))
        b = FrameTimeBank(simulation, simulation._rng("bank-salt"))
        assert np.array_equal(a.grab, b.grab)
        assert np.array_equal(a.me, b.me)
        assert np.array_equal(a.post, b.post)

    def test_different_salt_different_bank(self, simulation):
        a = FrameTimeBank(simulation, simulation._rng("bank-salt"))
        b = FrameTimeBank(simulation, simulation._rng("bank-other"))
        assert not np.array_equal(a.grab, b.grab)

    def test_shapes(self, simulation):
        bank = FrameTimeBank(simulation, simulation._rng("shapes"))
        frames = len(simulation.contents)
        count = simulation.config.macroblocks
        levels = len(simulation._levels)
        assert bank.grab.shape == (frames, count)
        assert bank.me.shape == (frames, count, levels)
        assert bank.post.shape == (frames, count)
        assert bank.grab_plus.shape == (frames, count)
        assert bank.me_plus.shape == (frames, count, levels)

    def test_iframe_rows_constant_across_levels(self, simulation):
        """I-frames run intra coding whatever the controller chooses."""
        bank = FrameTimeBank(simulation, simulation._rng("iframes"))
        for f, content in enumerate(simulation.contents):
            rows_equal = np.all(
                bank.me[f] == bank.me[f, :, :1], axis=None
            )
            if content.is_iframe:
                assert rows_equal
            else:
                assert not rows_equal

    def test_frame_lists_preserve_values(self, simulation):
        bank = FrameTimeBank(simulation, simulation._rng("lists"))
        grab, me = bank.frame_lists(0)
        assert grab == bank.grab_plus[0].tolist()
        assert me[3][1] == bank.me_plus[0, 3, 1]

    def test_fused_arrays_fold_the_kernel_constants(self, simulation):
        """grab_plus/me_plus are exactly the kernels' hoisted adds."""
        bank = FrameTimeBank(simulation, simulation._rng("fused"))
        overhead = simulation.config.decision_overhead
        assert np.array_equal(bank.grab_plus, 2.0 * overhead + bank.grab)
        assert np.array_equal(
            bank.me_plus,
            bank.me + (7.0 * overhead + bank.post)[:, :, None],
        )


class TestEngineValidation:
    def test_known_engines(self):
        assert ENGINES == ("scalar", "vectorized", "parallel")
        for name in ENGINES:
            assert validate_engine(name) == name

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError, match="engine"):
            validate_engine("warp")

    def test_runner_knobs_validate(self):
        from repro.cluster import ClusterRunner, RoundRobinPlacement
        from repro.streams import FleetRunner, QualityFairArbiter

        with pytest.raises(ConfigurationError, match="engine"):
            FleetRunner(1e6, QualityFairArbiter(), engine="simd")
        with pytest.raises(ConfigurationError, match="engine"):
            ClusterRunner(RoundRobinPlacement(), engine="simd")

    def test_spec_engine_round_trips(self):
        from repro.serving import ServingSpec

        spec = ServingSpec(
            scenario="steady", capacity=1e6, engine="vectorized"
        )
        assert ServingSpec.from_json(spec.to_json()) == spec
        assert spec.to_dict()["engine"] == "vectorized"
        with pytest.raises(ConfigurationError, match="engine"):
            ServingSpec(scenario="steady", capacity=1e6, engine="simd")
