"""Vectorized and parallel engines are bit-identical to scalar.

The acceptance criterion of the execution-engine tentpole: for **every
registered scenario generator** (fleet and cluster — the list below is
asserted complete against the registry, so a new scenario cannot dodge
the check), serving with ``engine="vectorized"`` and
``engine="parallel"`` reproduces ``engine="scalar"`` exactly —

* result summaries and per-stream series, to the bit,
* the full structured event log, byte for byte as JSONL,
* with ``InvariantObserver(enforce=True)`` attached throughout, so a
  run that merely *looks* right but breaks a runtime invariant aborts.
"""

from __future__ import annotations

import math

import pytest

from repro.obs import InvariantObserver, StructuredEventLog
from repro.serving import serve
from repro.serving.registry import (
    SCENARIOS,
    scenario_open_ended,
    scenario_topology,
)

ENGINES_UNDER_TEST = ("vectorized", "parallel")

#: Small kwargs per registered scenario (seconds, not minutes, per case).
SCENARIO_KWARGS = {
    "steady": {"count": 3, "frames": 4},
    "heterogeneous-mix": {"count": 4, "frames": 4},
    "poisson-churn": {
        "rate": 0.8, "horizon": 6, "mean_frames": 6, "min_frames": 4,
    },
    "flash-crowd": {
        "base": 2, "crowd": 3, "crowd_round": 2, "frames": 4, "scale": 27,
    },
    "sla-churn": {"rate": 1.0, "horizon": 8, "seed": 5, "initial": 4},
    "gold-rush": {
        "bronze": 4, "gold": 2, "crowd_round": 2, "frames": 6, "scale": 27,
    },
    "skewed-cluster": {"streams": 6, "frames": 4},
    "skewed-churn": {
        "rate": 1.0, "horizon": 6, "mean_frames": 6, "min_frames": 4,
        "initial": 2,
    },
    "shard-outage": {"streams": 6, "frames": 6},
    "flash-crowd-split": {
        "base": 2, "crowd": 4, "crowd_round": 2, "frames": 4,
    },
    "sla-skewed-cluster": {"streams": 8, "frames": 5},
    # open-ended sources run under an explicit max_rounds stop (added
    # by spec_for); small rate profiles keep the drain tail short
    "diurnal-live": {
        "base_rate": 0.4, "peak": 1.2, "period_rounds": 8,
        "loop_frames": 5,
    },
    "flash-live": {
        "base_rate": 0.3, "crowd_round": 3, "crowd_rate": 2.0,
        "crowd_width": 2, "loop_frames": 5,
    },
    "drift-live": {
        "start_rate": 0.3, "end_rate": 1.0, "drift_rounds": 8,
        "loop_frames": 5,
    },
    "diurnal-cluster": {
        "shards": 2, "base_rate": 0.4, "peak": 1.2, "period_rounds": 8,
        "loop_frames": 5, "provision_concurrency": 3.0,
    },
    "flash-cluster": {
        "shards": 2, "base_rate": 0.3, "crowd_round": 3, "crowd_rate": 2.0,
        "crowd_width": 2, "loop_frames": 5, "provision_concurrency": 3.0,
    },
    "drift-cluster": {
        "shards": 2, "start_rate": 0.3, "end_rate": 1.0, "drift_rounds": 8,
        "loop_frames": 5, "provision_concurrency": 3.0,
    },
}

FLEET_NAMES = sorted(
    n for n in SCENARIO_KWARGS if scenario_topology(n) == "fleet"
)
CLUSTER_NAMES = sorted(
    n for n in SCENARIO_KWARGS if scenario_topology(n) == "cluster"
)


def test_every_registered_scenario_is_covered():
    """A newly registered scenario must be added to this suite."""
    assert sorted(SCENARIO_KWARGS) == sorted(SCENARIOS.names())


def spec_for(name, engine):
    """A spec exercising SLA machinery where the scenario carries it."""
    topology = scenario_topology(name)
    spec = {
        "topology": topology,
        "scenario": {"name": name, "kwargs": SCENARIO_KWARGS[name]},
        "engine": engine,
    }
    if topology == "fleet":
        spec["capacity"] = 24e6
        spec["arbiter"] = "quality-fair"
        spec["admission"] = "feasibility"
        if name in ("sla-churn", "gold-rush"):
            spec |= {
                "arbiter": "sla-quality-fair",
                "admission": "priority",
                "renegotiation": {
                    "name": "step", "kwargs": {"patience": 1, "step": 0.2},
                },
            }
    else:
        spec["arbiter"] = "quality-fair"
        spec["placement"] = "best-fit"
        spec["migration"] = "load-balance"
        spec["balancer"] = "headroom"
        if name == "sla-skewed-cluster":
            spec |= {"arbiter": "sla-weighted", "placement": "sla-aware"}
        if scenario_open_ended(name):
            # under-provisioned + gated so queues form and the signal
            # autoscaler has pressure to act on mid-run
            spec["admission"] = "feasibility"
            spec["autoscaler"] = {
                "name": "signal",
                "kwargs": {"window": 4, "cooldown": 8, "sustain": 1,
                           "max_shards": 4},
            }
    if scenario_open_ended(name):
        spec["max_rounds"] = 12
    return spec


def run_with_log(name, engine):
    """Serve one scenario under enforcement, capturing the event log."""
    log = StructuredEventLog()
    result = serve(
        spec_for(name, engine),
        observers=[log, InvariantObserver(enforce=True)],
    )
    return result, log.to_jsonl()


def assert_values_equal(mine, theirs):
    assert len(mine) == len(theirs)
    for x, y in zip(mine, theirs):
        if isinstance(x, float) and math.isnan(x):
            assert isinstance(y, float) and math.isnan(y)
        else:
            assert x == y


def assert_results_identical(scalar, other):
    mine, theirs = scalar.summary(), other.summary()
    assert mine.keys() == theirs.keys()
    assert_values_equal(list(mine.values()), list(theirs.values()))
    assert_values_equal(
        scalar.per_stream_quality(), other.per_stream_quality()
    )
    assert_values_equal(scalar.per_stream_psnr(), other.per_stream_psnr())
    assert [o.spec.name for o in scalar.outcomes] == [
        o.spec.name for o in other.outcomes
    ]
    for a, b in zip(scalar.outcomes, other.outcomes):
        assert_values_equal(
            list(a.result.quality_series()), list(b.result.quality_series())
        )
        assert_values_equal(
            list(a.result.psnr_series()), list(b.result.psnr_series())
        )
    assert [s.name for s in scalar.rejected] == [
        s.name for s in other.rejected
    ]
    assert [s.name for s in scalar.preempted] == [
        s.name for s in other.preempted
    ]


@pytest.mark.parametrize("engine", ENGINES_UNDER_TEST)
@pytest.mark.parametrize("name", FLEET_NAMES)
def test_fleet_engine_bit_identical(name, engine):
    scalar, scalar_log = run_with_log(name, "scalar")
    other, other_log = run_with_log(name, engine)
    assert_results_identical(scalar, other)
    assert scalar_log == other_log


@pytest.mark.parametrize("engine", ENGINES_UNDER_TEST)
@pytest.mark.parametrize("name", CLUSTER_NAMES)
def test_cluster_engine_bit_identical(name, engine):
    scalar, scalar_log = run_with_log(name, "scalar")
    other, other_log = run_with_log(name, engine)
    assert_results_identical(scalar, other)
    assert scalar.raw.migrations == other.raw.migrations
    assert scalar.raw.shard_demand_cycles == other.raw.shard_demand_cycles
    for mine, theirs in zip(scalar.raw.shard_results, other.raw.shard_results):
        a, b = mine.summary(), theirs.summary()
        assert a.keys() == b.keys()
        assert_values_equal(list(a.values()), list(b.values()))
    assert scalar_log == other_log


def test_parallel_preserves_phase_timing():
    """Phase timings keep flowing when shards step on the worker pool."""
    from repro.obs import PerfObserver

    perf = PerfObserver()
    serve(spec_for("skewed-cluster", "parallel"), observers=[perf])
    assert perf.total_seconds > 0.0
    assert "step" in perf.seconds


def test_parallel_on_fleet_degrades_to_vectorized():
    """A fleet is one pool — ``parallel`` must run and match scalar."""
    scalar, scalar_log = run_with_log("steady", "scalar")
    par, par_log = run_with_log("steady", "parallel")
    assert_results_identical(scalar, par)
    assert scalar_log == par_log
