"""Policy registries: built-ins, plug-ins, and the legacy factory aliases."""

from __future__ import annotations

import pytest

from repro.cluster.migration import make_migration
from repro.cluster.placement import PlacementPolicy, make_placement
from repro.errors import ConfigurationError
from repro.serving import (
    ADMISSIONS,
    ARBITERS,
    BALANCERS,
    MIGRATIONS,
    PLACEMENTS,
    RENEGOTIATIONS,
    SCENARIOS,
    SLA_CLASSES,
    PolicyRegistry,
    ServingSpec,
    register_arbiter,
    register_placement,
    register_scenario,
    scenario_topology,
    serve,
)
from repro.streams.arbiter import (
    CapacityArbiter,
    EqualShareArbiter,
    QualityFairArbiter,
    make_arbiter,
)
from repro.streams.scenarios import steady_fleet


class TestBuiltins:
    def test_every_family_is_seeded(self):
        assert ARBITERS.names() == [
            "equal-share", "quality-fair", "sla-quality-fair",
            "sla-weighted", "weighted-share",
        ]
        assert ADMISSIONS.names() == ["feasibility", "none", "priority"]
        assert PLACEMENTS.names() == [
            "best-fit", "least-loaded", "predictive", "quality-aware",
            "round-robin", "sla-aware",
        ]
        assert MIGRATIONS.names() == [
            "load-balance", "none", "queue-rebalance", "sla-aware",
        ]
        assert "headroom" in BALANCERS
        assert SLA_CLASSES.names() == ["bronze", "gold", "silver"]
        assert "step" in RENEGOTIATIONS
        assert set(SCENARIOS.names()) >= {
            "steady", "heterogeneous-mix", "poisson-churn", "flash-crowd",
            "sla-churn", "gold-rush", "skewed-cluster", "skewed-churn",
            "shard-outage", "flash-crowd-split", "sla-skewed-cluster",
        }

    def test_create_passes_kwargs(self):
        arbiter = ARBITERS.create("quality-fair", pressure=3.0)
        assert isinstance(arbiter, QualityFairArbiter)
        assert arbiter.pressure == 3.0

    def test_admission_none_returns_ungated(self):
        assert ADMISSIONS.create("none", 1e6) is None

    def test_scenario_topology_tags(self):
        assert scenario_topology("steady") == "fleet"
        assert scenario_topology("skewed-cluster") == "cluster"

    def test_unknown_name_names_kind_and_candidates(self):
        with pytest.raises(ConfigurationError, match="arbiter 'nope'"):
            ARBITERS.create("nope")
        with pytest.raises(ConfigurationError, match="equal-share"):
            ARBITERS.create("nope")


class TestRegistration:
    def test_duplicate_rejected_unless_overwrite(self):
        registry = PolicyRegistry("widget")
        registry.register("a", object)
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register("a", object)
        registry.register("a", dict, overwrite=True)
        assert registry.factory("a") is dict

    def test_bad_names_and_factories_rejected(self):
        registry = PolicyRegistry("widget")
        with pytest.raises(ConfigurationError, match="non-empty string"):
            registry.register("", object)
        with pytest.raises(ConfigurationError, match="callable"):
            registry.register("a", 42)

    def test_unregister(self):
        registry = PolicyRegistry("widget")
        registry.register("a", object)
        registry.unregister("a")
        assert "a" not in registry
        with pytest.raises(ConfigurationError, match="unknown widget"):
            registry.unregister("a")

    def test_decorator_form(self):
        registry = PolicyRegistry("widget")

        @registry.register("fancy")
        class Fancy:
            pass

        assert registry.create("fancy").__class__ is Fancy


class TestThirdPartyPlugin:
    """A policy registered by name plugs into specs and serve()."""

    def test_custom_arbiter_drives_a_spec_end_to_end(self):
        @register_arbiter("test-greedy")
        class GreedyArbiter(CapacityArbiter):
            name = "test-greedy"

            def _surplus_shares(self, requests):
                # all surplus to the lexicographically first stream
                first = min(r.stream_id for r in requests)
                return [1.0 if r.stream_id == first else 0.0 for r in requests]

        try:
            result = serve({
                "scenario": {"name": "steady",
                             "kwargs": {"count": 2, "frames": 3}},
                "capacity": 32e6,
                "arbiter": "test-greedy",
                "admission": "none",
            })
            assert result.served_count == 2
            # the legacy factory alias sees the registration too
            assert isinstance(make_arbiter("test-greedy"), GreedyArbiter)
        finally:
            ARBITERS.unregister("test-greedy")

    def test_custom_scenario_registers_with_topology(self):
        register_scenario(
            "test-tiny", lambda: steady_fleet(1, frames=2), topology="fleet"
        )
        try:
            result = serve({
                "scenario": "test-tiny",
                "capacity": 16e6,
            })
            assert result.served_count == 1
        finally:
            SCENARIOS.unregister("test-tiny")

    def test_scenario_topology_validated(self):
        with pytest.raises(ConfigurationError, match="topology"):
            register_scenario("test-bad", lambda: None, topology="mesh")

    def test_unknown_policy_is_a_spec_error(self):
        with pytest.raises(ConfigurationError, match="arbiter"):
            ServingSpec.from_dict({
                "scenario": {"name": "steady", "kwargs": {"count": 1}},
                "capacity": 1e6,
                "arbiter": "not-registered",
            })


class TestLegacyAliases:
    """The pre-registry factories keep working, backed by the registries."""

    def test_make_arbiter(self):
        assert isinstance(make_arbiter("equal-share"), EqualShareArbiter)
        arbiter = make_arbiter("quality-fair", pressure=3.0)
        assert arbiter.pressure == 3.0
        with pytest.raises(ConfigurationError):
            make_arbiter("round-robin")  # a placement, not an arbiter

    def test_make_placement_and_migration(self):
        assert isinstance(make_placement("best-fit"), PlacementPolicy)
        assert make_migration("none").plan([], 0) == []
        with pytest.raises(ConfigurationError):
            make_placement("nope")
        with pytest.raises(ConfigurationError):
            make_migration("nope")

    def test_plugin_visible_through_alias(self):
        register_placement("test-alias-placement", PlacementPolicy)
        try:
            assert isinstance(
                make_placement("test-alias-placement"), PlacementPolicy
            )
        finally:
            PLACEMENTS.unregister("test-alias-placement")
