"""RoundObserver lifecycle hooks: coverage, payloads, and consistency."""

from __future__ import annotations

import math

from repro.serving import CountingObserver, RoundObserver, serve
from repro.streams.fleet import StreamOutcome

FLEET_SPEC = {
    "scenario": {"name": "flash-crowd",
                 "kwargs": {"base": 3, "crowd": 5, "crowd_round": 3,
                            "frames": 6, "scale": 27}},
    "capacity": 20e6,
    "arbiter": "quality-fair",
    "admission": "feasibility",
}

CLUSTER_SPEC = {
    "topology": "cluster",
    "scenario": {"name": "skewed-cluster",
                 "kwargs": {"streams": 8, "frames": 6}},
    "placement": "round-robin",
    "migration": "load-balance",
}

# overload + a bounded queue: priority admission preempts queued
# bronze when the gold crowd lands, and renegotiation steps targets
SLA_SPEC = {
    "scenario": {"name": "gold-rush",
                 "kwargs": {"bronze": 8, "gold": 3, "crowd_round": 2,
                            "frames": 6, "scale": 27}},
    "capacity": {"utilization": 0.35},
    "arbiter": "sla-quality-fair",
    "admission": {"name": "priority",
                  "kwargs": {"queue_limit": 2, "utilization_cap": 0.7}},
    "renegotiation": "step",
}


class RecordingObserver(RoundObserver):
    """Keeps full event payloads for payload-shape assertions."""

    def __init__(self) -> None:
        self.rounds = []
        self.admits = []
        self.rejects = []
        self.migrations = []
        self.renegotiations = []
        self.departs = []

    def on_round(self, round_index, allocations, capacity, shard_id=None):
        self.rounds.append((round_index, allocations, capacity, shard_id))

    def on_admit(self, spec, round_index, shard_id=None):
        self.admits.append((spec, round_index, shard_id))

    def on_reject(self, spec, round_index, shard_id=None):
        self.rejects.append((spec, round_index, shard_id))

    def on_migrate(self, move, round_index):
        self.migrations.append((move, round_index))

    def on_renegotiate(self, stream_id, old_target, new_target, round_index,
                       shard_id=None):
        self.renegotiations.append(
            (stream_id, old_target, new_target, round_index, shard_id)
        )

    def on_depart(self, outcome, round_index, shard_id=None):
        self.departs.append((outcome, round_index, shard_id))


class TestFleetHooks:
    def test_counts_match_result_bookkeeping(self):
        observer = CountingObserver()
        result = serve(FLEET_SPEC, observers=[observer])
        assert observer.admitted == result.served_count
        assert observer.rejected == result.rejected_count
        assert observer.departed == result.served_count
        assert observer.rounds == result.rounds
        assert observer.migrated == 0  # no migration in a single pool

    def test_payloads(self):
        observer = RecordingObserver()
        result = serve(FLEET_SPEC, observers=[observer])
        # fleet hooks carry shard_id=None
        assert all(r[3] is None for r in observer.rounds)
        assert all(a[2] is None for a in observer.admits)
        # allocations conserve the arbitrated pool on busy rounds
        capacity = result.runner.capacity
        busy = [r for r in observer.rounds if r[1]]
        assert busy, "expected at least one busy round"
        for _, allocations, pool, _ in busy:
            assert pool == capacity
            assert math.isclose(sum(allocations.values()), capacity)
        # departures carry full outcomes, in result order
        assert [d[0] for d in observer.departs] == result.outcomes
        assert all(isinstance(d[0], StreamOutcome) for d in observer.departs)
        # a queued stream's admit round can trail its arrival round
        waits = [
            admit_round - spec.arrival_round
            for spec, admit_round, _ in observer.admits
        ]
        assert all(w >= 0 for w in waits)
        assert any(w > 0 for w in waits), "flash crowd should queue someone"

    def test_every_observer_in_the_sequence_fires(self):
        first, second = CountingObserver(), CountingObserver()
        serve(FLEET_SPEC, observers=[first, second])
        assert first.counts() == second.counts()
        assert first.rounds > 0


class TestClusterHooks:
    def test_counts_match_result_bookkeeping(self):
        observer = CountingObserver()
        result = serve(CLUSTER_SPEC, observers=[observer])
        assert observer.admitted == result.served_count
        assert observer.rejected == result.rejected_count
        assert observer.departed == result.served_count
        # on_round fires once per round per shard
        assert observer.rounds == result.rounds * result.raw.shard_count
        assert observer.migrated == result.raw.migration_count
        assert observer.migrated > 0, "skewed round-robin should migrate"

    def test_shard_ids_tag_every_pool_event(self):
        observer = RecordingObserver()
        result = serve(CLUSTER_SPEC, observers=[observer])
        expected = {f"shard-{i}" for i in range(result.raw.shard_count)}
        assert {r[3] for r in observer.rounds} == expected
        assert {a[2] for a in observer.admits} <= expected
        assert {d[2] for d in observer.departs} <= expected
        # migration payloads are the executed moves, in order
        assert [m[0] for m in observer.migrations] == result.raw.migrations

    def test_migrated_stream_departs_from_destination_shard(self):
        observer = RecordingObserver()
        serve(CLUSTER_SPEC, observers=[observer])
        active_moves = [
            m for m, _ in observer.migrations if m.kind == "active"
        ]
        departed_at = {
            outcome.spec.name: shard_id
            for outcome, _, shard_id in observer.departs
        }
        for move in active_moves:
            # the stream finished somewhere, and if it never moved
            # again its departure shard is the move's destination
            assert move.stream_id in departed_at
            last_move = [
                m for m, _ in observer.migrations
                if m.stream_id == move.stream_id
            ][-1]
            assert departed_at[move.stream_id] == last_move.dest


class TestSlaAccounting:
    """Preempted queued specs: exactly one on_reject, counted once."""

    def test_preempted_specs_rejected_exactly_once(self):
        observer = RecordingObserver()
        counting = CountingObserver()
        result = serve(SLA_SPEC, observers=[observer, counting])
        preempted = result.preempted
        assert preempted, "the gold crowd should preempt queued bronze"
        # every preempted spec is also in the rejected totals — once
        assert result.rejected_count == len(result.rejected)
        rejected_names = [s.name for s in result.rejected]
        for spec in preempted:
            assert rejected_names.count(spec.name) == 1
        # observers saw each final rejection exactly once, preempted
        # included, and nothing else
        observed = [s.name for s, _, _ in observer.rejects]
        assert sorted(observed) == sorted(rejected_names)
        assert counting.rejected == result.rejected_count
        # bookkeeping identity: every offered stream is decided once
        offered = result.served_count + result.rejected_count
        assert counting.admitted == result.served_count
        assert counting.departed == result.served_count
        assert offered == 11
        # preempted streams never ran: no admit, no depart
        admitted_names = {s.name for s, _, _ in observer.admits}
        assert admitted_names.isdisjoint(s.name for s in preempted)

    def test_renegotiation_hook_matches_result_counts(self):
        observer = RecordingObserver()
        counting = CountingObserver()
        result = serve(SLA_SPEC, observers=[observer, counting])
        total = result.total_renegotiations()
        assert total > 0, "overload should trigger renegotiation"
        assert counting.renegotiated == total
        assert len(observer.renegotiations) == total
        # payloads are (stream, old, new) with a real step each time
        served_names = {o.spec.name for o in result.outcomes}
        for stream_id, old, new, _, shard_id in observer.renegotiations:
            assert stream_id in served_names
            assert new != old
            assert 0.0 <= new <= 1.0
            assert shard_id is None  # fleet topology
        # per-class totals agree with the hook stream ids
        by_class = result.per_class()
        reneg_names = {r[0] for r in observer.renegotiations}
        class_of_stream = {
            o.spec.name: o.spec.service_class for o in result.outcomes
        }
        for name in reneg_names:
            assert by_class[class_of_stream[name]]["renegotiations"] > 0


class TestBaseObserverIsNoOp:
    def test_hooks_exist_and_return_none(self):
        observer = RoundObserver()
        assert observer.on_round(0, {}, 1.0) is None
        assert observer.on_round(0, {}, 1.0, shard_id="s") is None
        assert observer.on_admit(None, 0) is None
        assert observer.on_reject(None, 0) is None
        assert observer.on_migrate(None, 0) is None
        assert observer.on_renegotiate("s", 0.8, 0.7, 0) is None
        assert observer.on_depart(None, 0) is None
