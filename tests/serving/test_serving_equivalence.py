"""serve(spec) is bit-identical to hand-constructing the runners.

The acceptance criterion of the serving-API redesign: for every
existing fleet and cluster scenario generator, the declarative path
(registry-resolved policies, spec-driven construction) reproduces the
imperative path (direct ``FleetRunner`` / ``ClusterRunner``
construction) exactly — same summaries, same per-stream series.  And
observers with no-op hooks change nothing.
"""

from __future__ import annotations

import pytest

from repro.cluster import (
    ClusterRunner,
    flash_crowd_split,
    shard_outage,
    skewed_cluster,
)
from repro.cluster.migration import make_migration
from repro.cluster.placement import make_placement
from repro.serving import RoundObserver, ServingSpec, serve
from repro.streams import AdmissionController, FleetRunner, make_arbiter
from repro.streams.scenarios import (
    flash_crowd,
    heterogeneous_mix,
    poisson_churn,
    steady_fleet,
)

# every fleet scenario generator, with small kwargs shared by both paths
FLEET_CASES = [
    ("steady", steady_fleet, {"count": 3, "frames": 4}),
    ("heterogeneous-mix", heterogeneous_mix, {"count": 4, "frames": 4}),
    (
        "poisson-churn",
        poisson_churn,
        {"rate": 0.8, "horizon": 6, "mean_frames": 6, "min_frames": 4},
    ),
    (
        "flash-crowd",
        flash_crowd,
        {"base": 2, "crowd": 3, "crowd_round": 2, "frames": 4, "scale": 27},
    ),
]

# every cluster scenario generator
CLUSTER_CASES = [
    ("skewed-cluster", skewed_cluster, {"streams": 6, "frames": 4}),
    ("shard-outage", shard_outage, {"streams": 6, "frames": 6}),
    (
        "flash-crowd-split",
        flash_crowd_split,
        {"base": 2, "crowd": 4, "crowd_round": 2, "frames": 4},
    ),
]

CAPACITY = 24e6


def assert_values_equal(mine, theirs):
    """Bit-identical comparison where nan == nan (idle pools, all-skip
    streams legitimately produce nan metrics on both paths)."""
    import math

    assert len(mine) == len(theirs)
    for x, y in zip(mine, theirs):
        if isinstance(x, float) and math.isnan(x):
            assert isinstance(y, float) and math.isnan(y)
        else:
            assert x == y


def assert_summaries_equal(mine, theirs):
    assert mine.keys() == theirs.keys()
    assert_values_equal(list(mine.values()), list(theirs.values()))


def assert_fleet_identical(served, direct):
    assert_summaries_equal(served.raw.summary(), direct.summary())
    assert_values_equal(
        served.raw.per_stream_quality(), direct.per_stream_quality()
    )
    assert_values_equal(served.raw.per_stream_psnr(), direct.per_stream_psnr())
    assert [o.spec.name for o in served.outcomes] == [
        o.spec.name for o in direct.streams
    ]


def assert_cluster_identical(served, direct):
    assert_summaries_equal(served.raw.summary(), direct.summary())
    assert_values_equal(
        served.raw.per_stream_quality(), direct.per_stream_quality()
    )
    assert served.raw.shard_demand_cycles == direct.shard_demand_cycles
    assert served.raw.migrations == direct.migrations
    for mine, theirs in zip(served.raw.shard_results, direct.shard_results):
        assert_summaries_equal(mine.summary(), theirs.summary())


@pytest.mark.parametrize(
    "name,generator,kwargs", FLEET_CASES, ids=[c[0] for c in FLEET_CASES]
)
def test_fleet_scenarios_equivalent(name, generator, kwargs):
    spec = ServingSpec.from_dict({
        "topology": "fleet",
        "scenario": {"name": name, "kwargs": kwargs},
        "capacity": CAPACITY,
        "arbiter": "quality-fair",
        "admission": "feasibility",
    })
    served = serve(spec)
    direct = FleetRunner(
        CAPACITY, make_arbiter("quality-fair"), AdmissionController(CAPACITY)
    ).run(generator(**kwargs))
    assert_fleet_identical(served, direct)


def test_fleet_without_admission_equivalent():
    kwargs = {"count": 3, "frames": 4}
    served = serve({
        "scenario": {"name": "steady", "kwargs": kwargs},
        "capacity": CAPACITY,
        "arbiter": "equal-share",
        "admission": "none",
    })
    direct = FleetRunner(CAPACITY, make_arbiter("equal-share")).run(
        steady_fleet(**kwargs)
    )
    assert_fleet_identical(served, direct)


def test_fleet_utilization_capacity_equivalent():
    kwargs = {"count": 3, "frames": 4}
    scenario = steady_fleet(**kwargs)
    served = serve({
        "scenario": {"name": "steady", "kwargs": kwargs},
        "capacity": {"utilization": 0.7},
        "arbiter": "weighted-share",
        "admission": "none",
    })
    direct = FleetRunner(
        0.7 * scenario.total_demand(), make_arbiter("weighted-share")
    ).run(scenario)
    assert_fleet_identical(served, direct)
    assert served.runner.capacity == 0.7 * scenario.total_demand()


@pytest.mark.parametrize(
    "name,generator,kwargs", CLUSTER_CASES, ids=[c[0] for c in CLUSTER_CASES]
)
def test_cluster_scenarios_equivalent(name, generator, kwargs):
    spec = ServingSpec.from_dict({
        "topology": "cluster",
        "scenario": {"name": name, "kwargs": kwargs},
        "placement": "best-fit",
        "migration": "load-balance",
        "balancer": "headroom",
    })
    served = serve(spec)
    from repro.cluster import HeadroomBalancer

    direct = ClusterRunner(
        placement=make_placement("best-fit"),
        migration=make_migration("load-balance"),
        balancer=HeadroomBalancer(),
    ).run(generator(**kwargs))
    assert_cluster_identical(served, direct)


def test_cluster_plain_equivalent():
    kwargs = {"streams": 6, "frames": 4}
    served = serve({
        "topology": "cluster",
        "scenario": {"name": "skewed-cluster", "kwargs": kwargs},
        "placement": "round-robin",
    })
    direct = ClusterRunner(placement=make_placement("round-robin")).run(
        skewed_cluster(**kwargs)
    )
    assert_cluster_identical(served, direct)


class TestNoOpObserversChangeNothing:
    def test_fleet(self):
        spec = {
            "scenario": {"name": "flash-crowd",
                         "kwargs": {"base": 2, "crowd": 2, "crowd_round": 2,
                                    "frames": 4, "scale": 27}},
            "capacity": 20e6,
        }
        bare = serve(spec)
        observed = serve(spec, observers=[RoundObserver(), RoundObserver()])
        assert bare.summary() == observed.summary()
        assert bare.per_stream_quality() == observed.per_stream_quality()

    def test_cluster(self):
        spec = {
            "topology": "cluster",
            "scenario": {"name": "skewed-cluster",
                         "kwargs": {"streams": 6, "frames": 4}},
            "placement": "best-fit",
            "migration": "load-balance",
        }
        bare = serve(spec)
        observed = serve(spec, observers=[RoundObserver()])
        assert bare.summary() == observed.summary()
        assert bare.raw.migrations == observed.raw.migrations


class TestServingRunnerProtocol:
    def test_both_runners_satisfy_the_protocol(self):
        from repro.cluster import RoundRobinPlacement
        from repro.serving import ServingRunner
        from repro.streams import QualityFairArbiter

        assert isinstance(
            FleetRunner(1e6, QualityFairArbiter()), ServingRunner
        )
        assert isinstance(ClusterRunner(RoundRobinPlacement()), ServingRunner)

    def test_build_runner_returns_protocol_instances(self):
        from repro.serving import ServingRunner, build_runner

        fleet = build_runner(ServingSpec(scenario="steady", capacity=1e6))
        assert isinstance(fleet, ServingRunner)
        cluster = build_runner(ServingSpec.from_dict({
            "topology": "cluster",
            "scenario": "skewed-cluster",
            "placement": "best-fit",
        }))
        assert isinstance(cluster, ServingRunner)


class TestServingResultUnification:
    """Shared accessors present and consistent across both topologies."""

    def test_summary_keys_identical(self):
        fleet = serve({
            "scenario": {"name": "steady", "kwargs": {"count": 2, "frames": 3}},
            "capacity": 32e6,
        })
        cluster = serve({
            "topology": "cluster",
            "scenario": {"name": "skewed-cluster",
                         "kwargs": {"streams": 4, "frames": 3}},
            "placement": "best-fit",
        })
        assert fleet.summary().keys() == cluster.summary().keys()
        assert fleet.topology == "fleet"
        assert cluster.topology == "cluster"
        for result in (fleet, cluster):
            assert result.served_count == len(result.outcomes)
            assert result.rejected_count == len(result.rejected)
            assert 0.0 <= result.acceptance_ratio <= 1.0
            assert result.total_frames() >= result.served_count
            assert 0.0 <= result.fairness_quality() <= 1.0
