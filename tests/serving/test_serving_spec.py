"""ServingSpec: JSON round trip, eager validation, field-precise errors."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.serving import PolicySpec, ServingSpec, serve

FLEET_DOC = {
    "topology": "fleet",
    "scenario": {"name": "flash-crowd",
                 "kwargs": {"base": 2, "crowd": 2, "crowd_round": 2,
                            "frames": 4, "scale": 27}},
    "capacity": 20e6,
    "arbiter": {"name": "quality-fair", "kwargs": {"pressure": 1.5}},
    "admission": "feasibility",
}

CLUSTER_DOC = {
    "topology": "cluster",
    "scenario": {"name": "skewed-cluster",
                 "kwargs": {"streams": 4, "frames": 4}},
    "placement": "best-fit",
    "migration": {"name": "load-balance",
                  "kwargs": {"max_moves_per_round": 1}},
    "balancer": "headroom",
}


class TestNormalization:
    def test_string_shorthand_becomes_policyspec(self):
        spec = ServingSpec.from_dict(FLEET_DOC)
        assert spec.admission == PolicySpec("feasibility")
        assert spec.arbiter == PolicySpec("quality-fair", {"pressure": 1.5})

    def test_defaults(self):
        spec = ServingSpec(
            scenario="steady", capacity=1e6
        )
        assert spec.topology == "fleet"
        assert spec.arbiter.name == "quality-fair"
        assert spec.admission.name == "feasibility"
        assert spec.placement is None

    def test_admission_null_means_ungated(self):
        spec = ServingSpec.from_dict(
            {**FLEET_DOC, "admission": None}
        )
        assert spec.admission is None


class TestJsonRoundTrip:
    @pytest.mark.parametrize("document", [FLEET_DOC, CLUSTER_DOC])
    def test_dict_and_json_round_trip_is_identity(self, document):
        spec = ServingSpec.from_dict(document)
        assert ServingSpec.from_dict(spec.to_dict()) == spec
        assert ServingSpec.from_json(spec.to_json()) == spec
        assert ServingSpec.from_json(spec.to_json(indent=2)) == spec

    def test_utilization_capacity_round_trips(self):
        spec = ServingSpec.from_dict(
            {**FLEET_DOC, "capacity": {"utilization": 0.5}}
        )
        again = ServingSpec.from_json(spec.to_json())
        assert again.capacity == {"utilization": 0.5}

    @pytest.mark.parametrize("document", [FLEET_DOC, CLUSTER_DOC])
    def test_round_tripped_spec_serves_bit_identically(self, document):
        spec = ServingSpec.from_dict(document)
        direct = serve(spec)
        reloaded = serve(ServingSpec.from_json(spec.to_json()))
        assert direct.summary() == reloaded.summary()
        assert direct.per_stream_quality() == reloaded.per_stream_quality()
        assert direct.per_stream_psnr() == reloaded.per_stream_psnr()

    def test_serve_accepts_json_text_and_mappings(self):
        spec = ServingSpec.from_dict(FLEET_DOC)
        from_text = serve(spec.to_json())
        from_dict = serve(FLEET_DOC)
        assert from_text.summary() == from_dict.summary()

    def test_invalid_json_text(self):
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            ServingSpec.from_json("{not json")

    def test_unserializable_kwargs_named(self):
        spec = ServingSpec.from_dict(
            {**FLEET_DOC, "arbiter": {"name": "quality-fair",
                                      "kwargs": {"pressure": {1, 2}}}}
        )
        with pytest.raises(ConfigurationError, match="JSON-serializable"):
            spec.to_json()


class TestValidationErrorsNameTheField:
    def expect(self, document, field):
        with pytest.raises(ConfigurationError, match=field):
            ServingSpec.from_dict(document)

    def test_unknown_scenario(self):
        self.expect({**FLEET_DOC, "scenario": "warp-drive"}, "scenario")

    def test_topology_scenario_mismatch(self):
        self.expect(
            {**FLEET_DOC, "scenario": CLUSTER_DOC["scenario"]},
            r"scenario.*cluster scenario.*'fleet'",
        )
        self.expect(
            {**CLUSTER_DOC, "scenario": FLEET_DOC["scenario"]},
            r"scenario.*fleet scenario.*'cluster'",
        )

    def test_bad_topology(self):
        self.expect({**FLEET_DOC, "topology": "mesh"}, "topology")

    def test_negative_capacity(self):
        self.expect({**FLEET_DOC, "capacity": -5.0}, "capacity.*positive")

    def test_missing_fleet_capacity(self):
        self.expect({**FLEET_DOC, "capacity": None}, "capacity.*required")

    def test_cluster_capacity_forbidden(self):
        self.expect(
            {**CLUSTER_DOC, "capacity": 1e6}, "capacity.*shard capacities"
        )

    def test_bad_utilization(self):
        self.expect(
            {**FLEET_DOC, "capacity": {"utilization": -0.1}}, "utilization"
        )
        self.expect(
            {**FLEET_DOC, "capacity": {"fraction": 0.5}}, "capacity"
        )

    def test_unknown_policy_names(self):
        self.expect({**FLEET_DOC, "arbiter": "nope"}, "arbiter")
        self.expect({**FLEET_DOC, "admission": "nope"}, "admission")
        self.expect({**CLUSTER_DOC, "placement": "nope"}, "placement")
        self.expect({**CLUSTER_DOC, "migration": "nope"}, "migration")
        self.expect({**CLUSTER_DOC, "balancer": "nope"}, "balancer")

    def test_fleet_forbids_cluster_policies(self):
        self.expect({**FLEET_DOC, "placement": "best-fit"}, "placement")
        self.expect({**FLEET_DOC, "migration": "none"}, "migration")
        self.expect({**FLEET_DOC, "balancer": "headroom"}, "balancer")

    def test_cluster_requires_placement(self):
        document = dict(CLUSTER_DOC)
        del document["placement"]
        self.expect(document, "placement.*required")

    def test_bad_controller_settings(self):
        self.expect(
            {**FLEET_DOC, "constraint_mode": "strict"}, "constraint_mode"
        )
        self.expect({**FLEET_DOC, "granularity": 0}, "granularity")
        self.expect({**FLEET_DOC, "max_rounds": 0}, "max_rounds")

    def test_booleans_rejected_for_numeric_fields(self):
        # JSON true/false must not slip through int/float checks
        self.expect({**FLEET_DOC, "granularity": True}, "granularity")
        self.expect({**FLEET_DOC, "max_rounds": True}, "max_rounds")
        self.expect({**FLEET_DOC, "capacity": True}, "capacity")
        self.expect(
            {**FLEET_DOC, "capacity": {"utilization": True}}, "utilization"
        )

    def test_unknown_top_level_field(self):
        self.expect({**FLEET_DOC, "shards": 3}, "unknown ServingSpec field")

    def test_missing_scenario(self):
        self.expect({"capacity": 1e6}, "scenario.*required")

    def test_malformed_policy_value(self):
        self.expect({**FLEET_DOC, "arbiter": 42}, "arbiter")
        self.expect(
            {**FLEET_DOC, "arbiter": {"kwargs": {}}}, "arbiter.*name"
        )
        self.expect(
            {**FLEET_DOC, "arbiter": {"name": "quality-fair", "extra": 1}},
            "arbiter.*unexpected",
        )


SLA_DOC = {
    "topology": "fleet",
    "scenario": {"name": "gold-rush",
                 "kwargs": {"bronze": 3, "gold": 2, "crowd_round": 1,
                            "frames": 4, "scale": 27}},
    "capacity": 20e6,
    "arbiter": "sla-quality-fair",
    "admission": {"name": "priority", "kwargs": {"queue_limit": 2}},
    "renegotiation": {"name": "step", "kwargs": {"patience": 2}},
    "service_classes": [
        {"name": "gold", "weight": 4.0, "admission_priority": 2,
         "min_quality": 0.4, "target_quality": 0.9, "preempt": True},
        "bronze",
    ],
}


class TestSlaFields:
    def test_service_classes_resolve_eagerly(self):
        from repro.sla import BRONZE, ServiceClass

        spec = ServingSpec.from_dict(SLA_DOC)
        assert all(
            isinstance(c, ServiceClass) for c in spec.service_classes
        )
        # registered names resolve to the catalog entries
        assert spec.service_classes[1] == BRONZE
        assert spec.renegotiation == PolicySpec("step", {"patience": 2})

    def test_sla_document_round_trips(self):
        spec = ServingSpec.from_dict(SLA_DOC)
        assert ServingSpec.from_dict(spec.to_dict()) == spec
        assert ServingSpec.from_json(spec.to_json()) == spec
        direct = serve(spec)
        reloaded = serve(ServingSpec.from_json(spec.to_json()))
        assert direct.summary() == reloaded.summary()
        assert direct.per_class() == reloaded.per_class()

    def test_validation_errors_name_the_field(self):
        def expect(document, field):
            with pytest.raises(ConfigurationError, match=field):
                ServingSpec.from_dict(document)

        expect({**SLA_DOC, "renegotiation": "nope"}, "renegotiation")
        expect({**SLA_DOC, "service_classes": "gold"}, "service_classes")
        expect({**SLA_DOC, "service_classes": []}, "service_classes")
        expect(
            {**SLA_DOC, "service_classes": ["no-such-tier"]},
            "service_classes.*unknown",
        )
        expect(
            {**SLA_DOC, "service_classes": ["gold", "gold"]},
            "service_classes.*duplicate",
        )
        expect(
            {**SLA_DOC,
             "service_classes": [{"name": "x", "weight": -1.0}]},
            "service_classes.*weight",
        )
        expect({**SLA_DOC, "service_classes": [42]}, "service_classes")
