"""Runner reset(): one instance serves many scenarios without state bleed."""

from __future__ import annotations

from repro.cluster import ClusterRunner, skewed_cluster
from repro.cluster.migration import make_migration
from repro.cluster.placement import make_placement
from repro.streams import AdmissionController, FleetRunner, make_arbiter
from repro.streams.scenarios import flash_crowd, steady_fleet

CAPACITY = 20e6


def flash_scenario():
    return flash_crowd(base=2, crowd=4, crowd_round=2, frames=4, scale=27)


def fleet_runner():
    return FleetRunner(
        CAPACITY, make_arbiter("quality-fair"), AdmissionController(CAPACITY)
    )


class TestAdmissionControllerReset:
    def test_restores_pristine_state(self):
        admission = AdmissionController(CAPACITY)
        for spec in flash_scenario().specs:
            admission.offer(spec)
        assert admission.committed > 0
        assert (
            admission.accepted_count
            + admission.queued_count
            + admission.rejected_count
            > 0
        )
        admission.reset()
        fresh = AdmissionController(CAPACITY)
        assert admission.committed == fresh.committed == 0.0
        assert list(admission.queue) == []
        assert admission.accepted_count == 0
        assert admission.rejected_count == 0
        assert admission.queued_count == 0
        assert admission.remaining == fresh.remaining


class TestFleetRunnerReset:
    def test_back_to_back_runs_bit_identical_to_fresh(self):
        scenario = flash_scenario()
        runner = fleet_runner()
        first = runner.run(scenario)
        runner.reset()
        second = runner.run(scenario)
        fresh = fleet_runner().run(scenario)
        assert first.summary() == second.summary() == fresh.summary()
        assert (
            first.per_stream_quality()
            == second.per_stream_quality()
            == fresh.per_stream_quality()
        )
        assert (
            first.per_stream_psnr()
            == second.per_stream_psnr()
            == fresh.per_stream_psnr()
        )

    def test_implicit_reset_on_run(self):
        # run() self-resets on entry (matching ClusterRunner), so even
        # without an explicit reset() admission state cannot leak
        scenario = flash_scenario()
        runner = fleet_runner()
        first = runner.run(scenario)
        second = runner.run(scenario)
        assert first.summary() == second.summary()
        # post-run admission counters reflect the last run only
        assert runner.admission.accepted_count == second.served_count

    def test_reset_clears_admission_counters(self):
        runner = fleet_runner()
        runner.run(flash_scenario())
        assert runner.admission.accepted_count > 0
        runner.reset()
        assert runner.admission.accepted_count == 0
        assert runner.admission.committed == 0.0

    def test_reset_allows_switching_scenarios(self):
        runner = fleet_runner()
        runner.run(flash_scenario())
        runner.reset()
        steady = runner.run(steady_fleet(2, frames=3))
        fresh = fleet_runner().run(steady_fleet(2, frames=3))
        assert steady.summary() == fresh.summary()

    def test_reset_without_admission_is_a_no_op(self):
        runner = FleetRunner(CAPACITY, make_arbiter("equal-share"))
        scenario = steady_fleet(2, frames=3)
        first = runner.run(scenario)
        runner.reset()
        assert runner.run(scenario).summary() == first.summary()


class TestClusterRunnerReset:
    def build(self):
        return ClusterRunner(
            placement=make_placement("round-robin"),
            migration=make_migration("load-balance"),
        )

    def test_back_to_back_runs_bit_identical_to_fresh(self):
        scenario = skewed_cluster(streams=6, frames=4)
        runner = self.build()
        first = runner.run(scenario)
        # run() resets on entry, and reset() is public for callers
        runner.reset()
        second = runner.run(scenario)
        fresh = self.build().run(scenario)
        assert first.summary() == second.summary() == fresh.summary()
        assert first.migrations == second.migrations == fresh.migrations
        assert (
            first.shard_demand_cycles
            == second.shard_demand_cycles
            == fresh.shard_demand_cycles
        )

    def test_implicit_reset_on_run(self):
        # even without an explicit reset() call, run() self-resets so
        # policy state (round-robin rotation, migration residency)
        # cannot leak between runs
        scenario = skewed_cluster(streams=6, frames=4)
        runner = self.build()
        first = runner.run(scenario)
        second = runner.run(scenario)
        assert first.summary() == second.summary()

    def test_reset_clears_policy_state(self):
        runner = self.build()
        runner.run(skewed_cluster(streams=6, frames=4))
        runner.placement._next = 99
        runner.migration._moved_at = {"ghost": 3}
        runner.reset()
        assert runner.placement._next == 0
        assert runner.migration._moved_at == {}
