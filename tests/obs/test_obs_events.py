"""The structured event log: lossless round trips, deterministic bytes."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    AdmitEvent,
    AlertEvent,
    DepartEvent,
    RejectEvent,
    RoundEvent,
    ScaleEvent,
    StructuredEventLog,
    event_from_dict,
    event_to_line,
    events_to_jsonl,
    load_events,
    parse_events,
)
from repro.serving import serve

SLA_SPEC = {
    "scenario": {"name": "gold-rush",
                 "kwargs": {"bronze": 4, "gold": 2, "crowd_round": 2,
                            "frames": 6, "scale": 27}},
    "capacity": {"utilization": 1 / 1.5},
    "arbiter": "sla-quality-fair",
    "admission": "priority",
    "renegotiation": {"name": "step", "kwargs": {"patience": 1, "step": 0.3}},
    "service_classes": ["gold", "silver", "bronze"],
}

CLUSTER_SPEC = {
    "topology": "cluster",
    "scenario": {"name": "skewed-cluster",
                 "kwargs": {"streams": 6, "frames": 4}},
    "placement": "best-fit",
    "migration": "load-balance",
}


def _run(spec):
    log = StructuredEventLog()
    serve(spec, observers=[log])
    return log


class TestRoundTrip:
    def test_sla_run_round_trips_losslessly(self):
        log = _run(SLA_SPEC)
        text = log.to_jsonl()
        assert parse_events(text) == log.events

    def test_cluster_run_round_trips_losslessly(self):
        log = _run(CLUSTER_SPEC)
        assert parse_events(log.to_jsonl()) == log.events

    def test_reserialization_is_identity(self):
        log = _run(SLA_SPEC)
        text = log.to_jsonl()
        assert events_to_jsonl(parse_events(text)) == text

    def test_two_identical_runs_are_byte_identical(self):
        assert _run(SLA_SPEC).to_jsonl() == _run(SLA_SPEC).to_jsonl()
        assert _run(CLUSTER_SPEC).to_jsonl() == _run(CLUSTER_SPEC).to_jsonl()

    def test_load_events_reads_dump(self, tmp_path):
        log = _run(SLA_SPEC)
        path = log.dump(tmp_path / "events.jsonl")
        assert load_events(path) == log.events

    def test_streaming_path_matches_dump(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        log = StructuredEventLog(path=path)
        serve(SLA_SPEC, observers=[log])
        # serve() closed the handle; the streamed file equals to_jsonl()
        assert path.read_text() == log.to_jsonl()

    def test_alert_event_round_trips(self):
        import json

        event = AlertEvent(
            round=42, shard=None, slo="gold-quality", state="firing",
            fast_burn=5.25, slow_burn=2.5, budget_remaining=-0.125,
        )
        back = event_from_dict(json.loads(event_to_line(event)))
        assert back == event and back.kind == "alert"

    def test_scale_event_keeps_its_action_id(self):
        import json

        event = ScaleEvent(
            round=7, shard=None, action="add",
            sources=("shard-0",), capacities=(16e6,),
            created=("shard-2",), reason="sustained pressure",
            action_id="scale-3",
        )
        back = event_from_dict(json.loads(event_to_line(event)))
        assert back == event and back.action_id == "scale-3"

    def test_declared_slos_interleave_alerts_into_the_log(self):
        spec = dict(SLA_SPEC)
        spec["capacity"] = {"utilization": 0.4}
        spec["slos"] = [{
            "name": "any-quality", "objective": "quality",
            "threshold": 0.8, "target": 0.9,
            "fast_window": 3, "slow_window": 8, "burn_threshold": 1.5,
        }]
        log = _run(spec)
        alerts = [e for e in log.events if isinstance(e, AlertEvent)]
        assert alerts and alerts[0].state == "firing"
        # interleaved deterministically and round-trippable in place
        assert parse_events(log.to_jsonl()) == log.events
        assert _run(spec).to_jsonl() == log.to_jsonl()

    def test_nan_quality_serializes_as_null(self):
        event = DepartEvent(
            round=3, shard=None, stream="s", service_class=None,
            admitted_round=0, frames=2, skips=2, deadline_misses=0,
            renegotiations=0, mean_quality=None,
            quality_timeline=(math.nan, 1.0),
        )
        line = event_to_line(event)
        assert "NaN" not in line and "null" in line
        back = event_from_dict(__import__("json").loads(line))
        assert back.quality_timeline == (None, 1.0)


class TestEventStream:
    def test_sla_run_emits_every_lifecycle_kind(self):
        log = _run(SLA_SPEC)
        kinds = {event.kind for event in log.events}
        assert {"capacity", "round", "admit", "renegotiate",
                "depart"} <= kinds

    def test_overloaded_run_emits_rejections_and_preemptions(self):
        spec = dict(SLA_SPEC)
        spec["scenario"] = {
            "name": "gold-rush",
            "kwargs": {"bronze": 8, "gold": 3, "crowd_round": 2,
                       "frames": 6, "scale": 27},
        }
        spec["capacity"] = {"utilization": 0.35}
        spec["admission"] = {
            "name": "priority",
            "kwargs": {"queue_limit": 2, "utilization_cap": 0.7},
        }
        log = _run(spec)
        rejects = [e for e in log.events if isinstance(e, RejectEvent)]
        preempts = [e for e in log.events if e.kind == "preempt"]
        assert rejects and preempts
        # every preemption pairs with a rejection of the same stream
        rejected = {e.stream for e in rejects}
        assert {e.stream for e in preempts} <= rejected

    def test_cluster_run_tags_shards_and_migrations(self):
        log = _run(CLUSTER_SPEC)
        rounds = [e for e in log.events if isinstance(e, RoundEvent)]
        assert rounds and all(e.shard is not None for e in rounds)
        migrates = [e for e in log.events if e.kind == "migrate"]
        assert migrates and all(
            e.shard != e.dest and e.move_kind in ("queued", "active")
            for e in migrates
        )

    def test_round_allocations_are_key_sorted(self):
        log = _run(SLA_SPEC)
        for event in log.events:
            if isinstance(event, RoundEvent) and event.allocations:
                keys = list(event.to_dict()["allocations"])
                assert keys == sorted(keys)

    def test_timelines_disabled_drops_the_bulk(self):
        lean = StructuredEventLog(timelines=False)
        serve(SLA_SPEC, observers=[lean])
        departs = [e for e in lean.events if isinstance(e, DepartEvent)]
        assert departs and all(e.quality_timeline == () for e in departs)
        assert all(e.mean_quality is not None for e in departs)


class TestLoaderValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown event kind"):
            event_from_dict({"event": "nope", "round": 0, "shard": None})

    def test_missing_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="'event' kind"):
            event_from_dict({"round": 0})

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fields"):
            event_from_dict({
                "event": "admit", "round": 0, "shard": None, "stream": "s",
                "service_class": None, "arrival_round": 0, "weight": 1.0,
                "demand": 1.0, "frames": 4, "extra": True,
            })

    def test_missing_field_rejected(self):
        with pytest.raises(ConfigurationError, match="missing fields"):
            event_from_dict({"event": "admit", "round": 0, "shard": None})

    def test_bad_json_line_is_numbered(self):
        good = event_to_line(AdmitEvent(
            round=0, shard=None, stream="s", service_class=None,
            arrival_round=0, weight=1.0, demand=1.0, frames=4,
        ))
        with pytest.raises(ConfigurationError, match="line 2"):
            parse_events(good + "\n{not json\n")

    def test_blank_lines_skipped(self):
        good = event_to_line(AdmitEvent(
            round=0, shard=None, stream="s", service_class=None,
            arrival_round=0, weight=1.0, demand=1.0, frames=4,
        ))
        events = parse_events("\n" + good + "\n\n")
        assert len(events) == 1 and isinstance(events[0], AdmitEvent)
