"""Incident attribution: cause classification, ranking, round trips."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    CauseShare,
    Incident,
    SloObserver,
    SloSpec,
    TraceObserver,
    attribute_incidents,
)
from repro.obs.attribution import _classify, tracker_window
from repro.serving import serve


def make_tracer(**overrides):
    """A minimal stand-in exposing the history ``_classify`` reads."""
    base = dict(
        dips=[], arrivals={}, last_round=0, migration_rounds=[],
        down_steps=[], scale_actions=[],
    )
    base.update(overrides)
    return SimpleNamespace(**base)


def classify(tracer, unit_round=20, slo_class="gold", lookback=10):
    return _classify(
        unit_round, slo_class, tracer, lookback,
        burst_factor=2.5, storm_moves=6, cascade_steps=4,
    )


class TestClassifierPrecedence:
    def test_capacity_dip_wins(self):
        tracer = make_tracer(
            dips=[{"id": "capacity-dip@A:15", "round": 15, "shard": "A",
                   "before": 100.0, "after": 40.0}],
            arrivals={r: 10 for r in range(15, 21)},
            last_round=20,
            migration_rounds=list(range(11, 21)),
            down_steps=[(r, "gold") for r in range(15, 21)],
        )
        kind, why = classify(tracer)
        assert kind == "capacity-dip"
        assert "A" in why and "15" in why

    def test_dip_outside_the_lookback_does_not_count(self):
        tracer = make_tracer(
            dips=[{"id": "capacity-dip@A:5", "round": 5, "shard": "A",
                   "before": 100.0, "after": 40.0}],
            last_round=20,
        )
        kind, _ = classify(tracer)
        assert kind == "unattributed"

    def test_arrival_burst_is_windowed_against_the_mean(self):
        # a long ~1.3/round baseline, then 40 arrivals land in the
        # 10-round window — well past 2.5x the mean-rate expectation
        arrivals = {r: 1 for r in range(101)}
        arrivals.update({98: 11, 99: 12, 100: 11})
        tracer = make_tracer(arrivals=arrivals, last_round=100)
        kind, why = classify(tracer, unit_round=100)
        assert kind == "arrival-burst"
        assert "expected at the mean rate" in why

    def test_a_lone_busy_round_is_not_a_burst(self):
        arrivals = {r: 1 for r in range(21)}
        arrivals[20] = 3
        tracer = make_tracer(arrivals=arrivals, last_round=20)
        kind, _ = classify(tracer)
        assert kind == "unattributed"

    def test_migration_storm(self):
        tracer = make_tracer(
            migration_rounds=[14, 15, 16, 17, 18, 19, 20],
            last_round=20,
        )
        kind, why = classify(tracer)
        assert kind == "migration-storm"
        assert "7 migration moves" in why

    def test_scale_lag_when_the_scaler_arrives_late(self):
        tracer = make_tracer(
            down_steps=[(16, "gold"), (17, "gold")],
            scale_actions=[{"round": 19, "action_id": "scale-1",
                            "kind": "add", "reason": "pressure"}],
            last_round=20,
        )
        kind, why = classify(tracer)
        assert kind == "scale-lag"
        assert "scale-1" in why

    def test_scale_lag_during_cooldown(self):
        # an autoscaler exists (it acted earlier) but no scale-up
        # landed inside the window
        tracer = make_tracer(
            down_steps=[(16, "gold"), (17, "gold")],
            scale_actions=[{"round": 2, "action_id": "scale-0",
                            "kind": "add", "reason": "pressure"}],
            last_round=20,
        )
        kind, why = classify(tracer)
        assert kind == "scale-lag"
        assert "cooldown" in why

    def test_capacity_shortfall_when_capacity_is_flat(self):
        tracer = make_tracer(
            down_steps=[(16, "gold"), (18, "gold")],
            last_round=20,
        )
        kind, why = classify(tracer)
        assert kind == "capacity-shortfall"
        assert "stayed flat" in why

    def test_down_steps_of_other_classes_are_not_pressure(self):
        tracer = make_tracer(
            down_steps=[(16, "bronze"), (18, "bronze")],
            last_round=20,
        )
        kind, _ = classify(tracer)
        assert kind == "unattributed"

    def test_classless_slo_feels_every_down_step(self):
        tracer = make_tracer(
            down_steps=[(16, "bronze"), (18, "bronze")],
            last_round=20,
        )
        kind, _ = classify(tracer, slo_class=None)
        assert kind == "capacity-shortfall"

    def test_nothing_in_the_window_is_unattributed(self):
        kind, why = classify(make_tracer(last_round=20))
        assert kind == "unattributed"
        assert "no recorded cause" in why


class TestRoundTrips:
    CAUSE = CauseShare(kind="capacity-dip", share=0.75, units=3,
                       evidence="capacity on A dropped 100 -> 40 at round 5")
    INCIDENT = Incident(
        slo="gold-quality", alert_round=20, window_start=1, window_end=20,
        units=12, bad_units=4, burn_multiple=3.3,
        causes=(
            CAUSE,
            CauseShare(kind="unattributed", share=0.25, units=1,
                       evidence="no recorded cause in the lookback window"),
        ),
    )

    def test_cause_share_round_trips(self):
        assert CauseShare.from_dict(self.CAUSE.to_dict()) == self.CAUSE

    def test_incident_round_trips(self):
        assert Incident.from_dict(self.INCIDENT.to_dict()) == self.INCIDENT

    def test_top_cause_is_the_ranked_head(self):
        assert self.INCIDENT.top_cause == "capacity-dip"
        empty = Incident(
            slo="x", alert_round=0, window_start=0, window_end=0,
            units=0, bad_units=0, burn_multiple=0.0, causes=(),
        )
        assert empty.top_cause is None

    def test_unknown_cause_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown cause kind"):
            CauseShare(kind="gremlins", share=1.0, units=1, evidence="?")

    def test_unknown_fields_rejected(self):
        payload = self.CAUSE.to_dict()
        payload["extra"] = 1
        with pytest.raises(ConfigurationError, match="unknown fields"):
            CauseShare.from_dict(payload)
        with pytest.raises(ConfigurationError, match="missing fields"):
            Incident.from_dict({"slo": "x", "causes": []})

    def test_incident_causes_must_be_a_list(self):
        payload = self.INCIDENT.to_dict()
        payload["causes"] = "capacity-dip"
        with pytest.raises(ConfigurationError, match="causes must be a list"):
            Incident.from_dict(payload)


STARVED_SPEC = {
    "scenario": {"name": "gold-rush",
                 "kwargs": {"bronze": 6, "gold": 2, "crowd_round": 2,
                            "frames": 8, "scale": 27}},
    "capacity": {"utilization": 0.4},
    "arbiter": "sla-quality-fair",
    "admission": "priority",
    "renegotiation": {"name": "step", "kwargs": {"patience": 1, "step": 0.3}},
    "service_classes": ["gold", "silver", "bronze"],
}

STARVED_SLO = SloSpec(
    name="any-quality", objective="quality", threshold=0.8, target=0.9,
    fast_window=3, slow_window=8, burn_threshold=1.5,
)


def run_starved():
    slo = SloObserver([STARVED_SLO],
                      classes=STARVED_SPEC["service_classes"])
    tracer = TraceObserver()
    serve(STARVED_SPEC, observers=[slo, tracer])
    slo.close()
    return slo, tracer


class TestAttributeIncidents:
    def test_every_firing_alert_becomes_an_incident(self):
        slo, tracer = run_starved()
        firing = [a for a in slo.alerts if a.state == "firing"]
        assert firing  # the starved run must actually burn
        incidents = attribute_incidents(slo, tracer)
        assert len(incidents) == len(firing)
        for alert, incident in zip(firing, incidents):
            assert incident.slo == alert.slo == "any-quality"
            assert incident.alert_round == alert.round
            assert incident.window_start == max(
                0, alert.round - STARVED_SLO.slow_window + 1
            )
            assert incident.window_end == alert.round

    def test_shares_partition_the_burned_budget(self):
        slo, tracer = run_starved()
        for incident in attribute_incidents(slo, tracer):
            assert incident.bad_units > 0
            assert incident.units >= incident.bad_units
            assert sum(c.share for c in incident.causes) == pytest.approx(1.0)
            assert sum(c.units for c in incident.causes) == incident.bad_units
            shares = [c.share for c in incident.causes]
            assert shares == sorted(shares, reverse=True)
            for cause in incident.causes:
                assert cause.evidence
            assert incident.burn_multiple > 0

    def test_attribution_is_pure_and_deterministic(self):
        slo, tracer = run_starved()
        first = attribute_incidents(slo, tracer)
        again = attribute_incidents(slo, tracer)
        assert first == again
        slo2, tracer2 = run_starved()
        second = attribute_incidents(slo2, tracer2)
        assert [i.to_dict() for i in first] == [i.to_dict() for i in second]

    def test_incidents_round_trip_through_dicts(self):
        slo, tracer = run_starved()
        for incident in attribute_incidents(slo, tracer):
            assert Incident.from_dict(incident.to_dict()) == incident

    def test_tracker_window_rebuilds_sealed_buckets(self):
        slo, _ = run_starved()
        tracker = slo.trackers["any-quality"]
        window = tracker_window(tracker, 0, tracker.spec.slow_window)
        assert window
        rounds = [r for r, _, _ in window]
        assert rounds == sorted(rounds)
        for r, units, bad in window:
            assert 0 <= bad <= units
        assert sum(units for _, units, _ in window) == sum(
            1 for r, _, _ in tracker.unit_log
            if 0 <= r <= tracker.spec.slow_window
        )
