"""The invariant ledger: broken engines are caught with named violations."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    INVARIANTS,
    GrantConservation,
    Invariant,
    InvariantObserver,
    InvariantViolationError,
    register_invariant,
)
from repro.serving import ServingSpec, register_arbiter, serve
from repro.streams.arbiter import CapacityArbiter

SLA_SPEC = {
    "scenario": {"name": "gold-rush",
                 "kwargs": {"bronze": 4, "gold": 2, "crowd_round": 2,
                            "frames": 6, "scale": 27}},
    "capacity": {"utilization": 1 / 1.5},
    "arbiter": "sla-quality-fair",
    "admission": "priority",
    "renegotiation": {"name": "step", "kwargs": {"patience": 1, "step": 0.3}},
    "service_classes": ["gold", "silver", "bronze"],
}


class OverAllocatingArbiter(CapacityArbiter):
    """Deliberately broken: grants every stream the whole pool."""

    name = "over-allocating"

    def allocate(self, requests, capacity):
        return {r.stream_id: capacity for r in requests}


@pytest.fixture
def broken_arbiter():
    register_arbiter("over-allocating", OverAllocatingArbiter, overwrite=True)
    yield
    from repro.serving import ARBITERS

    ARBITERS.unregister("over-allocating")


class TestLedger:
    def test_clean_run_holds_every_registered_invariant(self):
        observer = InvariantObserver()
        serve(SLA_SPEC, observers=[observer])
        assert observer.ok
        ledger = observer.ledger()
        assert set(ledger) == set(INVARIANTS.names())
        assert all(entry["holds"] for entry in ledger.values())
        assert all(entry["violations"] == 0 for entry in ledger.values())

    def test_invariant_selection_by_name_class_instance(self):
        observer = InvariantObserver(invariants=[
            "grant-conservation", GrantConservation, GrantConservation(),
        ])
        assert len(observer.invariants) == 3
        with pytest.raises(ConfigurationError, match="must be registered"):
            InvariantObserver(invariants=[42])
        with pytest.raises(ConfigurationError, match="unknown invariant"):
            InvariantObserver(invariants=["nope"])

    def test_third_party_invariant_registers(self):
        class NoThirteenthRound(Invariant):
            name = "no-thirteenth-round"

            def on_round(self, round_index, allocations, capacity,
                         shard_id=None):
                if round_index == 13:
                    self.violation("round 13 happened",
                                   round_index=round_index)

        register_invariant("no-thirteenth-round", NoThirteenthRound)
        try:
            observer = InvariantObserver(invariants=["no-thirteenth-round"])
            observer.on_round(13, {}, 1.0)
            assert [v.invariant for v in observer.violations] == [
                "no-thirteenth-round"
            ]
        finally:
            INVARIANTS.unregister("no-thirteenth-round")


class TestBrokenEngines:
    def test_broken_arbiter_caught_with_named_violation(self, broken_arbiter):
        """The acceptance criterion: a deliberately broken arbiter is
        caught by the ledger with a named grant-conservation violation."""
        spec = dict(SLA_SPEC) | {
            "arbiter": "over-allocating", "admission": "feasibility",
            "renegotiation": None, "service_classes": None,
        }
        observer = InvariantObserver()
        serve(spec, observers=[observer])
        assert not observer.ok
        names = {v.invariant for v in observer.violations}
        assert "grant-conservation" in names
        violation = next(
            v for v in observer.violations
            if v.invariant == "grant-conservation"
        )
        assert "sum" in violation.detail
        assert violation.round_index is not None
        assert not observer.ledger()["grant-conservation"]["holds"]

    def test_enforcement_raises_at_first_violation(self, broken_arbiter):
        spec = dict(SLA_SPEC) | {
            "arbiter": "over-allocating", "admission": "feasibility",
            "renegotiation": None, "service_classes": None,
        }
        with pytest.raises(InvariantViolationError) as excinfo:
            serve(spec, observers=[InvariantObserver(enforce=True)])
        assert excinfo.value.violation.invariant == "grant-conservation"
        assert "grant-conservation" in str(excinfo.value)

    def test_negative_grants_caught(self):
        observer = InvariantObserver(invariants=["grant-conservation"])
        observer.on_round(0, {"a": -5e6, "b": 29e6}, 24e6)
        names = [v.invariant for v in observer.violations]
        assert names.count("grant-conservation") >= 1
        assert any("negative" in v.detail for v in observer.violations)


class TestUnitChecks:
    def test_class_floor_violation(self):
        observer = InvariantObserver(
            invariants=["class-floors"],
            classes=[{"name": "gold", "min_quality": 0.5,
                      "target_quality": 0.85}],
        )
        from repro.streams.scenarios import StreamSpec
        from repro.experiments.configs import scaled_config

        spec = StreamSpec("g", 0, scaled_config(scale=27, frames=4),
                          service_class="gold")
        observer.on_admit(spec, 0)
        observer.on_renegotiate("g", 0.85, 0.3, 4)  # below the 0.5 floor
        assert any(
            "below class floor" in v.detail for v in observer.violations
        )
        observer.violations.clear()
        observer.on_renegotiate("g", 0.85, 0.85, 5)  # no-op step
        assert any("no-op" in v.detail for v in observer.violations)
        observer.violations.clear()
        observer.on_renegotiate("g", 0.85, 1.2, 6)  # outside [0, 1]
        assert any("outside" in v.detail for v in observer.violations)

    def test_exactly_once_accounting_violations(self):
        from repro.streams.scenarios import StreamSpec
        from repro.experiments.configs import scaled_config

        spec = StreamSpec("s", 0, scaled_config(scale=27, frames=4))
        observer = InvariantObserver(invariants=["exactly-once-rejection"])
        observer.on_admit(spec, 0)
        observer.on_admit(spec, 1)
        assert any("admitted twice" in v.detail for v in observer.violations)
        observer.violations.clear()
        observer.on_reject(spec, 2)
        assert any(
            "rejected after admission" in v.detail
            for v in observer.violations
        )

    def test_unfinished_streams_flagged_at_close(self):
        from repro.streams.scenarios import StreamSpec
        from repro.experiments.configs import scaled_config

        spec = StreamSpec("s", 0, scaled_config(scale=27, frames=4))
        observer = InvariantObserver(invariants=["exactly-once-rejection"])
        observer.on_admit(spec, 0)
        observer.close()
        assert any("never departed" in v.detail for v in observer.violations)

    def test_migration_residency_violations(self):
        from repro.cluster.migration import MigrationMove

        observer = InvariantObserver(invariants=["migration-headroom"])
        observer.on_migrate(
            MigrationMove(stream_id="s", source="shard-0", dest="shard-0",
                 kind="active"),
            3,
        )
        assert any(
            "identical source" in v.detail for v in observer.violations
        )
        observer.violations.clear()
        observer.on_migrate(
            MigrationMove(stream_id="ghost", source="shard-0", dest="shard-1",
                 kind="active"),
            4,
        )
        assert any("resident" in v.detail for v in observer.violations)

    def test_migration_overcommit_violation(self):
        from repro.streams.scenarios import StreamSpec
        from repro.experiments.configs import scaled_config
        from repro.cluster.migration import MigrationMove

        config = scaled_config(scale=27, frames=4)
        observer = InvariantObserver(invariants=["migration-headroom"])
        observer.on_capacity(1.0, 0, shard_id="shard-1")  # ~zero headroom
        observer.on_capacity(1e9, 0, shard_id="shard-0")
        observer.on_admit(StreamSpec("s", 0, config), 0,
                          shard_id="shard-0")
        observer.on_migrate(
            MigrationMove(stream_id="s", source="shard-0", dest="shard-1",
                 kind="active"),
            2,
        )
        assert any("exceeds" in v.detail for v in observer.violations)
