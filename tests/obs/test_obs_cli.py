"""``python -m repro serve``: the observability CLI end to end."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.obs import parse_events
from repro.serving import register_arbiter
from repro.streams.arbiter import CapacityArbiter

REPO_ROOT = Path(__file__).resolve().parents[2]

SPEC = {
    "scenario": {"name": "gold-rush",
                 "kwargs": {"bronze": 4, "gold": 2, "crowd_round": 2,
                            "frames": 6, "scale": 27}},
    "capacity": {"utilization": 1 / 1.5},
    "arbiter": "sla-quality-fair",
    "admission": "priority",
    "renegotiation": {"name": "step", "kwargs": {"patience": 1, "step": 0.3}},
    "service_classes": ["gold", "silver", "bronze"],
}


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SPEC))
    return path


class TestServe:
    def test_happy_path_exit_zero(self, spec_file, capsys):
        assert main(["serve", str(spec_file)]) == 0
        out = capsys.readouterr().out
        assert "scenario: gold-rush" in out
        assert "invariant ledger" in out

    def test_stdin_spec(self, monkeypatch, capsys):
        import io

        monkeypatch.setattr(sys, "stdin", io.StringIO(json.dumps(SPEC)))
        assert main(["serve", "-"]) == 0
        assert "gold-rush" in capsys.readouterr().out

    def test_events_file_written_and_parseable(self, spec_file, tmp_path,
                                               capsys):
        events = tmp_path / "events.jsonl"
        assert main(["serve", str(spec_file),
                     "--events", str(events)]) == 0
        parsed = parse_events(events.read_text())
        assert len(parsed) > 20
        assert f"wrote {len(parsed)} events" in capsys.readouterr().out

    def test_full_observability_flags(self, spec_file, capsys):
        assert main(["serve", str(spec_file), "--metrics-window", "4",
                     "--perf", "--timeline", "5"]) == 0
        out = capsys.readouterr().out
        assert "telemetry windows (4 rounds each)" in out
        assert "controller phase timing" in out
        assert "timeline (last 5 events)" in out

    def test_missing_spec_exits_two(self, capsys):
        assert main(["serve", "no-such-spec.json"]) == 2
        assert "not found" in capsys.readouterr().err

    def test_invalid_json_exits_two(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert main(["serve", str(path)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_bad_spec_exits_two(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"scenario": "no-such-scenario"}))
        assert main(["serve", str(path)]) == 2


class _OverAllocating(CapacityArbiter):
    name = "cli-over-allocating"

    def allocate(self, requests, capacity):
        return {r.stream_id: capacity for r in requests}


class TestViolationExits:
    @pytest.fixture
    def broken_spec(self, tmp_path):
        register_arbiter("cli-over-allocating", _OverAllocating,
                         overwrite=True)
        path = tmp_path / "broken.json"
        path.write_text(json.dumps(dict(SPEC) | {
            "arbiter": "cli-over-allocating", "admission": "feasibility",
            "renegotiation": None, "service_classes": None,
        }))
        yield path
        from repro.serving import ARBITERS

        ARBITERS.unregister("cli-over-allocating")

    def test_recorded_violations_exit_one(self, broken_spec, capsys):
        assert main(["serve", str(broken_spec)]) == 1
        captured = capsys.readouterr()
        assert "VIOLATED" in captured.out
        assert "grant-conservation" in captured.err

    def test_enforcement_aborts_exit_one(self, broken_spec, capsys):
        assert main(["serve", str(broken_spec),
                     "--invariants", "enforce"]) == 1
        assert "grant-conservation" in capsys.readouterr().err

    def test_invariants_off_ignores_breakage(self, broken_spec):
        assert main(["serve", str(broken_spec),
                     "--invariants", "off"]) == 0


def test_module_entry_point(spec_file, tmp_path):
    """One true subprocess run: ``python -m repro`` works from a shell."""
    events = tmp_path / "events.jsonl"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "serve", str(spec_file),
         "--events", str(events), "--metrics-window", "6"],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stderr
    assert "telemetry windows" in proc.stdout
    assert events.exists() and parse_events(events.read_text())
