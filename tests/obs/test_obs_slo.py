"""The SLO engine: spec validation, tracker arithmetic, burn alerts."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    AlertEvent,
    SloObserver,
    SloReport,
    SloSpec,
    SloTracker,
    StructuredEventLog,
    resolve_slos,
)
from repro.serving import serve

SLA_SPEC = {
    "scenario": {"name": "gold-rush",
                 "kwargs": {"bronze": 4, "gold": 2, "crowd_round": 2,
                            "frames": 6, "scale": 27}},
    "capacity": {"utilization": 1 / 1.5},
    "arbiter": "sla-quality-fair",
    "admission": "priority",
    "renegotiation": {"name": "step", "kwargs": {"patience": 1, "step": 0.3}},
    "service_classes": ["gold", "silver", "bronze"],
}

GOLD_QUALITY = SloSpec(
    name="gold-quality", objective="quality", service_class="gold",
    threshold=0.5, target=0.9, fast_window=3, slow_window=10,
)
ALL_ACCEPTANCE = SloSpec(
    name="all-acceptance", objective="acceptance", target=0.9,
    fast_window=3, slow_window=10,
)


class TestSpecValidation:
    def test_round_trips_through_dict(self):
        for spec in (GOLD_QUALITY, ALL_ACCEPTANCE):
            assert SloSpec.from_dict(spec.to_dict()) == spec

    def test_resolve_accepts_specs_and_dicts(self):
        resolved = resolve_slos([GOLD_QUALITY, ALL_ACCEPTANCE.to_dict()])
        assert resolved == (GOLD_QUALITY, ALL_ACCEPTANCE)
        # a single bare spec or dict is promoted to a one-tuple
        assert resolve_slos(GOLD_QUALITY) == (GOLD_QUALITY,)
        assert resolve_slos(GOLD_QUALITY.to_dict()) == (GOLD_QUALITY,)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate slo name"):
            resolve_slos([GOLD_QUALITY, GOLD_QUALITY])

    def test_empty_slos_rejected(self):
        with pytest.raises(ConfigurationError, match="must not be empty"):
            resolve_slos([])

    def test_unknown_objective_rejected(self):
        with pytest.raises(ConfigurationError, match="objective"):
            SloSpec(name="x", objective="latency")

    def test_acceptance_takes_no_threshold(self):
        with pytest.raises(ConfigurationError, match="no\\s+quality threshold"):
            SloSpec(name="x", objective="acceptance", threshold=0.5)

    def test_quality_needs_threshold_or_class(self):
        with pytest.raises(ConfigurationError, match="explicit threshold"):
            SloSpec(name="x", objective="quality")

    def test_threshold_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError, match="threshold"):
            SloSpec(name="x", objective="quality", threshold=1.5)

    def test_target_must_be_open_interval_float(self):
        with pytest.raises(ConfigurationError, match="target"):
            SloSpec(name="x", objective="quality", threshold=0.5, target=1.0)
        with pytest.raises(ConfigurationError, match="target"):
            SloSpec(name="x", objective="quality", threshold=0.5, target=1)

    def test_fast_window_must_be_shorter(self):
        with pytest.raises(ConfigurationError, match="fast_window"):
            SloSpec(name="x", objective="quality", threshold=0.5,
                    fast_window=60, slow_window=60)

    def test_window_type_checked(self):
        with pytest.raises(ConfigurationError, match="fast_window"):
            SloSpec(name="x", objective="quality", threshold=0.5,
                    fast_window=True)

    def test_burn_threshold_positive(self):
        with pytest.raises(ConfigurationError, match="burn_threshold"):
            SloSpec(name="x", objective="quality", threshold=0.5,
                    burn_threshold=0.0)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError, match="unknown slo field"):
            SloSpec.from_dict({"name": "x", "objective": "quality",
                               "threshold": 0.5, "latency": 1})

    def test_from_dict_requires_name_and_objective(self):
        with pytest.raises(ConfigurationError, match="'name'"):
            SloSpec.from_dict({"objective": "quality", "threshold": 0.5})
        with pytest.raises(ConfigurationError, match="'objective'"):
            SloSpec.from_dict({"name": "x", "threshold": 0.5})


class TestTracker:
    """The burn-rate state machine, on a hand-checkable unit stream.

    One unit per round against ``target=0.9`` (``fast=2``, ``slow=5``,
    ``burn_threshold=2``): rounds 0-3 good, 4-9 bad, 10-15 good.  The
    alert must fire at the first bad round (fast window {3,4} has a
    1/2 bad fraction = 5x burn; slow window {0..4} has 1/5 = 2x, right
    at the threshold) and resolve at round 11, the first evaluation
    whose fast window {10,11} is clean again.
    """

    SPEC = SloSpec(
        name="t", objective="quality", threshold=0.5, target=0.9,
        fast_window=2, slow_window=5, burn_threshold=2.0,
    )

    def drive(self):
        tracker = SloTracker(self.SPEC, threshold=0.5)
        transitions = []
        for r in range(16):
            transitions.extend(tracker.advance_to(r))
            tracker.record(r, f"s{r}", good=not 4 <= r <= 9)
        transitions.extend(tracker.finish())
        return tracker, transitions

    def test_fires_and_resolves_once_each(self):
        tracker, transitions = self.drive()
        assert [(state, r) for state, r, _, _ in transitions] == [
            ("firing", 4), ("resolved", 11),
        ]
        assert tracker.alert_count == 1
        assert not tracker.alert_active

    def test_burn_rates_at_the_transitions(self):
        _, transitions = self.drive()
        (_, _, fast_fire, slow_fire), (_, _, fast_ok, slow_ok) = transitions
        # fast {3,4}: 1 bad of 2; slow {0..4}: 1 bad of 5; rate 0.1
        assert fast_fire == pytest.approx(5.0)
        assert slow_fire == pytest.approx(2.0)
        # fast {10,11}: clean; slow {7..11}: 3 bad of 5
        assert fast_ok == 0.0
        assert slow_ok == pytest.approx(6.0)

    def test_budget_books_balance(self):
        tracker, _ = self.drive()
        rate = 1.0 - self.SPEC.target
        assert tracker.units == 16
        assert tracker.bad_units == 6
        assert tracker.budget_units == pytest.approx(16 * rate)
        # dual ledgers: accrued == consumed + remaining
        assert tracker.budget_units == pytest.approx(
            tracker.bad_units + tracker.remaining_units
        )
        assert tracker.remaining_share() == pytest.approx(
            tracker.remaining_units / tracker.budget_units
        )

    def test_report_carries_the_verdict(self):
        tracker, _ = self.drive()
        report = tracker.report()
        assert report.units == 16
        assert report.bad_units == 6
        assert report.good_fraction == pytest.approx(10 / 16)
        assert not report.met
        assert report.alerts == 1
        assert report.time_to_first_burn == 4
        # rounds {4,5}..{9,10} hold a fully-bad fast window: 10x burn
        assert report.worst_fast_burn == pytest.approx(10.0)
        assert report.budget_remaining < 0.0

    def test_empty_tracker_is_trivially_met(self):
        tracker = SloTracker(self.SPEC, threshold=0.5)
        assert tracker.finish() == []
        report = tracker.report()
        assert report.units == 0
        assert report.met
        assert report.budget_remaining == 1.0
        assert report.time_to_first_burn is None

    def test_unit_and_bad_logs_are_the_durable_evidence(self):
        tracker, _ = self.drive()
        assert len(tracker.unit_log) == 16
        assert [r for r, _ in tracker.bad_log] == list(range(4, 10))


class TestReportRoundTrip:
    def test_report_round_trips_through_dict(self):
        tracker = SloTracker(TestTracker.SPEC, threshold=0.5)
        tracker.record(0, "a", good=True)
        tracker.record(1, "b", good=False)
        tracker.finish()
        report = tracker.report()
        assert SloReport.from_dict(report.to_dict()) == report

    def test_unknown_and_missing_fields_rejected(self):
        with pytest.raises(ConfigurationError, match="missing fields"):
            SloReport.from_dict({"name": "x"})
        tracker = SloTracker(TestTracker.SPEC, threshold=0.5)
        payload = tracker.report().to_dict()
        payload["extra"] = 1
        with pytest.raises(ConfigurationError, match="unknown fields"):
            SloReport.from_dict(payload)


class TestObserverOnRuns:
    def observe(self, sink=None):
        observer = SloObserver(
            [GOLD_QUALITY, ALL_ACCEPTANCE],
            classes=SLA_SPEC["service_classes"],
            sink=sink,
        )
        result = serve(SLA_SPEC, observers=[observer])
        return result, observer

    def test_units_match_the_serving_decisions(self):
        result, observer = self.observe()
        reports = {r.name: r for r in observer.reports()}
        gold_departs = sum(
            1 for o in result.outcomes if o.spec.service_class == "gold"
        )
        assert reports["gold-quality"].units == gold_departs > 0
        # the class-less acceptance objective sees every decision
        assert reports["all-acceptance"].units == (
            result.served_count + result.rejected_count
        )
        assert reports["all-acceptance"].bad_units == result.rejected_count

    def test_identical_runs_report_identically(self):
        _, first = self.observe()
        _, second = self.observe()
        assert first.reports() == second.reports()
        assert [a.to_dict() for a in first.alerts] == [
            a.to_dict() for a in second.alerts
        ]

    def test_alerts_stream_into_the_event_sink(self):
        log = StructuredEventLog()
        _, observer = self.observe(sink=log)
        observer.close()
        logged = [e for e in log.events if isinstance(e, AlertEvent)]
        assert [e.to_dict() for e in logged] == [
            e.to_dict() for e in observer.alerts
        ]

    def test_spec_declared_slos_reach_the_result(self):
        spec = dict(SLA_SPEC)
        spec["slos"] = [GOLD_QUALITY.to_dict(), ALL_ACCEPTANCE.to_dict()]
        result = serve(spec)
        reports = {r.name: r for r in result.slo_reports()}
        _, manual = self.observe()
        expected = {r.name: r for r in manual.reports()}
        assert reports == expected
        assert [a.to_dict() for a in result.alerts()] == [
            a.to_dict() for a in manual.alerts
        ]

    def test_class_threshold_defaults_from_target_quality(self):
        defaulted = SloSpec(
            name="gold-default", objective="quality", service_class="gold",
        )
        observer = SloObserver(
            [defaulted], classes=SLA_SPEC["service_classes"]
        )
        tracker = observer.trackers["gold-default"]
        assert tracker.threshold is not None and 0.0 < tracker.threshold <= 1.0

    def test_unknown_class_cannot_default(self):
        with pytest.raises(ConfigurationError, match="class catalog"):
            SloObserver([SloSpec(
                name="x", objective="quality", service_class="platinum",
            )], classes=SLA_SPEC["service_classes"])
