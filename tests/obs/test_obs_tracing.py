"""Per-session causal traces: span trees, round trips, causal edges."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    Span,
    TraceObserver,
    TraceRecord,
    load_traces,
    parse_traces,
    trace_to_line,
    traces_to_jsonl,
)
from repro.serving import serve

SLA_SPEC = {
    "scenario": {"name": "gold-rush",
                 "kwargs": {"bronze": 4, "gold": 2, "crowd_round": 2,
                            "frames": 6, "scale": 27}},
    "capacity": {"utilization": 1 / 1.5},
    "arbiter": "sla-quality-fair",
    "admission": "priority",
    "renegotiation": {"name": "step", "kwargs": {"patience": 1, "step": 0.3}},
    "service_classes": ["gold", "silver", "bronze"],
}

CLUSTER_SPEC = {
    "topology": "cluster",
    "scenario": {"name": "skewed-cluster",
                 "kwargs": {"streams": 6, "frames": 4}},
    "placement": "best-fit",
    "migration": "load-balance",
}

OUTAGE_SPEC = {
    "topology": "cluster",
    "scenario": {"name": "shard-outage",
                 "kwargs": {"streams": 6, "frames": 6}},
    "renegotiation": {"name": "step", "kwargs": {"patience": 1, "step": 0.3}},
    "placement": "best-fit",
    "migration": "load-balance",
}


def _trace(spec, **kwargs):
    tracer = TraceObserver(**kwargs)
    result = serve(spec, observers=[tracer])
    return result, tracer


class TestValidation:
    def test_unknown_span_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown span kind"):
            Span(kind="pause", start=0, end=0, shard=None, attrs={})

    def test_span_from_dict_checks_fields(self):
        with pytest.raises(ConfigurationError, match="missing"):
            Span.from_dict({"kind": "admit", "start": 0})
        with pytest.raises(ConfigurationError, match="unknown"):
            Span.from_dict({"kind": "admit", "start": 0, "end": 0,
                            "shard": None, "attrs": {}, "extra": 1})
        with pytest.raises(ConfigurationError, match="mapping"):
            Span.from_dict("admit")

    def test_unknown_outcome_rejected(self):
        with pytest.raises(ConfigurationError, match="outcome"):
            TraceRecord(stream="s", service_class=None, arrival_round=0,
                        outcome="lost", spans=())

    def test_record_from_dict_checks_spans(self):
        with pytest.raises(ConfigurationError, match="spans must be a list"):
            TraceRecord.from_dict({
                "stream": "s", "service_class": None, "arrival_round": 0,
                "outcome": "served", "spans": "nope",
            })

    def test_bad_observer_parameters_rejected(self):
        with pytest.raises(ConfigurationError, match="segment_rounds"):
            TraceObserver(segment_rounds=0)
        with pytest.raises(ConfigurationError, match="link_window"):
            TraceObserver(link_window=-1)

    def test_bad_jsonl_line_is_numbered(self):
        record = TraceRecord(stream="s", service_class=None, arrival_round=0,
                             outcome="served", spans=())
        good = trace_to_line(record)
        with pytest.raises(ConfigurationError, match="line 2"):
            parse_traces(good + "\n{not json\n")


class TestRoundTrip:
    def test_sla_run_round_trips_losslessly(self):
        _, tracer = _trace(SLA_SPEC)
        assert tuple(parse_traces(tracer.to_jsonl())) == tracer.records()

    def test_cluster_run_round_trips_losslessly(self):
        _, tracer = _trace(CLUSTER_SPEC)
        assert tuple(parse_traces(tracer.to_jsonl())) == tracer.records()

    def test_reserialization_is_identity(self):
        _, tracer = _trace(SLA_SPEC)
        text = tracer.to_jsonl()
        assert traces_to_jsonl(parse_traces(text)) == text

    def test_two_identical_runs_are_byte_identical(self):
        assert _trace(SLA_SPEC)[1].to_jsonl() == _trace(SLA_SPEC)[1].to_jsonl()
        assert (
            _trace(OUTAGE_SPEC)[1].to_jsonl()
            == _trace(OUTAGE_SPEC)[1].to_jsonl()
        )

    def test_load_traces_reads_dump(self, tmp_path):
        _, tracer = _trace(SLA_SPEC)
        path = tracer.dump(tmp_path / "traces.jsonl")
        assert tuple(load_traces(path)) == tracer.records()

    def test_path_written_at_close(self, tmp_path):
        path = tmp_path / "auto.jsonl"
        _, tracer = _trace(SLA_SPEC, path=path)
        # serve() closed the observer; the file holds the whole log
        assert path.read_text() == tracer.to_jsonl()


class TestSpanTrees:
    def test_every_session_is_traced(self):
        result, tracer = _trace(SLA_SPEC)
        records = tracer.records()
        assert len(records) == result.served_count + result.rejected_count
        assert {r.outcome for r in records} <= {"served", "rejected"}

    def test_served_sessions_run_admit_to_depart(self):
        _, tracer = _trace(SLA_SPEC)
        served = [r for r in tracer.records() if r.outcome == "served"]
        assert served
        for record in served:
            kinds = [span.kind for span in record.spans]
            assert kinds[0] == "admit"
            assert kinds[-1] == "depart"
            assert record.spans[0].attrs["queue_wait"] >= 0
            starts = [span.start for span in record.spans]
            assert starts == sorted(starts)

    def test_grant_segments_cover_the_session(self):
        result, tracer = _trace(SLA_SPEC, segment_rounds=2)
        served = {r.stream: r for r in tracer.records()
                  if r.outcome == "served"}
        for outcome in result.outcomes:
            record = served[outcome.spec.name]
            grants = [s for s in record.spans if s.kind == "grant"]
            assert grants
            # at least one arbitrated round per scheduled frame (the
            # departure round can add one more), windowed
            assert sum(s.attrs["rounds"] for s in grants) >= len(
                outcome.result
            )
            assert all(s.end - s.start < 2 for s in grants)
            filled = [s.attrs["mean_quality"] for s in grants]
            assert any(q is not None for q in filled)

    def test_rejected_sessions_end_in_reject(self):
        spec = dict(SLA_SPEC)
        spec["scenario"] = {
            "name": "gold-rush",
            "kwargs": {"bronze": 8, "gold": 3, "crowd_round": 2,
                       "frames": 6, "scale": 27},
        }
        spec["capacity"] = {"utilization": 0.35}
        spec["admission"] = {
            "name": "priority",
            "kwargs": {"queue_limit": 2, "utilization_cap": 0.7},
        }
        _, tracer = _trace(spec)
        rejected = [r for r in tracer.records() if r.outcome == "rejected"]
        assert rejected
        for record in rejected:
            assert record.spans[-1].kind == "reject"
            assert record.spans[-1].attrs["queue_wait"] >= 0

    def test_cluster_migrations_become_spans(self):
        result, tracer = _trace(CLUSTER_SPEC)
        migrations = result.raw.migrations
        assert migrations
        moves = [
            span
            for record in tracer.records()
            for span in record.spans
            if span.kind == "migrate"
        ]
        assert len(moves) == len(migrations)
        for span in moves:
            assert span.attrs["dest"] != span.shard
            assert span.attrs["move_kind"] in ("queued", "active")

    def test_outage_registers_a_capacity_dip(self):
        _, tracer = _trace(OUTAGE_SPEC)
        assert len(tracer.dips) == 1
        dip = tracer.dips[0]
        assert dip["after"] < dip["before"]
        assert dip["id"] == (
            f"capacity-dip@{dip['shard']}:{dip['round']}"
        )

    def test_down_renegotiation_links_to_a_recent_dip(self):
        # driven by hand: the cluster policies under test migrate away
        # from an outage instead of renegotiating, so the causal edge
        # is exercised at the hook level
        tracer = TraceObserver(link_window=10)
        spec = SimpleNamespace(
            name="s", service_class="gold", arrival_round=0,
        )
        tracer.on_capacity(100.0, 0, "A")
        tracer.on_admit(spec, 0, "A")
        tracer.on_capacity(40.0, 3, "A")
        tracer.on_renegotiate("s", 3.0, 2.0, 5, "A")
        # a later *up* step carries no cause
        tracer.on_renegotiate("s", 2.0, 3.0, 8, "A")
        # a down step past the link window does not link
        tracer.on_renegotiate("s", 3.0, 2.0, 14, "A")
        (record,) = tracer.records()
        down_near, up, down_far = [
            s for s in record.spans if s.kind == "renegotiate"
        ]
        assert down_near.attrs["cause"] == "capacity-dip@A:3"
        assert up.attrs["cause"] is None
        assert down_far.attrs["cause"] is None
        assert tracer.down_steps == [(5, "gold"), (14, "gold")]

    def test_attrs_are_json_native(self):
        for spec in (SLA_SPEC, CLUSTER_SPEC):
            _, tracer = _trace(spec)
            for record in tracer.records():
                for span in record.spans:
                    for value in span.attrs.values():
                        assert value is None or isinstance(
                            value, (str, int, float, bool)
                        )


TRACE_SNIPPET = """
import sys
from repro.obs import TraceObserver
from repro.serving import serve

spec = {
    "scenario": {"name": "gold-rush",
                 "kwargs": {"bronze": 4, "gold": 2, "crowd_round": 2,
                            "frames": 6, "scale": 27}},
    "capacity": {"utilization": 1 / 1.5},
    "arbiter": "sla-quality-fair",
    "admission": "priority",
    "renegotiation": {"name": "step", "kwargs": {"patience": 1, "step": 0.3}},
    "service_classes": ["gold", "silver", "bronze"],
}
tracer = TraceObserver()
serve(spec, observers=[tracer])
sys.stdout.write(tracer.to_jsonl())
"""


class TestCrossProcess:
    def run_in_subprocess(self, hash_seed: str) -> str:
        src = str(Path(__file__).resolve().parents[2] / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        # the log must not depend on hash randomization (dict/set order)
        env["PYTHONHASHSEED"] = hash_seed
        completed = subprocess.run(
            [sys.executable, "-c", TRACE_SNIPPET],
            env=env, capture_output=True, text=True, timeout=300, check=True,
        )
        return completed.stdout

    def test_trace_log_byte_identical_across_hash_seeds(self):
        first = self.run_in_subprocess("1")
        second = self.run_in_subprocess("4242")
        assert first == second
        _, tracer = _trace(SLA_SPEC)
        assert first == tracer.to_jsonl()
