"""Windowed telemetry: tumbling windows, mid-run queries, instruments."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry, TelemetryObserver
from repro.serving import serve
from repro.sla.classes import resolve_classes
from repro.streams.scenarios import StreamSpec

SLA_SPEC = {
    "scenario": {"name": "gold-rush",
                 "kwargs": {"bronze": 4, "gold": 2, "crowd_round": 2,
                            "frames": 6, "scale": 27}},
    "capacity": {"utilization": 1 / 1.5},
    "arbiter": "sla-quality-fair",
    "admission": "priority",
    "renegotiation": {"name": "step", "kwargs": {"patience": 1, "step": 0.3}},
    "service_classes": ["gold", "silver", "bronze"],
}


class TestInstruments:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("n").inc()
        registry.counter("n").inc(3)
        registry.gauge("g").set(2.5)
        for value in (1.0, 3.0, math.nan):
            registry.histogram("h").observe(value)
        snap = registry.snapshot()
        assert snap["counters"]["n"] == 4
        assert snap["gauges"]["g"] == 2.5
        assert snap["histograms"]["h"] == {
            "count": 2, "mean": 2.0, "min": 1.0, "max": 3.0,
        }

    def test_empty_instruments_are_json_safe(self):
        registry = MetricsRegistry()
        registry.gauge("unset")
        registry.histogram("empty")
        snap = registry.snapshot()
        assert snap["gauges"]["unset"] is None
        assert snap["histograms"]["empty"]["mean"] is None


class TestWindowing:
    def test_bad_window_rejected(self):
        for bad in (0, -1, 1.5, True, "5"):
            with pytest.raises(ConfigurationError):
                TelemetryObserver(window=bad)

    def test_windows_tile_the_run(self):
        observer = TelemetryObserver(window=4)
        result = serve(SLA_SPEC, observers=[observer])
        # serve() closed the observer: the final partial window is in
        starts = [w["start_round"] for w in observer.windows]
        assert starts == sorted(starts)
        assert observer.windows[0]["start_round"] == 0
        assert observer.windows[-1]["end_round"] >= result.rounds
        assert sum(w["departed"] for w in observer.windows) == len(
            result.outcomes
        )

    def test_decision_totals_match_result(self):
        observer = TelemetryObserver(window=4)
        result = serve(SLA_SPEC, observers=[observer])
        assert sum(w["admitted"] for w in observer.windows) == len(
            result.outcomes
        )
        assert sum(w["rejected"] for w in observer.windows) == len(
            result.rejected
        )
        assert sum(w["preempted"] for w in observer.windows) == len(
            result.preempted
        )

    def test_queryable_mid_run(self):
        """current() answers during the run — the mid-run query path."""
        observer = TelemetryObserver(window=1000)  # nothing ever closes
        probes = []

        class Prober(TelemetryObserver):
            def on_round(self, round_index, allocations, capacity,
                         shard_id=None):
                probes.append(dict(observer.current()))

        serve(SLA_SPEC, observers=[observer, Prober(window=1000)])
        assert len(probes) > 2
        # admissions become visible to current() as the run progresses
        assert probes[0]["admitted"] <= probes[-1]["admitted"]
        assert probes[-1]["admitted"] > 0
        assert all(p["window"] == 0 for p in probes)

    def test_close_is_idempotent(self):
        observer = TelemetryObserver(window=4)
        serve(SLA_SPEC, observers=[observer])
        count = len(observer.windows)
        observer.close()
        observer.close()
        assert len(observer.windows) == count

    def test_renegotiation_density_and_utilization(self):
        observer = TelemetryObserver(window=4)
        result = serve(SLA_SPEC, observers=[observer])
        total = sum(
            round(w["renegotiation_density"] * w["rounds"])
            for w in observer.windows
        )
        assert total == result.summary()["renegotiations"]
        busy = [w for w in observer.windows if w["utilization"] is not None]
        assert busy and all(0.0 <= w["utilization"] <= 1.0 + 1e-9
                            for w in busy)

    def test_fairness_and_quality_summaries(self):
        observer = TelemetryObserver(window=1000)
        serve(SLA_SPEC, observers=[observer])
        final = observer.windows[-1]
        assert final["mean_quality"] is not None
        assert final["min_quality"] <= final["mean_quality"]
        assert 0.0 < final["fairness_per_class"] <= 1.0

    def test_totals_registry_accumulates(self):
        registry = MetricsRegistry()
        observer = TelemetryObserver(window=4, registry=registry)
        result = serve(SLA_SPEC, observers=[observer])
        counters = registry.snapshot()["counters"]
        assert counters["admitted"] == len(result.outcomes)
        assert counters["departed"] == len(result.outcomes)
        assert counters["pool_rounds"] > 0
        assert counters["capacity_events"] >= 1

    def test_unclassed_departures_bucketed(self):
        observer = TelemetryObserver(window=1000)
        observer.on_admit(
            StreamSpec("s", 0, _config()), 0
        )
        outcome = _FakeOutcome("s")
        observer.on_depart(outcome, 3)
        observer.close()
        assert observer.windows[-1]["departed"] == 1
        assert observer.windows[-1]["mean_quality"] == 1.0


def _config():
    from repro.experiments.configs import scaled_config

    return scaled_config(scale=27, frames=4)


class _FakeResult:
    def mean_quality(self):
        return 1.0


class _FakeSpec:
    name = "s"
    service_class = None


class _FakeOutcome:
    def __init__(self, name):
        self.spec = _FakeSpec()
        self.result = _FakeResult()
