"""Attaching telemetry observers never changes a run's results.

The tentpole guarantee of the obs subsystem: observers are write-only
(runners never read them back), so **any combination** of them leaves
every scenario generator's results bit-identical to an observer-free
run — summaries, per-stream quality/PSNR series, per-shard breakdowns.
"""

from __future__ import annotations

import math

import pytest

from repro.obs import (
    InvariantObserver,
    PerfObserver,
    SloObserver,
    SloSpec,
    StructuredEventLog,
    TelemetryObserver,
    TraceObserver,
)
from repro.serving import serve

FLEET_SCENARIOS = [
    ("steady", {"count": 3, "frames": 4}),
    ("heterogeneous-mix", {"count": 4, "frames": 4}),
    (
        "poisson-churn",
        {"rate": 0.8, "horizon": 6, "mean_frames": 6, "min_frames": 4},
    ),
    (
        "flash-crowd",
        {"base": 2, "crowd": 3, "crowd_round": 2, "frames": 4, "scale": 27},
    ),
    ("sla-churn", {"rate": 1.0, "horizon": 8, "seed": 5, "initial": 4}),
    (
        "gold-rush",
        {"bronze": 4, "gold": 2, "crowd_round": 2, "frames": 6, "scale": 27},
    ),
]

CLUSTER_SCENARIOS = [
    ("skewed-cluster", {"streams": 6, "frames": 4}),
    ("shard-outage", {"streams": 6, "frames": 6}),
    (
        "flash-crowd-split",
        {"base": 2, "crowd": 4, "crowd_round": 2, "frames": 4},
    ),
    ("sla-skewed-cluster", {"streams": 8, "frames": 5}),
]


def fleet_spec(name, kwargs):
    spec = {
        "scenario": {"name": name, "kwargs": kwargs},
        "capacity": 24e6,
        "arbiter": "quality-fair",
        "admission": "feasibility",
    }
    if name in ("sla-churn", "gold-rush"):
        spec |= {
            "arbiter": "sla-quality-fair",
            "admission": "priority",
            "renegotiation": {"name": "step",
                              "kwargs": {"patience": 1, "step": 0.2}},
        }
    return spec


def cluster_spec(name, kwargs):
    spec = {
        "topology": "cluster",
        "scenario": {"name": name, "kwargs": kwargs},
        "arbiter": "quality-fair",
        "placement": "best-fit",
        "migration": "load-balance",
    }
    if name == "sla-skewed-cluster":
        spec |= {"arbiter": "sla-weighted", "placement": "sla-aware"}
    return spec


#: Class-agnostic objectives with explicit thresholds, attachable to
#: every scenario (most generators declare no service-class catalog).
GENERIC_SLOS = (
    SloSpec(name="any-quality", objective="quality", threshold=0.3,
            target=0.9, fast_window=3, slow_window=8),
    SloSpec(name="any-acceptance", objective="acceptance", target=0.9,
            fast_window=3, slow_window=8),
)


#: Every combination exercised: single observers, pairs, and the full
#: stack (including enforcement, which must also pass cleanly).
def observer_combos():
    return [
        ("telemetry", lambda: [TelemetryObserver(window=3)]),
        ("events", lambda: [StructuredEventLog()]),
        ("invariants", lambda: [InvariantObserver()]),
        ("perf", lambda: [PerfObserver()]),
        ("trace", lambda: [TraceObserver(segment_rounds=3)]),
        ("slo", lambda: [SloObserver(GENERIC_SLOS)]),
        ("events+perf", lambda: [StructuredEventLog(), PerfObserver()]),
        (
            "full-stack-enforced",
            lambda: [
                TelemetryObserver(window=3),
                StructuredEventLog(),
                InvariantObserver(enforce=True),
                PerfObserver(),
            ],
        ),
        (
            "full-traced-stack",
            lambda: [
                TelemetryObserver(window=3),
                StructuredEventLog(),
                InvariantObserver(enforce=True, slos=GENERIC_SLOS),
                PerfObserver(),
                TraceObserver(),
                SloObserver(GENERIC_SLOS),
            ],
        ),
    ]


def assert_values_equal(mine, theirs):
    assert len(mine) == len(theirs)
    for x, y in zip(mine, theirs):
        if isinstance(x, float) and math.isnan(x):
            assert isinstance(y, float) and math.isnan(y)
        else:
            assert x == y


def assert_results_identical(bare, observed):
    mine, theirs = bare.summary(), observed.summary()
    assert mine.keys() == theirs.keys()
    assert_values_equal(list(mine.values()), list(theirs.values()))
    assert_values_equal(
        bare.per_stream_quality(), observed.per_stream_quality()
    )
    assert_values_equal(bare.per_stream_psnr(), observed.per_stream_psnr())
    assert [o.spec.name for o in bare.outcomes] == [
        o.spec.name for o in observed.outcomes
    ]
    for a, b in zip(bare.outcomes, observed.outcomes):
        assert_values_equal(
            list(a.result.quality_series()), list(b.result.quality_series())
        )
    assert [s.name for s in bare.rejected] == [
        s.name for s in observed.rejected
    ]
    assert [s.name for s in bare.preempted] == [
        s.name for s in observed.preempted
    ]


@pytest.mark.parametrize(
    "name,kwargs", FLEET_SCENARIOS, ids=[c[0] for c in FLEET_SCENARIOS]
)
@pytest.mark.parametrize(
    "combo,make", observer_combos(), ids=[c[0] for c in observer_combos()]
)
def test_fleet_observers_change_nothing(name, kwargs, combo, make):
    spec = fleet_spec(name, kwargs)
    bare = serve(spec)
    observed = serve(spec, observers=make())
    assert_results_identical(bare, observed)


@pytest.mark.parametrize(
    "name,kwargs", CLUSTER_SCENARIOS, ids=[c[0] for c in CLUSTER_SCENARIOS]
)
@pytest.mark.parametrize(
    "combo,make", observer_combos(), ids=[c[0] for c in observer_combos()]
)
def test_cluster_observers_change_nothing(name, kwargs, combo, make):
    spec = cluster_spec(name, kwargs)
    bare = serve(spec)
    observed = serve(spec, observers=make())
    assert_results_identical(bare, observed)
    assert bare.raw.migrations == observed.raw.migrations


def test_spec_declared_observers_change_nothing():
    """Declaring observers in the spec document is equally invisible."""
    base = fleet_spec("gold-rush", dict(FLEET_SCENARIOS[5][1]))
    bare = serve(base)
    observed = serve(base | {
        "observers": [
            {"name": "telemetry", "kwargs": {"window": 4}},
            "events",
            {"name": "invariants", "kwargs": {"enforce": True}},
            "perf",
            "counting",
        ],
    })
    assert_results_identical(bare, observed)
    assert len(observed.observers) == 5


def test_all_invariants_hold_across_every_scenario():
    """The acceptance criterion: every registered invariant holds on
    every existing scenario generator, fleet and cluster."""
    for name, kwargs in FLEET_SCENARIOS:
        observer = InvariantObserver()
        serve(fleet_spec(name, kwargs), observers=[observer])
        assert observer.violations == [], f"{name}: {observer.violations}"
    for name, kwargs in CLUSTER_SCENARIOS:
        observer = InvariantObserver()
        serve(cluster_spec(name, kwargs), observers=[observer])
        assert observer.violations == [], f"{name}: {observer.violations}"
