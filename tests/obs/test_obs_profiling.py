"""Controller-phase profiling: timing on demand, free when absent."""

from __future__ import annotations

from repro.obs import PerfObserver, TelemetryObserver
from repro.serving import phase_timing_enabled, serve
from repro.serving.observers import CountingObserver

FLEET_SPEC = {
    "scenario": {"name": "gold-rush",
                 "kwargs": {"bronze": 4, "gold": 2, "crowd_round": 2,
                            "frames": 6, "scale": 27}},
    "capacity": {"utilization": 1 / 1.5},
    "arbiter": "sla-quality-fair",
    "admission": "priority",
    "renegotiation": {"name": "step", "kwargs": {"patience": 1, "step": 0.3}},
    "service_classes": ["gold", "silver", "bronze"],
}

CLUSTER_SPEC = {
    "topology": "cluster",
    "scenario": {"name": "skewed-cluster",
                 "kwargs": {"streams": 6, "frames": 4}},
    "placement": "best-fit",
    "migration": "load-balance",
}


class TestPhaseCapture:
    def test_fleet_phases_timed(self):
        perf = PerfObserver()
        serve(FLEET_SPEC, observers=[perf])
        assert {"admission", "arbitration", "step"} <= set(perf.calls)
        assert perf.total_seconds > 0
        assert all(n > 0 for n in perf.calls.values())
        assert all(s >= 0 for s in perf.seconds.values())

    def test_cluster_phases_timed(self):
        perf = PerfObserver()
        serve(CLUSTER_SPEC, observers=[perf])
        # cluster-level phases plus the per-shard inner loop
        assert {"placement", "migration", "arbitration",
                "step"} <= set(perf.calls)

    def test_breakdown_shares_sum_to_one(self):
        perf = PerfObserver()
        serve(FLEET_SPEC, observers=[perf])
        breakdown = perf.breakdown()
        shares = [stats["share"] for stats in breakdown.values()]
        assert abs(sum(shares) - 1.0) < 1e-9
        assert shares == sorted(shares, reverse=True)
        for phase, stats in breakdown.items():
            assert stats["max_seconds"] >= stats["mean_seconds"] - 1e-12

    def test_report_renders_every_phase(self):
        perf = PerfObserver()
        serve(FLEET_SPEC, observers=[perf])
        report = perf.report()
        assert "phase" in report and "share" in report
        for phase in perf.calls:
            assert phase in report

    def test_empty_observer_is_harmless(self):
        perf = PerfObserver()
        assert perf.total_seconds == 0.0
        assert perf.breakdown() == {}


class TestTimingGate:
    def test_bare_and_counting_runs_skip_timing(self):
        """Only an ``on_phase`` override switches the timers on: bare
        runs and passive observers never pay for a perf_counter read."""
        assert not phase_timing_enabled(())
        assert not phase_timing_enabled((CountingObserver(),))
        assert not phase_timing_enabled((TelemetryObserver(),))

    def test_perf_observer_enables_timing(self):
        assert phase_timing_enabled((PerfObserver(),))
        assert phase_timing_enabled((CountingObserver(), PerfObserver()))
