"""Tests for the baseline frame-level policies."""

import pytest

from repro.baselines import (
    ConstantQualityPolicy,
    ElasticQualityPolicy,
    FrameFeedback,
    PidFeedbackPolicy,
    SkipOverPolicy,
    static_wcet_quality,
)
from repro.baselines.skip_over import SKIP
from repro.baselines.static_wcet import static_average_quality, utilization_at
from repro.errors import ConfigurationError
from repro.video.pipeline import macroblock_application


class TestFrameFeedback:
    def test_utilization_and_overrun(self):
        feedback = FrameFeedback(encode_cycles=90.0, budget=100.0, period=100.0)
        assert feedback.utilization == 0.9
        assert not feedback.overran
        assert FrameFeedback(110.0, 100.0, 100.0).overran


class TestConstantQualityPolicy:
    def test_never_changes(self):
        policy = ConstantQualityPolicy(3)
        policy.observe(1e9, 1.0, 1.0)
        assert policy.next_quality() == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ConstantQualityPolicy(-2)


class TestPidFeedbackPolicy:
    def test_underload_raises_quality(self):
        policy = PidFeedbackPolicy(initial_quality=3)
        for _ in range(5):
            policy.observe(encode_cycles=30.0, budget=100.0, period=100.0)
        assert policy.next_quality() > 3

    def test_overload_lowers_quality(self):
        policy = PidFeedbackPolicy(initial_quality=5)
        for _ in range(5):
            policy.observe(encode_cycles=150.0, budget=100.0, period=100.0)
        assert policy.next_quality() < 5

    def test_actuator_clamped(self):
        policy = PidFeedbackPolicy(levels=8, initial_quality=7)
        for _ in range(50):
            policy.observe(encode_cycles=10.0, budget=100.0, period=100.0)
        assert policy.next_quality() == 7
        for _ in range(50):
            policy.observe(encode_cycles=500.0, budget=100.0, period=100.0)
        assert policy.next_quality() == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PidFeedbackPolicy(levels=0)
        with pytest.raises(ConfigurationError):
            PidFeedbackPolicy(set_point=0.0)


class TestElasticQualityPolicy:
    LOADS = [50.0, 80.0, 120.0, 200.0]  # WCET frame loads per level

    def test_admission_picks_highest_fitting_level(self):
        policy = ElasticQualityPolicy(self.LOADS, period=100.0)
        assert policy.admissible_quality == 1
        assert policy.next_quality() == 1

    def test_compression_on_observed_overload(self):
        policy = ElasticQualityPolicy(self.LOADS, period=100.0)
        policy.observe(encode_cycles=150.0, budget=100.0, period=100.0)
        assert policy.next_quality() == 0

    def test_probe_up_after_calm_period_without_exceeding_admission(self):
        policy = ElasticQualityPolicy(self.LOADS, period=100.0)
        policy.observe(150.0, 100.0, 100.0)  # drop to 0
        for _ in range(5):
            policy.observe(30.0, 100.0, 100.0)
        assert policy.next_quality() == 1  # back up, but never past admission
        for _ in range(10):
            policy.observe(30.0, 100.0, 100.0)
        assert policy.next_quality() == 1

    def test_infeasible_admission_rejected(self):
        with pytest.raises(ConfigurationError):
            ElasticQualityPolicy([200.0, 300.0], period=100.0)


class TestSkipOverPolicy:
    def test_skips_after_overrun(self):
        policy = SkipOverPolicy(quality=4, skip_factor=2)
        assert policy.next_quality() == 4
        policy.observe(encode_cycles=150.0, budget=100.0, period=100.0)
        assert policy.next_quality() == SKIP

    def test_skip_distance_respected(self):
        policy = SkipOverPolicy(quality=4, skip_factor=3)
        policy.observe(150.0, 100.0, 100.0)
        assert policy.next_quality() == SKIP  # allowed: long since last skip
        policy.observe(150.0, 100.0, 100.0)
        # only 1 frame since last skip < factor 3: encode despite overload
        assert policy.next_quality() == 4
        assert policy.next_quality() == 4
        policy.observe(150.0, 100.0, 100.0)
        assert policy.next_quality() == SKIP

    def test_no_skip_without_overload(self):
        policy = SkipOverPolicy(quality=4)
        for _ in range(10):
            policy.observe(50.0, 100.0, 100.0)
            assert policy.next_quality() == 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SkipOverPolicy(quality=-1)
        with pytest.raises(ConfigurationError):
            SkipOverPolicy(quality=3, skip_factor=1)


class TestStaticDesignPoints:
    def test_wcet_design_is_conservative(self):
        app = macroblock_application(100)
        budget = 320e6 * 100 / 1620
        wcet_q = static_wcet_quality(app, budget)
        av_q = static_average_quality(app, budget)
        assert wcet_q < av_q
        assert wcet_q == 0
        assert av_q == 5

    def test_utilization_at_design_points(self):
        app = macroblock_application(100)
        budget = 320e6 * 100 / 1620
        # the WCET design point wastes most of the budget on average
        assert utilization_at(app, 0, budget) < 0.45
        assert utilization_at(app, 5, budget) > 0.9

    def test_utilization_rejects_bad_budget(self):
        app = macroblock_application(10)
        with pytest.raises(ConfigurationError):
            utilization_at(app, 1, 0.0)
