"""Tests for repro.sim.camera and repro.sim.results."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.camera import PeriodicCamera
from repro.sim.results import FrameRecord, RunResult, skip_regions


class TestPeriodicCamera:
    def test_arrivals(self):
        camera = PeriodicCamera(100.0)
        assert camera.arrival(0) == 0.0
        assert camera.arrival(3) == 300.0

    def test_arrivals_iterator(self):
        camera = PeriodicCamera(10.0)
        assert list(camera.arrivals(3)) == [(0, 0.0), (1, 10.0), (2, 20.0)]

    def test_frames_before(self):
        camera = PeriodicCamera(100.0)
        assert camera.frames_before(0.0) == 0
        assert camera.frames_before(50.0) == 1    # frame 0 at t=0
        assert camera.frames_before(100.0) == 1   # frame 1 arrives AT 100
        assert camera.frames_before(150.0) == 2

    def test_invalid_period(self):
        with pytest.raises(ConfigurationError):
            PeriodicCamera(0.0)

    def test_negative_index(self):
        with pytest.raises(ConfigurationError):
            PeriodicCamera(1.0).arrival(-1)


def encoded(index, cycles, budget=100.0, psnr=35.0, quality=3.0, iframe=False):
    return FrameRecord(
        index=index,
        is_iframe=iframe,
        skipped=False,
        arrival=index * 100.0,
        motion=0.4,
        start=index * 100.0,
        end=index * 100.0 + cycles,
        budget=budget,
        encode_cycles=cycles,
        controller_cycles=2.0,
        decisions=9,
        mean_quality=quality,
        min_quality=int(quality),
        max_quality=int(quality),
        psnr=psnr,
    )


def skipped(index, psnr=20.0):
    return FrameRecord(
        index=index,
        is_iframe=False,
        skipped=True,
        arrival=index * 100.0,
        motion=0.8,
        psnr=psnr,
    )


class TestRunResult:
    @pytest.fixture
    def result(self):
        run = RunResult(label="test", period=100.0, buffer_capacity=1)
        run.frames = [
            encoded(0, 90.0, psnr=36.0, quality=4.0),
            encoded(1, 110.0, psnr=34.0, quality=3.0),  # budget overrun
            skipped(2),
            encoded(3, 80.0, psnr=35.0, quality=5.0),
        ]
        return run

    def test_counts(self, result):
        assert len(result) == 4
        assert result.skip_count == 1
        assert result.encoded_count == 3
        assert result.deadline_miss_count == 1

    def test_series_have_gaps_at_skips(self, result):
        times = result.encoding_times()
        assert math.isnan(times[2])
        assert times[0] == 90.0
        psnr = result.psnr_series()
        assert psnr[2] == 20.0

    def test_utilization(self, result):
        utilization = result.utilization_series()
        assert utilization[0] == pytest.approx(0.9)
        assert result.mean_utilization() == pytest.approx((0.9 + 1.1 + 0.8) / 3)

    def test_psnr_means(self, result):
        assert result.mean_psnr() == pytest.approx((36 + 34 + 20 + 35) / 4)
        assert result.mean_psnr(include_skips=False) == pytest.approx(35.0)

    def test_quality_aggregates(self, result):
        assert result.mean_quality() == pytest.approx(4.0)
        assert result.quality_smoothness() == pytest.approx((1.0 + 2.0) / 2)

    def test_latency(self, result):
        assert result.frames[1].latency == pytest.approx(110.0)
        assert result.max_latency() == pytest.approx(110.0)
        assert math.isnan(result.frames[2].latency)

    def test_controller_overhead(self, result):
        total = 90.0 + 110.0 + 80.0
        assert result.controller_overhead_ratio() == pytest.approx(6.0 / total)

    def test_summary_keys(self, result):
        summary = result.summary()
        assert summary["skipped"] == 1
        assert summary["deadline_misses"] == 1
        assert summary["label"] == "test"

    def test_csv_roundtrip(self, result, tmp_path):
        path = tmp_path / "run.csv"
        result.to_csv(path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 5  # header + 4 frames
        assert lines[0].startswith("index,")
        assert lines[3].split(",")[2] == "True"  # skipped flag of frame 2

    def test_frames_in_region(self, result):
        assert [f.index for f in result.frames_in(1, 3)] == [1, 2]


class TestSkipRegions:
    def test_margin_expansion(self):
        run = RunResult(label="x", period=100.0, buffer_capacity=1)
        run.frames = [encoded(0, 50.0), encoded(1, 50.0), skipped(2), encoded(3, 50.0)]
        region = skip_regions([run], margin=1)
        assert region == {1, 2, 3}

    def test_union_over_runs(self):
        a = RunResult(label="a", period=100.0, buffer_capacity=1)
        a.frames = [skipped(0)]
        b = RunResult(label="b", period=100.0, buffer_capacity=1)
        b.frames = [skipped(10)]
        region = skip_regions([a, b], margin=0)
        assert region == {0, 10}
