"""Integration tests for repro.sim.encoder_loop: the full system simulation.

Uses the tiny configuration (81 macroblocks, 60 frames) — the same
dynamics as the paper-scale run, sized for CI.
"""

import numpy as np
import pytest

from repro.core.policies import FixedQualityPolicy
from repro.errors import ConfigurationError
from repro.experiments.configs import tiny_config
from repro.sim.encoder_loop import EncoderSimulation, SimulationConfig


@pytest.fixture(scope="module")
def simulation():
    return EncoderSimulation(tiny_config())


class TestConfigValidation:
    def test_defaults_are_paper_scale(self):
        config = SimulationConfig()
        assert config.period == 320e6
        assert config.macroblocks == 1620
        assert config.frame_pixels == 720 * 576
        assert config.nominal_budget == 320e6

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(period=0.0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(buffer_capacity=0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(macroblocks=0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(decision_overhead=-1.0)

    def test_frames_truncation(self):
        simulation = EncoderSimulation(tiny_config(frames=10))
        assert len(simulation.contents) == 10


class TestControlledRun:
    def test_zero_skips_zero_misses(self, simulation):
        result = simulation.run_controlled()
        assert result.skip_count == 0
        assert result.deadline_miss_count == 0
        assert result.degraded_step_count == 0

    def test_every_frame_within_budget(self, simulation):
        result = simulation.run_controlled()
        for frame in result.frames:
            assert frame.encode_cycles <= frame.budget + 1e-6

    def test_latency_bounded_by_one_period(self, simulation):
        result = simulation.run_controlled()
        assert result.max_latency() <= simulation.config.period + 1e-6

    def test_quality_spans_levels_with_load(self, simulation):
        result = simulation.run_controlled()
        qualities = result.quality_series()
        assert np.nanmax(qualities) >= 5.0  # easy content rides high
        # bursts force downgrades: some frame averages near the middle
        # of Q, and individual macroblocks pushed down to level 4
        assert np.nanmin(qualities) <= 4.1
        mins = [f.min_quality for f in result.frames if not f.skipped]
        assert min(mins) <= 4

    def test_deterministic_given_config(self):
        first = EncoderSimulation(tiny_config()).run_controlled()
        second = EncoderSimulation(tiny_config()).run_controlled()
        assert list(first.psnr_series()) == list(second.psnr_series())
        assert first.summary() == second.summary()

    def test_decisions_counted(self, simulation):
        result = simulation.run_controlled()
        encoded = [f for f in result.frames if not f.skipped]
        assert all(f.decisions == simulation.config.macroblocks for f in encoded)

    def test_granularity_reduces_decisions(self, simulation):
        result = simulation.run_controlled(granularity=9)
        encoded = [f for f in result.frames if not f.skipped]
        expected = -(-simulation.config.macroblocks // 9)  # ceil division
        assert all(f.decisions == expected for f in encoded)

    def test_invalid_arguments(self, simulation):
        with pytest.raises(ConfigurationError):
            simulation.run_controlled(constraint_mode="bogus")
        with pytest.raises(ConfigurationError):
            simulation.run_controlled(granularity=0)


class TestConstantRun:
    def test_constant_quality_recorded(self, simulation):
        result = simulation.run_constant(3)
        encoded = [f for f in result.frames if not f.skipped]
        assert all(f.mean_quality == 3.0 for f in encoded)
        assert all(f.controller_cycles == 0.0 for f in encoded)

    def test_high_quality_overloads_and_skips(self, simulation):
        # the tiny config's 60-frame prefix is the calm first sequence
        # (motion ~0.25), so q=6 is only marginally loaded there; q=7 at
        # ~124 % average load overruns even on calm content
        result = simulation.run_constant(7)
        assert result.skip_count > 0

    def test_low_quality_never_skips(self, simulation):
        result = simulation.run_constant(0)
        assert result.skip_count == 0

    def test_invalid_quality(self, simulation):
        with pytest.raises(ConfigurationError):
            simulation.run_constant(99)


class TestBufferSemantics:
    def test_bigger_buffer_reduces_skips(self):
        from dataclasses import replace

        base = tiny_config()
        k1 = EncoderSimulation(replace(base, buffer_capacity=1)).run_constant(5)
        k3 = EncoderSimulation(replace(base, buffer_capacity=3)).run_constant(5)
        assert k3.skip_count <= k1.skip_count

    def test_budget_shrinks_when_started_late(self):
        """With K=2, queued frames start late and get budget < K*P."""
        from dataclasses import replace

        config = replace(tiny_config(), buffer_capacity=2)
        simulation = EncoderSimulation(config)
        result = simulation.run_controlled()
        budgets = [f.budget for f in result.frames if not f.skipped]
        assert max(budgets) <= 2 * config.period + 1e-6
        # controlled with K=2 has slack to start late at least sometimes
        assert min(budgets) < 2 * config.period


class TestPolicyAndSignalIntegration:
    def test_policy_run_is_safe(self, simulation):
        result = simulation.run_controlled_with_policy(
            FixedQualityPolicy(2), label="fixed2"
        )
        assert result.skip_count == 0
        assert result.deadline_miss_count == 0
        encoded = [f for f in result.frames if not f.skipped]
        # fixed policy requests q=2 whenever feasible
        assert np.mean([f.mean_quality for f in encoded]) <= 2.5

    def test_iframes_marked(self, simulation):
        result = simulation.run_controlled()
        assert result.frames[0].is_iframe
        iframe_count = sum(1 for f in result.frames if f.is_iframe)
        assert iframe_count == len({c.sequence for c in simulation.contents})

    def test_psnr_assigned_to_every_frame(self, simulation):
        result = simulation.run_controlled()
        assert all(np.isfinite(f.psnr) for f in result.frames)

    def test_bits_track_rate_target(self, simulation):
        result = simulation.run_controlled()
        target = simulation.config.rate_control.target_bits_per_frame
        mean_bits = np.mean([f.bits for f in result.frames])
        assert abs(mean_bits - target) / target < 0.15
