"""The memoizing runner wrappers and their sharing contract."""

from repro.experiments.configs import tiny_config
from repro.sim import runner


class TestMemoization:
    def test_controlled_runs_are_shared(self):
        config = tiny_config(frames=8)
        first = runner.run_controlled(config)
        second = runner.run_controlled(config)
        assert first is second  # cached, read-only by contract

    def test_simulation_for_is_shared(self):
        config = tiny_config(frames=8)
        assert runner.simulation_for(config) is runner.simulation_for(config)

    def test_distinct_configs_distinct_entries(self):
        a = runner.run_controlled(tiny_config(frames=8))
        b = runner.run_controlled(tiny_config(frames=9))
        assert a is not b


class TestResetCaches:
    def test_reset_detaches_everything(self):
        config = tiny_config(frames=8)
        result = runner.run_controlled(config)
        simulation = runner.simulation_for(config)
        runner.reset_caches()
        assert runner.run_controlled(config) is not result
        assert runner.simulation_for(config) is not simulation

    def test_rebuilt_results_are_equal(self):
        # dropping the caches must not change any numbers: runs are
        # fully determined by the config seed
        config = tiny_config(frames=8)
        before = runner.run_controlled(config)
        runner.reset_caches()
        after = runner.run_controlled(config)
        assert before.summary() == after.summary()
        assert list(before.psnr_series()) == list(after.psnr_series())
