"""The memoizing runner wrappers and their sharing contract."""

import time

from repro.core.tables import ControllerTables
from repro.experiments.configs import tiny_config
from repro.sim import runner
from repro.streams.session import StreamSession


class TestMemoization:
    def test_controlled_runs_are_shared(self):
        config = tiny_config(frames=8)
        first = runner.run_controlled(config)
        second = runner.run_controlled(config)
        assert first is second  # cached, read-only by contract

    def test_simulation_for_is_shared(self):
        config = tiny_config(frames=8)
        assert runner.simulation_for(config) is runner.simulation_for(config)

    def test_distinct_configs_distinct_entries(self):
        a = runner.run_controlled(tiny_config(frames=8))
        b = runner.run_controlled(tiny_config(frames=9))
        assert a is not b


class TestSharedTableCompilation:
    """Same-shape configs share ONE compiled controller (ROADMAP:
    "batched table compilation")."""

    def test_homogeneous_fleet_compiles_tables_once(self, monkeypatch):
        runner.reset_caches()
        compiles = []
        original = ControllerTables.from_system.__func__

        def counting(cls, system, schedule=None):
            compiles.append(1)
            return original(cls, system, schedule)

        monkeypatch.setattr(
            ControllerTables, "from_system", classmethod(counting)
        )
        sessions = [
            StreamSession(f"s{i}", tiny_config(seed=300 + i, frames=6))
            for i in range(12)
        ]
        # 12 distinct content seeds, one table compile
        assert len(compiles) == 1
        first = sessions[0].simulation
        assert all(s.simulation.tables is first.tables for s in sessions[1:])
        assert all(s.simulation.system is first.system for s in sessions[1:])
        runner.reset_caches()

    def test_shared_tables_are_measurably_faster(self):
        runner.reset_caches()
        start = time.perf_counter()
        runner.simulation_for(tiny_config(seed=400, frames=6))
        first_build = time.perf_counter() - start
        cached = []
        for i in range(8):
            start = time.perf_counter()
            runner.simulation_for(tiny_config(seed=401 + i, frames=6))
            cached.append(time.perf_counter() - start)
        # the batch amortizes the compile: the *best* same-shape build
        # after the first must cost well under the full compile
        # (min-of-8 vs one sample is robust to CI scheduling noise;
        # measured ~8x faster)
        assert min(cached) < first_build
        runner.reset_caches()

    def test_different_shape_gets_own_tables(self):
        runner.reset_caches()
        from repro.experiments.configs import scaled_config

        a = runner.simulation_for(scaled_config(scale=20, seed=1, frames=6))
        b = runner.simulation_for(scaled_config(scale=27, seed=1, frames=6))
        assert a.tables is not b.tables
        runner.reset_caches()


class TestResetCaches:
    def test_reset_detaches_everything(self):
        config = tiny_config(frames=8)
        result = runner.run_controlled(config)
        simulation = runner.simulation_for(config)
        runner.reset_caches()
        assert runner.run_controlled(config) is not result
        assert runner.simulation_for(config) is not simulation

    def test_rebuilt_results_are_equal(self):
        # dropping the caches must not change any numbers: runs are
        # fully determined by the config seed
        config = tiny_config(frames=8)
        before = runner.run_controlled(config)
        runner.reset_caches()
        after = runner.run_controlled(config)
        assert before.summary() == after.summary()
        assert list(before.psnr_series()) == list(after.psnr_series())
