"""Tests for the online-learning controlled run (paper section 4 extension)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.configs import tiny_config
from repro.sim.encoder_loop import EncoderSimulation


@pytest.fixture(scope="module")
def simulation():
    return EncoderSimulation(tiny_config())


class TestLearningRun:
    def test_safe_under_bias(self, simulation):
        result = simulation.run_learning_controlled(time_bias=1.3, relearn_every=10)
        assert result.skip_count == 0
        assert result.deadline_miss_count == 0

    def test_safe_with_fast_platform(self, simulation):
        """Bias < 1: platform faster than profiled — also safe, more quality."""
        fast = simulation.run_learning_controlled(time_bias=0.8, relearn_every=10)
        slow = simulation.run_learning_controlled(time_bias=1.3, relearn_every=10)
        assert fast.deadline_miss_count == 0
        assert fast.mean_quality() > slow.mean_quality()

    def test_bias_respects_worst_case_contract(self, simulation):
        """Even an extreme bias cannot push draws past Cwc: still safe."""
        result = simulation.run_controlled(time_bias=5.0)
        assert result.deadline_miss_count == 0
        assert result.skip_count == 0

    def test_biased_platform_lowers_quality(self, simulation):
        nominal = simulation.run_controlled()
        biased = simulation.run_controlled(time_bias=1.3)
        assert biased.mean_quality() < nominal.mean_quality()

    def test_learning_reduces_churn_under_bias(self, simulation):
        static = simulation.run_controlled(time_bias=1.3)
        learned = simulation.run_learning_controlled(time_bias=1.3, relearn_every=10)
        assert learned.mean_quality_churn() < static.mean_quality_churn()

    def test_invalid_arguments(self, simulation):
        with pytest.raises(ConfigurationError):
            simulation.run_learning_controlled(relearn_every=0)
        with pytest.raises(ConfigurationError):
            simulation.run_learning_controlled(constraint_mode="nope")

    def test_labels(self, simulation):
        result = simulation.run_learning_controlled(time_bias=1.2, relearn_every=30)
        assert "learning" in result.label
        biased = simulation.run_controlled(time_bias=1.2)
        assert "bias=1.2" in biased.label
