"""The package's public surface: imports, __all__, and the top-level
convenience entry point."""

import importlib

import pytest

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_mpeg4_convenience_builder(self):
        app = repro.mpeg4_encoder_application(macroblocks=5)
        assert app.iterations == 5
        assert len(app.body) == 9
        assert app.quality_set.qmax == 7

    def test_quickstart_docstring_flow(self):
        """The flow advertised in the package docstring actually works."""
        app = repro.mpeg4_encoder_application(macroblocks=60)
        system = app.system(budget=12_000_000)
        controller = repro.TableDrivenController(system)
        result = controller.run_cycle(
            lambda action, q: system.average_times.time(action, q)
        )
        assert result.total_time <= 12_000_000


@pytest.mark.parametrize(
    "module",
    [
        "repro.core",
        "repro.platform",
        "repro.video",
        "repro.video.pixel",
        "repro.sim",
        "repro.streams",
        "repro.cluster",
        "repro.serving",
        "repro.sla",
        "repro.baselines",
        "repro.tool",
        "repro.analysis",
        "repro.experiments",
    ],
)
def test_subpackage_all_exports_resolve(module):
    imported = importlib.import_module(module)
    exported = getattr(imported, "__all__", [])
    assert exported, f"{module} should declare __all__"
    for name in exported:
        assert hasattr(imported, name), f"{module}.{name}"


class TestRunnerCaching:
    def test_same_config_returns_cached_result(self):
        from repro.experiments.configs import tiny_config
        from repro.sim.runner import run_constant, run_controlled

        config = tiny_config(frames=20)
        first = run_controlled(config)
        second = run_controlled(config)
        assert first is second  # cached: identical object
        assert run_constant(2, config) is run_constant(2, config)

    def test_different_parameters_not_conflated(self):
        from repro.experiments.configs import tiny_config
        from repro.sim.runner import run_controlled

        config = tiny_config(frames=20)
        fine = run_controlled(config, granularity=1)
        coarse = run_controlled(config, granularity=50)
        assert fine is not coarse
