"""Property-based tests of the core method (hypothesis).

These encode the paper's theorems as machine-checked properties over
randomized instances:

* Proposition 2.1 safety: for any actual times ``C <= Cwc_theta`` the
  controlled execution misses no deadline.
* Controller maximality (local optimality): the chosen quality is the
  largest constraint-satisfying one.
* The table-driven controller is decision-equivalent to the reference.
* EDF correctness and feasibility invariants.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ControllerTables,
    QualityAssignment,
    ReferenceController,
    TableDrivenController,
    best_sched,
    edf_schedule,
    is_edf_order,
)
from repro.core.constraints import (
    average_constraint_slack,
    worst_case_constraint_slack,
)

from tests.strategies import dags, feasible_systems

SETTINGS = settings(max_examples=60, deadline=None)


@given(graph=dags(), seed=st.integers(min_value=0, max_value=2**31))
@SETTINGS
def test_edf_schedule_is_valid_schedule(graph, seed):
    import random

    rng = random.Random(seed)
    deadlines = {a: float(rng.randint(0, 50)) for a in graph.actions}
    schedule = edf_schedule(graph, deadlines.__getitem__)
    assert graph.is_schedule(schedule)
    assert is_edf_order(graph, schedule, deadlines.__getitem__)


@given(graph=dags(), seed=st.integers(min_value=0, max_value=2**31),
       prefix_fraction=st.floats(min_value=0.0, max_value=1.0))
@SETTINGS
def test_best_sched_preserves_prefix_and_schedules_all(graph, seed, prefix_fraction):
    import random

    rng = random.Random(seed)
    deadlines = {a: float(rng.randint(0, 50)) for a in graph.actions}
    base = edf_schedule(graph, deadlines.__getitem__)
    prefix_length = int(prefix_fraction * len(base))
    # perturb deadlines, then reschedule the remainder
    new_deadlines = {a: float(rng.randint(0, 50)) for a in graph.actions}
    result = best_sched(graph, base, new_deadlines.__getitem__, prefix_length)
    assert result[:prefix_length] == base[:prefix_length]
    assert graph.is_schedule(result)


@given(system=feasible_systems(), data=st.data())
@SETTINGS
def test_proposition_2_1_safety(system, data):
    """No deadline miss whenever actual times stay below Cwc_theta."""
    controller = ReferenceController(system)
    controller.start_cycle()
    completions = []
    while not controller.done:
        decision = controller.decide()
        fraction = data.draw(
            st.floats(min_value=0.0, max_value=1.0), label="time fraction"
        )
        actual = fraction * system.worst_times.time(decision.action, decision.quality)
        controller.record_completion(actual)
        completions.append((decision.action, controller.elapsed))
    deadline_of = system.deadlines.under(controller.assignment)
    for action, completed_at in completions:
        assert completed_at <= deadline_of(action) + 1e-9
    assert all(not d.degraded for d in controller.decisions)


@given(system=feasible_systems(), data=st.data())
@SETTINGS
def test_quality_manager_maximality(system, data):
    """qM is the max satisfying level: chosen q feasible, higher ones not."""
    controller = ReferenceController(system)
    controller.start_cycle()
    while not controller.done:
        t = controller.elapsed
        decision = controller.decide()
        assert not decision.degraded
        for q in system.quality_set:
            satisfied = decision.evaluations[q].satisfied(t, "both")
            if q > decision.quality:
                assert not satisfied
        assert decision.evaluations[decision.quality].satisfied(t, "both")
        fraction = data.draw(st.floats(min_value=0.0, max_value=1.0))
        controller.record_completion(
            fraction * system.worst_times.time(decision.action, decision.quality)
        )


@given(system=feasible_systems(), data=st.data())
@SETTINGS
def test_table_driven_equals_reference(system, data):
    """Integer-time instances: decisions agree exactly at every step."""
    reference = ReferenceController(system)
    fast = TableDrivenController(system)
    while not reference.done:
        d_ref = reference.decide()
        d_fast = fast.decide()
        assert d_ref.action == d_fast.action
        assert d_ref.quality == d_fast.quality, (
            f"step {d_ref.step}: reference chose {d_ref.quality}, "
            f"tables chose {d_fast.quality}"
        )
        # integer actual times keep both elapsed clocks identical and exact
        bound = int(system.worst_times.time(d_ref.action, d_ref.quality))
        actual = float(data.draw(st.integers(min_value=0, max_value=max(bound, 0))))
        reference.record_completion(actual)
        fast.record_completion(actual)


@given(system=feasible_systems())
@SETTINGS
def test_tables_match_reference_constraints_everywhere(system):
    tables = ControllerTables.from_system(system)
    schedule = list(tables.schedule)
    for i in range(len(schedule)):
        for q in system.quality_set:
            theta = QualityAssignment.constant(schedule, q)
            column = tables.qualities.index(q)
            assert tables.average_bound[i][column] == average_constraint_slack(
                schedule, theta, system.average_times, system.deadlines, i
            )
            assert tables.worst_bound[i][column] == worst_case_constraint_slack(
                schedule, theta, system.worst_times, system.deadlines, i, system.qmin
            )


@given(system=feasible_systems(), shift=st.integers(min_value=0, max_value=50))
@SETTINGS
def test_budget_monotonicity(system, shift):
    """More budget never lowers the first chosen quality."""
    controller = TableDrivenController(system)
    base = controller.tables.max_feasible_quality(0, 0.0, shift=0.0)
    extended = controller.tables.max_feasible_quality(0, 0.0, shift=float(shift))
    assert base is not None  # validated system: qmin feasible at t=0
    assert extended is not None
    assert extended >= base


@given(system=feasible_systems(), data=st.data())
@SETTINGS
def test_quality_assignment_compatibility(system, data):
    """Successive (alpha_i, theta_i) agree on executed prefixes (section 2.2)."""
    controller = ReferenceController(system)
    previous_schedule = None
    previous_assignment = None
    step = 0
    while not controller.done:
        decision = controller.decide()
        if previous_schedule is not None:
            assert list(controller.schedule[:step]) == list(previous_schedule[:step])
            assert controller.assignment.restricted_agrees(
                previous_assignment, controller.schedule[:step]
            )
        previous_schedule = list(controller.schedule)
        previous_assignment = controller.assignment
        step += 1
        fraction = data.draw(st.floats(min_value=0.0, max_value=1.0))
        controller.record_completion(
            fraction * system.worst_times.time(decision.action, decision.quality)
        )


@given(graph=dags(max_actions=6), iterations=st.integers(min_value=1, max_value=4))
@SETTINGS
def test_unfold_size_and_acyclicity(graph, iterations):
    unfolded = graph.unfold(iterations)
    assert len(unfolded) == len(graph) * iterations
    # construction succeeded => acyclic; every topological order is a schedule
    assert unfolded.is_schedule(unfolded.topological_order())
