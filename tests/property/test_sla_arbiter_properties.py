"""Property tests: SLA arbiters keep the PR-2 serving invariants.

For ANY service-class weight vector (arbitrary positive weights,
priorities, and quality bands) and ANY request mix, the SLA-aware
arbiters must preserve exactly what the classless arbiters guarantee:
grants are non-negative and finite, they sum to the offered capacity
(conservation), and every stream — whatever its class — receives at
least ``floor_share`` of its equal share (no starvation above the
floor).  Class weights may only redistribute the surplus.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sla import ServiceClass, SlaQualityFairArbiter, SlaWeightedArbiter
from repro.streams.arbiter import CapacityRequest

SETTINGS = settings(max_examples=60, deadline=None)

CLASS_NAMES = ("alpha", "beta", "gamma", "delta")


class_defs = st.lists(
    st.tuples(
        st.floats(min_value=1e-3, max_value=1e3),   # weight
        st.integers(min_value=0, max_value=9),      # admission priority
        st.floats(min_value=0.0, max_value=1.0),    # target quality
        st.booleans(),                              # preempt
    ),
    min_size=1,
    max_size=len(CLASS_NAMES),
)

request_lists = st.lists(
    st.tuples(
        st.floats(min_value=1e3, max_value=1e9),     # demand
        st.floats(min_value=1e-3, max_value=100.0),  # stream weight
        st.one_of(                                   # recent quality
            st.none(), st.floats(min_value=0.0, max_value=1.0)
        ),
        st.one_of(                                   # session target
            st.none(), st.floats(min_value=0.0, max_value=1.0)
        ),
        st.integers(min_value=-1, max_value=len(CLASS_NAMES) - 1),  # class
    ),
    min_size=1,
    max_size=20,
)


def build_catalog(raw):
    return [
        ServiceClass(
            name=CLASS_NAMES[i],
            weight=weight,
            admission_priority=priority,
            min_quality=0.0,
            target_quality=target,
            preempt=preempt,
        )
        for i, (weight, priority, target, preempt) in enumerate(raw)
    ]


def build_requests(raw, catalog):
    requests = []
    for i, (demand, weight, quality, target, class_index) in enumerate(raw):
        # class_index -1 -> unclassed; an index past the catalog end
        # exercises the unknown-class fallback
        name = CLASS_NAMES[class_index] if class_index >= 0 else None
        requests.append(
            CapacityRequest(
                stream_id=f"s{i}",
                demand=demand,
                weight=weight,
                recent_quality=math.nan if quality is None else quality,
                service_class=name,
                target_quality=math.nan if target is None else target,
            )
        )
    return requests


@given(
    class_raw=class_defs,
    request_raw=request_lists,
    capacity=st.floats(min_value=0.0, max_value=1e12),
    floor=st.floats(min_value=0.0, max_value=1.0),
    quality_fair=st.booleans(),
)
@SETTINGS
def test_sla_arbiters_conserve_and_never_starve(
    class_raw, request_raw, capacity, floor, quality_fair
):
    catalog = build_catalog(class_raw)
    arbiter = (
        SlaQualityFairArbiter(floor_share=floor, classes=catalog)
        if quality_fair
        else SlaWeightedArbiter(floor_share=floor, classes=catalog)
    )
    requests = build_requests(request_raw, catalog)
    allocations = arbiter.allocate(requests, capacity)

    assert set(allocations) == {r.stream_id for r in requests}
    for grant in allocations.values():
        assert grant >= 0.0
        assert math.isfinite(grant)
    total = sum(allocations.values())
    # conservation: the grants sum to exactly the offered capacity
    assert total == pytest.approx(capacity, rel=1e-9, abs=1e-6)
    # no starvation above the floor, whatever the class weights
    guaranteed = floor * capacity / len(requests)
    for grant in allocations.values():
        assert grant >= guaranteed * (1 - 1e-9) - 1e-9
