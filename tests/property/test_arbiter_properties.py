"""Property-based tests of the capacity arbiters (hypothesis).

For EVERY arbiter policy and ANY random request mix the two serving
invariants must hold: grants are non-negative, and their sum never
exceeds the offered capacity (conservation says it equals it exactly —
asserted to float tolerance).  These are the properties the fleet and
cluster layers silently rely on each round: a negative grant would
crash a session step, an over-grant would mint capacity out of thin
air and break every utilization claim.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams.arbiter import (
    CapacityRequest,
    EqualShareArbiter,
    QualityFairArbiter,
    WeightedShareArbiter,
)

SETTINGS = settings(max_examples=80, deadline=None)

ARBITER_FACTORIES = [
    lambda floor: EqualShareArbiter(floor_share=floor),
    lambda floor: WeightedShareArbiter(floor_share=floor),
    lambda floor: QualityFairArbiter(floor_share=floor),
    lambda floor: QualityFairArbiter(floor_share=floor, pressure=0.0),
    lambda floor: QualityFairArbiter(floor_share=floor, pressure=5.0),
]

request_lists = st.lists(
    st.tuples(
        st.floats(min_value=1e3, max_value=1e9),     # demand
        st.floats(min_value=1e-3, max_value=100.0),  # weight
        st.one_of(                                   # recent quality
            st.none(),
            st.floats(min_value=0.0, max_value=1.0),
        ),
        st.integers(min_value=0, max_value=50),      # backlog
    ),
    min_size=1,
    max_size=24,
)


def build_requests(raw) -> list[CapacityRequest]:
    return [
        CapacityRequest(
            stream_id=f"s{i}",
            demand=demand,
            weight=weight,
            recent_quality=math.nan if quality is None else quality,
            backlog=backlog,
        )
        for i, (demand, weight, quality, backlog) in enumerate(raw)
    ]


@given(
    raw=request_lists,
    capacity=st.floats(min_value=0.0, max_value=1e12),
    floor=st.floats(min_value=0.0, max_value=1.0),
    arbiter_index=st.integers(min_value=0, max_value=len(ARBITER_FACTORIES) - 1),
)
@SETTINGS
def test_grants_are_nonnegative_and_never_exceed_capacity(
    raw, capacity, floor, arbiter_index
):
    arbiter = ARBITER_FACTORIES[arbiter_index](floor)
    requests = build_requests(raw)
    allocations = arbiter.allocate(requests, capacity)
    assert set(allocations) == {r.stream_id for r in requests}
    for grant in allocations.values():
        assert grant >= 0.0
        assert math.isfinite(grant)
    total = sum(allocations.values())
    # never exceed the pool (to float tolerance)...
    assert total <= capacity * (1 + 1e-9) + 1e-9
    # ...and conservation: nothing is dropped either
    assert total == pytest.approx(capacity, rel=1e-9, abs=1e-6)


@given(
    raw=request_lists,
    capacity=st.floats(min_value=1e3, max_value=1e12),
    floor=st.floats(min_value=0.01, max_value=1.0),
    arbiter_index=st.integers(min_value=0, max_value=len(ARBITER_FACTORIES) - 1),
)
@SETTINGS
def test_floor_share_prevents_starvation(raw, capacity, floor, arbiter_index):
    """Every stream receives at least its floor fraction of the equal
    share, whatever the fairness logic does with the surplus."""
    arbiter = ARBITER_FACTORIES[arbiter_index](floor)
    requests = build_requests(raw)
    allocations = arbiter.allocate(requests, capacity)
    guaranteed = floor * capacity / len(requests)
    for grant in allocations.values():
        assert grant >= guaranteed * (1 - 1e-9) - 1e-9
