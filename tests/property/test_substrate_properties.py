"""Property-based tests of the substrates (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.camera import PeriodicCamera
from repro.video.buffering import FrameBuffer
from repro.video.pixel.quant import dequantize, quantize
from repro.video.ratecontrol import RateControlConfig, VirtualBufferRateController
from repro.platform.distributions import BoundedTimeDistribution

SETTINGS = settings(max_examples=60, deadline=None)


@given(
    average=st.floats(min_value=0.1, max_value=1e6),
    headroom=st.floats(min_value=0.0, max_value=1e6),
    scale=st.floats(min_value=0.0, max_value=10.0),
    concentration=st.floats(min_value=0.5, max_value=50.0),
    seed=st.integers(min_value=0, max_value=2**31),
)
@SETTINGS
def test_execution_times_never_exceed_worst_case(
    average, headroom, scale, concentration, seed
):
    """The platform respects the safety contract C <= Cwc for any
    parameterization and any load scale."""
    distribution = BoundedTimeDistribution(
        average=average,
        ceiling=average + headroom,
        concentration=concentration,
    )
    rng = np.random.default_rng(seed)
    samples = distribution.sample_many(rng, 64, scales=scale)
    assert (samples <= distribution.ceiling + 1e-9).all()
    assert (samples >= distribution.floor - 1e-9).all()


@given(
    values=st.lists(
        st.floats(min_value=-1e4, max_value=1e4), min_size=1, max_size=64
    ),
    step=st.floats(min_value=0.01, max_value=100.0),
)
@SETTINGS
def test_quantization_error_bounded_by_half_step(values, step):
    array = np.array(values)
    recovered = dequantize(quantize(array, step), step)
    assert np.abs(recovered - array).max() <= step / 2 + 1e-6


@given(
    capacity=st.integers(min_value=1, max_value=5),
    operations=st.lists(st.booleans(), max_size=100),
)
@SETTINGS
def test_buffer_never_exceeds_capacity(capacity, operations):
    """True = arrival, False = encoder pop (when non-empty)."""
    buffer = FrameBuffer(capacity=capacity)
    pushed = 0
    for is_arrival in operations:
        if is_arrival:
            buffer.try_push(pushed)
            pushed += 1
        elif not buffer.empty:
            buffer.pop()
        assert len(buffer) <= capacity
    assert buffer.accepted + buffer.dropped == pushed


@given(
    spends=st.lists(
        st.one_of(
            st.floats(min_value=0.0, max_value=200_000.0),
            st.none(),  # None = skipped frame
        ),
        max_size=60,
    )
)
@SETTINGS
def test_rate_allocations_always_clamped(spends):
    config = RateControlConfig()
    controller = VirtualBufferRateController(config)
    low = config.min_allocation_fraction * controller.target
    high = config.max_allocation_fraction * controller.target
    for spend in spends:
        allocation = controller.allocate()
        assert low - 1e-9 <= allocation <= high + 1e-9
        iframe_allocation = controller.allocate(is_iframe=True)
        assert low - 1e-9 <= iframe_allocation <= high + 1e-9
        if spend is None:
            controller.commit_skip()
        else:
            controller.commit(spend)


@given(
    period=st.floats(min_value=1.0, max_value=1e9),
    frame=st.integers(min_value=0, max_value=10_000),
)
@SETTINGS
def test_camera_frames_before_consistent_with_arrivals(period, frame):
    camera = PeriodicCamera(period)
    instant = camera.arrival(frame)
    # exactly `frame` arrivals happen strictly before frame's own arrival
    assert camera.frames_before(instant) == frame
    # and the frame itself is counted once we move past its instant
    assert camera.frames_before(instant + period / 2) == frame + 1


@given(
    closed_loop_frames=st.integers(min_value=10, max_value=200),
    seed=st.integers(min_value=0, max_value=2**31),
)
@SETTINGS
def test_rate_control_closed_loop_is_stable(closed_loop_frames, seed):
    """Spending what is allocated (with noise) never diverges."""
    rng = np.random.default_rng(seed)
    controller = VirtualBufferRateController()
    for _ in range(closed_loop_frames):
        allocation = controller.allocate()
        controller.commit(allocation * float(rng.uniform(0.9, 1.1)))
    # fullness remains within a few frames' worth of bits
    assert abs(controller.fullness) < 5 * controller.target
