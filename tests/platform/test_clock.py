"""Tests for repro.platform.clock."""

import pytest

from repro.errors import ConfigurationError
from repro.platform.clock import CycleClock, MEGA, cycles, mcycles


class TestUnits:
    def test_mcycles(self):
        assert mcycles(320) == 320e6
        assert MEGA == 1e6

    def test_cycles_identity(self):
        assert cycles(42) == 42.0


class TestCycleClock:
    def test_starts_at_zero(self):
        assert CycleClock().now == 0.0

    def test_advance_accumulates(self):
        clock = CycleClock()
        clock.advance(10.0)
        clock.advance(5.0)
        assert clock.now == 15.0

    def test_advance_returns_new_time(self):
        assert CycleClock().advance(3.0) == 3.0

    def test_negative_advance_rejected(self):
        clock = CycleClock()
        with pytest.raises(ConfigurationError):
            clock.advance(-1.0)

    def test_advance_to_moves_forward_only(self):
        clock = CycleClock(10.0)
        clock.advance_to(20.0)
        assert clock.now == 20.0
        clock.advance_to(5.0)  # no-op
        assert clock.now == 20.0

    def test_reset(self):
        clock = CycleClock(10.0)
        clock.reset()
        assert clock.now == 0.0

    def test_negative_start_rejected(self):
        with pytest.raises(ConfigurationError):
            CycleClock(-1.0)
        with pytest.raises(ConfigurationError):
            CycleClock().reset(-5.0)
