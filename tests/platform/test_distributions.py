"""Tests for repro.platform.distributions: bounded execution-time laws."""

import numpy as np
import pytest

from repro.core import QualitySet, QualityTimeTable
from repro.errors import ConfigurationError
from repro.platform.distributions import BoundedTimeDistribution, TimingModel


def rng(seed=0):
    return np.random.default_rng(seed)


class TestBoundedTimeDistribution:
    def test_samples_never_exceed_ceiling(self):
        dist = BoundedTimeDistribution(average=100.0, ceiling=400.0)
        samples = dist.sample_many(rng(), 5000)
        assert samples.max() <= 400.0
        assert samples.min() >= dist.floor

    def test_mean_tracks_average(self):
        dist = BoundedTimeDistribution(average=100.0, ceiling=400.0)
        samples = dist.sample_many(rng(), 20000)
        assert abs(samples.mean() - 100.0) / 100.0 < 0.05

    def test_scale_shifts_mean(self):
        dist = BoundedTimeDistribution(average=100.0, ceiling=400.0)
        low = dist.sample_many(rng(1), 5000, scales=0.6).mean()
        high = dist.sample_many(rng(2), 5000, scales=1.5).mean()
        assert low < 100.0 < high

    def test_scale_cannot_push_past_ceiling(self):
        dist = BoundedTimeDistribution(average=100.0, ceiling=400.0)
        samples = dist.sample_many(rng(), 2000, scales=100.0)
        assert samples.max() <= 400.0

    def test_deterministic_when_average_equals_ceiling(self):
        dist = BoundedTimeDistribution(average=16000.0, ceiling=16000.0)
        assert dist.deterministic
        assert dist.sample(rng()) == 16000.0
        assert (dist.sample_many(rng(), 100) == 16000.0).all()

    def test_per_element_scales(self):
        dist = BoundedTimeDistribution(average=100.0, ceiling=400.0)
        scales = np.array([0.5] * 1000 + [1.5] * 1000)
        samples = dist.sample_many(rng(), 2000, scales=scales)
        assert samples[:1000].mean() < samples[1000:].mean()

    def test_single_sample_in_support(self):
        dist = BoundedTimeDistribution(average=100.0, ceiling=400.0)
        for _ in range(100):
            value = dist.sample(rng())
            assert dist.floor <= value <= 400.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            BoundedTimeDistribution(average=500.0, ceiling=400.0)
        with pytest.raises(ConfigurationError):
            BoundedTimeDistribution(average=-1.0, ceiling=400.0)
        with pytest.raises(ConfigurationError):
            BoundedTimeDistribution(average=10.0, ceiling=40.0, floor_fraction=2.0)
        with pytest.raises(ConfigurationError):
            BoundedTimeDistribution(average=10.0, ceiling=40.0, concentration=0.0)

    def test_concentration_controls_spread(self):
        tight = BoundedTimeDistribution(average=100.0, ceiling=400.0, concentration=50.0)
        wild = BoundedTimeDistribution(average=100.0, ceiling=400.0, concentration=2.0)
        assert tight.sample_many(rng(3), 5000).std() < wild.sample_many(rng(4), 5000).std()


class TestTimingModel:
    @pytest.fixture
    def model(self):
        qs = QualitySet.from_range(2)
        av = QualityTimeTable(qs, {"a": [10.0, 20.0], "b": 5.0})
        wc = QualityTimeTable(qs, {"a": [40.0, 80.0], "b": 5.0})
        return TimingModel(av, wc, qs)

    def test_distribution_lookup(self, model):
        dist = model.distribution("a", 1)
        assert dist.average == 20.0
        assert dist.ceiling == 80.0

    def test_sample_respects_bounds(self, model):
        generator = rng()
        for _ in range(200):
            assert model.sample(generator, "a", 0) <= 40.0

    def test_deterministic_action(self, model):
        assert model.sample(rng(), "b", 0) == 5.0

    def test_unfolded_name_falls_back_to_base(self, model):
        assert model.distribution("a#7", 1).average == 20.0

    def test_unknown_action_raises(self, model):
        with pytest.raises(ConfigurationError):
            model.distribution("zz", 0)
