"""Tests for repro.platform.executor and repro.platform.processor."""

import numpy as np
import pytest

from repro.core import QualitySet, QualityTimeTable, TableDrivenController
from repro.platform.distributions import TimingModel
from repro.platform.executor import (
    StochasticExecutor,
    average_time_executor,
    fixed_fraction_executor,
    seeded_rng,
)
from repro.platform.processor import Processor
from repro.platform.trace import ActionEvent, ExecutionTrace

from tests.conftest import build_system


@pytest.fixture
def system():
    return build_system(
        edges=[("a", "b"), ("b", "c")],
        actions=["a", "b", "c"],
        quality_count=3,
        av_entries={"a": [2.0, 4.0, 8.0], "b": 3.0, "c": [1.0, 2.0, 4.0]},
        wc_entries={"a": [4.0, 8.0, 16.0], "b": 6.0, "c": [2.0, 4.0, 8.0]},
        budget=60.0,
    )


class TestExecutors:
    def test_stochastic_executor_bounded(self, system):
        model = TimingModel(
            system.average_times, system.worst_times, system.quality_set
        )
        executor = StochasticExecutor(model, seeded_rng(1))
        for _ in range(100):
            duration = executor("a", 2)
            assert 0 <= duration <= 16.0
        assert executor.executed_actions == 100

    def test_load_function_applied(self, system):
        model = TimingModel(
            system.average_times, system.worst_times, system.quality_set
        )
        hot = StochasticExecutor(model, seeded_rng(2), load=lambda a, i: 1.8)
        cold = StochasticExecutor(model, seeded_rng(2), load=lambda a, i: 0.4)
        hot_mean = np.mean([hot("a", 1) for _ in range(500)])
        cold_mean = np.mean([cold("a", 1) for _ in range(500)])
        assert hot_mean > cold_mean

    def test_fixed_fraction_executor(self, system):
        executor = fixed_fraction_executor(system, 0.5)
        assert executor("a", 2) == 8.0

    def test_average_time_executor(self, system):
        executor = average_time_executor(system)
        assert executor("a", 1) == 4.0

    def test_seeded_rng_reproducible(self):
        assert seeded_rng(7).integers(0, 1000) == seeded_rng(7).integers(0, 1000)


class TestProcessor:
    def test_controlled_cycle_accounts_overheads(self, system):
        controller = TableDrivenController(system)
        processor = Processor(decision_overhead=10.0)
        execution = processor.run_controlled_cycle(
            controller, average_time_executor(system)
        )
        assert execution.controller_cycles == 30.0  # 3 decisions x 10
        assert execution.total_cycles == execution.action_cycles + 30.0
        assert execution.overhead_ratio == pytest.approx(
            30.0 / execution.total_cycles
        )

    def test_controlled_cycle_respects_deadlines(self, system):
        controller = TableDrivenController(system)
        processor = Processor(decision_overhead=0.0)
        execution = processor.run_controlled_cycle(
            controller,
            fixed_fraction_executor(system, 1.0),
            deadline_of=system.deadline_at(system.qmin),
        )
        assert execution.deadline_misses == 0

    def test_controlled_cycle_trace_matches_qualities(self, system):
        controller = TableDrivenController(system)
        processor = Processor()
        execution = processor.run_controlled_cycle(
            controller, average_time_executor(system)
        )
        assert execution.trace is not None
        assert execution.trace.quality_trace() == list(execution.qualities)

    def test_constant_cycle_no_controller_cost(self, system):
        processor = Processor(decision_overhead=10.0)
        execution = processor.run_constant_cycle(
            system.baseline_schedule(), 1, average_time_executor(system)
        )
        assert execution.controller_cycles == 0.0
        assert execution.qualities == (1, 1, 1)

    def test_constant_cycle_detects_misses(self, system):
        processor = Processor()
        tight = system.with_uniform_deadline(5.0)
        execution = processor.run_constant_cycle(
            tight.baseline_schedule(),
            2,
            average_time_executor(system),
            deadline_of=tight.deadline_at(0),
        )
        assert execution.deadline_misses > 0

    def test_shift_rejected_for_reference_controller(self, system):
        from repro.core import ReferenceController

        controller = ReferenceController(system)
        processor = Processor()
        with pytest.raises(TypeError):
            processor.run_controlled_cycle(
                controller, average_time_executor(system), deadline_shift=5.0
            )


class TestTrace:
    def test_event_properties(self):
        event = ActionEvent("a", 1, start=10.0, duration=5.0, deadline=14.0)
        assert event.end == 15.0
        assert event.missed_deadline

    def test_trace_aggregates(self):
        trace = ExecutionTrace()
        trace.record(ActionEvent("a#0", 0, 0.0, 3.0))
        trace.record(ActionEvent("b#0", 1, 3.0, 4.0))
        trace.record(ActionEvent("a#1", 0, 7.0, 5.0))
        assert len(trace) == 3
        assert trace.total_time == 12.0
        assert trace.makespan == 12.0
        assert len(trace.by_action("a#0")) == 1
        grouped = trace.durations_by_base_action()
        assert grouped["a"] == [3.0, 5.0]
        assert trace.quality_trace() == [0, 1, 0]

    def test_misses_listed(self):
        trace = ExecutionTrace()
        trace.record(ActionEvent("a", 0, 0.0, 10.0, deadline=5.0))
        trace.record(ActionEvent("b", 0, 10.0, 1.0, deadline=20.0))
        assert [e.action for e in trace.misses()] == ["a"]
