"""Autoscaled long-horizon runs are deterministic and engine-stable.

Satellite acceptance: under a fixed seed an always-on, autoscaled
cluster run replays byte-for-byte — same summaries, same JSONL event
log, across repeat runs, across runner instances, and across
execution engines — with enforce-mode invariants attached throughout.
"""

from __future__ import annotations

import pytest

from repro.obs import InvariantObserver, StructuredEventLog
from repro.serving import serve


def always_on_spec(engine="scalar", max_rounds=30):
    return {
        "topology": "cluster",
        "scenario": {
            "name": "diurnal-cluster",
            "kwargs": {"shards": 2, "base_rate": 0.4, "peak": 1.4,
                       "period_rounds": 12, "loop_frames": 4,
                       "provision_concurrency": 4.0},
        },
        "placement": "best-fit",
        "admission": "feasibility",
        "autoscaler": {"name": "signal",
                       "kwargs": {"window": 6, "cooldown": 10,
                                  "sustain": 1}},
        "engine": engine,
        "max_rounds": max_rounds,
    }


def run(engine="scalar"):
    log = StructuredEventLog()
    result = serve(
        always_on_spec(engine),
        observers=[log, InvariantObserver(enforce=True)],
    )
    return result, log.to_jsonl()


def test_repeat_runs_are_byte_identical():
    first, first_log = run()
    second, second_log = run()
    assert first_log == second_log
    assert first.summary() == second.summary()
    assert [a.to_dict() for a in first.raw.scale_actions] == [
        a.to_dict() for a in second.raw.scale_actions
    ]


def test_the_run_actually_scales_and_serves():
    result, log = run()
    assert result.raw.scale_actions, "the diurnal swing must trigger scaling"
    assert result.raw.served_count > 0
    assert '"scale"' in log, "scale actions must reach the event log"


@pytest.mark.parametrize("engine", ["vectorized", "parallel"])
def test_engines_replay_the_scalar_run(engine):
    scalar, scalar_log = run("scalar")
    other, other_log = run(engine)
    assert scalar_log == other_log
    assert scalar.summary() == other.summary()


def test_fresh_runner_equals_reused_runner():
    from repro.serving.runner import build_runner, build_scenario
    from repro.serving.spec import ServingSpec

    spec = ServingSpec.from_dict(always_on_spec())
    scenario = build_scenario(spec)
    runner = build_runner(spec, scenario=scenario)
    first = runner.run(scenario)
    second = runner.run(scenario)
    assert first.summary() == second.summary()
    assert [a.to_dict() for a in first.scale_actions] == [
        a.to_dict() for a in second.scale_actions
    ]
