"""Property-based tests (hypothesis): scaling conserves capacity.

For ANY legal sequence of :class:`ScaleAction`s replayed by a
:class:`ScheduledAutoscaler`, the cluster's declared capacity must
track the sequence exactly: the final live shards are precisely the
ones a model ledger predicts, shard by shard and capacity by capacity,
and the ``scale-conservation`` invariant holds in enforce mode
throughout.  Created shard ids are deterministic (``scale-<serial>``
in creation order), so the model can be built alongside the drawn
sequence.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.placement import RoundRobinPlacement
from repro.cluster.runner import ClusterRunner
from repro.cluster.scenarios import ClusterScenario
from repro.experiments.configs import scaled_config
from repro.horizon import ScaleAction, ScheduledAutoscaler
from repro.obs import InvariantObserver, StructuredEventLog
from repro.streams.scenarios import Scenario, StreamSpec

SETTINGS = settings(max_examples=25, deadline=None)

#: Shard budgets are multiples of one stream's dedicated demand, so
#: any surviving shard can absorb a retired shard's whole population.
UNIT = scaled_config(scale=20, seed=5, frames=32).period

CAPACITY_CHOICES = (4.0 * UNIT, 6.0 * UNIT, 8.0 * UNIT)


def base_scenario(initial):
    """Two long-lived streams over ``initial`` shard capacities."""
    specs = tuple(
        StreamSpec(
            name=f"s{i}",
            arrival_round=0,
            config=scaled_config(scale=20, seed=5 + i, frames=32),
        )
        for i in range(2)
    )
    return ClusterScenario(
        name="scale-prop",
        arrivals=Scenario(name="pair", specs=specs),
        shard_capacities=tuple(initial),
    )


def draw_schedule(data, initial):
    """A legal action sequence plus the model ledger it must produce.

    The model mirrors the runner: created shards are named
    ``scale-<serial>`` in creation order; ``remove`` never targets the
    last shard.  Actions land on consecutive rounds starting at 1.
    """
    model = {f"shard-{i}": c for i, c in enumerate(initial)}
    serial = 0
    schedule = []
    for step in range(data.draw(st.integers(0, 6), label="ops")):
        kinds = ["add"] + (
            ["remove", "split", "merge"] if len(model) > 1 else []
        )
        kind = data.draw(st.sampled_from(kinds), label=f"kind{step}")
        if kind == "add":
            cap = data.draw(
                st.sampled_from(CAPACITY_CHOICES), label=f"cap{step}"
            )
            action = ScaleAction(kind="add", capacities=(cap,))
            model[f"scale-{serial}"] = cap
            serial += 1
        elif kind == "remove":
            victim = data.draw(
                st.sampled_from(sorted(model)), label=f"victim{step}"
            )
            action = ScaleAction(kind="remove", shards=(victim,))
            del model[victim]
        elif kind == "split":
            victim = data.draw(
                st.sampled_from(sorted(model)), label=f"victim{step}"
            )
            cap = model.pop(victim)
            parts = (cap / 2.0, cap - cap / 2.0)
            action = ScaleAction(
                kind="split", shards=(victim,), capacities=parts
            )
            for part in parts:
                model[f"scale-{serial}"] = part
                serial += 1
        else:  # merge
            pair = tuple(sorted(model))[:2]
            total = model.pop(pair[0]) + model.pop(pair[1])
            action = ScaleAction(kind="merge", shards=pair)
            model[f"scale-{serial}"] = total
            serial += 1
        schedule.append((1 + step, action))
    return schedule, model


@given(st.data())
@SETTINGS
def test_legal_action_sequences_conserve_declared_capacity(data):
    initial = data.draw(
        st.lists(st.sampled_from(CAPACITY_CHOICES), min_size=2, max_size=3),
        label="initial",
    )
    schedule, model = draw_schedule(data, initial)
    log = StructuredEventLog()
    ledger = InvariantObserver(
        invariants=["scale-conservation"], enforce=True
    )
    runner = ClusterRunner(
        RoundRobinPlacement(),
        autoscaler=ScheduledAutoscaler(schedule=tuple(schedule)),
        observers=[log, ledger],
        admission=False,
    )
    result = runner.run(base_scenario(initial))

    # every scheduled action fit inside the run and was applied
    # (capacities are sized so no relocation can ever fail)
    assert result.rounds > (schedule[-1][0] if schedule else 0)
    assert [a.kind for a in result.scale_actions] == [
        a.kind for _, a in schedule
    ]

    # replay the event log's capacity declarations: the live fleet at
    # the end must equal the model ledger exactly
    declared = {}
    for event in log.events:
        if event.kind == "capacity":
            if event.capacity <= 0.0:
                declared.pop(event.shard, None)
            else:
                declared[event.shard] = event.capacity
    assert declared.keys() == model.keys()
    for shard_id, capacity in model.items():
        assert math.isclose(
            declared[shard_id], capacity, rel_tol=1e-9, abs_tol=1e-6
        )
    assert math.isclose(
        sum(declared.values()), sum(model.values()),
        rel_tol=1e-9, abs_tol=1e-6,
    )
    assert ledger.violations == []


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=15, deadline=None)
def test_autoscaled_event_logs_are_byte_identical_under_any_seed(seed):
    """Satellite: fixed seed => byte-identical JSONL, any seed."""
    from repro.serving import serve

    def run():
        log = StructuredEventLog()
        result = serve({
            "topology": "cluster",
            "scenario": {
                "name": "diurnal-cluster",
                "kwargs": {"shards": 2, "seed": seed, "base_rate": 0.5,
                           "peak": 1.5, "period_rounds": 10,
                           "loop_frames": 4,
                           "provision_concurrency": 4.0},
            },
            "placement": "best-fit",
            "admission": "feasibility",
            "autoscaler": {"name": "signal",
                           "kwargs": {"window": 5, "cooldown": 8,
                                      "sustain": 1}},
            "max_rounds": 15,
        }, observers=[log])
        return result.summary(), log.to_jsonl()

    first_summary, first_log = run()
    second_summary, second_log = run()
    assert first_log == second_log
    assert first_summary == second_summary
