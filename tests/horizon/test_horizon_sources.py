"""Open-ended workload sources: lazy arrivals, profiles, stop rules.

The always-on subsystem's source contract: arrival schedules are
stateless and deterministic (any round, any order, same answer), the
three rate profiles have their advertised shapes, the interface guards
refuse finite-workload questions, and a run over an open-ended source
must carry an explicit ``max_rounds`` stop condition.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.horizon import (
    DiurnalScenario,
    DriftScenario,
    FlashCrowdScenario,
    diurnal_cluster,
    diurnal_live,
    drift_live,
    flash_crowd_live,
)
from repro.serving import serve
from repro.serving.registry import scenario_open_ended
from repro.serving.spec import ServingSpec
from repro.streams.scenarios import IdleDeparture


class TestArrivalSchedule:
    def test_arrivals_are_stateless_and_order_independent(self):
        scenario = diurnal_live(base_rate=0.5, peak=1.5, period_rounds=20)
        forward = [scenario.arrivals_at(r) for r in range(30)]
        backward = [scenario.arrivals_at(r) for r in reversed(range(30))]
        for mine, theirs in zip(forward, reversed(backward)):
            assert [s.name for s in mine] == [s.name for s in theirs]
            assert [s.config.seed for s in mine] == [
                s.config.seed for s in theirs
            ]

    def test_two_instances_with_one_seed_agree(self):
        a = drift_live(seed=11, start_rate=0.4, end_rate=1.2, drift_rounds=16)
        b = drift_live(seed=11, start_rate=0.4, end_rate=1.2, drift_rounds=16)
        for r in range(24):
            assert [s.name for s in a.arrivals_at(r)] == [
                s.name for s in b.arrivals_at(r)
            ]

    def test_different_seeds_differ_somewhere(self):
        a = diurnal_live(seed=1, base_rate=1.0, peak=2.0, period_rounds=10)
        b = diurnal_live(seed=2, base_rate=1.0, peak=2.0, period_rounds=10)
        counts_a = [len(a.arrivals_at(r)) for r in range(40)]
        counts_b = [len(b.arrivals_at(r)) for r in range(40)]
        assert counts_a != counts_b

    def test_every_arrival_is_unbounded_with_the_departure_policy(self):
        lifetime = IdleDeparture(min_rounds=5, patience=2)
        scenario = flash_crowd_live(
            base_rate=2.0, crowd_round=0, crowd_rate=2.0, lifetime=lifetime
        )
        specs = scenario.arrivals_at(0)
        assert specs
        for spec in specs:
            assert spec.lifetime is lifetime
            assert spec.arrival_round == 0

    def test_classes_are_drawn_from_the_declared_set(self):
        scenario = diurnal_live(
            base_rate=2.0, peak=2.0, classes=("gold", "bronze")
        )
        drawn = {
            spec.service_class
            for r in range(20)
            for spec in scenario.arrivals_at(r)
        }
        assert drawn
        assert drawn <= {"gold", "bronze"}


class TestProfiles:
    def test_diurnal_trough_at_zero_and_peak_mid_period(self):
        s = DiurnalScenario(
            name="d", base_rate=0.2, peak=0.8, period_rounds=40
        )
        assert s.rate(0) == pytest.approx(0.2)
        assert s.rate(20) == pytest.approx(0.8)
        assert s.rate(40) == pytest.approx(0.2)
        assert s.trough_rate() == 0.2 and s.peak_rate() == 0.8
        assert all(0.2 <= s.rate(r) <= 0.8 for r in range(80))

    def test_flash_crowd_spikes_only_inside_the_window(self):
        s = FlashCrowdScenario(
            name="f", base_rate=0.3, crowd_round=10, crowd_rate=2.5,
            crowd_width=3,
        )
        assert s.rate(9) == 0.3
        assert s.rate(10) == s.rate(12) == 2.5
        assert s.rate(13) == 0.3
        assert s.peak_rate() == 2.5 and s.trough_rate() == 0.3

    def test_drift_ramps_linearly_then_holds(self):
        s = DriftScenario(
            name="g", start_rate=0.2, end_rate=1.0, drift_rounds=8
        )
        assert s.rate(0) == pytest.approx(0.2)
        assert s.rate(4) == pytest.approx(0.6)
        assert s.rate(8) == s.rate(100) == pytest.approx(1.0)

    def test_expected_concurrency_is_littles_law(self):
        s = DiurnalScenario(name="d", base_rate=0.5, peak=0.5)
        expected = 0.5 * s.lifetime.mean_lifetime()
        assert s.expected_concurrency(0) == pytest.approx(expected)

    def test_mean_lifetime_estimate_is_sane(self):
        lifetime = IdleDeparture()
        assert lifetime.mean_lifetime() > lifetime.min_rounds
        assert lifetime.mean_lifetime() < lifetime.max_lifetime


class TestInterfaceGuards:
    def test_finite_workload_questions_are_refused(self):
        scenario = diurnal_live()
        with pytest.raises(ConfigurationError, match="open-ended"):
            scenario.last_arrival_round
        with pytest.raises(ConfigurationError, match="open-ended"):
            scenario.total_demand()

    def test_validation_rejects_bad_profiles(self):
        with pytest.raises(ConfigurationError):
            diurnal_live(base_rate=0.8, peak=0.2)
        with pytest.raises(ConfigurationError):
            diurnal_live(period_rounds=1)
        with pytest.raises(ConfigurationError):
            flash_crowd_live(crowd_width=0)
        with pytest.raises(ConfigurationError):
            drift_live(start_rate=-0.1)
        with pytest.raises(ConfigurationError):
            diurnal_live(loop_frames=0)
        with pytest.raises(ConfigurationError, match="IdleDeparture"):
            DiurnalScenario(name="d", lifetime=None)

    def test_registered_open_ended_flags(self):
        for name in ("diurnal-live", "flash-live", "drift-live",
                     "diurnal-cluster", "flash-cluster", "drift-cluster"):
            assert scenario_open_ended(name)
        assert not scenario_open_ended("steady")
        assert not scenario_open_ended("skewed-cluster")


class TestClusterWrapper:
    def test_default_provisioning_targets_the_peak(self):
        cluster = diurnal_cluster(shards=3, base_rate=0.2, peak=0.9)
        arrivals = cluster.arrivals
        expected_total = (
            arrivals.peak_rate()
            * arrivals.lifetime.mean_lifetime()
            * arrivals.stream_demand()
        )
        assert cluster.shard_count == 3
        assert sum(cluster.shard_capacities) == pytest.approx(expected_total)
        # equal pools
        assert len(set(cluster.shard_capacities)) == 1

    def test_explicit_concurrency_overrides_the_peak_default(self):
        cluster = diurnal_cluster(shards=2, provision_concurrency=4.0)
        total = 4.0 * cluster.arrivals.stream_demand()
        assert sum(cluster.shard_capacities) == pytest.approx(total)

    def test_cluster_scenario_reports_open_ended(self):
        assert diurnal_cluster().open_ended
        with pytest.raises(ConfigurationError):
            diurnal_cluster(shards=0)
        with pytest.raises(ConfigurationError):
            diurnal_cluster(shard_capacity=-1.0)


class TestStopCondition:
    """Satellite: open-ended runs need an explicit ``max_rounds``."""

    def test_open_ended_spec_without_max_rounds_is_refused(self):
        with pytest.raises(ConfigurationError, match="max_rounds"):
            ServingSpec.from_dict({
                "scenario": {"name": "diurnal-live"},
                "capacity": 24e6,
            })

    def test_open_ended_run_stops_at_max_rounds(self):
        result = serve({
            "scenario": {
                "name": "drift-live",
                "kwargs": {"start_rate": 0.5, "end_rate": 1.0,
                           "drift_rounds": 10, "loop_frames": 4},
            },
            "capacity": 24e6,
            "admission": "feasibility",
            "max_rounds": 12,
        })
        # arrivals stop at round 11; the drain tail is the buffered
        # frames of the shut-down sessions, not another content loop
        assert result.raw.rounds >= 12
        assert result.raw.rounds < 40
        assert result.raw.served_count > 0

    def test_finite_scenarios_still_run_without_max_rounds(self):
        result = serve({
            "scenario": {"name": "steady",
                         "kwargs": {"count": 2, "frames": 4}},
            "capacity": 24e6,
        })
        assert result.raw.served_count == 2

    def test_max_rounds_validation(self):
        base = {
            "scenario": {"name": "diurnal-live"},
            "capacity": 24e6,
        }
        with pytest.raises(ConfigurationError):
            ServingSpec.from_dict({**base, "max_rounds": 0})
        with pytest.raises(ConfigurationError):
            ServingSpec.from_dict({**base, "max_rounds": 2.5})
        spec = ServingSpec.from_dict({**base, "max_rounds": 50})
        assert spec.max_rounds == 50
        assert spec.to_dict()["max_rounds"] == 50
