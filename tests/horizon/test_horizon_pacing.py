"""Unit tests of the graceful-pacing and scale-conservation laws.

Each invariant is driven hook-by-hook with hand-built sequences — one
clean run and one violating run per law — so the laws' exact
boundaries (step bound, double-flip window, action gap, dip settle,
pending declarations) are pinned independently of any runner.
"""

from __future__ import annotations

import pytest

from repro.horizon import ScaleAction
from repro.obs import (
    InvariantObserver,
    InvariantViolationError,
    PacingDegrade,
    PacingScaleCooldown,
    ScaleConservation,
)


def bound(invariant):
    """Bind a fresh invariant to a violation collector."""
    violations = []
    invariant.bind(violations.append)
    return invariant, violations


class TestPacingDegrade:
    def test_bounded_steps_are_clean(self):
        law, violations = bound(PacingDegrade())
        law.on_renegotiate("s", 0.8, 0.5, 3)
        law.on_renegotiate("s", 0.5, 0.25, 6)
        law.on_renegotiate("s", 0.25, 0.55, 12)
        assert violations == []

    def test_cliff_edge_step_violates(self):
        law, violations = bound(PacingDegrade())
        law.on_renegotiate("s", 0.9, 0.4, 3)
        assert len(violations) == 1
        assert "pacing bound" in violations[0].detail

    def test_single_quick_reversal_is_a_legitimate_correction(self):
        law, violations = bound(PacingDegrade())
        law.on_renegotiate("s", 0.5, 0.6, 10)   # up
        law.on_renegotiate("s", 0.6, 0.5, 11)   # down, 1 round later
        assert violations == []

    def test_double_quick_reversal_is_flutter(self):
        law, violations = bound(PacingDegrade())
        law.on_renegotiate("s", 0.5, 0.6, 10)   # up
        law.on_renegotiate("s", 0.6, 0.5, 11)   # quick flip (ok)
        law.on_renegotiate("s", 0.5, 0.6, 12)   # second quick flip
        assert len(violations) == 1
        assert "oscillating" in violations[0].detail

    def test_slow_reversals_never_accumulate(self):
        law, violations = bound(PacingDegrade())
        for r, (old, new) in enumerate([
            (0.5, 0.6), (0.6, 0.5), (0.5, 0.6), (0.6, 0.5),
        ]):
            law.on_renegotiate("s", old, new, r * 5)
        assert violations == []

    def test_streams_are_tracked_independently(self):
        law, violations = bound(PacingDegrade())
        law.on_renegotiate("a", 0.5, 0.6, 10)
        law.on_renegotiate("b", 0.6, 0.5, 11)
        law.on_renegotiate("a", 0.6, 0.5, 11)
        law.on_renegotiate("b", 0.5, 0.6, 12)
        # each stream has made only ONE quick flip
        assert violations == []


def declare(law, shard_id, capacity, round_index):
    law.on_capacity(capacity, round_index, shard_id=shard_id)


class TestPacingScaleCooldown:
    def test_spaced_actions_are_clean(self):
        law, violations = bound(PacingScaleCooldown())
        declare(law, "shard-0", 1e6, 0)
        law.on_scale(ScaleAction(kind="add", capacities=(1e6,),
                                 created=("scale-0",)), 10)
        declare(law, "scale-0", 1e6, 10)
        law.on_scale(ScaleAction(kind="remove", shards=("scale-0",)), 18)
        declare(law, "scale-0", 0.0, 18)
        assert violations == []

    def test_rapid_fire_actions_violate(self):
        law, violations = bound(PacingScaleCooldown())
        law.on_scale(ScaleAction(kind="add", capacities=(1e6,)), 10)
        law.on_scale(ScaleAction(kind="add", capacities=(1e6,)), 14)
        assert len(violations) == 1
        assert "min gap" in violations[0].detail

    def test_scale_up_into_a_fresh_dip_violates(self):
        law, violations = bound(PacingScaleCooldown())
        declare(law, "shard-0", 2e6, 0)
        declare(law, "shard-0", 1e6, 20)   # outage: capacity halves
        law.on_scale(ScaleAction(kind="add", capacities=(1e6,)), 24)
        assert len(violations) == 1
        assert "dip" in violations[0].detail

    def test_scale_up_after_the_dip_settles_is_clean(self):
        law, violations = bound(PacingScaleCooldown())
        declare(law, "shard-0", 2e6, 0)
        declare(law, "shard-0", 1e6, 20)
        law.on_scale(ScaleAction(kind="add", capacities=(1e6,)), 28)
        assert violations == []

    def test_scale_down_into_a_dip_is_allowed(self):
        # only ADDING capacity masks a dip; retiring is degrading
        law, violations = bound(PacingScaleCooldown())
        declare(law, "shard-0", 2e6, 0)
        declare(law, "shard-1", 2e6, 0)
        declare(law, "shard-0", 1e6, 20)
        law.on_scale(ScaleAction(kind="remove", shards=("shard-1",)), 24)
        assert violations == []

    def test_scale_triggered_declarations_are_not_dips(self):
        law, violations = bound(PacingScaleCooldown())
        declare(law, "shard-0", 2e6, 0)
        # a split re-declares lower capacities — provisioning, not dip
        law.on_scale(
            ScaleAction(kind="split", shards=("shard-0",),
                        capacities=(1e6, 1e6),
                        created=("scale-0", "scale-1")),
            10,
        )
        declare(law, "scale-0", 1e6, 10)
        declare(law, "scale-1", 1e6, 10)
        declare(law, "shard-0", 0.0, 10)
        law.on_scale(ScaleAction(kind="add", capacities=(1e6,),
                                 created=("scale-2",)), 20)
        assert violations == []


class TestScaleConservation:
    def test_clean_lifecycle_holds(self):
        law, violations = bound(ScaleConservation())
        declare(law, "shard-0", 2e6, 0)
        declare(law, "shard-1", 2e6, 0)
        law.on_scale(
            ScaleAction(kind="merge", shards=("shard-0", "shard-1"),
                        created=("scale-0",)),
            5,
        )
        declare(law, "scale-0", 4e6, 5)
        declare(law, "shard-0", 0.0, 5)
        declare(law, "shard-1", 0.0, 5)
        law.on_round(6, {}, 4e6, None)
        law.finalize()
        assert violations == []

    def test_non_conserving_split_violates(self):
        law, violations = bound(ScaleConservation())
        declare(law, "shard-0", 2e6, 0)
        law.on_scale(
            ScaleAction(kind="split", shards=("shard-0",),
                        capacities=(1e6, 2e6),
                        created=("scale-0", "scale-1")),
            5,
        )
        assert any("split parts" in v.detail for v in violations)

    def test_wrong_merge_total_violates(self):
        law, violations = bound(ScaleConservation())
        declare(law, "shard-0", 2e6, 0)
        declare(law, "shard-1", 2e6, 0)
        law.on_scale(
            ScaleAction(kind="merge", shards=("shard-0", "shard-1"),
                        capacities=(5e6,), created=("scale-0",)),
            5,
        )
        assert any("merge declares" in v.detail for v in violations)

    def test_unknown_shard_violates(self):
        law, violations = bound(ScaleConservation())
        law.on_scale(ScaleAction(kind="remove", shards=("ghost",)), 5)
        assert any("unknown shard" in v.detail for v in violations)

    def test_promised_declaration_that_never_arrives_violates(self):
        law, violations = bound(ScaleConservation())
        declare(law, "shard-0", 2e6, 0)
        law.on_scale(
            ScaleAction(kind="add", capacities=(1e6,),
                        created=("scale-0",)),
            5,
        )
        law.on_round(6, {}, 2e6, None)  # next round, nothing declared
        assert any("never arrived" in v.detail for v in violations)

    def test_mismatched_declaration_violates(self):
        law, violations = bound(ScaleConservation())
        declare(law, "shard-0", 2e6, 0)
        law.on_scale(
            ScaleAction(kind="add", capacities=(1e6,),
                        created=("scale-0",)),
            5,
        )
        declare(law, "scale-0", 3e6, 5)
        assert any("promised" in v.detail for v in violations)

    def test_undeclared_creation_count_violates(self):
        law, violations = bound(ScaleConservation())
        declare(law, "shard-0", 2e6, 0)
        law.on_scale(ScaleAction(kind="add", capacities=(1e6,)), 5)
        assert any("announced" in v.detail for v in violations)


class TestEnforcementWiring:
    def test_observer_dispatches_on_scale_and_enforces(self):
        observer = InvariantObserver(
            invariants=["pacing-scale-cooldown"], enforce=True
        )
        observer.on_scale(ScaleAction(kind="add", capacities=(1e6,)), 10)
        with pytest.raises(InvariantViolationError, match="min gap"):
            observer.on_scale(
                ScaleAction(kind="add", capacities=(1e6,)), 12
            )

    def test_all_three_laws_are_registered(self):
        from repro.obs import INVARIANTS

        names = INVARIANTS.names()
        for name in ("scale-conservation", "pacing-degrade",
                     "pacing-scale-cooldown"):
            assert name in names
