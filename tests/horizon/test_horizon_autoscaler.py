"""The autoscaler subsystem: actions, policies, spec wiring.

Covers :class:`ScaleAction`'s structural validation, the
:class:`SignalAutoscaler` control loop driven hook-by-hook (window
timing, hysteresis, cooldown, both scale directions, both pressure
terms), :class:`ScheduledAutoscaler` replay, and the serving-spec
integration (registry construction, cluster-only validation).
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.errors import ConfigurationError
from repro.horizon import (
    SCALE_KINDS,
    Autoscaler,
    ScaleAction,
    ScheduledAutoscaler,
    SignalAutoscaler,
)
from repro.serving.registry import AUTOSCALERS
from repro.serving.spec import ServingSpec


def fake_shard(shard_id="shard-0", capacity=1e6, active=(), queue=()):
    return SimpleNamespace(
        shard_id=shard_id,
        capacity=capacity,
        active=list(active),
        queue=list(queue),
    )


def fake_spec(name="s", service_class=None):
    return SimpleNamespace(name=name, service_class=service_class)


class TestScaleAction:
    def test_kinds_catalog(self):
        assert SCALE_KINDS == ("add", "remove", "split", "merge")

    def test_legal_shapes(self):
        add = ScaleAction(kind="add", capacities=[2e6])
        assert add.capacities == (2e6,) and add.provisioned == 2e6
        remove = ScaleAction(kind="remove", shards=["shard-1"])
        assert remove.shards == ("shard-1",) and remove.provisioned == 0.0
        split = ScaleAction(
            kind="split", shards=("shard-0",), capacities=(1e6, 1e6)
        )
        assert split.provisioned == 0.0
        merge = ScaleAction(kind="merge", shards=("a", "b"))
        assert merge.capacities == ()
        merged = ScaleAction(kind="merge", shards=("a", "b"),
                             capacities=(3e6,))
        assert merged.capacities == (3e6,)

    @pytest.mark.parametrize("kwargs", [
        {"kind": "grow", "capacities": (1e6,)},
        {"kind": "add"},
        {"kind": "add", "capacities": (1e6, 1e6)},
        {"kind": "add", "shards": ("shard-0",), "capacities": (1e6,)},
        {"kind": "add", "capacities": (-1e6,)},
        {"kind": "add", "capacities": (0.0,)},
        {"kind": "remove"},
        {"kind": "remove", "shards": ("a", "b")},
        {"kind": "remove", "shards": ("a",), "capacities": (1e6,)},
        {"kind": "split", "shards": ("a",), "capacities": (1e6,)},
        {"kind": "split", "shards": (), "capacities": (1e6, 1e6)},
        {"kind": "merge", "shards": ("a",)},
        {"kind": "merge", "shards": ("a", "b"), "capacities": (1e6, 2e6)},
        {"kind": "merge", "shards": ("a", "a")},
    ])
    def test_illegal_shapes_are_refused(self, kwargs):
        with pytest.raises(ConfigurationError):
            ScaleAction(**kwargs)

    def test_to_dict_round_trips_the_fields(self):
        action = ScaleAction(
            kind="split", shards=("shard-0",), capacities=(1e6, 2e6),
            reason="why",
        )
        assert action.to_dict() == {
            "kind": "split", "shards": ["shard-0"],
            "capacities": [1e6, 2e6], "reason": "why", "created": [],
            "action_id": "",
        }


class TestBasePolicy:
    def test_static_policy_never_scales(self):
        policy = Autoscaler()
        assert policy.observer() is None
        assert policy.plan([fake_shard()], 0) == []
        policy.reset()  # no-op, must not raise


class TestScheduledAutoscaler:
    def test_replays_actions_at_their_rounds_only(self):
        first = ScaleAction(kind="add", capacities=(1e6,))
        second = ScaleAction(kind="remove", shards=("shard-0",))
        policy = ScheduledAutoscaler(schedule=((3, first), (3, second),
                                               (7, first)))
        assert policy.plan([], 0) == []
        assert policy.plan([], 3) == [first, second]
        assert policy.plan([], 7) == [first]
        assert policy.plan([], 8) == []


class TestSignalValidation:
    @pytest.mark.parametrize("kwargs", [
        {"window": 0}, {"window": 2.5}, {"window": True},
        {"up_pressure": 0.0}, {"down_utilization": 0.0},
        {"down_utilization": 1.0}, {"sustain": 0}, {"cooldown": 0},
        {"reject_pressure": -1.0}, {"queue_pressure": -0.1},
        {"down_quality": 0.0}, {"down_quality": -1.0},
        {"add_capacity": 0.0}, {"min_shards": 0},
        {"min_shards": 4, "max_shards": 2},
    ])
    def test_bad_parameters_are_refused(self, kwargs):
        with pytest.raises(ConfigurationError):
            SignalAutoscaler(**kwargs)


class TestSignalControlLoop:
    """Drive the policy's private telemetry hook by hook."""

    def run_rounds(self, policy, shards, rounds, rejects_per_round=0):
        """Feed quiet-or-congested rounds; return all planned actions."""
        telemetry = policy.observer()
        actions = []
        for r in rounds:
            for shard in shards:
                telemetry.on_round(
                    r, {"x": shard.capacity}, shard.capacity,
                    shard_id=shard.shard_id,
                )
            for _ in range(rejects_per_round):
                telemetry.on_reject(fake_spec(), r)
            actions.extend((r, a) for a in policy.plan(shards, r))
        return actions

    def test_decisions_only_land_on_window_boundaries(self):
        policy = SignalAutoscaler(window=5, sustain=1, cooldown=5)
        shards = [fake_shard()]
        telemetry = policy.observer()
        telemetry.on_round(2, {}, 1e6, shard_id="shard-0")
        telemetry.on_reject(fake_spec(), 2)
        assert policy.plan(shards, 2) == []          # mid-window
        assert policy._up_streak == 0

    def test_sustained_rejections_scale_up(self):
        policy = SignalAutoscaler(
            window=4, sustain=2, cooldown=4, reject_pressure=3.0
        )
        shards = [fake_shard(capacity=2e6)]
        actions = self.run_rounds(
            policy, shards, range(12), rejects_per_round=1
        )
        # windows close at rounds 3, 7 — two qualifying windows
        assert actions
        round_index, action = actions[0]
        assert round_index == 7
        assert action.kind == "add"
        assert action.capacities == (2e6,)   # mean of live shards

    def test_queue_backlog_alone_scales_up(self):
        policy = SignalAutoscaler(
            window=4, sustain=1, cooldown=4, queue_pressure=0.1,
            up_pressure=0.15,
        )
        queued = [fake_spec(f"q{i}") for i in range(4)]
        shards = [fake_shard(queue=queued), fake_shard("shard-1")]
        # weighted backlog: 0.1 * 4 / 2 shards = 0.2 >= 0.15
        actions = self.run_rounds(policy, shards, range(4))
        assert [a.kind for _, a in actions] == ["add"]

    def test_one_noisy_window_is_hysteresis_filtered(self):
        policy = SignalAutoscaler(window=4, sustain=2, cooldown=4)
        shards = [fake_shard()]
        telemetry = policy.observer()
        # one congested window, then a busy (not quiet) one
        actions = self.run_rounds(policy, shards, range(4),
                                  rejects_per_round=2)
        actions += self.run_rounds(policy, shards, range(4, 8))
        assert actions == []

    def test_cooldown_spaces_consecutive_actions(self):
        policy = SignalAutoscaler(
            window=2, sustain=1, cooldown=9, reject_pressure=3.0
        )
        shards = [fake_shard()]
        actions = self.run_rounds(
            policy, shards, range(20), rejects_per_round=1
        )
        rounds = [r for r, _ in actions]
        assert rounds
        assert all(b - a >= 9 for a, b in zip(rounds, rounds[1:]))

    def test_quiet_low_utilization_scales_down_the_emptiest(self):
        policy = SignalAutoscaler(
            window=4, sustain=2, cooldown=4, down_utilization=0.6
        )
        busy = fake_shard("shard-0", active=[1, 2, 3])
        idle = fake_shard("shard-1")
        telemetry = policy.observer()
        actions = []
        for r in range(8):
            # utilization 0.25: granted 0.5e6 of 2e6 across both pools
            for shard in (busy, idle):
                telemetry.on_round(
                    r, {"x": 0.25e6}, 1e6, shard_id=shard.shard_id
                )
            actions.extend(policy.plan([busy, idle], r))
        assert [a.kind for a in actions] == ["remove"]
        assert actions[0].shards == ("shard-1",)

    def test_quality_saturation_scales_down_at_full_utilization(self):
        # work-conserving arbiters grant the whole pool, so utilization
        # sits at 1.0 even when the fleet is twice the workload; the
        # down_quality signal must still shrink it
        policy = SignalAutoscaler(
            window=4, sustain=2, cooldown=4, down_quality=6.5
        )
        busy = fake_shard("shard-0", active=[1, 2])
        spare = fake_shard("shard-1", active=[3])
        telemetry = policy.observer()

        def departure(quality):
            return SimpleNamespace(
                spec=fake_spec(),
                result=SimpleNamespace(mean_quality=lambda: quality),
            )

        actions = []
        for r in range(8):
            for shard in (busy, spare):
                telemetry.on_round(
                    r, {"x": 1e6}, 1e6, shard_id=shard.shard_id
                )
            telemetry.on_depart(departure(6.8), r)
            actions.extend(policy.plan([busy, spare], r))
        assert [a.kind for a in actions] == ["remove"]
        assert actions[0].shards == ("shard-1",)

    def test_unsaturated_quality_does_not_scale_down(self):
        policy = SignalAutoscaler(
            window=4, sustain=1, cooldown=4, down_quality=6.5
        )
        telemetry = policy.observer()
        shards = [fake_shard("shard-0"), fake_shard("shard-1")]
        for r in range(4):
            for shard in shards:
                telemetry.on_round(
                    r, {"x": 1e6}, 1e6, shard_id=shard.shard_id
                )
            telemetry.on_depart(
                SimpleNamespace(
                    spec=fake_spec(),
                    result=SimpleNamespace(mean_quality=lambda: 4.0),
                ),
                r,
            )
        assert policy.plan(shards, 3) == []

    def test_min_shards_floor_blocks_scale_down(self):
        policy = SignalAutoscaler(
            window=4, sustain=1, cooldown=4, min_shards=1
        )
        only = fake_shard()
        telemetry = policy.observer()
        for r in range(4):
            telemetry.on_round(r, {"x": 0.1e6}, 1e6, shard_id="shard-0")
        assert policy.plan([only], 3) == []

    def test_max_shards_ceiling_blocks_scale_up(self):
        policy = SignalAutoscaler(
            window=2, sustain=1, cooldown=2, max_shards=1
        )
        shards = [fake_shard()]
        actions = self.run_rounds(policy, shards, range(4),
                                  rejects_per_round=3)
        assert actions == []

    def test_reset_clears_streaks_and_telemetry(self):
        policy = SignalAutoscaler(window=2, sustain=2, cooldown=2)
        shards = [fake_shard()]
        self.run_rounds(policy, shards, range(2), rejects_per_round=1)
        assert policy._up_streak == 1
        policy.reset()
        assert policy._up_streak == 0
        assert policy.observer().current()["rounds"] == 0

    def test_pressure_weights_gold_rejections_heavier(self):
        gold = SignalAutoscaler(classes=[
            {"name": "gold", "weight": 4.0},
        ])
        summary = {
            "renegotiations": 4,
            "renegotiations_down": 4,
            "renegotiation_density_by_class": {"gold": 0.5},
            "rounds": 10,
            "rejected": 0,
        }
        unweighted = dict(summary)
        unweighted["renegotiation_density_by_class"] = {"unclassed": 0.5}
        assert gold.pressure(summary) == pytest.approx(4.0 * 0.5)
        assert gold.pressure(unweighted) == pytest.approx(0.5)


class TestServingSpecIntegration:
    def test_signal_autoscaler_is_registered(self):
        assert "signal" in AUTOSCALERS.names()
        policy = AUTOSCALERS.create("signal", window=10)
        assert isinstance(policy, SignalAutoscaler)
        assert policy.window == 10

    def test_autoscaler_is_cluster_only(self):
        with pytest.raises(ConfigurationError, match="autoscaler"):
            ServingSpec.from_dict({
                "scenario": {"name": "steady"},
                "capacity": 24e6,
                "autoscaler": "signal",
            })

    def test_cluster_spec_round_trips_the_autoscaler(self):
        spec = ServingSpec.from_dict({
            "topology": "cluster",
            "scenario": {"name": "diurnal-cluster"},
            "placement": "best-fit",
            "autoscaler": {"name": "signal", "kwargs": {"window": 8}},
            "max_rounds": 40,
        })
        document = spec.to_dict()
        assert document["autoscaler"] == {
            "name": "signal", "kwargs": {"window": 8},
        }
        again = ServingSpec.from_dict(document)
        assert again.autoscaler == spec.autoscaler
