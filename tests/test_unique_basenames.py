"""Repo-wide guard: test file basenames are unique.

Neither ``tests/`` nor ``benchmarks/`` ships ``__init__.py`` files, so
pytest imports every test module by its *basename*.  Two files with
the same basename in different directories collide at collection time
and abort the whole run (the tier-1 failure fixed ad hoc in PR 1 by
renaming ``tests/baselines/test_policies.py``).  This check turns that
silent landmine into a named failure at the moment the duplicate is
introduced.
"""

from collections import Counter
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
TEST_TREES = ("tests", "benchmarks")


def test_test_file_basenames_are_unique():
    files = [
        path
        for tree in TEST_TREES
        for path in (REPO_ROOT / tree).rglob("test_*.py")
    ]
    assert files, "expected to find test files"
    counts = Counter(path.name for path in files)
    duplicates = {
        name: sorted(
            str(path.relative_to(REPO_ROOT))
            for path in files
            if path.name == name
        )
        for name, count in counts.items()
        if count > 1
    }
    assert not duplicates, (
        "duplicate test basenames collide at pytest collection "
        f"(rename one of each): {duplicates}"
    )
