"""The shipped examples must run (deliverable b).

The fast examples run end-to-end in a subprocess; the two
simulation-scale examples are compile-checked here and exercised at
full length by the benches (they share the same runner entry points).
"""

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "pixel_codec_demo.py",
    "codegen_tool.py",
    "fleet_serving.py",
    "cluster_serving.py",
    "serving_spec.py",
    "sla_serving.py",
    "telemetry.py",
    "always_on.py",
]
HEAVY_EXAMPLES = ["video_encoder.py", "soft_deadlines.py"]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_fast_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), f"{script} produced no output"


@pytest.mark.parametrize("script", FAST_EXAMPLES + HEAVY_EXAMPLES)
def test_example_compiles(script):
    py_compile.compile(str(EXAMPLES / script), doraise=True)


def test_quickstart_reports_schedule_and_qualities():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert "EDF schedule: grab -> enhance -> pack -> emit" in completed.stdout
    assert "degraded steps: 0" in completed.stdout


def test_codegen_tool_emits_c():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / "codegen_tool.py"), "--emit"],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert "qos_run_cycle" in completed.stdout
    assert "int32_t qos_slack_av" in completed.stdout
