"""The simulation's fast inner loop must match the core controller.

The encoder simulation evaluates the quality constraint only at
``Motion_Estimate`` positions (the other actions' times are
quality-independent, so deciding there is a no-op) and uses flattened
Python lists instead of controller objects.  This test pins that
optimization to the semantics of :class:`TableDrivenController`: same
times in, same ME qualities out.
"""

import numpy as np
import pytest

from repro.core.action import split_iterated_action
from repro.core.fast_controller import TableDrivenController
from repro.experiments.configs import tiny_config
from repro.sim.encoder_loop import EncoderSimulation
from repro.video.pipeline import GRAB_ACTION, ME_ACTION, MACROBLOCK_ACTIONS


@pytest.fixture(scope="module")
def simulation():
    from dataclasses import replace

    config = replace(tiny_config(frames=3), decision_overhead=150.0)
    return EncoderSimulation(config)


def deterministic_times(simulation, content, seed):
    """One fixed draw of all frame times, in the sim's format."""
    rng = np.random.default_rng(seed)
    return simulation._draw_frame_times(rng, content, quality=None)


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("frame_index", [0, 1])
def test_me_decisions_match_controller(simulation, seed, frame_index, monkeypatch):
    content = simulation.contents[frame_index]
    grab, me, post = deterministic_times(simulation, content, seed)
    overhead = simulation.config.decision_overhead
    count = simulation.config.macroblocks

    # --- the fast loop -------------------------------------------------
    monkeypatch.setattr(
        simulation,
        "_draw_frame_times",
        lambda rng, c, quality, bias=1.0: (grab, me, post),
    )
    timing = simulation._encode_controlled_frame(
        np.random.default_rng(0), content,
        budget=simulation.config.nominal_budget,
        constraint_mode="both", granularity=1,
    )

    # --- the real table-driven controller over the same times ----------
    # Reconstruct per-action times: the sim aggregates the 7 post-ME
    # actions into one sum, which is equivalent to any split for a
    # uniform-deadline cycle; feed the controller the same aggregate by
    # charging it all on the first post-ME action.
    post_me_first = MACROBLOCK_ACTIONS[2]
    levels = list(simulation.quality_set)

    def time_source(action, quality):
        base, iteration = split_iterated_action(action)
        if base == GRAB_ACTION:
            return grab[iteration] + 2 * overhead  # grab + ME boundary costs
        if base == ME_ACTION:
            return me[iteration][levels.index(quality)]
        if base == post_me_first:
            return post[iteration] + 7 * overhead
        return 0.0

    controller = TableDrivenController(
        simulation.system, tables=simulation.tables, validate=False
    )
    result = controller.run_cycle(time_source)

    me_positions = simulation._me_positions
    controller_me_qualities = [result.qualities[p] for p in me_positions]
    assert controller_me_qualities == list(timing.qualities), (
        f"fast loop diverged from the controller on frame {frame_index}, "
        f"seed {seed}"
    )
    # and both observed the same total frame time
    assert result.total_time == pytest.approx(timing.cycles)


def test_fast_loop_charges_every_boundary(simulation):
    content = simulation.contents[0]
    timing = simulation._encode_controlled_frame(
        np.random.default_rng(1), content,
        budget=simulation.config.nominal_budget,
        constraint_mode="both", granularity=1,
    )
    expected = 9.0 * simulation.config.decision_overhead * simulation.config.macroblocks
    assert timing.controller_cycles == expected
