"""Execution-engine bench: vectorized batching must pay for itself.

The acceptance criterion of the execution-engine tentpole: on a
256-stream homogeneous fleet in overload (demand at ~1.4x the shared
capacity), the vectorized engine must serve the same workload **at
least 5x faster** than the scalar engine while reproducing it exactly —
identical summaries, per-stream series and event logs, with
``InvariantObserver(enforce=True)`` attached so a run that merely
*looks* right but breaks a runtime invariant aborts.  The measured
trajectory (per-engine wall seconds, speedups, workload fingerprint)
is written to ``BENCH_engine.json`` at the repo root so the engine's
headline number is tracked PR-over-PR.

Timing methodology: one warm-up pass per engine first (banks, kernels
and compiled tables are shared, deliberately), then min-of-3 with the
repeats **interleaved** across engines — back-to-back blocks would let
a slow patch of CI noise land entirely on one engine and skew the
ratio (the failure mode that once produced a negative overhead in the
telemetry bench).
"""

from __future__ import annotations

import math
import time

from repro.obs import InvariantObserver, StructuredEventLog
from repro.serving import serve
from repro.sim.runner import reset_caches

from conftest import run_once, write_bench_trajectory

#: The tentpole's floor: scalar seconds / vectorized seconds.
SPEEDUP_FLOOR = 5.0

#: 256 homogeneous streams, 12 frames each, pool sized to 70% of
#: aggregate demand — every round is an overload round, so the arbiter,
#: admission and the per-frame decision loop all stay hot.
STREAMS = 256

ENGINES = ("scalar", "vectorized", "parallel")


def engine_spec(engine: str) -> dict:
    return {
        "scenario": {
            "name": "steady",
            "kwargs": {"count": STREAMS, "frames": 12, "scale": 2},
        },
        "capacity": {"utilization": 0.7},
        "arbiter": "quality-fair",
        "admission": "feasibility",
        "granularity": 1,
        "engine": engine,
    }


def checked_run(engine: str):
    """Serve under invariant enforcement, capturing the event log."""
    log = StructuredEventLog()
    invariants = InvariantObserver(enforce=True)
    result = serve(engine_spec(engine), observers=[log, invariants])
    assert invariants.violations == []
    return result, log.to_jsonl()


def assert_values_equal(mine, theirs):
    assert len(mine) == len(theirs)
    for x, y in zip(mine, theirs):
        if isinstance(x, float) and math.isnan(x):
            assert isinstance(y, float) and math.isnan(y)
        else:
            assert x == y


def test_bench_engine_speedup(benchmark, results_dir):
    """Vectorized >= 5x scalar on the 256-stream overload fleet."""
    reset_caches()

    def measured():
        # correctness pass (doubles as cache warm-up): every engine
        # serves the bench workload once under enforcement and must
        # reproduce scalar to the bit, event log included
        runs = {engine: checked_run(engine) for engine in ENGINES}
        scalar_result, scalar_log = runs["scalar"]
        for engine in ("vectorized", "parallel"):
            result, log = runs[engine]
            mine, theirs = scalar_result.summary(), result.summary()
            assert mine.keys() == theirs.keys()
            assert_values_equal(list(mine.values()), list(theirs.values()))
            assert log == scalar_log, f"{engine} event log diverged"

        # interleaved min-of-3 wall times (see module docstring)
        seconds = {engine: math.inf for engine in ENGINES}
        for _ in range(3):
            for engine in ENGINES:
                start = time.perf_counter()
                serve(engine_spec(engine))
                seconds[engine] = min(
                    seconds[engine], time.perf_counter() - start
                )
        return runs, seconds

    runs, seconds = run_once(benchmark, measured)
    scalar_result, _ = runs["scalar"]
    speedup = {
        engine: seconds["scalar"] / seconds[engine]
        for engine in ("vectorized", "parallel")
    }

    print(
        f"\nscalar {seconds['scalar']:.3f}s, "
        f"vectorized {seconds['vectorized']:.3f}s ({speedup['vectorized']:.2f}x), "
        f"parallel {seconds['parallel']:.3f}s ({speedup['parallel']:.2f}x)"
    )

    # --- the acceptance criterion ---------------------------------
    summary = scalar_result.summary()
    assert summary["served"] == STREAMS
    assert speedup["vectorized"] >= SPEEDUP_FLOOR, (
        f"vectorized speedup {speedup['vectorized']:.2f}x < "
        f"{SPEEDUP_FLOOR}x floor"
    )
    # the parallel engine layers shard concurrency on the same batched
    # kernels; on a single-core runner it must at least hold the
    # vectorized floor rather than regress toward scalar
    assert speedup["parallel"] >= SPEEDUP_FLOOR

    write_bench_trajectory("engine", {
        "streams": STREAMS,
        "frames": 12,
        "granularity": 1,
        "utilization": 0.7,
        "scalar_seconds": round(seconds["scalar"], 4),
        "vectorized_seconds": round(seconds["vectorized"], 4),
        "parallel_seconds": round(seconds["parallel"], 4),
        "vectorized_speedup": round(speedup["vectorized"], 2),
        "parallel_speedup": round(speedup["parallel"], 2),
        "speedup_floor": SPEEDUP_FLOOR,
        "served": summary["served"],
        "rejected": summary["rejected"],
        "mean_quality": round(summary["mean_quality"], 4),
    })
