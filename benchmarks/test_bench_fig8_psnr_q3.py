"""Fig. 8 — PSNR per frame: controlled (K=1) vs constant q=3 (K=1).

Expected shape (paper, section 3):

* controlled PSNR is higher than constant q=3 *except* inside the skip
  regions, where the baseline spends the skipped frames' bits (its
  PSNR rises there while its displayed frame rate halves);
* skipped frames compare the redisplayed previous frame against the
  input, scoring low PSNR (e.g. below 25);
* PSNR jumps at sequence changes (I-frames) for both encoders.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.metrics import psnr_advantage
from repro.analysis.report import comparison_table
from repro.experiments.figures import figure8_psnr_vs_q3
from repro.experiments.paper_data import PAPER

from conftest import run_once


def test_figure8(benchmark, config, results_dir):
    data = run_once(benchmark, figure8_psnr_vs_q3, config)
    controlled, baseline = data.controlled, data.baseline

    print()
    print(ascii_plot(
        data.series(),
        title=f"Figure 8 (reproduced): {data.description}",
        y_label="PSNR",
        y_min=15.0,
    ))
    print(comparison_table([controlled, baseline]))
    comparison = psnr_advantage(controlled, baseline)
    print(
        f"PSNR advantage outside skip regions: {comparison.advantage_outside:+.2f} dB; "
        f"inside: {comparison.advantage_inside:+.2f} dB; "
        f"inside vs encoded-only: {comparison.advantage_inside_encoded:+.2f} dB "
        f"({comparison.baseline_skip_count} baseline skips)"
    )
    controlled.to_csv(results_dir / "fig8_controlled.csv")
    baseline.to_csv(results_dir / "fig8_constant_q3.csv")

    # --- controlled wins outside skip regions --------------------------
    assert comparison.advantage_outside > 0.3, (
        f"controlled should clearly beat constant q=3 outside skip regions, "
        f"got {comparison.advantage_outside:+.2f} dB"
    )

    # --- the baseline's skipped frames score below the paper's bound ---
    psnr = baseline.psnr_series()
    for index in baseline.skipped_indices():
        assert psnr[index] < PAPER.skip_psnr_bound, (
            f"skipped frame {index} scored {psnr[index]:.1f} dB"
        )

    # --- inside skip regions the baseline's *encoded* frames benefit
    #     from the freed bits: the controlled encoder's margin shrinks
    #     (and typically flips) there — the paper's crossover ----------
    if comparison.region_size > 4:
        assert comparison.advantage_inside_encoded < comparison.advantage_outside

    # --- controlled never skips: its PSNR never collapses -------------
    assert controlled.skip_count == 0
    assert float(np.min(controlled.psnr_series())) > PAPER.skip_psnr_bound

    # --- both stay in the figure's plausible band ----------------------
    encoded = [f.psnr for f in controlled.frames]
    assert 28.0 < float(np.mean(encoded)) < 45.0
