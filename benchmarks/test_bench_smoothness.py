"""Smoothness of quality variations (paper section 4).

"We studied specific conditions guaranteeing smoothness in terms of
variations of quality levels chosen by the controller."  The sweep
compares the maximal policy against the smoothness-oriented policies
(bounded step, hysteresis): smoother quality traces at a small PSNR
cost, with safety untouched.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.policies import BoundedStepPolicy, HysteresisPolicy
from repro.experiments.paper_data import PAPER
from repro.sim.encoder_loop import EncoderSimulation
from repro.sim.results import RunResult

from conftest import run_once


def within_frame_smoothness(result: RunResult) -> float:
    """Mean within-frame quality churn: |delta q| between consecutive
    macroblock decisions (the smoothness the viewer perceives)."""
    return result.mean_quality_churn()


def test_smoothness_policies(benchmark, config, results_dir):
    simulation = EncoderSimulation(config)

    def runs():
        return {
            "maximal": simulation.run_controlled(label="maximal"),
            "bounded1": simulation.run_controlled_with_policy(
                BoundedStepPolicy(max_step=1), label="bounded(step=1)"
            ),
            "hysteresis": simulation.run_controlled_with_policy(
                HysteresisPolicy(patience=3), label="hysteresis(3)"
            ),
        }

    results = run_once(benchmark, runs)
    print("\npolicy smoothness (between frames / within frames):")
    with open(results_dir / "smoothness.csv", "w") as handle:
        handle.write("policy,frame_smoothness,mb_span,mean_psnr,skips,misses\n")
        for name, result in results.items():
            frame_smooth = result.quality_smoothness()
            span = within_frame_smoothness(result)
            print(
                f"  {name:>12}: frame delta={frame_smooth:.3f} "
                f"mb span={span:.3f} psnr={result.mean_psnr():.2f}"
            )
            handle.write(
                f"{name},{frame_smooth:.4f},{span:.4f},"
                f"{result.mean_psnr():.4f},{result.skip_count},"
                f"{result.deadline_miss_count}\n"
            )

    maximal = results["maximal"]
    bounded = results["bounded1"]
    hysteresis = results["hysteresis"]

    # all policies inherit the safety guarantee
    for result in results.values():
        assert result.skip_count == 0
        assert result.deadline_miss_count == 0

    # hysteresis visibly suppresses within-frame quality chattering
    assert within_frame_smoothness(hysteresis) < 0.85 * within_frame_smoothness(maximal)
    # the bounded-step policy can only slow changes, never add churn
    # beyond noise (the maximal controller is already quite smooth:
    # slack evolves gradually between macroblocks)
    assert within_frame_smoothness(bounded) <= 1.1 * within_frame_smoothness(maximal)
    # at a modest PSNR price
    assert bounded.mean_psnr() >= maximal.mean_psnr() - 1.0
    assert hysteresis.mean_psnr() >= maximal.mean_psnr() - 1.0

    # PSNR swings between consecutive frames shrink too
    def psnr_jitter(result):
        series = result.psnr_series()
        return float(np.mean(np.abs(np.diff(series))))

    assert psnr_jitter(bounded) <= psnr_jitter(maximal) * 1.25
