"""Fleet serving bench: capacity scaling and arbiter fairness.

Beyond-the-paper scaling experiment: many concurrent QoS-controlled
encoder streams share one simulated processor.  Two questions:

* how does delivered quality degrade as the fleet grows on a fixed
  shared capacity (scaling sweep), and
* does quality-fair arbitration close the per-stream quality gap that
  demand-blind equal-share opens on a heterogeneous mix (the
  quality-fairness claim of Changuel et al., asserted here and in
  ``tests/streams/test_fleet.py``).

All runs are declared as serving-API ``ServingSpec`` documents and
executed through ``repro.serve`` — the bench doubles as a regression
check that the declarative surface reproduces the hand-wired numbers.
"""

from __future__ import annotations

from repro.analysis.report import fleet_table
from repro.serving import ServingSpec, build_scenario, serve

from conftest import run_once

FLEET_SIZES = (4, 8, 16, 28)


def fleet_spec(scenario_name, scenario_kwargs, capacity, arbiter, admission):
    return ServingSpec.from_dict({
        "topology": "fleet",
        "scenario": {"name": scenario_name, "kwargs": scenario_kwargs},
        "capacity": capacity,
        "arbiter": arbiter,
        "admission": admission,
    })


def test_bench_fleet_scaling(benchmark, results_dir):
    """Quality/skips vs fleet size on a fixed shared capacity."""
    frames = 20
    capacity = 8 * 16e6  # dedicated-speed budget for 8 scale-20 streams

    def sweep():
        out = {}
        for count in FLEET_SIZES:
            spec = fleet_spec(
                "steady", {"count": count, "frames": frames},
                capacity, "weighted-share", "none",
            )
            out[count] = serve(spec)
        return out

    results = run_once(benchmark, sweep)
    print(f"\nfleet scaling on fixed capacity ({capacity / 1e6:.0f} Mcyc/round):")
    with open(results_dir / "fleet_scaling.csv", "w") as handle:
        handle.write("streams,mean_quality,mean_psnr,skips,misses,fairness_q\n")
        for count, result in results.items():
            summary = result.raw.summary()
            print(
                f"  n={count:>3}: q={summary['mean_quality']:.2f} "
                f"psnr={summary['mean_psnr']:.2f} skips={summary['skips']} "
                f"misses={summary['deadline_misses']} "
                f"fair(q)={summary['fairness_quality']:.3f}"
            )
            handle.write(
                f"{count},{summary['mean_quality']},{summary['mean_psnr']},"
                f"{summary['skips']},{summary['deadline_misses']},"
                f"{summary['fairness_quality']}\n"
            )

    # more streams on the same capacity -> monotonically cheaper service
    qualities = [results[count].mean_quality() for count in FLEET_SIZES]
    assert all(a >= b - 0.05 for a, b in zip(qualities, qualities[1:]))
    # the uncontended point serves everyone at healthy quality
    assert results[4].total_skips() == 0
    assert results[4].mean_quality() > 3.0


def test_bench_arbiter_fairness(benchmark, results_dir):
    """Equal-share vs weighted vs quality-fair on a heterogeneous mix."""
    scenario_kwargs = {"count": 24, "frames": 20, "seed": 11}
    capacity = {"utilization": 0.55}

    def run():
        return {
            arbiter: serve(fleet_spec(
                "heterogeneous-mix", scenario_kwargs,
                capacity, arbiter, "none",
            ))
            for arbiter in ("equal-share", "weighted-share", "quality-fair")
        }

    results = run_once(benchmark, run)
    print("\narbiter comparison, 24-stream heterogeneous mix, 55% capacity:")
    print(fleet_table([r.raw for r in results.values()]))
    with open(results_dir / "fleet_arbiters.csv", "w") as handle:
        handle.write("arbiter,mean_quality,mean_psnr,fairness_q,fairness_psnr\n")
        for name, result in results.items():
            handle.write(
                f"{name},{result.mean_quality():.4f},{result.mean_psnr():.4f},"
                f"{result.fairness_quality():.4f},"
                f"{result.raw.fairness_psnr():.4f}\n"
            )

    equal = results["equal-share"]
    weighted = results["weighted-share"]
    fair = results["quality-fair"]
    # the PR's acceptance criterion: quality-fair > equal-share fairness
    assert fair.fairness_quality() > equal.fairness_quality() + 0.1
    # demand-awareness already recovers most of the gap; quality
    # feedback closes the rest
    assert weighted.fairness_quality() > equal.fairness_quality()
    assert fair.fairness_quality() >= weighted.fairness_quality() - 0.01


def test_bench_churn_admission(benchmark, results_dir):
    """Poisson churn through admission control on a tight capacity."""
    spec = fleet_spec(
        "poisson-churn",
        {
            "rate": 1.0, "horizon": 25, "mean_frames": 16,
            "min_frames": 8, "seed": 5, "initial": 12,
        },
        10 * 16e6,
        "quality-fair",
        "feasibility",
    )

    def run():
        return serve(spec)

    result = run_once(benchmark, run)
    offered = len(build_scenario(spec))
    admission = result.runner.admission
    summary = result.raw.summary()
    print("\npoisson churn through admission control:")
    print(
        f"  offered={offered} served={summary['served']} "
        f"rejected={summary['rejected']} queued_total={admission.queued_count} "
        f"accept={summary['acceptance_ratio']:.3f} "
        f"peak={summary['peak_concurrency']} rounds={summary['rounds']}"
    )
    print(
        f"  q={summary['mean_quality']:.2f} psnr={summary['mean_psnr']:.2f} "
        f"skips={summary['skips']} misses={summary['deadline_misses']}"
    )
    with open(results_dir / "fleet_churn.csv", "w") as handle:
        handle.write("offered,served,rejected,acceptance,peak,rounds,quality\n")
        handle.write(
            f"{offered},{summary['served']},{summary['rejected']},"
            f"{summary['acceptance_ratio']},{summary['peak_concurrency']},"
            f"{summary['rounds']},{summary['mean_quality']}\n"
        )

    # every stream is eventually decided and the fleet drains
    assert summary["served"] + summary["rejected"] == offered
    assert summary["rounds"] < 400
