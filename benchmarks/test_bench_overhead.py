"""Section 3's overhead measurements: ~2 % code, <=1 % memory, <1.5 % runtime.

Two independent estimates are produced:

* the *model* of :mod:`repro.tool.overhead` computes the three ratios
  from artifact sizes exactly as the paper's toolchain measured them
  (generated code + tables over a 7000-LOC application);
* the *measured* runtime overhead comes from the cycle-accounting
  simulation (controller cycles over total encoding cycles).
"""

from __future__ import annotations

from repro.experiments.paper_data import PAPER
from repro.sim.runner import run_controlled
from repro.tool.compiler import compile_application
from repro.video.pipeline import macroblock_application

from conftest import run_once

#: A reduced iteration count keeps full-table construction cheap; the
#: compressed footprint and per-decision cost are what the model uses,
#: and both are independent of N by construction (affine compression).
MODEL_MACROBLOCKS = 180


def test_overhead_model_matches_paper_band(benchmark):
    application = macroblock_application(MODEL_MACROBLOCKS)
    system = application.system(
        budget=PAPER.period * MODEL_MACROBLOCKS / PAPER.macroblocks
    )

    def compile_it():
        return compile_application(
            system,
            application_loc=PAPER.encoder_loc,
            decision_overhead_cycles=200.0,
            body_length=len(application.body),
        )

    controlled_app = run_once(benchmark, compile_it)
    report = controlled_app.overheads
    print("\nmodelled overheads vs paper:")
    print(f"  code    : {report.code_ratio:.4f}  (paper ~{PAPER.code_size_overhead})")
    print(f"  memory  : {report.memory_ratio:.4f}  (paper <= {PAPER.memory_overhead})")
    print(f"  runtime : {report.runtime_ratio:.4f}  (paper < {PAPER.runtime_overhead})")

    assert report.code_ratio <= 1.5 * PAPER.code_size_overhead
    assert report.memory_ratio <= PAPER.memory_overhead
    assert report.runtime_ratio < PAPER.runtime_overhead
    # sanity: overheads are real, not zero
    assert report.code_ratio > 0
    assert report.memory_ratio > 0
    assert report.runtime_ratio > 0


def test_overhead_measured_in_simulation(benchmark, config):
    controlled = run_once(benchmark, run_controlled, config)
    measured = controlled.controller_overhead_ratio()
    print(f"\nmeasured runtime overhead: {measured:.4f} (paper < {PAPER.runtime_overhead})")
    assert 0 < measured < PAPER.runtime_overhead
    # instrumentation must not break safety
    assert controlled.deadline_miss_count == 0
    assert controlled.skip_count == 0


def test_overhead_instrumentation_scales_with_granularity(benchmark, config):
    """Coarser decision granularity trades reactivity for fewer decisions."""

    def runs():
        fine = run_controlled(config, granularity=1)
        coarse = run_controlled(config, granularity=16)
        return fine, coarse

    fine, coarse = run_once(benchmark, runs)
    fine_decisions = sum(f.decisions for f in fine.frames)
    coarse_decisions = sum(f.decisions for f in coarse.frames)
    print(f"\ndecisions: fine={fine_decisions}, coarse(g=16)={coarse_decisions}")
    assert coarse_decisions < fine_decisions / 8
