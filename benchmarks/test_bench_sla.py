"""SLA serving bench: differentiated degradation under overload.

Two experiments on the SLA-tiered serving subsystem:

* **gold rush** — a gold flash crowd lands on a bronze background with
  aggregate demand at 1.5x the shared capacity.  The acceptance
  criterion of the SLA PR: gold acceptance >= 0.95 and gold mean
  quality at or above its declared target while bronze degrades
  gracefully, with the arbiter still conserving the pool (grants sum
  to capacity every busy round).  A classless quality-fair baseline on
  the same workload shows the differentiation is the SLA stack's
  doing, not the workload's.
* **class-mixed churn** — Poisson churn with a gold/silver/bronze mix:
  delivered quality must order by tier, and renegotiation pressure
  must concentrate in the lower tiers.

Everything is declared as ``ServingSpec`` documents (custom classes
included) and run through ``repro.serve``.
"""

from __future__ import annotations

import importlib.util
import math
from pathlib import Path

from repro.analysis.report import sla_table
from repro.serving import RoundObserver, serve
from repro.sla import resolve_classes

from conftest import run_once, write_bench_trajectory


def _load_example():
    """The demo catalog lives in examples/sla_serving.py — one source
    of truth for the tier pricing both the demo and this bench show."""
    path = Path(__file__).resolve().parent.parent / "examples" / "sla_serving.py"
    spec = importlib.util.spec_from_file_location("sla_serving_example", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


#: Quality scale of the scale-27 streams (quality levels 0..7).
QMAX = 7.0

#: The declared catalog: a heavier gold than the standard 3x so six
#: gold streams can hold an 0.85 target against twelve bronze — tier
#: pricing is a policy knob, and the spec declares it.
BENCH_CLASSES = _load_example().CLASSES

GOLD_TARGET = BENCH_CLASSES[0]["target_quality"]
BRONZE_TARGET = BENCH_CLASSES[2]["target_quality"]

#: demand = 1.5x capacity: the overload regime of the criterion.
OVERLOAD_UTILIZATION = 1.0 / 1.5

GOLD_RUSH_KWARGS = {
    "bronze": 12, "gold": 6, "crowd_round": 3, "frames": 16, "scale": 27,
}


class ConservationObserver(RoundObserver):
    """Asserts sum(grants) == arbitrated pool on every busy round."""

    def __init__(self) -> None:
        self.busy_rounds = 0
        self.violations = 0

    def on_round(self, round_index, allocations, capacity, shard_id=None):
        if not allocations:
            return
        self.busy_rounds += 1
        if not math.isclose(
            sum(allocations.values()), capacity, rel_tol=1e-9
        ):
            self.violations += 1


def sla_spec():
    return {
        "scenario": {"name": "gold-rush", "kwargs": GOLD_RUSH_KWARGS},
        "capacity": {"utilization": OVERLOAD_UTILIZATION},
        "arbiter": {"name": "sla-quality-fair",
                    "kwargs": {"pressure": 3.0, "floor_share": 0.1}},
        "admission": {"name": "priority",
                      "kwargs": {"utilization_cap": 0.75, "queue_limit": 3}},
        "renegotiation": {"name": "step",
                          "kwargs": {"patience": 1, "step": 0.3}},
        "service_classes": BENCH_CLASSES,
    }


def baseline_spec():
    """Same workload, classless quality-fair stack."""
    return {
        "scenario": {"name": "gold-rush", "kwargs": GOLD_RUSH_KWARGS},
        "capacity": {"utilization": OVERLOAD_UTILIZATION},
        "arbiter": "quality-fair",
        "admission": "feasibility",
    }


def norm(quality: float) -> float:
    return quality / QMAX


def test_bench_sla_gold_rush(benchmark, results_dir):
    """Gold holds its SLA under 1.5x overload; bronze degrades."""
    observer = ConservationObserver()

    def run():
        return {
            "sla": serve(sla_spec(), observers=[observer]),
            "baseline": serve(baseline_spec()),
        }

    results = run_once(benchmark, run)
    sla, baseline = results["sla"], results["baseline"]
    classes = sla.per_class()
    catalog = resolve_classes(BENCH_CLASSES)

    print("\ngold rush at 1.5x overload — SLA stack:")
    print(sla_table(sla, classes=catalog))
    base_classes = baseline.per_class()
    print("same workload, classless quality-fair baseline:")
    print(
        f"  gold q={norm(base_classes['gold']['mean_quality']):.3f} "
        f"bronze q={norm(base_classes['bronze']['mean_quality']):.3f} "
        f"(normalized)"
    )

    with open(results_dir / "sla_gold_rush.csv", "w") as handle:
        handle.write(
            "stack,class,served,rejected,preempted,acceptance,"
            "mean_quality_norm,renegotiations\n"
        )
        for stack, result in results.items():
            for name, entry in result.per_class().items():
                handle.write(
                    f"{stack},{name},{entry['served']},{entry['rejected']},"
                    f"{entry['preempted']},{entry['acceptance_ratio']:.4f},"
                    f"{norm(entry['mean_quality']):.4f},"
                    f"{entry['renegotiations']}\n"
                )

    # --- the acceptance criterion ---------------------------------
    # overload is real: aggregate demand >= 1.5x the shared capacity
    assert sla.runner.capacity * 1.5 <= sum(
        o.spec.config.period for o in sla.outcomes
    ) + sum(s.config.period for s in sla.rejected) + 1e-6
    # gold holds acceptance and its declared target
    assert classes["gold"]["acceptance_ratio"] >= 0.95
    assert norm(classes["gold"]["mean_quality"]) >= GOLD_TARGET
    # bronze degrades (below its own target and far below gold)...
    assert norm(classes["bronze"]["mean_quality"]) < BRONZE_TARGET
    assert (
        classes["gold"]["mean_quality"]
        > classes["bronze"]["mean_quality"] + 2.0
    )
    # ...but gracefully: everyone served still delivers frames
    assert all(q > 0 for q in sla.per_stream_quality())
    # conservation: grants sum to the pool on every busy round
    assert observer.busy_rounds > 0
    assert observer.violations == 0
    # renegotiation did the yielding, concentrated in bronze
    assert classes["bronze"]["renegotiations"] > classes["gold"]["renegotiations"]
    # the classless baseline cannot differentiate: its gold/bronze gap
    # is a fraction of the SLA stack's
    sla_gap = classes["gold"]["mean_quality"] - classes["bronze"]["mean_quality"]
    base_gap = abs(
        base_classes["gold"]["mean_quality"]
        - base_classes["bronze"]["mean_quality"]
    )
    assert sla_gap > 2 * base_gap

    write_bench_trajectory("sla", {
        "gold_acceptance": round(classes["gold"]["acceptance_ratio"], 4),
        "gold_quality_norm": round(norm(classes["gold"]["mean_quality"]), 4),
        "bronze_quality_norm": round(
            norm(classes["bronze"]["mean_quality"]), 4
        ),
        "sla_gap": round(sla_gap, 4),
        "baseline_gap": round(base_gap, 4),
        "bronze_renegotiations": classes["bronze"]["renegotiations"],
        "busy_rounds": observer.busy_rounds,
    })


def test_bench_sla_churn_tiers(benchmark, results_dir):
    """Under class-mixed churn, delivered quality orders by tier."""
    spec = {
        "scenario": {"name": "sla-churn",
                     "kwargs": {"rate": 1.0, "horizon": 18,
                                "mean_frames": 14, "min_frames": 7,
                                "seed": 5, "initial": 8}},
        "capacity": {"utilization": 0.6},
        "arbiter": {"name": "sla-quality-fair",
                    "kwargs": {"pressure": 3.0, "floor_share": 0.1}},
        "admission": {"name": "priority",
                      "kwargs": {"utilization_cap": 0.75, "queue_limit": 4}},
        "renegotiation": {"name": "step",
                          "kwargs": {"patience": 2, "step": 0.15}},
    }

    def run():
        return serve(spec)

    result = run_once(benchmark, run)
    classes = result.per_class()

    print("\nclass-mixed churn, 60% capacity:")
    print(sla_table(result, classes=resolve_classes(None)))

    with open(results_dir / "sla_churn.csv", "w") as handle:
        handle.write(
            "class,served,acceptance,mean_quality,renegotiations\n"
        )
        for name, entry in classes.items():
            handle.write(
                f"{name},{entry['served']},{entry['acceptance_ratio']:.4f},"
                f"{entry['mean_quality']:.4f},{entry['renegotiations']}\n"
            )

    # quality orders by tier...
    assert (
        classes["gold"]["mean_quality"]
        > classes["silver"]["mean_quality"]
        > classes["bronze"]["mean_quality"]
    )
    # ...and renegotiation pressure concentrates in the lower tiers
    assert (
        classes["bronze"]["renegotiations"]
        > classes["silver"]["renegotiations"]
        > classes["gold"]["renegotiations"]
    )
    # the run drains: every stream decided, no runaway rounds
    assert result.rounds < 150
