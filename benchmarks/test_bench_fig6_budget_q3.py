"""Fig. 6 — time budget utilization: controlled (K=1) vs constant q=3 (K=1).

Expected shape (paper, section 3):

* the controlled encoder never misses its budget and never causes a
  frame skip at K=1, while filling most of the budget (optimal
  utilization);
* constant q=3 fluctuates with the load and overruns the period in the
  two high-motion regions, producing two bursts of frame skips;
* encoding time drops at I-frames (sequence changes) for both.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.metrics import (
    burst_count,
    encoding_time_drops_at_iframes,
    utilization_statistics,
)
from repro.analysis.report import comparison_table
from repro.experiments.figures import figure6_budget_vs_q3

from conftest import run_once


def test_figure6(benchmark, config, results_dir):
    data = run_once(benchmark, figure6_budget_vs_q3, config)
    controlled, baseline = data.controlled, data.baseline

    print()
    print(ascii_plot(
        data.series(),
        title=f"Figure 6 (reproduced): {data.description}",
        y_label="Mcycle",
    ))
    print(comparison_table([controlled, baseline]))
    controlled.to_csv(results_dir / "fig6_controlled.csv")
    baseline.to_csv(results_dir / "fig6_constant_q3.csv")

    # --- controlled: safety and optimal budget use -------------------
    assert controlled.skip_count == 0, "controlled encoder must never skip at K=1"
    assert controlled.deadline_miss_count == 0, "controlled encoder must meet every budget"
    stats = utilization_statistics(controlled)
    assert stats.mean > 0.80, f"budget utilization should be high, got {stats.mean:.3f}"
    assert stats.p95 <= 1.0 + 1e-9

    # --- constant q3: load tracking, overruns, skip bursts -----------
    q3_stats = utilization_statistics(baseline)
    assert baseline.skip_count > 0, "constant q=3 must skip under the motion bursts"
    assert q3_stats.p95 > 1.0, "constant q=3 overruns the period in bursts"
    assert burst_count(baseline.skipped_indices()) == 2, (
        "skips concentrate in the two high-motion sequences"
    )

    # --- controlled fills the budget the baseline wastes -------------
    assert stats.mean > q3_stats.mean

    # --- I-frame dips visible in both series --------------------------
    assert encoding_time_drops_at_iframes(controlled) >= 6
    assert encoding_time_drops_at_iframes(baseline) >= 6

    # --- quality adapts within its range ------------------------------
    qualities = controlled.quality_series()
    assert np.nanmax(qualities) > 3.0, "easy content should reach above q3"
    assert np.nanmin(qualities) >= 0.0
