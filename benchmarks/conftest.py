"""Shared fixtures for the benchmark harness.

Every bench reproduces one table/figure of the paper (see DESIGN.md
section 4).  Benches default to the /4-scaled configuration (same
utilization operating points, ~4x faster); set ``REPRO_FULL_SCALE=1``
to run the paper-scale setup.  Each bench writes its series to
``benchmarks/results/*.csv`` and prints an ASCII rendering of the
figure (run pytest with ``-s`` to see them).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.configs import benchmark_config

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def config():
    """The benchmark simulation configuration."""
    return benchmark_config()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def run_once(benchmark, function, *args, **kwargs):
    """Benchmark a full experiment exactly once and return its value.

    Reproduction runs take seconds; pedantic single-round timing keeps
    the harness honest about cost without re-running experiments.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
