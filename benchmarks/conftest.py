"""Shared fixtures for the benchmark harness.

Every bench reproduces one table/figure of the paper (see DESIGN.md
section 4).  Benches default to the /4-scaled configuration (same
utilization operating points, ~4x faster); set ``REPRO_FULL_SCALE=1``
to run the paper-scale setup.  Each bench writes its series to
``benchmarks/results/*.csv`` and prints an ASCII rendering of the
figure (run pytest with ``-s`` to see them).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.configs import benchmark_config

RESULTS_DIR = Path(__file__).parent / "results"

#: Repo root: ``BENCH_<name>.json`` trajectory files land here so the
#: headline numbers of each bench are tracked in-tree PR-over-PR
#: (``benchmarks/results/`` holds the bulkier per-series CSV/JSON).
REPO_ROOT = Path(__file__).parent.parent


@pytest.fixture(scope="session")
def config():
    """The benchmark simulation configuration."""
    return benchmark_config()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_bench_trajectory(name: str, payload: dict) -> Path:
    """Write one bench's headline numbers to ``BENCH_<name>.json``.

    The file lives at the repo root and is committed, so diffs across
    PRs are the perf/quality trajectory of the repo.  Keys are sorted
    for stable diffs; keep payloads to headline scalars.
    """
    path = REPO_ROOT / f"BENCH_{name}.json"
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def run_once(benchmark, function, *args, **kwargs):
    """Benchmark a full experiment exactly once and return its value.

    Reproduction runs take seconds; pedantic single-round timing keeps
    the harness honest about cost without re-running experiments.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
