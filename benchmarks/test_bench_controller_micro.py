"""Micro-benchmarks of the controller's runtime operations.

These support the paper's <1.5 % runtime-overhead claim from the other
side: the per-decision work is a handful of table lookups, constant in
the schedule length and linear in |Q|.  Also times table construction
(the tool's offline cost) and contrasts the O(n^2 |Q|)-per-cycle
reference controller against the compiled one.
"""

from __future__ import annotations

import numpy as np

from repro.core.controller import ReferenceController
from repro.core.fast_controller import TableDrivenController
from repro.core.tables import ControllerTables
from repro.experiments.paper_data import PAPER
from repro.video.pipeline import macroblock_application

MICRO_MACROBLOCKS = 60
BUDGET = PAPER.period * MICRO_MACROBLOCKS / PAPER.macroblocks


def _system():
    return macroblock_application(MICRO_MACROBLOCKS).system(budget=BUDGET)


def test_per_decision_cost(benchmark):
    """One quality decision: the operation charged ~200 cycles on-target."""
    system = _system()
    tables = ControllerTables.from_system(system)
    positions = np.random.default_rng(0).integers(0, len(tables.schedule), 512)
    elapsed = np.random.default_rng(1).uniform(0, BUDGET, 512)
    state = {"i": 0}

    def decide_once():
        i = state["i"] = (state["i"] + 1) % 512
        return tables.max_feasible_quality(int(positions[i]), float(elapsed[i]))

    result = benchmark(decide_once)
    assert result is None or result in system.quality_set


def test_table_construction_cost(benchmark):
    """The tool's offline cost: building tables for a full frame schedule."""
    system = _system()
    tables = benchmark(ControllerTables.from_system, system)
    assert tables.average_bound.shape == (9 * MICRO_MACROBLOCKS, 8)


def test_compiled_cycle_vs_reference_cycle(benchmark):
    """A full controlled cycle through the compiled controller."""
    system = _system()
    controller = TableDrivenController(system)
    time_of = lambda action, quality: system.average_times.time(action, quality)

    def run_cycle():
        return controller.run_cycle(time_of)

    result = benchmark(run_cycle)
    assert result.total_time <= BUDGET


def test_reference_cycle_cost(benchmark):
    """The uncompiled abstract algorithm on a (much smaller) instance.

    Kept tiny: the reference controller re-runs EDF per candidate
    quality at every step — the cost the compilation step removes.
    """
    system = macroblock_application(2).system(budget=BUDGET * 2 / MICRO_MACROBLOCKS)
    controller = ReferenceController(system)
    time_of = lambda action, quality: system.average_times.time(action, quality)

    def run_cycle():
        return controller.run_cycle(time_of)

    result = benchmark(run_cycle)
    assert len(result.qualities) == 18
