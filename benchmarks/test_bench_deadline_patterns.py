"""Ablation — deadline patterns: one frame budget vs per-iteration pacing.

The paper gives every action of the MPEG-4 cycle the same deadline (the
frame's time budget).  An alternative QoS requirement paces the cycle:
iteration k must finish by (k+1)/N of the budget (plus a slack band) —
intuitively a smoothness device, since no iteration may hoard budget.

Measured outcome (a negative result that supports the paper's choice):
with a generous slack band the pacing never binds and behaves exactly
like the uniform budget; with a tight band it *hurts* — the controller
loses the freedom to move budget across iterations, so quality drops,
churn rises, and utilization falls.  The safety constraint alone
already prevents over-committing; extra pacing only subtracts.
"""

from __future__ import annotations

import numpy as np

from repro.core import TableDrivenController
from repro.platform.distributions import TimingModel
from repro.platform.executor import StochasticExecutor, seeded_rng
from repro.video.pipeline import macroblock_application

from conftest import run_once

MACROBLOCKS = 40
BUDGET = 320e6 * MACROBLOCKS / 1620
CYCLES = 30


def run_pattern(pattern: str, slack_fraction: float) -> dict:
    application = macroblock_application(MACROBLOCKS)
    system = application.system(
        budget=BUDGET, pattern=pattern, slack_fraction=slack_fraction
    )
    controller = TableDrivenController(system)
    model = TimingModel(
        application.average_times, application.worst_times, application.quality_set
    )
    rng = seeded_rng(5)
    churns, qualities, utilizations, degraded = [], [], [], 0
    for _ in range(CYCLES):
        executor = StochasticExecutor(model, rng)
        result = controller.run_cycle(executor)
        me_levels = np.array(result.qualities)[1::9]  # Motion_Estimate slots
        churns.append(float(np.mean(np.abs(np.diff(me_levels)))))
        qualities.append(float(np.mean(me_levels)))
        utilizations.append(result.total_time / BUDGET)
        degraded += result.degraded_steps
    return {
        "quality": float(np.mean(qualities)),
        "churn": float(np.mean(churns)),
        "utilization": float(np.mean(utilizations)),
        "over_budget": sum(1 for u in utilizations if u > 1.0),
        "degraded": degraded,
    }


def test_deadline_pattern_sweep(benchmark, results_dir):
    def runs():
        return {
            "uniform": run_pattern("uniform", 0.0),
            "linear_loose": run_pattern("linear", 0.10),
            "linear_tight": run_pattern("linear", 0.02),
        }

    results = run_once(benchmark, runs)
    print()
    print(f"{'pattern':>13} {'quality':>8} {'churn':>7} {'util':>6} {'over':>5}")
    with open(results_dir / "deadline_patterns.csv", "w") as handle:
        handle.write("pattern,quality,churn,utilization,over_budget\n")
        for name, stats in results.items():
            print(f"{name:>13} {stats['quality']:>8.2f} {stats['churn']:>7.3f} "
                  f"{stats['utilization']:>6.3f} {stats['over_budget']:>5}")
            handle.write(
                f"{name},{stats['quality']:.4f},{stats['churn']:.4f},"
                f"{stats['utilization']:.4f},{stats['over_budget']}\n"
            )

    uniform = results["uniform"]
    loose = results["linear_loose"]
    tight = results["linear_tight"]

    # every pattern remains safe (the cycle budget is the last deadline)
    for stats in results.values():
        assert stats["over_budget"] == 0
        assert stats["degraded"] == 0

    # a loose pacing band never binds: it degenerates to the uniform case
    assert abs(loose["quality"] - uniform["quality"]) < 0.05
    assert abs(loose["churn"] - uniform["churn"]) < 0.02

    # tight pacing subtracts freedom: lower quality/utilization, more churn
    assert tight["quality"] <= uniform["quality"] + 1e-9
    assert tight["utilization"] < uniform["utilization"]
    assert tight["churn"] > uniform["churn"]
