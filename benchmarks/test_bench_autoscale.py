"""Always-on autoscaling bench: elastic capacity vs static peak.

The tentpole experiment for the long-horizon serving layer: a diurnal
open-ended workload with a 3x peak-to-trough arrival swing, served two
ways over 300+ rounds —

* **static-peak** — the classic deployment: enough shards for the peak
  (``peak_rate * mean_lifetime`` concurrent streams), provisioned for
  the whole run;
* **autoscaled** — a small fleet plus a :class:`SignalAutoscaler`
  growing it under SLA-weighted renegotiation pressure and shrinking
  it on quality-saturated quiet windows.

The acceptance bar (gated via ``baselines.json``): the autoscaled
cluster holds gold acceptance >= 0.99 and gold mean quality at or
above the gold class target (0.85 normalized) while paying for at
most 70% of the static deployment's capacity-rounds — and the
scale-conservation and pacing invariants hold in enforce mode
throughout both runs.

Writes ``autoscale.csv`` plus a ``BENCH_autoscale.json`` trajectory
(uploaded as a CI artifact so bench history survives runs).
"""

from __future__ import annotations

import json

from repro.obs import InvariantObserver, StructuredEventLog
from repro.serving import serve
from repro.video.pipeline import ENCODER_QUALITY_LEVELS

from conftest import run_once, write_bench_trajectory

QMAX = float(max(ENCODER_QUALITY_LEVELS.levels))

#: Long horizon: three full diurnal periods, arrivals swinging
#: 0.25 -> 0.75 streams/round (the 3x peak-to-trough ratio).
MAX_ROUNDS = 300
WORKLOAD = {
    "base_rate": 0.25,
    "peak": 0.75,
    "period_rounds": 100,
    "loop_frames": 24,
    "scale": 20,
    "seed": 11,
    "classes": ("gold", "bronze"),
}

#: Shared serving policy: spread placement (count-balanced), headroom
#: lending between shard arbiters, class-weighted shares (gold pulls
#: 3x bronze), a priority admission gate, and fast step renegotiation.
POLICY = {
    "placement": "least-loaded",
    "balancer": "headroom",
    "arbiter": "sla-weighted",
    "admission": {"name": "priority", "kwargs": {"queue_limit": 4}},
    "renegotiation": {
        "name": "step",
        "kwargs": {"patience": 2, "recovery_patience": 2, "step": 0.15},
    },
    "service_classes": ["gold", "bronze"],
    "engine": "vectorized",
    "max_rounds": MAX_ROUNDS,
}

AUTOSCALER = {
    "name": "signal",
    "kwargs": {
        "window": 10,
        "cooldown": 10,
        "sustain": 1,
        "up_pressure": 0.22,
        "min_shards": 2,
        "max_shards": 6,
        "down_utilization": 0.5,
        "down_quality": 5.0,
    },
}


def build_spec(shards, provision=None, autoscaler=None):
    kwargs = dict(WORKLOAD, shards=shards)
    if provision is not None:
        kwargs["provision_concurrency"] = provision
    document = {
        "topology": "cluster",
        "scenario": {"name": "diurnal-cluster", "kwargs": kwargs},
        **POLICY,
    }
    if autoscaler is not None:
        document["autoscaler"] = autoscaler
    return document


def serve_watched(document):
    """Run one deployment under enforce-mode invariants."""
    log = StructuredEventLog()
    invariants = InvariantObserver(enforce=True)
    result = serve(document, observers=[log, invariants])
    return result, log, invariants


def gold_metrics(result, log):
    """Gold acceptance and normalized quality, mid-run rejects only.

    The stop condition drains still-active sessions by flushing queues
    at ``round_index == MAX_ROUNDS``; those flush rejections are the
    run *ending*, not the cluster failing arrivals, so acceptance
    counts rejects strictly before the horizon.
    """
    per = result.raw.per_class()["gold"]
    rejects = sum(
        1
        for event in log.events
        if event.kind == "reject"
        and event.service_class == "gold"
        and event.round < MAX_ROUNDS
    )
    served = per["served"]
    offered = served + rejects
    return {
        "served": served,
        "midrun_rejects": rejects,
        "acceptance": served / offered if offered else 1.0,
        "quality_norm": per["mean_quality"] / QMAX,
    }


def test_bench_autoscale_diurnal(benchmark, results_dir):
    """Autoscaled diurnal serving vs the statically peaked cluster."""

    def run():
        static = serve_watched(build_spec(shards=6))
        auto = serve_watched(
            build_spec(shards=2, provision=8.0, autoscaler=AUTOSCALER)
        )
        return static, auto

    (static, static_log, static_inv), (auto, auto_log, auto_inv) = run_once(
        benchmark, run
    )

    static_gold = gold_metrics(static, static_log)
    auto_gold = gold_metrics(auto, auto_log)
    actions = [a.kind for a in auto.raw.scale_actions]
    capacity_ratio = auto.raw.capacity_rounds / static.raw.capacity_rounds
    violations = len(static_inv.violations) + len(auto_inv.violations)

    rows = {
        "static-peak": (static, static_gold),
        "autoscaled": (auto, auto_gold),
    }
    print(
        f"\nalways-on diurnal serving, {MAX_ROUNDS}+ rounds, "
        f"{WORKLOAD['base_rate']}->{WORKLOAD['peak']} streams/round:"
    )
    for name, (deployment, gold) in rows.items():
        summary = deployment.raw.summary()
        print(
            f"  {name:12s} served={summary['served']:3d} "
            f"scale_actions={summary['scale_actions']} "
            f"gold_acceptance={gold['acceptance']:.3f} "
            f"gold_quality={gold['quality_norm']:.3f}"
        )
    print(
        f"  capacity-rounds ratio {capacity_ratio:.3f} "
        f"(autoscaled pays {capacity_ratio:.0%} of static peak), "
        f"actions {actions}, invariant violations {violations}"
    )

    # the ISSUE acceptance bar, asserted here and gated in baselines
    assert auto.raw.rounds >= MAX_ROUNDS
    assert auto_gold["acceptance"] >= 0.99
    assert auto_gold["quality_norm"] >= 0.85
    assert capacity_ratio <= 0.70
    assert violations == 0
    assert "add" in actions and "remove" in actions

    with open(results_dir / "autoscale.csv", "w") as handle:
        handle.write(
            "deployment,rounds,served,scale_actions,capacity_rounds,"
            "gold_acceptance,gold_quality_norm\n"
        )
        for name, (deployment, gold) in rows.items():
            summary = deployment.raw.summary()
            handle.write(
                f"{name},{summary['rounds']},{summary['served']},"
                f"{summary['scale_actions']},"
                f"{deployment.raw.capacity_rounds:.6e},"
                f"{gold['acceptance']:.4f},{gold['quality_norm']:.4f}\n"
            )

    payload = {
        "rounds": auto.raw.rounds,
        "gold_acceptance": round(auto_gold["acceptance"], 4),
        "gold_quality_norm": round(auto_gold["quality_norm"], 4),
        "capacity_ratio": round(capacity_ratio, 4),
        "scale_ups": actions.count("add"),
        "scale_downs": actions.count("remove"),
        "invariant_violations": violations,
        "static_gold_quality_norm": round(static_gold["quality_norm"], 4),
    }
    path = write_bench_trajectory("autoscale", payload)
    print(f"  trajectory -> {path}")
    print(json.dumps(payload, indent=2, sort_keys=True))
