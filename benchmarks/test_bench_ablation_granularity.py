"""Ablation A — fine-grain vs coarse-grain control granularity.

The paper's central claim: existing techniques adapt "at higher level,
e.g. at the beginning of a cycle, and their reactivity is slow";
controlling *inside* the cycle is what buys safety and optimality
simultaneously.  The sweep re-decides the quality every g macroblocks,
from per-macroblock (the paper) to once per frame (prior art).

Expected: safety holds at every granularity (the constraints are
evaluated wherever a decision *is* taken), but coarser control must
commit to a pessimistic quality for the whole frame, so mean quality
and PSNR degrade monotonically-ish as g grows.
"""

from __future__ import annotations

from repro.analysis.report import comparison_table
from repro.sim.runner import run_controlled

from conftest import run_once


def test_granularity_sweep(benchmark, config, results_dir):
    granularities = [1, 4, 16, 64, config.macroblocks]

    def runs():
        return {g: run_controlled(config, granularity=g) for g in granularities}

    results = run_once(benchmark, runs)
    print()
    print(comparison_table([results[g] for g in granularities]))
    with open(results_dir / "ablation_granularity.csv", "w") as handle:
        handle.write("granularity,mean_quality,mean_psnr,skips,misses\n")
        for g in granularities:
            r = results[g]
            handle.write(
                f"{g},{r.mean_quality():.4f},{r.mean_psnr():.4f},"
                f"{r.skip_count},{r.deadline_miss_count}\n"
            )

    # per-action (g=1) control carries the paper's full safety guarantee:
    # every executed action was covered by a just-evaluated Qual_Const_wc
    fine = results[1]
    assert fine.skip_count == 0
    assert fine.deadline_miss_count == 0

    # coarser control *holds* a quality across a window without
    # re-checking the constraints — the per-action safety argument no
    # longer applies, and overruns leak through (~5 % of frames at
    # g=16, ~15 % at g=64 in this setup).  That leakage is exactly why
    # the paper insists on fine grain.
    leakage = {}
    for g, result in results.items():
        failures = result.skip_count + result.deadline_miss_count
        leakage[g] = failures
        print(f"granularity {g}: {failures} overruns/skips")
        assert failures <= len(result.frames) * 0.30, (
            f"granularity {g}: unexpected failure volume {failures}"
        )
    # the safety gap between fine and coarse grain is real and visible
    assert leakage[1] == 0
    assert max(leakage[g] for g in granularities if g > 1) > 0, (
        "coarse-grain control should leak overruns somewhere in the sweep"
    )

    # fine grain extracts more quality from the same budget
    frame_level = results[config.macroblocks]
    assert fine.mean_quality() > frame_level.mean_quality() + 0.2, (
        "per-macroblock control should sustain visibly higher quality than "
        "frame-level control"
    )
    assert fine.mean_psnr() > frame_level.mean_psnr()

    # the trend is monotone within noise: g=1 >= g=16 >= frame-level
    assert fine.mean_quality() >= results[16].mean_quality() - 0.05
    assert results[16].mean_quality() >= frame_level.mean_quality() - 0.05


def test_frame_level_control_wastes_budget(benchmark, config):
    """Coarse control must leave budget unused (the paper's motivation)."""

    def runs():
        return (
            run_controlled(config, granularity=1),
            run_controlled(config, granularity=config.macroblocks),
        )

    fine, coarse = run_once(benchmark, runs)
    print(
        f"\nutilization: fine={fine.mean_utilization():.3f} "
        f"frame-level={coarse.mean_utilization():.3f}"
    )
    assert fine.mean_utilization() > coarse.mean_utilization()
