"""SLO bench: burn-rate alerting separates elastic from starved serving.

The observability tentpole's acceptance experiment, run on the same
3x-diurnal workload as the autoscale bench with a declared gold
quality SLO:

* **autoscaled** — the elastic deployment from ``test_bench_autoscale``
  (2 shards + the signal autoscaler).  It must end the horizon with
  the error budget intact and **zero** burn-rate alerts: scaling out
  under renegotiation pressure keeps every gold session above the SLO
  floor.
* **static-trough** — the same cluster frozen at trough provisioning
  (``base_rate * mean_lifetime`` concurrent streams).  Every diurnal
  peak starves it, so the gold SLO must fire a burn-rate alert, and
  incident attribution walking the causal traces over the burn window
  must rank **capacity-shortfall** as the top cause — sustained
  demand above a flat capacity line, not a burst, storm, or scale lag.

Both runs execute under enforce-mode invariants (including
``slo-budget-conservation``, active because the spec declares SLOs)
with full tracing attached; headline numbers land in
``BENCH_slo.json`` and are gated via ``baselines.json``.
"""

from __future__ import annotations

import json

from repro.obs import InvariantObserver, StructuredEventLog, TraceObserver
from repro.serving import serve

from conftest import run_once, write_bench_trajectory
from test_bench_autoscale import AUTOSCALER, WORKLOAD, build_spec

#: The declared objective: 95% of gold departures at or above 0.35
#: normalized quality.  The floor sits between the deployments'
#: operating points — the autoscaled cluster's worst gold session
#: clears it, the trough-provisioned cluster's peak-hour sessions do
#: not — so the alerting contrast is a property of capacity, not of a
#: cherry-picked threshold.  The window pair is the SRE fast/slow
#: shape scaled to the 100-round diurnal period.
SLOS = [
    {
        "name": "gold-quality",
        "objective": "quality",
        "service_class": "gold",
        "threshold": 0.35,
        "target": 0.95,
        "fast_window": 15,
        "slow_window": 60,
        "burn_threshold": 2.0,
    }
]

#: Trough provisioning: ``base_rate * mean_lifetime`` concurrent
#: streams — what the diurnal *minimum* needs (the cluster scenario's
#: default provisions for peak).
MEAN_LIFETIME = 40.8125
TROUGH = WORKLOAD["base_rate"] * MEAN_LIFETIME


def build_slo_spec(provision=None, autoscaler=None):
    document = build_spec(shards=2, provision=provision, autoscaler=autoscaler)
    document["slos"] = SLOS
    return document


def serve_traced(document):
    """One deployment: event log + enforce invariants + causal traces.

    ``serve`` auto-attaches the :class:`~repro.obs.slo.SloObserver`
    (the spec declares SLOs) and wires its alerts into the event log;
    ``slos`` is forwarded to the invariant suite explicitly so
    ``slo-budget-conservation`` runs in enforce mode here too.
    """
    log = StructuredEventLog(timelines=False)
    invariants = InvariantObserver(enforce=True, slos=SLOS)
    tracer = TraceObserver()
    result = serve(document, observers=[log, invariants, tracer])
    return result, invariants


def test_bench_slo_burn_alerting(benchmark, results_dir):
    """Gold burn-rate alerts: silent when elastic, firing when starved."""

    def run():
        auto = serve_traced(
            build_slo_spec(provision=8.0, autoscaler=AUTOSCALER)
        )
        trough = serve_traced(build_slo_spec(provision=TROUGH))
        return auto, trough

    (auto, auto_inv), (trough, trough_inv) = run_once(benchmark, run)

    auto_report = auto.slo_reports()[0]
    trough_report = trough.slo_reports()[0]
    auto_firing = [a for a in auto.alerts() if a.state == "firing"]
    trough_firing = [a for a in trough.alerts() if a.state == "firing"]
    trough_incidents = trough.incidents()
    top_causes = [i.top_cause for i in trough_incidents]
    violations = len(auto_inv.violations) + len(trough_inv.violations)

    print(
        f"\ngold SLO ({SLOS[0]['threshold']} norm in "
        f">= {SLOS[0]['target']:.0%} of departures), "
        f"{WORKLOAD['base_rate']}->{WORKLOAD['peak']} streams/round:"
    )
    for name, report, firing in (
        ("autoscaled", auto_report, auto_firing),
        ("static-trough", trough_report, trough_firing),
    ):
        print(
            f"  {name:13s} units={report.units:3d} "
            f"bad={report.bad_units:3d} "
            f"budget_remaining={report.budget_remaining:+.3f} "
            f"alerts={len(firing)}"
        )
    print(
        f"  trough incidents: {len(trough_incidents)}, "
        f"top causes {top_causes}, invariant violations {violations}"
    )

    # --- the acceptance bar -------------------------------------------
    # elastic capacity never burns the budget
    assert auto_firing == []
    assert auto_report.bad_units == 0
    assert auto_report.budget_remaining == 1.0
    # the starved deployment fires, and attribution blames capacity
    assert len(trough_firing) >= 1
    assert trough_report.budget_remaining < 0.0
    assert len(trough_incidents) == len(trough_firing)
    assert all(kind == "capacity-shortfall" for kind in top_causes)
    # every incident is backed by counterfactual shares that sum sanely
    for incident in trough_incidents:
        assert incident.causes[0].share >= max(
            cause.share for cause in incident.causes
        )
        assert incident.bad_units > 0
    # the books balance under enforcement the whole way
    assert violations == 0

    with open(results_dir / "slo.csv", "w") as handle:
        handle.write(
            "deployment,units,bad_units,budget_remaining,alerts,"
            "time_to_first_burn\n"
        )
        for name, report, firing in (
            ("autoscaled", auto_report, auto_firing),
            ("static-trough", trough_report, trough_firing),
        ):
            handle.write(
                f"{name},{report.units},{report.bad_units},"
                f"{report.budget_remaining:.4f},{len(firing)},"
                f"{report.time_to_first_burn}\n"
            )

    payload = {
        "auto_units": auto_report.units,
        "auto_bad_units": auto_report.bad_units,
        "auto_budget_remaining": round(auto_report.budget_remaining, 4),
        "auto_alerts": len(auto_firing),
        "trough_units": trough_report.units,
        "trough_bad_units": trough_report.bad_units,
        "trough_budget_remaining": round(trough_report.budget_remaining, 4),
        "trough_alerts": len(trough_firing),
        "trough_time_to_first_burn": trough_report.time_to_first_burn,
        "trough_incidents": len(trough_incidents),
        "trough_top_cause": top_causes[0] if top_causes else None,
        "invariant_violations": violations,
    }
    path = write_bench_trajectory("slo", payload)
    print(f"  trajectory -> {path}")
    print(json.dumps(payload, indent=2, sort_keys=True))
