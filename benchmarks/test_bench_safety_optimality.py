"""Proposition 2.1 — safety and optimal budget utilization, at system scale.

The unit/property suites prove the proposition on small random systems;
this bench exercises it on the paper's encoder under adversarial
execution-time draws:

* safety: zero deadline misses across every seed and load profile as
  long as actual times respect ``C <= Cwc_theta``;
* optimality: the realized budget utilization approaches 1 whenever
  the load suffices (the controller raises quality rather than idle).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.analysis.metrics import utilization_statistics
from repro.sim.runner import run_controlled

from conftest import run_once


def test_safety_across_seeds(benchmark, config):
    def runs():
        return [run_controlled(replace(config, seed=seed)) for seed in (1, 2, 3)]

    results = run_once(benchmark, runs)
    print()
    for result in results:
        stats = utilization_statistics(result)
        print(
            f"seed run {result.label}: skips={result.skip_count} "
            f"misses={result.deadline_miss_count} util={stats.mean:.3f}"
        )
        assert result.skip_count == 0
        assert result.deadline_miss_count == 0
        assert result.degraded_step_count == 0


def test_safety_under_hostile_load(benchmark, config):
    """A hotter load model pushes every draw toward the worst case."""
    from repro.video.content import MotionLoadModel

    hostile = replace(
        config,
        load_model=MotionLoadModel(base=0.9, slope=1.3),
        concentration=2.0,  # wild, heavy-spread execution times
    )
    result = run_once(benchmark, run_controlled, hostile)
    print(f"\nhostile load: skips={result.skip_count} misses={result.deadline_miss_count} "
          f"mean quality={result.mean_quality():.2f}")
    assert result.skip_count == 0
    assert result.deadline_miss_count == 0
    # the controller survives by dropping quality, not by missing deadlines
    assert result.mean_quality() < run_controlled(config).mean_quality()


def test_optimal_budget_utilization(benchmark, config):
    result = run_once(benchmark, run_controlled, config)
    stats = utilization_statistics(result)
    print(f"\nutilization: mean={stats.mean:.3f} p5={stats.p5:.3f} p95={stats.p95:.3f}")
    # fills the budget...
    assert stats.mean > 0.85
    assert stats.median > 0.9
    # ...but never exceeds it
    assert stats.p95 <= 1.0 + 1e-9
    assert stats.above_budget_frames == 0
    # quality rides as high as the budget allows on easy content
    qualities = result.quality_series()
    assert float(np.nanpercentile(qualities, 90)) >= 5.0
