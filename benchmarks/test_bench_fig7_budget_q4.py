"""Fig. 7 — time budget utilization: controlled (K=1) vs constant q=4 (K=2).

Constant q=4 only becomes viable with a second buffer (K=2): the extra
latency absorbs single-frame overruns, but sustained high-motion load
still overflows it — the paper reports "a reasonable amount of skipped
frames".  The controlled encoder needs no extra buffering at all.
"""

from __future__ import annotations

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.metrics import burst_count, utilization_statistics
from repro.analysis.report import comparison_table
from repro.experiments.figures import figure7_budget_vs_q4

from conftest import run_once


def test_figure7(benchmark, config, results_dir):
    data = run_once(benchmark, figure7_budget_vs_q4, config)
    controlled, baseline = data.controlled, data.baseline

    print()
    print(ascii_plot(
        data.series(),
        title=f"Figure 7 (reproduced): {data.description}",
        y_label="Mcycle",
    ))
    print(comparison_table([controlled, baseline]))
    controlled.to_csv(results_dir / "fig7_controlled.csv")
    baseline.to_csv(results_dir / "fig7_constant_q4_k2.csv")

    # --- controlled at K=1: safe with zero buffering slack -----------
    assert controlled.skip_count == 0
    assert controlled.deadline_miss_count == 0
    assert controlled.buffer_capacity == 1

    # --- constant q4 at K=2 skips under sustained overload ------------
    assert baseline.buffer_capacity == 2
    assert baseline.skip_count > 0
    assert burst_count(baseline.skipped_indices()) <= 3

    # --- the controlled encoder's latency stays within one period;
    #     the uncontrolled baseline queues and can exceed even 2P
    #     (its encode times are unbounded by any deadline) ------------
    assert baseline.max_latency() > controlled.max_latency()
    assert controlled.max_latency() <= controlled.period + 1e-6

    # --- q4 runs hotter than q3 (Fig. 6) but controlled still fills more
    q4_stats = utilization_statistics(baseline)
    controlled_stats = utilization_statistics(controlled)
    assert q4_stats.mean > 0.85
    assert controlled_stats.p95 <= 1.0 + 1e-9


def test_figure7_constant_q4_needs_k2(benchmark, config):
    """Ablation within the figure: q=4 at K=1 skips far more than at K=2."""
    from dataclasses import replace

    from repro.sim.runner import run_constant

    def runs():
        return (
            run_constant(4, replace(config, buffer_capacity=1)),
            run_constant(4, replace(config, buffer_capacity=2)),
        )

    k1, k2 = run_once(benchmark, runs)
    print()
    print(comparison_table([k1, k2]))
    assert k1.skip_count > k2.skip_count, (
        "the second buffer must absorb a substantial share of the skips"
    )
