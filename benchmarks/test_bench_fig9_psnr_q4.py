"""Fig. 9 — PSNR per frame: controlled (K=1) vs constant q=4 (K=2).

With K=2, constant q=4 becomes usable and its PSNR gets close to the
controlled encoder's — but it still skips frames in the high-motion
bursts (PSNR collapses there) and pays double the latency.  The
controlled encoder matches or beats it outside skip regions with K=1.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.metrics import psnr_advantage
from repro.analysis.report import comparison_table
from repro.experiments.figures import figure9_psnr_vs_q4
from repro.experiments.paper_data import PAPER

from conftest import run_once


def test_figure9(benchmark, config, results_dir):
    data = run_once(benchmark, figure9_psnr_vs_q4, config)
    controlled, baseline = data.controlled, data.baseline

    print()
    print(ascii_plot(
        data.series(),
        title=f"Figure 9 (reproduced): {data.description}",
        y_label="PSNR",
        y_min=15.0,
    ))
    print(comparison_table([controlled, baseline]))
    comparison = psnr_advantage(controlled, baseline)
    print(
        f"PSNR advantage outside skip regions: {comparison.advantage_outside:+.2f} dB; "
        f"inside: {comparison.advantage_inside:+.2f} dB "
        f"({comparison.baseline_skip_count} baseline skips)"
    )
    controlled.to_csv(results_dir / "fig9_controlled.csv")
    baseline.to_csv(results_dir / "fig9_constant_q4_k2.csv")

    # --- controlled at least matches q4/K2 outside skip regions -------
    assert comparison.advantage_outside > -0.25, (
        f"controlled (K=1) should not lose to constant q=4 (K=2) outside "
        f"skip regions, got {comparison.advantage_outside:+.2f} dB"
    )

    # --- the baseline still skips; controlled does not ----------------
    assert baseline.skip_count > 0
    assert controlled.skip_count == 0
    psnr = baseline.psnr_series()
    skipped_psnr = [psnr[i] for i in baseline.skipped_indices()]
    assert max(skipped_psnr) < PAPER.skip_psnr_bound

    # --- overloads degrade the controlled encoder smoothly, not abruptly
    controlled_psnr = controlled.psnr_series()
    assert float(np.min(controlled_psnr)) > PAPER.skip_psnr_bound
    frame_deltas = np.abs(np.diff(controlled_psnr))
    # excluding I-frame jumps, consecutive-frame PSNR moves stay bounded
    iframe_neighbours = {
        i - 1 for i, f in enumerate(controlled.frames) if f.is_iframe
    } | {i for i, f in enumerate(controlled.frames) if f.is_iframe}
    smooth_deltas = [
        d for i, d in enumerate(frame_deltas) if i not in iframe_neighbours
    ]
    assert float(np.percentile(smooth_deltas, 99)) < 6.0
