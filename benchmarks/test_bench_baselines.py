"""Related-work baselines vs the fine-grain controller.

Positions the controller against the adaptive-scheduling landscape the
paper cites: static WCET design (section 2.1's motivation), PID
feedback scheduling (Lu et al.), the elastic task model (Buttazzo et
al.) and skip-over (Koren & Shasha).  All the baselines adapt at frame
granularity at best — the reactivity gap the paper closes.

Expected: only the fine-grain controller achieves all three of
(zero skips, zero overruns, high quality); each baseline sacrifices at
least one.
"""

from __future__ import annotations

from repro.analysis.report import comparison_table
from repro.baselines import (
    ElasticQualityPolicy,
    PidFeedbackPolicy,
    SkipOverPolicy,
    static_wcet_quality,
)
from repro.sim.runner import run_adaptive, run_constant, run_controlled
from repro.video.pipeline import macroblock_application

from conftest import run_once


def test_baseline_comparison(benchmark, config, results_dir):
    application = macroblock_application(config.macroblocks)
    wcet_quality = static_wcet_quality(application, config.period)
    wc_loads = [
        application.worst_cycle_load(q) for q in application.quality_set
    ]

    def runs():
        return {
            "controlled": run_controlled(config),
            "static_wcet": run_constant(wcet_quality, config),
            "pid": run_adaptive(
                PidFeedbackPolicy(levels=8, set_point=0.9), "pid_feedback", config
            ),
            "elastic": run_adaptive(
                ElasticQualityPolicy(wc_loads, config.period), "elastic", config
            ),
            "skip_over": run_adaptive(
                SkipOverPolicy(quality=4, skip_factor=3), "skip_over(q=4)", config
            ),
        }

    results = run_once(benchmark, runs)
    print()
    print(comparison_table(list(results.values())))
    with open(results_dir / "baselines.csv", "w") as handle:
        handle.write("policy,mean_quality,mean_psnr,skips,misses,utilization\n")
        for name, r in results.items():
            handle.write(
                f"{name},{r.mean_quality():.4f},{r.mean_psnr():.4f},"
                f"{r.skip_count},{r.deadline_miss_count},{r.mean_utilization():.4f}\n"
            )

    controlled = results["controlled"]
    static = results["static_wcet"]
    pid = results["pid"]
    elastic = results["elastic"]
    skip_over = results["skip_over"]

    # the controller: safe AND high quality
    assert controlled.skip_count == 0
    assert controlled.deadline_miss_count == 0

    # static WCET design: safe but far from optimal (paper section 2.1)
    assert static.skip_count == 0, "WCET design must be safe"
    assert static.mean_quality() <= 1.0, (
        "on the Fig. 5 tables, only q<=1 fits P under worst-case times"
    )
    assert controlled.mean_quality() > static.mean_quality() + 2.0
    assert controlled.mean_psnr() > static.mean_psnr() + 1.0
    assert controlled.mean_utilization() > static.mean_utilization() + 0.2

    # PID feedback: good average quality but overruns/skips possible
    pid_failures = pid.skip_count + pid.deadline_miss_count
    assert pid_failures > 0, (
        "frame-level PID cannot react inside the frame; bursts must leak"
    )

    # elastic (WCET-based): safe-by-admission, conservative like static
    assert elastic.mean_quality() <= static.mean_quality() + 1.0

    # skip-over: trades skips deliberately for constant high quality
    assert skip_over.skip_count > 0
    assert skip_over.mean_psnr(include_skips=False) >= controlled.mean_psnr() - 1.0

    # headline: nobody else achieves the controller's (0, 0, quality) point
    for name, result in results.items():
        if name == "controlled":
            continue
        failures = result.skip_count + result.deadline_miss_count
        worse_quality = result.mean_quality() < controlled.mean_quality() - 0.5
        assert failures > 0 or worse_quality, (
            f"{name} unexpectedly matches the controlled encoder"
        )
