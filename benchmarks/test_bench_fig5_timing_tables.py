"""Fig. 5 — the execution-time tables, and their recovery by profiling.

The table itself is paper input data; what this bench reproduces is the
*timing analysis* stage of Fig. 4: execute every action at every
quality level on the simulated platform and check that profiling
recovers tables equivalent to the published ones (means within
tolerance, worst cases bounded by the published Cwc times the safety
margin).  The timed section is the profiling pass.
"""

from __future__ import annotations

import numpy as np

from repro.platform.distributions import BoundedTimeDistribution
from repro.tool.timing_analysis import TimingProfile, estimate_tables_from_profile
from repro.video.pipeline import (
    ENCODER_QUALITY_LEVELS,
    FIXED_ACTION_TIMES,
    MACROBLOCK_ACTIONS,
    ME_ACTION,
    MOTION_ESTIMATE_TIMES,
    paper_timing_tables,
)

from conftest import run_once

#: Enough samples that the mean of even the most skewed law (Compress:
#: Cav 5k, Cwc 50k) settles within the tolerance below.
SAMPLES_PER_CELL = 1500


def profile_platform(seed: int = 11) -> TimingProfile:
    """Execute every (action, level) repeatedly and collect durations."""
    rng = np.random.default_rng(seed)
    profile = TimingProfile()
    for action in MACROBLOCK_ACTIONS:
        for q in ENCODER_QUALITY_LEVELS:
            if action == ME_ACTION:
                average, worst = MOTION_ESTIMATE_TIMES[q]
            else:
                average, worst = FIXED_ACTION_TIMES[action]
            distribution = BoundedTimeDistribution(average=average, ceiling=worst)
            for duration in distribution.sample_many(rng, SAMPLES_PER_CELL):
                profile.add(action, q, float(duration))
    return profile


def test_fig5_tables_recovered_by_profiling(benchmark, results_dir):
    profile = run_once(benchmark, profile_platform)
    average, worst = estimate_tables_from_profile(
        profile, ENCODER_QUALITY_LEVELS, wcet_margin=1.2
    )
    published_av, published_wc = paper_timing_tables()

    print("\nFig. 5 (published vs profiled averages), Motion_Estimate:")
    print(f"{'q':>2} {'Cav pub':>10} {'Cav est':>10} {'Cwc pub':>10} {'Cwc est(+20%)':>13}")
    rows = []
    for q in ENCODER_QUALITY_LEVELS:
        pub_av = published_av.time(ME_ACTION, q)
        est_av = average.time(ME_ACTION, q)
        pub_wc = published_wc.time(ME_ACTION, q)
        est_wc = worst.time(ME_ACTION, q)
        print(f"{q:>2} {pub_av:>10.0f} {est_av:>10.0f} {pub_wc:>10.0f} {est_wc:>13.0f}")
        rows.append((q, pub_av, est_av, pub_wc, est_wc))
    with open(results_dir / "fig5_motion_estimate.csv", "w") as handle:
        handle.write("q,cav_published,cav_estimated,cwc_published,cwc_estimated\n")
        for row in rows:
            handle.write(",".join(str(v) for v in row) + "\n")

    # profiled averages track the published means
    for action in MACROBLOCK_ACTIONS:
        for q in ENCODER_QUALITY_LEVELS:
            published = published_av.time(action, q)
            estimated = average.time(action, q)
            if published > 0:
                assert abs(estimated - published) / published < 0.12, (
                    f"{action} q={q}: profiled mean {estimated} vs {published}"
                )
    # profiled worst cases never exceed margin * published Cwc
    for action in MACROBLOCK_ACTIONS:
        for q in ENCODER_QUALITY_LEVELS:
            assert worst.time(action, q) <= 1.2 * published_wc.time(action, q) + 1e-9
    # and the estimated tables satisfy the model's own invariants
    from repro.core.timing import QualityTimeTable

    QualityTimeTable.validate_bounds(average, worst)


def test_fig5_published_table_invariants(benchmark):
    """The published tables satisfy Definition 2.3 (monotone, Cav<=Cwc)."""

    def build():
        return paper_timing_tables()

    average, worst = run_once(benchmark, build)
    previous_av = previous_wc = 0.0
    for q in ENCODER_QUALITY_LEVELS:
        av = average.time(ME_ACTION, q)
        wc = worst.time(ME_ACTION, q)
        assert av <= wc
        assert av >= previous_av
        assert wc >= previous_wc
        previous_av, previous_wc = av, wc
    # only Motion_Estimate depends on the quality level
    for action in MACROBLOCK_ACTIONS:
        depends = average.depends_on_quality(action) or worst.depends_on_quality(action)
        assert depends == (action == ME_ACTION)
