"""Ablation C — buffer size K for constant-quality encoders.

Section 3's discussion: "using buffers may not completely eliminate
frame skips, implies additional cost and increases latency".  The sweep
measures, for constant q in {3, 4, 5} and K in {1..4}: skip counts
(non-increasing in K, rarely zero) and worst-case latency (growing with
K) — quantifying the trade the controlled encoder avoids.
"""

from __future__ import annotations

from dataclasses import replace

from repro.sim.runner import run_constant, run_controlled

from conftest import run_once

CAPACITIES = (1, 2, 3, 4)
QUALITIES = (3, 4, 5)


def test_buffer_sweep(benchmark, config, results_dir):
    def runs():
        table = {}
        for quality in QUALITIES:
            for capacity in CAPACITIES:
                cfg = replace(config, buffer_capacity=capacity)
                table[(quality, capacity)] = run_constant(quality, cfg)
        return table

    results = run_once(benchmark, runs)
    print("\nskips by (quality, K):")
    print(f"{'q':>3} " + " ".join(f"K={k:<6}" for k in CAPACITIES))
    with open(results_dir / "ablation_buffers.csv", "w") as handle:
        handle.write("quality,capacity,skips,max_latency_over_P\n")
        for quality in QUALITIES:
            row = []
            for capacity in CAPACITIES:
                result = results[(quality, capacity)]
                row.append(result.skip_count)
                handle.write(
                    f"{quality},{capacity},{result.skip_count},"
                    f"{result.max_latency() / config.period:.3f}\n"
                )
            print(f"{quality:>3} " + " ".join(f"{v:<8}" for v in row))

    for quality in QUALITIES:
        skips = [results[(quality, k)].skip_count for k in CAPACITIES]
        # more buffering never hurts
        assert all(a >= b for a, b in zip(skips, skips[1:])), (
            f"skips must be non-increasing in K at q={quality}: {skips}"
        )
        # latency is the price: max latency grows with K when queues form
        # (no upper bound holds for uncontrolled encoders — their encode
        # times respect no deadline, which is itself the point)
        latencies = [results[(quality, k)].max_latency() for k in CAPACITIES]
        assert latencies[-1] >= latencies[0]

    # q=5 overloads on average: even K=4 cannot eliminate its skips
    assert results[(5, 4)].skip_count > 0, (
        "buffers cannot fix a sustained average overload (paper section 3)"
    )


def test_controlled_needs_no_buffering(benchmark, config):
    """The controlled encoder at K=1 beats every buffered constant-q run
    on the skip metric (zero), at the minimum possible latency."""
    controlled = run_once(benchmark, run_controlled, config)
    assert controlled.skip_count == 0
    assert controlled.max_latency() <= config.period + 1e-6
