"""Extension bench — online average-time learning (paper section 4).

"We actively work in several directions to improve the prototype tool:
... application of learning techniques for better estimation of the
average execution times."

Scenario: the deployed platform is systematically 25 % slower than the
profiled one (``time_bias=1.25``) — the *average* tables are wrong, the
worst-case tables still hold.  Three runs:

* nominal platform, static tables (reference point);
* biased platform, static tables — safe (Cwc untouched) but the
  controller keeps over-promising early in each frame and correcting
  late: quality churns;
* biased platform, EWMA-learned averages with periodic table
  regeneration — same safety, decisions re-calibrated: churn drops
  back toward the nominal level.
"""

from __future__ import annotations

from repro.analysis.report import comparison_table
from repro.sim.encoder_loop import EncoderSimulation

from conftest import run_once

BIAS = 1.25


def test_learning_recalibrates_decisions(benchmark, config, results_dir):
    simulation = EncoderSimulation(config)

    def runs():
        return {
            "nominal": simulation.run_controlled(label="static tables, true platform"),
            "static": simulation.run_controlled(
                time_bias=BIAS, label=f"static tables, {BIAS}x platform"
            ),
            "learning": simulation.run_learning_controlled(
                time_bias=BIAS, relearn_every=25,
                label=f"EWMA-learned tables, {BIAS}x platform",
            ),
        }

    results = run_once(benchmark, runs)
    print()
    print(comparison_table(list(results.values())))
    print(f"within-frame churn: nominal={results['nominal'].mean_quality_churn():.4f} "
          f"static={results['static'].mean_quality_churn():.4f} "
          f"learning={results['learning'].mean_quality_churn():.4f}")
    with open(results_dir / "learning.csv", "w") as handle:
        handle.write("run,mean_quality,mean_psnr,churn,skips,misses\n")
        for name, r in results.items():
            handle.write(
                f"{name},{r.mean_quality():.4f},{r.mean_psnr():.4f},"
                f"{r.mean_quality_churn():.4f},{r.skip_count},"
                f"{r.deadline_miss_count}\n"
            )

    nominal, static, learning = (
        results["nominal"], results["static"], results["learning"]
    )

    # safety is table-accuracy-independent: Cwc still bounds everything
    for result in results.values():
        assert result.skip_count == 0
        assert result.deadline_miss_count == 0

    # the slower platform costs quality either way (physics)
    assert static.mean_quality() < nominal.mean_quality() - 0.5
    assert learning.mean_quality() < nominal.mean_quality() - 0.5

    # learning's payoff: accurate averages -> fewer late in-frame
    # corrections -> visibly less quality churn at equal quality
    assert learning.mean_quality_churn() < 0.85 * static.mean_quality_churn()
    assert abs(learning.mean_quality() - static.mean_quality()) < 0.3
    assert learning.mean_psnr() > static.mean_psnr() - 0.3


def test_learning_is_neutral_on_a_calibrated_platform(benchmark, config):
    """With correct priors, learning must not disturb the controller."""
    simulation = EncoderSimulation(config)

    def runs():
        return (
            simulation.run_controlled(),
            simulation.run_learning_controlled(time_bias=1.0, relearn_every=25),
        )

    static, learning = run_once(benchmark, runs)
    assert learning.skip_count == 0
    assert learning.deadline_miss_count == 0
    assert abs(learning.mean_quality() - static.mean_quality()) < 0.25
    assert abs(learning.mean_psnr() - static.mean_psnr()) < 0.5
