"""Ablation B — the two halves of Qual_Const.

``Qual_Const = Qual_Const_av AND Qual_Const_wc``; section 4 notes that
for *soft* deadlines the quality manager applies only the average
constraint.  The sweep runs each constraint mode:

* ``average`` (soft mode): more optimistic — equal or higher quality,
  but budget overruns become possible (no worst-case landing path);
* ``worst`` (safety only): never misses but ignores expected times, so
  it overshoots quality when averages are far below worst cases and
  oscillates against the safety wall;
* ``both`` (the paper): hard-deadline safety *and* average-optimal
  budget filling.
"""

from __future__ import annotations

from repro.analysis.report import comparison_table
from repro.sim.runner import run_controlled

from conftest import run_once

MODES = ("both", "average", "worst")


def test_constraint_mode_sweep(benchmark, config, results_dir):
    def runs():
        return {mode: run_controlled(config, constraint_mode=mode) for mode in MODES}

    results = run_once(benchmark, runs)
    print()
    print(comparison_table([results[m] for m in MODES]))
    with open(results_dir / "ablation_constraints.csv", "w") as handle:
        handle.write("mode,mean_quality,mean_psnr,skips,misses,utilization\n")
        for mode in MODES:
            r = results[mode]
            handle.write(
                f"{mode},{r.mean_quality():.4f},{r.mean_psnr():.4f},"
                f"{r.skip_count},{r.deadline_miss_count},{r.mean_utilization():.4f}\n"
            )

    both = results["both"]
    soft = results["average"]
    safety_only = results["worst"]

    # the paper's mode is safe
    assert both.deadline_miss_count == 0
    assert both.skip_count == 0

    # soft mode is at least as aggressive on quality
    assert soft.mean_quality() >= both.mean_quality() - 1e-9

    # and the full predicate is exactly the conjunction: its quality
    # cannot exceed the soft mode's anywhere
    assert both.mean_quality() <= soft.mean_quality() + 1e-9

    # safety-only mode stays safe too (it *is* the safety half)...
    assert safety_only.deadline_miss_count == 0
    # ...but ignoring averages costs utilization efficiency: it rides
    # into the worst-case wall and then must land at qmin, losing more
    # smoothness than the combined predicate
    assert safety_only.quality_smoothness() > both.quality_smoothness()


def test_soft_mode_appropriate_for_soft_deadlines(benchmark, config):
    """Soft mode overruns — moderately often, but only mildly.

    Filling the budget to 100 % *in expectation* means roughly every
    other saturated frame lands past its budget; that is the soft-mode
    contract (misses tolerated, quality maximized).  What must hold is
    that overruns are shallow: the average constraint still tracks the
    remaining work, so the overshoot is one action's tail, not a blowup.
    """
    soft = run_once(benchmark, run_controlled, config, "average")
    hard = run_controlled(config, constraint_mode="both")
    overruns = [
        (f.encode_cycles - f.budget) / f.budget
        for f in soft.frames
        if f.missed_budget
    ]
    print(f"\nsoft mode: {len(overruns)} overruns / {len(soft.frames)} frames")
    assert overruns, "soft mode at full utilization should overrun sometimes"
    assert len(overruns) <= len(soft.frames) * 0.5
    # overshoots are shallow
    import numpy as np

    assert float(np.percentile(overruns, 95)) < 0.25
    # and the reward is equal-or-better quality than the hard mode
    assert soft.mean_quality() >= hard.mean_quality() - 1e-9
