"""Telemetry overhead bench: full observability must be ~free.

The observability acceptance criterion: attaching the **entire**
telemetry suite — windowed metrics, the structured event log, and the
invariant ledger in enforcement mode — to the 1.5x-overload SLA gold
rush must change **no result bit** and add **< 10% wall time** over the
bare run.  The measured trajectory (bare seconds, telemetered seconds,
overhead ratio, event/window/violation counts) is written to
``BENCH_obs.json`` at the repo root so the cost is tracked PR-over-PR.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.obs import (
    InvariantObserver,
    PerfObserver,
    StructuredEventLog,
    TelemetryObserver,
    parse_events,
)
from repro.serving import serve

from conftest import run_once, write_bench_trajectory
from test_bench_sla import BENCH_CLASSES, sla_spec


def _values_equal(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        return (math.isnan(a) and math.isnan(b)) or a == b
    return a == b


def _summaries_identical(bare, telemetered) -> bool:
    a, b = bare.summary(), telemetered.summary()
    if set(a) != set(b):
        return False
    return all(_values_equal(a[k], b[k]) for k in a)


def test_bench_obs_overhead(benchmark, results_dir):
    """Full telemetry on the SLA overload bench: bit-identical, <10%."""
    def bare_run():
        return serve(sla_spec())

    def telemetered_run():
        observers = [
            TelemetryObserver(window=5),
            StructuredEventLog(),
            InvariantObserver(enforce=True, classes=BENCH_CLASSES),
            PerfObserver(),
        ]
        return serve(sla_spec(), observers=observers), observers

    # warm caches (qmin memoization, imports) so both timings are fair
    bare_run()

    # min-of-3 wall time: robust to CI jitter without re-running the
    # experiment many times
    def timed(fn):
        best, value = math.inf, None
        for _ in range(3):
            start = time.perf_counter()
            value = fn()
            best = min(best, time.perf_counter() - start)
        return best, value

    bare_seconds, bare = timed(bare_run)

    def measured():
        return timed(telemetered_run)

    telemetry_seconds, (telemetered, observers) = run_once(
        benchmark, measured
    )
    metrics, events, invariants, perf = observers
    overhead = telemetry_seconds / bare_seconds - 1.0

    print(
        f"\nbare {bare_seconds:.3f}s, full telemetry "
        f"{telemetry_seconds:.3f}s, overhead {overhead * 100.0:+.2f}%"
    )
    print(
        f"events={len(events.events)} windows={len(metrics.windows)} "
        f"violations={len(invariants.violations)} "
        f"phase_seconds={perf.total_seconds:.3f}"
    )

    # --- the acceptance criterion ---------------------------------
    # not one result bit moved: summary, per-stream outcomes, rejects
    assert _summaries_identical(bare, telemetered)
    assert [o.spec.name for o in bare.outcomes] == [
        o.spec.name for o in telemetered.outcomes
    ]
    for a, b in zip(bare.outcomes, telemetered.outcomes):
        assert np.array_equal(
            a.result.quality_series(),
            b.result.quality_series(),
            equal_nan=True,
        )
    assert [s.name for s in bare.rejected] == [
        s.name for s in telemetered.rejected
    ]
    # enforcement mode ran clean: every invariant held
    assert invariants.violations == []
    # the event log is live and round-trips losslessly
    assert len(events.events) > 50
    assert parse_events(events.to_jsonl()) == events.events
    # windows closed and phases timed
    assert len(metrics.windows) >= 2
    assert perf.total_seconds > 0
    # the wall-time criterion
    assert overhead < 0.10, f"telemetry overhead {overhead:.2%} >= 10%"

    write_bench_trajectory("obs", {
        "bare_seconds": round(bare_seconds, 4),
        "telemetry_seconds": round(telemetry_seconds, 4),
        "overhead_ratio": round(overhead, 4),
        "events": len(events.events),
        "windows": len(metrics.windows),
        "invariant_violations": len(invariants.violations),
        "invariants_enforced": sorted(
            inv.name for inv in invariants.invariants
        ),
        "served": telemetered.summary()["served"],
        "rejected": telemetered.summary()["rejected"],
        "mean_quality": round(telemetered.summary()["mean_quality"], 4),
    })
