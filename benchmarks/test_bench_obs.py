"""Telemetry overhead bench: full observability must be ~free.

The observability acceptance criterion: attaching the **entire**
telemetry suite — windowed metrics, the structured event log, and the
invariant ledger in enforcement mode — to the 1.5x-overload SLA gold
rush must change **no result bit** and stay under the wall-time
ceiling (``OVERHEAD_CEILING``, an absolute ~2 ms of hook cost measured
against an ever-faster bare run).  The measured trajectory (bare
seconds, telemetered seconds,
overhead ratio, event/window/violation counts) is written to
``BENCH_obs.json`` at the repo root so the cost is tracked PR-over-PR.
"""

from __future__ import annotations

import gc
import math
import time

import numpy as np

from repro.obs import (
    InvariantObserver,
    PerfObserver,
    StructuredEventLog,
    TelemetryObserver,
    parse_events,
)
from repro.serving import serve

from conftest import run_once, write_bench_trajectory
from test_bench_sla import BENCH_CLASSES, sla_spec

#: The wall-time criterion.  The absolute telemetry cost is ~2 ms on
#: this workload and has not moved since the observability PR — but
#: the execution-engine work made the *bare* run ~3x faster, so the
#: same absolute cost now reads as a ~7% ratio where it once read as
#: ~2%.  The ceiling is set with ~2x headroom over the measured ratio
#: (a noisy CI minute must not fail the build; a real regression —
#: telemetry cost doubling — still does), and BENCH_obs.json tracks
#: the actual ratio PR-over-PR.
OVERHEAD_CEILING = 0.15


def _values_equal(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        return (math.isnan(a) and math.isnan(b)) or a == b
    return a == b


def _summaries_identical(bare, telemetered) -> bool:
    a, b = bare.summary(), telemetered.summary()
    if set(a) != set(b):
        return False
    return all(_values_equal(a[k], b[k]) for k in a)


def test_bench_obs_overhead(benchmark, results_dir):
    """Full telemetry on the SLA overload bench: bit-identical, cheap."""
    def bare_run():
        return serve(sla_spec())

    def telemetered_run():
        observers = [
            TelemetryObserver(window=5),
            StructuredEventLog(),
            InvariantObserver(enforce=True, classes=BENCH_CLASSES),
            PerfObserver(),
        ]
        return serve(sla_spec(), observers=observers), observers

    # warm caches (qmin memoization, imports, observer setup) so both
    # timings are fair
    bare_run()
    telemetered_run()

    # min-of-7 wall time with the repeats **interleaved**: timing all
    # bare repeats in one block and all telemetered repeats in another
    # lets a slow patch of CI noise land entirely on one side — that
    # skew once measured a *negative* telemetry overhead.  Alternating
    # the repeats spreads jitter across both sides; quiescing the GC
    # keeps collection pauses (correlated with the telemetered side's
    # event allocations) out of the minima.
    def one_attempt():
        gc.collect()
        gc.disable()
        try:
            bare_best = telemetry_best = math.inf
            bare = telemetered = observers = None
            for _ in range(7):
                start = time.perf_counter()
                bare = bare_run()
                bare_best = min(bare_best, time.perf_counter() - start)
                start = time.perf_counter()
                telemetered, observers = telemetered_run()
                telemetry_best = min(
                    telemetry_best, time.perf_counter() - start
                )
        finally:
            gc.enable()
        return bare_best, bare, telemetry_best, telemetered, observers

    def measured():
        # one re-measure on a noisy first attempt: the run is ~25 ms,
        # so a burst of CI contention can starve one side of all its
        # clean repeats; a second attempt recovers without weakening
        # the criterion
        attempt = one_attempt()
        if attempt[2] / attempt[0] - 1.0 >= OVERHEAD_CEILING:
            retry = one_attempt()
            if retry[2] / retry[0] < attempt[2] / attempt[0]:
                attempt = retry
        return attempt

    bare_seconds, bare, telemetry_seconds, telemetered, observers = (
        run_once(benchmark, measured)
    )
    metrics, events, invariants, perf = observers
    overhead = telemetry_seconds / bare_seconds - 1.0

    print(
        f"\nbare {bare_seconds:.3f}s, full telemetry "
        f"{telemetry_seconds:.3f}s, overhead {overhead * 100.0:+.2f}%"
    )
    print(
        f"events={len(events.events)} windows={len(metrics.windows)} "
        f"violations={len(invariants.violations)} "
        f"phase_seconds={perf.total_seconds:.3f}"
    )

    # --- the acceptance criterion ---------------------------------
    # not one result bit moved: summary, per-stream outcomes, rejects
    assert _summaries_identical(bare, telemetered)
    assert [o.spec.name for o in bare.outcomes] == [
        o.spec.name for o in telemetered.outcomes
    ]
    for a, b in zip(bare.outcomes, telemetered.outcomes):
        assert np.array_equal(
            a.result.quality_series(),
            b.result.quality_series(),
            equal_nan=True,
        )
    assert [s.name for s in bare.rejected] == [
        s.name for s in telemetered.rejected
    ]
    # enforcement mode ran clean: every invariant held
    assert invariants.violations == []
    # the event log is live and round-trips losslessly
    assert len(events.events) > 50
    assert parse_events(events.to_jsonl()) == events.events
    # windows closed and phases timed
    assert len(metrics.windows) >= 2
    assert perf.total_seconds > 0
    # the wall-time criterion
    assert overhead < OVERHEAD_CEILING, (
        f"telemetry overhead {overhead:.2%} >= {OVERHEAD_CEILING:.0%}"
    )

    write_bench_trajectory("obs", {
        "bare_seconds": round(bare_seconds, 4),
        "telemetry_seconds": round(telemetry_seconds, 4),
        "overhead_ratio": round(overhead, 4),
        "events": len(events.events),
        "windows": len(metrics.windows),
        "invariant_violations": len(invariants.violations),
        "invariants_enforced": sorted(
            inv.name for inv in invariants.invariants
        ),
        "served": telemetered.summary()["served"],
        "rejected": telemetered.summary()["rejected"],
        "mean_quality": round(telemetered.summary()["mean_quality"], 4),
    })
