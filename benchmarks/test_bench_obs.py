"""Telemetry overhead bench: full observability must be ~free.

The observability acceptance criterion: attaching the **entire**
telemetry suite — windowed metrics, the structured event log, and the
invariant ledger in enforcement mode — to the 1.5x-overload SLA gold
rush must change **no result bit** and stay under the wall-time
ceiling (``OVERHEAD_CEILING``).  A second stack adds the per-session
causal tracer and the SLO engine on top and must stay under
``TRACED_CEILING``.  The measured trajectory (bare seconds,
telemetered seconds, both overhead ratios, event/window/violation
counts) is written to ``BENCH_obs.json`` at the repo root so the cost
is tracked PR-over-PR.
"""

from __future__ import annotations

import gc
import math
import time

import numpy as np

from repro.obs import (
    InvariantObserver,
    PerfObserver,
    SloObserver,
    SloSpec,
    StructuredEventLog,
    TelemetryObserver,
    TraceObserver,
    parse_events,
    parse_traces,
)
from repro.serving import serve

from conftest import run_once, write_bench_trajectory
from test_bench_sla import BENCH_CLASSES, sla_spec

#: The wall-time criteria.  The hook-path rework (cached instruments,
#: per-hook invariant dispatch, phase reports fanned only to actual
#: ``on_phase`` listeners, memoized departure quality) cut the
#: four-observer stack from the 8–11% it had crept to roughly in half:
#: summed per-observer A/B cost is ~3–4%, and the full stack measures
#: ~4–6% on a single-core CI box (the gap is cache/allocator pressure,
#: not hook work).  The ceilings sit one noise-margin above that —
#: wall-clock ratios on shared runners jitter by a few percent even as
#: a min over interleaved repeats — so the gate stays deterministic
#: while still catching any re-regression toward the old double-digit
#: cost.  The traced stack runs two more observers (span trees + SLO
#: budget tracking per departure) and gets a proportionally higher
#: ceiling.
OVERHEAD_CEILING = 0.08
TRACED_CEILING = 0.15

#: The SLO the traced stack evaluates (threshold defaults to the gold
#: class's declared target).
BENCH_SLOS = (
    SloSpec(name="gold-quality", objective="quality", service_class="gold"),
)


def _values_equal(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        return (math.isnan(a) and math.isnan(b)) or a == b
    return a == b


def _summaries_identical(bare, other) -> bool:
    a, b = bare.summary(), other.summary()
    if set(a) != set(b):
        return False
    return all(_values_equal(a[k], b[k]) for k in a)


def _assert_bit_identical(bare, other):
    assert _summaries_identical(bare, other)
    assert [o.spec.name for o in bare.outcomes] == [
        o.spec.name for o in other.outcomes
    ]
    for a, b in zip(bare.outcomes, other.outcomes):
        assert np.array_equal(
            a.result.quality_series(),
            b.result.quality_series(),
            equal_nan=True,
        )
    assert [s.name for s in bare.rejected] == [
        s.name for s in other.rejected
    ]


def test_bench_obs_overhead(benchmark, results_dir):
    """Full telemetry on the SLA overload bench: bit-identical, cheap."""
    def bare_run():
        return serve(sla_spec())

    def telemetered_run():
        observers = [
            TelemetryObserver(window=5),
            StructuredEventLog(),
            InvariantObserver(enforce=True, classes=BENCH_CLASSES),
            PerfObserver(),
        ]
        return serve(sla_spec(), observers=observers), observers

    def traced_run():
        observers = [
            TelemetryObserver(window=5),
            StructuredEventLog(),
            InvariantObserver(
                enforce=True, classes=BENCH_CLASSES, slos=BENCH_SLOS
            ),
            PerfObserver(),
            TraceObserver(),
            SloObserver(BENCH_SLOS, classes=BENCH_CLASSES),
        ]
        return serve(sla_spec(), observers=observers), observers

    # warm caches (qmin memoization, imports, observer setup) so all
    # timings are fair
    bare_run()
    telemetered_run()
    traced_run()

    # wall time as the min over repeats with the repeats
    # **interleaved**: timing all bare repeats in one block and all
    # observed repeats in another lets a slow patch of CI noise land
    # entirely on one side — that skew once measured a *negative*
    # telemetry overhead.  Alternating the repeats spreads jitter
    # across every side; quiescing the GC keeps collection pauses
    # (correlated with the observed sides' event allocations) out of
    # the minima.  Ratios compare minima *within* one attempt only —
    # machine speed drifts over seconds (frequency scaling,
    # co-tenants), so minima from different attempts are not
    # comparable — and the gate takes the best attempt of several: a
    # burst of contention can inflate a whole attempt, and one quiet
    # attempt is evidence about the code where six noisy ones are
    # evidence about the box.  Attempts stop early once both ratios
    # are safely inside their ceilings.
    state = {}

    def one_attempt():
        best = {"bare": math.inf, "telemetry": math.inf, "traced": math.inf}
        gc.collect()
        gc.disable()
        try:
            for _ in range(7):
                start = time.perf_counter()
                state["bare"] = bare_run()
                best["bare"] = min(
                    best["bare"], time.perf_counter() - start
                )
                start = time.perf_counter()
                state["telemetered"], state["observers"] = telemetered_run()
                best["telemetry"] = min(
                    best["telemetry"], time.perf_counter() - start
                )
                start = time.perf_counter()
                state["traced"], state["traced_observers"] = traced_run()
                best["traced"] = min(
                    best["traced"], time.perf_counter() - start
                )
        finally:
            gc.enable()
        return best

    def measured():
        state.clear()
        for _ in range(6):
            best = one_attempt()
            overhead = best["telemetry"] / best["bare"] - 1.0
            traced = best["traced"] / best["bare"] - 1.0
            if overhead < state.get("overhead", math.inf):
                state["overhead"] = overhead
                state["bare_s"] = best["bare"]
                state["telemetry_s"] = best["telemetry"]
            if traced < state.get("traced_overhead", math.inf):
                state["traced_overhead"] = traced
                state["traced_s"] = best["traced"]
            if (
                state["overhead"] < 0.8 * OVERHEAD_CEILING
                and state["traced_overhead"] < 0.8 * TRACED_CEILING
            ):
                break
        return dict(state)

    state = run_once(benchmark, measured)
    bare_seconds = state["bare_s"]
    telemetry_seconds = state["telemetry_s"]
    traced_seconds = state["traced_s"]
    bare, telemetered, traced = (
        state["bare"], state["telemetered"], state["traced"],
    )
    metrics, events, invariants, perf = state["observers"]
    tracer = state["traced_observers"][4]
    slo = state["traced_observers"][5]
    # best-attempt ratios (each paired with its own attempt's bare
    # minimum — the stored seconds may come from different attempts)
    overhead = state["overhead"]
    traced_overhead = state["traced_overhead"]

    print(
        f"\nbare {bare_seconds:.3f}s, full telemetry "
        f"{telemetry_seconds:.3f}s ({overhead * 100.0:+.2f}%), "
        f"+tracing+slo {traced_seconds:.3f}s "
        f"({traced_overhead * 100.0:+.2f}%)"
    )
    print(
        f"events={len(events.events)} windows={len(metrics.windows)} "
        f"violations={len(invariants.violations)} "
        f"traces={len(tracer.records())} "
        f"phase_seconds={perf.total_seconds:.3f}"
    )

    # --- the acceptance criterion ---------------------------------
    # not one result bit moved: summary, per-stream outcomes, rejects
    _assert_bit_identical(bare, telemetered)
    _assert_bit_identical(bare, traced)
    # enforcement mode ran clean: every invariant held
    assert invariants.violations == []
    # the event log is live and round-trips losslessly
    assert len(events.events) > 50
    assert parse_events(events.to_jsonl()) == events.events
    # the trace log covers every session and round-trips losslessly
    assert len(tracer.records()) == (
        traced.served_count + traced.rejected_count
    )
    assert tuple(parse_traces(tracer.to_jsonl())) == tracer.records()
    # the SLO engine evaluated the declared objective
    reports = slo.reports()
    assert [r.name for r in reports] == ["gold-quality"]
    # windows closed and phases timed
    assert len(metrics.windows) >= 2
    assert perf.total_seconds > 0
    # the wall-time criteria
    assert overhead < OVERHEAD_CEILING, (
        f"telemetry overhead {overhead:.2%} >= {OVERHEAD_CEILING:.0%}"
    )
    assert traced_overhead < TRACED_CEILING, (
        f"traced overhead {traced_overhead:.2%} >= {TRACED_CEILING:.0%}"
    )

    write_bench_trajectory("obs", {
        "bare_seconds": round(bare_seconds, 4),
        "telemetry_seconds": round(telemetry_seconds, 4),
        "traced_seconds": round(traced_seconds, 4),
        "overhead_ratio": round(overhead, 4),
        "tracing_overhead_ratio": round(traced_overhead, 4),
        "events": len(events.events),
        "traces": len(tracer.records()),
        "windows": len(metrics.windows),
        "invariant_violations": len(invariants.violations),
        "invariants_enforced": sorted(
            inv.name for inv in invariants.invariants
        ),
        "slo_budget_remaining": round(reports[0].budget_remaining, 4),
        "served": telemetered.summary()["served"],
        "rejected": telemetered.summary()["rejected"],
        "mean_quality": round(telemetered.summary()["mean_quality"], 4),
    })
