"""Cluster serving bench: placement policies, migration, headroom lending.

Beyond-the-paper scaling experiment #2: the fleet layer sharded into
multiple capacity pools (a multi-processor server).  Three questions:

* how much global acceptance does feasibility-aware placement buy over
  blind round-robin when shard capacities are skewed (the cluster-wide
  admission argument of Alaya et al.),
* how much cross-shard quality fairness does migration recover after
  placement skew freezes in (the multi-server coordination of
  Changuel et al.), and
* what does the arbiter-of-arbiters (headroom lending between shard
  arbiters) add on top, at zero migration cost.

Every run is a serving-API ``ServingSpec`` executed by ``repro.serve``.
Writes ``cluster_placement.csv`` plus a ``cluster_placement.json``
trajectory (uploaded as a CI artifact so bench history survives runs).
"""

from __future__ import annotations

import json

from repro.analysis.report import cluster_compare_table
from repro.serving import ServingSpec, serve

from conftest import run_once, write_bench_trajectory

PLACEMENTS = ("round-robin", "least-loaded", "best-fit", "quality-aware")


def cluster_spec(scenario_name, scenario_kwargs, placement, **overrides):
    document = {
        "topology": "cluster",
        "scenario": {"name": scenario_name, "kwargs": scenario_kwargs},
        "placement": placement,
    }
    document.update(overrides)
    return ServingSpec.from_dict(document)


def test_bench_cluster_placement(benchmark, results_dir):
    """Placement-policy comparison on the skewed cluster scenario."""
    # default size: the generator's promised regime (smallest shard
    # below a heavy stream's qmin demand) is calibrated for it
    scenario_kwargs = {"frames": 12}

    def run():
        plain = {
            name: serve(cluster_spec("skewed-cluster", scenario_kwargs, name))
            for name in PLACEMENTS
        }
        migrating = {
            name: serve(cluster_spec(
                "skewed-cluster", scenario_kwargs, name,
                migration="load-balance",
            ))
            for name in PLACEMENTS
        }
        return plain, migrating

    plain, migrating = run_once(benchmark, run)
    rows = [r.raw for r in plain.values()] + [r.raw for r in migrating.values()]
    scenario = plain["round-robin"].raw
    print(
        f"\ncluster placement comparison, "
        f"{scenario.served_count + scenario.rejected_count} streams "
        f"over {scenario.shard_count} skewed shards "
        f"({scenario.total_capacity / 1e6:.0f} Mcyc/round total):"
    )
    print(cluster_compare_table(rows))

    with open(results_dir / "cluster_placement.csv", "w") as handle:
        handle.write(
            "placement,migration,served,rejected,acceptance,migrations,"
            "mean_quality,fairness_streams,fairness_cross_shard,imbalance\n"
        )
        for result in rows:
            s = result.summary()
            handle.write(
                f"{s['placement']},{s['migration']},{s['served']},"
                f"{s['rejected']},{s['acceptance_ratio']},{s['migrations']},"
                f"{s['mean_quality']},{s['fairness_streams']},"
                f"{s['fairness_cross_shard']},{s['load_imbalance']}\n"
            )
    with open(results_dir / "cluster_placement.json", "w") as handle:
        json.dump([r.summary() for r in rows], handle, indent=2)

    blind = plain["round-robin"]
    aware = plain["best-fit"]
    write_bench_trajectory("cluster", {
        "blind_acceptance": round(blind.acceptance_ratio, 4),
        "best_fit_acceptance": round(aware.acceptance_ratio, 4),
        "best_fit_quality": round(aware.mean_quality(), 4),
        "migration_fairness_gain": round(
            migrating["round-robin"].raw.fairness_cross_shard()
            - plain["round-robin"].raw.fairness_cross_shard(),
            4,
        ),
    })
    # acceptance criterion 1: feasibility-aware placement serves
    # streams blind rotation rejects
    assert aware.acceptance_ratio > blind.acceptance_ratio + 0.1
    # acceptance criterion 2: migration recovers cross-shard fairness
    frozen = plain["round-robin"].raw
    mobile = migrating["round-robin"].raw
    assert mobile.fairness_cross_shard() > frozen.fairness_cross_shard() + 0.1
    # placement intelligence never loses streams
    assert aware.served_count >= blind.served_count


def test_bench_cluster_outage_and_lending(benchmark, results_dir):
    """Shard outage: migration vs headroom lending vs nothing."""
    scenario_kwargs = {"streams": 9, "frames": 14}

    def run():
        return {
            "frozen": serve(cluster_spec(
                "shard-outage", scenario_kwargs, "least-loaded",
            )),
            "migrating": serve(cluster_spec(
                "shard-outage", scenario_kwargs, "least-loaded",
                migration="load-balance",
            )),
            "lending": serve(cluster_spec(
                "shard-outage", scenario_kwargs, "least-loaded",
                balancer="headroom",
            )),
        }

    results = run_once(benchmark, run)
    total_capacity = results["frozen"].raw.total_capacity
    print(
        f"\nshard outage at round 4 "
        f"({total_capacity / 1e6:.0f} Mcyc/round, 3 shards):"
    )
    print(cluster_compare_table([r.raw for r in results.values()]))
    with open(results_dir / "cluster_outage.json", "w") as handle:
        json.dump(
            {name: r.raw.summary() for name, r in results.items()},
            handle,
            indent=2,
        )

    frozen = results["frozen"]
    migrating = results["migrating"]
    # migration rescues the degraded shard's streams
    assert migrating.total_skips() < frozen.total_skips()
    assert migrating.raw.fairness_streams() > frozen.raw.fairness_streams()
    # everything still served either way (admission was sized pre-outage)
    assert frozen.served_count == migrating.served_count == 9
