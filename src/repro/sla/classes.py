"""Service classes: the per-application QoS contract of the SLA layer.

Kalinahia (PAPERS.md) argues quality of service must be *declared* by
the application and *enforced* by the execution platform; a
:class:`ServiceClass` is that declaration for the serving substrate.
It names a class (``gold`` / ``silver`` / ``bronze`` in the standard
catalog), gives it an arbitration ``weight`` (Changuel et al.'s
class-weighted quality share), an ``admission_priority`` (queued
arrivals drain highest-priority-first, and a class with ``preempt``
rights may evict lower-priority *queued* — never running — specs from
a full wait queue), and a quality band: ``target_quality`` is the
normalized [0, 1] delivered quality the class is sold, ``min_quality``
the floor mid-stream renegotiation may step the target down to under
sustained starvation.

Classes are plain frozen data — JSON-round-trippable through
``to_dict`` / ``from_dict`` — so a :class:`~repro.serving.spec.ServingSpec`
can declare custom classes inline, and every SLA-aware policy accepts
a ``classes`` kwarg (names from the ``SLA_CLASSES`` registry, dicts,
or :class:`ServiceClass` instances, resolved by
:func:`resolve_classes`).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, fields

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ServiceClass:
    """One SLA tier: arbitration weight, admission priority, quality band.

    ``weight`` scales the class's share of arbitrated surplus;
    ``admission_priority`` orders queued arrivals (higher drains
    first); ``min_quality`` / ``target_quality`` are normalized [0, 1]
    delivered-quality levels (floor and contract); ``preempt`` grants
    the right to evict lower-priority queued specs from a full queue.
    """

    name: str
    weight: float = 1.0
    admission_priority: int = 0
    min_quality: float = 0.0
    target_quality: float = 1.0
    preempt: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ConfigurationError(
                f"service class name must be a non-empty string, "
                f"got {self.name!r}"
            )
        if not self.weight > 0:
            raise ConfigurationError(
                f"service class {self.name!r}: weight must be positive, "
                f"got {self.weight!r}"
            )
        if (
            isinstance(self.admission_priority, bool)
            or not isinstance(self.admission_priority, int)
        ):
            raise ConfigurationError(
                f"service class {self.name!r}: admission_priority must be "
                f"an integer, got {self.admission_priority!r}"
            )
        if not 0.0 <= self.min_quality <= 1.0:
            raise ConfigurationError(
                f"service class {self.name!r}: min_quality must be in "
                f"[0, 1], got {self.min_quality!r}"
            )
        if not 0.0 <= self.target_quality <= 1.0:
            raise ConfigurationError(
                f"service class {self.name!r}: target_quality must be in "
                f"[0, 1], got {self.target_quality!r}"
            )
        if self.min_quality > self.target_quality:
            raise ConfigurationError(
                f"service class {self.name!r}: min_quality "
                f"{self.min_quality} exceeds target_quality "
                f"{self.target_quality}"
            )
        if not isinstance(self.preempt, bool):
            raise ConfigurationError(
                f"service class {self.name!r}: preempt must be a bool, "
                f"got {self.preempt!r}"
            )

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "weight": self.weight,
            "admission_priority": self.admission_priority,
            "min_quality": self.min_quality,
            "target_quality": self.target_quality,
            "preempt": self.preempt,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ServiceClass":
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"a service class must be a mapping, got {type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown service class field(s) {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        if "name" not in data:
            raise ConfigurationError("service class needs a 'name'")
        return cls(**dict(data))


#: The standard catalog: three tiers whose defaults encode "whose
#: quality degrades first".  Gold pays for 3x arbitration weight, top
#: queue priority, preemption rights and a high floor; bronze is the
#: best-effort tier that absorbs overload.
GOLD = ServiceClass(
    name="gold",
    weight=3.0,
    admission_priority=2,
    min_quality=0.5,
    target_quality=0.85,
    preempt=True,
)
SILVER = ServiceClass(
    name="silver",
    weight=1.5,
    admission_priority=1,
    min_quality=0.25,
    target_quality=0.65,
)
BRONZE = ServiceClass(
    name="bronze",
    weight=1.0,
    admission_priority=0,
    min_quality=0.05,
    target_quality=0.5,
)

STANDARD_CLASSES = (GOLD, SILVER, BRONZE)

#: What an unclassed stream looks like to SLA-aware policies: neutral
#: weight, lowest priority, no preemption rights, and a full-scale
#: target (it pulls surplus like the classless quality-fair arbiter).
UNCLASSED = ServiceClass(name="unclassed", weight=1.0, admission_priority=0)


def _resolve_class(item) -> ServiceClass:
    if isinstance(item, ServiceClass):
        return item
    if isinstance(item, str):
        # deferred: the registry module registers *this* module's
        # catalog, so importing it at module scope would cycle
        from repro.serving.registry import SLA_CLASSES

        return SLA_CLASSES.create(item)
    if isinstance(item, Mapping):
        return ServiceClass.from_dict(item)
    raise ConfigurationError(
        f"service classes must be names, dicts, or ServiceClass "
        f"instances, got {type(item).__name__}"
    )


def resolve_classes(classes=None) -> dict[str, ServiceClass]:
    """Normalize a ``classes`` policy kwarg into ``{name: ServiceClass}``.

    Accepts ``None`` (the standard gold/silver/bronze catalog), a
    mapping of name to class (keys must match the class names — the
    catalog is always looked up by the name streams carry, so an alias
    key would silently never match), or an iterable whose items are
    :class:`ServiceClass` instances, class dicts, or registered names
    (resolved through the ``SLA_CLASSES`` registry).  Duplicate names
    are a configuration error.
    """
    if classes is None:
        return {c.name: c for c in STANDARD_CLASSES}
    catalog: dict[str, ServiceClass] = {}
    if isinstance(classes, Mapping):
        for key, item in classes.items():
            resolved = _resolve_class(item)
            if resolved.name != key:
                raise ConfigurationError(
                    f"service class catalog key {key!r} does not match "
                    f"the class's own name {resolved.name!r} (streams "
                    "are looked up by class name, so an alias key would "
                    "silently never match)"
                )
            catalog[key] = resolved
    else:
        for item in classes:
            resolved = _resolve_class(item)
            if resolved.name in catalog:
                raise ConfigurationError(
                    f"duplicate service class {resolved.name!r}"
                )
            catalog[resolved.name] = resolved
    if not catalog:
        raise ConfigurationError("service classes must not be empty")
    return catalog


def class_of(catalog: Mapping[str, ServiceClass], name) -> ServiceClass:
    """The catalog entry for ``name``, or the neutral :data:`UNCLASSED`.

    SLA-aware policies never hard-fail on an unknown or missing class
    mid-round — an unclassed stream is served best-effort — but session
    construction (which happens once, at admission) validates strictly.
    """
    if name is None:
        return UNCLASSED
    return catalog.get(name, UNCLASSED)
