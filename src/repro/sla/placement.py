"""SLA-aware placement: premium streams get comfort, best-effort packs.

Placement is the cluster's first SLA decision: *where* an arrival
lands fixes both whether it is admitted and how big its arbitrated
share can ever get.  :class:`SlaPlacement` splits the catalog at
``premium_priority``:

* **premium** arrivals (admission priority at or above the threshold —
  gold, and silver by default) take the accepting shard with the
  largest *projected per-stream share* (the predictive criterion), so
  a gold stream is never wedged into a nearly-full shard merely
  because it fits;
* **best-effort** arrivals pack best-fit style (tightest accepting
  headroom), preserving the big holes — and the comfortable shares —
  for the premium tiers.

Both halves fall back through the same tiers as best-fit when no
shard accepts immediately (most headroom among feasible-alone shards,
else least loaded).
"""

from __future__ import annotations

from repro.cluster.placement import (
    BestFitPlacement,
    PlacementPolicy,
    PredictivePlacement,
)
from repro.cluster.shard import Shard
from repro.errors import ConfigurationError
from repro.sla.classes import class_of, resolve_classes
from repro.streams.scenarios import StreamSpec


class SlaPlacement(PlacementPolicy):
    """Class-split routing: share-seeking for premium, packing below.

    Parameters
    ----------
    classes:
        Service-class catalog (``None`` = standard gold/silver/bronze).
    premium_priority:
        Admission priority at or above which an arrival is routed by
        projected share instead of packed.
    """

    name = "sla-aware"

    def __init__(self, classes=None, premium_priority: int = 1) -> None:
        if premium_priority < 0:
            raise ConfigurationError("premium_priority must be >= 0")
        self.classes = resolve_classes(classes)
        self.premium_priority = premium_priority
        self._premium = PredictivePlacement()
        self._packer = BestFitPlacement()

    def _choose(
        self, spec: StreamSpec, shards: list[Shard], round_index: int
    ) -> Shard:
        cls = class_of(self.classes, spec.service_class)
        if cls.admission_priority >= self.premium_priority:
            return self._premium._choose(spec, shards, round_index)
        return self._packer._choose(spec, shards, round_index)
