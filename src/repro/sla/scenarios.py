"""SLA workloads: class-mixed churn and gold flash crowds.

The SLA scenario family layers service classes onto the PR-1/PR-2
arrival generators, producing the two regimes the tier machinery is
for:

* :func:`sla_churn` — Poisson arrival/departure churn with classes
  assigned cyclically (the steady-state mixed-tenancy workload);
* :func:`gold_rush` — a bronze background fleet filling the pool, then
  a simultaneous gold crowd landing on top (the overload regime of the
  acceptance criterion: gold must hold acceptance and target quality
  while bronze degrades gracefully);
* :func:`sla_skewed_cluster` — the PR-2 skewed heavy/light cluster mix
  with classes layered on, for SLA-aware placement and migration.

All generators return plain replayable spec lists, deterministic for a
fixed seed, like every other scenario in the repo.
"""

from __future__ import annotations

from repro.cluster.scenarios import ClusterScenario, skewed_cluster
from repro.errors import ConfigurationError
from repro.experiments.configs import scaled_config
from repro.streams.scenarios import (
    Scenario,
    StreamSpec,
    poisson_churn,
    with_classes,
)

#: Default class cycle for mixed workloads: one gold and one silver
#: for every two bronze — premium is the minority, as sold.
DEFAULT_CLASS_CYCLE = ("gold", "bronze", "silver", "bronze")


def sla_churn(
    rate: float = 1.0,
    horizon: int = 20,
    mean_frames: int = 16,
    min_frames: int = 8,
    seed: int = 7,
    initial: int = 6,
    classes: tuple[str, ...] = DEFAULT_CLASS_CYCLE,
) -> Scenario:
    """Class-mixed Poisson churn: tiers arrive and depart continuously."""
    scenario = poisson_churn(
        rate=rate,
        horizon=horizon,
        mean_frames=mean_frames,
        min_frames=min_frames,
        seed=seed,
        initial=initial,
    )
    scenario = with_classes(scenario, tuple(classes))
    return Scenario(name=f"sla-churn[rate={rate}]", specs=scenario.specs)


def gold_rush(
    bronze: int = 12,
    gold: int = 6,
    crowd_round: int = 4,
    frames: int = 12,
    scale: int = 27,
    seed: int = 7,
) -> Scenario:
    """A gold flash crowd over a bronze background.

    ``bronze`` best-effort streams occupy the pool from round 0; at
    ``crowd_round`` a simultaneous crowd of ``gold`` premium streams
    lands on top.  This is the workload of the SLA acceptance
    criterion: with priority admission and SLA arbitration the gold
    crowd must be absorbed at target quality while the bronze
    background absorbs the overload.
    """
    if bronze < 1 or gold < 1:
        raise ConfigurationError("bronze and gold must be >= 1")
    specs = [
        StreamSpec(
            name=f"bronze-{i}",
            arrival_round=0,
            config=scaled_config(scale=scale, seed=seed + i, frames=frames),
            service_class="bronze",
        )
        for i in range(bronze)
    ]
    specs += [
        StreamSpec(
            name=f"gold-{i}",
            arrival_round=crowd_round,
            config=scaled_config(
                scale=scale, seed=seed + 1000 + i, frames=frames
            ),
            service_class="gold",
        )
        for i in range(gold)
    ]
    return Scenario(
        name=f"gold-rush[{bronze}+{gold}@{crowd_round}]",
        specs=tuple(specs),
    )


def sla_skewed_cluster(
    streams: int = 12,
    shards: int = 3,
    frames: int = 12,
    seed: int = 7,
    utilization: float = 0.5,
    skew: float = 8.0,
    classes: tuple[str, ...] = DEFAULT_CLASS_CYCLE,
) -> ClusterScenario:
    """The skewed heavy/light cluster mix with service classes layered on."""
    base = skewed_cluster(
        streams=streams,
        shards=shards,
        frames=frames,
        seed=seed,
        utilization=utilization,
        skew=skew,
    )
    return ClusterScenario(
        name=f"sla-{base.name}",
        arrivals=with_classes(base.arrivals, tuple(classes)),
        shard_capacities=base.shard_capacities,
        events=base.events,
    )
