"""SLA-aware migration: gold gets first claim on rebalancing headroom.

:class:`SlaMigration` is
:class:`~repro.cluster.migration.LoadBalanceMigration` with the claim
order made class-conscious.  The parent's guard rails are untouched —
moves only go where qmin is feasible, never within ``min_residency``
rounds of the last move, and at most ``max_moves_per_round`` active
moves per round (the PR-2 learnings against ping-pong) — but when the
round's migration headroom cannot rescue everyone:

* queued specs relocate toward immediate headroom
  **highest admission priority first** (FIFO within a class), so a
  waiting gold stream claims the open slot a bronze stream would have
  taken in plain queue rebalancing;
* quality-starved **active** sessions are considered for rescue in the
  same priority order, so the per-round move cap and the destination
  headroom go to gold before bronze.
"""

from __future__ import annotations

from repro.cluster.migration import LoadBalanceMigration
from repro.cluster.shard import Shard
from repro.sla.classes import class_of, resolve_classes


class SlaMigration(LoadBalanceMigration):
    """Load-balancing migration with class-priority claim order."""

    name = "sla-aware"

    def __init__(
        self,
        classes=None,
        quality_threshold: float = 0.4,
        overload: float = 1.05,
        margin: float = 1.0,
        min_residency: int = 3,
        max_moves_per_round: int = 2,
    ) -> None:
        super().__init__(
            quality_threshold=quality_threshold,
            overload=overload,
            margin=margin,
            min_residency=min_residency,
            max_moves_per_round=max_moves_per_round,
        )
        self.classes = resolve_classes(classes)

    def _priority_of(self, spec) -> int:
        name = getattr(spec, "service_class", None)
        return class_of(self.classes, name).admission_priority

    def _queued_candidates(self, source: Shard) -> list:
        return sorted(
            source.queue,
            key=lambda spec: -self._priority_of(spec),
        )

    def _active_candidates(self, source: Shard) -> list:
        return sorted(
            source.active,
            key=lambda session: -self._priority_of(
                source.spec_of[session.stream_id]
            ),
        )
