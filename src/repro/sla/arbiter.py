"""SLA-aware capacity arbitration: class-weighted shares, class targets.

Both arbiters subclass :class:`~repro.streams.arbiter.CapacityArbiter`,
so they inherit the two serving invariants the whole substrate relies
on — grants sum to exactly the offered capacity, and every active
stream receives at least ``floor_share`` of its equal share — for
*arbitrary* class weight vectors (asserted by
``tests/property/test_sla_arbiter_properties.py``).  Class weights
only shape how the **surplus** above the floor is steered, which is
exactly Changuel et al.'s class-weighted quality share on top of the
paper's per-stream guarantees.

* :class:`SlaWeightedArbiter` — surplus proportional to
  ``class_weight * stream_weight * demand``: pure tier pricing, blind
  to delivered quality;
* :class:`SlaQualityFairArbiter` — surplus proportional to
  ``class_weight * stream_weight * demand * deficit^pressure`` where
  the deficit is measured against the stream's **own quality target**
  (its class contract, possibly renegotiated down mid-stream).  A gold
  stream below its 0.85 target out-pulls a bronze stream below its
  0.5 target twice over — once through the class weight, once through
  the larger deficit — which is what holds gold at target under
  overload while bronze degrades gracefully.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.sla.classes import class_of, resolve_classes
from repro.streams.arbiter import CapacityArbiter, CapacityRequest


class SlaWeightedArbiter(CapacityArbiter):
    """Demand-proportional service scaled by class weight."""

    name = "sla-weighted"

    def __init__(self, floor_share: float = 0.25, classes=None) -> None:
        super().__init__(floor_share=floor_share)
        self.classes = resolve_classes(classes)

    def _surplus_shares(self, requests: list[CapacityRequest]) -> list[float]:
        return [
            class_of(self.classes, r.service_class).weight * r.weight * r.demand
            for r in requests
        ]


class SlaQualityFairArbiter(CapacityArbiter):
    """Steer surplus toward streams furthest below their class target.

    The per-stream target is ``request.target_quality`` when the
    session reports one (sessions of classed streams carry their
    current — possibly renegotiated — target); otherwise the class's
    declared ``target_quality`` from this arbiter's catalog.  Streams
    at or above target still pull ``deficit_margin`` worth of surplus,
    scaled by class weight, so nobody flatlines at the floor.
    """

    name = "sla-quality-fair"

    def __init__(
        self,
        floor_share: float = 0.25,
        pressure: float = 2.0,
        deficit_margin: float = 0.05,
        classes=None,
    ) -> None:
        super().__init__(floor_share=floor_share)
        if pressure < 0:
            raise ConfigurationError("pressure must be >= 0")
        if deficit_margin <= 0:
            raise ConfigurationError("deficit_margin must be positive")
        self.pressure = pressure
        self.deficit_margin = deficit_margin
        self.classes = resolve_classes(classes)

    def _surplus_shares(self, requests: list[CapacityRequest]) -> list[float]:
        shares = []
        for r in requests:
            cls = class_of(self.classes, r.service_class)
            target = (
                r.target_quality
                if not math.isnan(r.target_quality)
                else cls.target_quality
            )
            quality = 0.0 if math.isnan(r.recent_quality) else r.recent_quality
            deficit = max(0.0, target - quality) + self.deficit_margin
            shares.append(
                cls.weight * r.weight * r.demand * deficit**self.pressure
            )
        return shares
