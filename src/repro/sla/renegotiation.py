"""Mid-stream renegotiation: step a session's quality target with load.

The paper's controller guarantees timing at whatever quality the
budget affords; the SLA contract adds a *target* the arbiter steers
toward.  Under sustained overload a session that keeps missing its
target only drags surplus away from streams that could still hold
theirs — renegotiation is the pressure valve: after ``patience``
consecutive starved rounds the session's target steps down by
``step`` (never below its class ``min_quality`` floor), and after
``recovery_patience`` consecutive rounds with dedicated-speed headroom
it steps back up (never above the class's contracted target).

A policy instance is **stateless and shared** across sessions — all
counters live in the :class:`~repro.streams.session.StreamSession` —
so one instance may serve a whole fleet (or every shard of a cluster)
and back-to-back runs replay bit-identically.  Each executed step is
reported by the runner through ``RoundObserver.on_renegotiate`` and
tallied per stream in the results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class StepRenegotiation:
    """Step-down / step-up target renegotiation.

    Parameters
    ----------
    patience:
        Consecutive starved rounds (quality below target minus
        ``tolerance`` while granted less than dedicated speed) before
        a step down.
    recovery_patience:
        Consecutive headroom rounds (granted at least dedicated-speed
        demand) before a step back up.
    step:
        Normalized quality per renegotiation step.
    tolerance:
        Dead band below the target that does not count as starvation.
    """

    patience: int = 3
    recovery_patience: int = 4
    step: float = 0.1
    tolerance: float = 0.02

    def __post_init__(self) -> None:
        if self.patience < 1:
            raise ConfigurationError("patience must be >= 1")
        if self.recovery_patience < 1:
            raise ConfigurationError("recovery_patience must be >= 1")
        if not self.step > 0:
            raise ConfigurationError("step must be positive")
        if self.tolerance < 0:
            raise ConfigurationError("tolerance must be >= 0")

    def starved(self, quality: float, target: float, granted: float,
                demand: float) -> bool:
        """Is this round a starvation observation?"""
        return quality < target - self.tolerance and granted < demand

    def headroom(self, granted: float, demand: float) -> bool:
        """Is this round a recovery observation (dedicated speed met)?"""
        return granted >= demand

    def step_down(self, target: float, floor: float) -> float:
        return max(floor, target - self.step)

    def step_up(self, target: float, ceiling: float) -> float:
        return min(ceiling, target + self.step)
