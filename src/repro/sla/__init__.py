"""SLA-tiered serving: service classes threaded through every layer.

The third serving subsystem (after the PR-1 fleet and PR-2 cluster
layers): *whose* quality degrades first under overload becomes a
declared, enforced contract instead of an emergent accident.

* :mod:`repro.sla.classes` — :class:`ServiceClass` (weight, admission
  priority, quality band, preemption rights), the standard
  gold/silver/bronze catalog, catalog resolution;
* :mod:`repro.sla.arbiter` — class-weighted capacity arbitration
  (:class:`SlaWeightedArbiter`, :class:`SlaQualityFairArbiter`)
  preserving the PR-1 conservation and floor invariants;
* :mod:`repro.sla.admission` — :class:`PriorityAdmissionController`:
  priority-ordered queue drain, queued-spec preemption (never running
  sessions);
* :mod:`repro.sla.renegotiation` — :class:`StepRenegotiation`:
  mid-stream quality-target steps within the class floor;
* :mod:`repro.sla.placement` / :mod:`repro.sla.migration` — gold gets
  first claim on placement comfort and migration headroom;
* :mod:`repro.sla.scenarios` — class-mixed churn, gold flash crowd,
  classed skewed cluster.

Everything registers by name in the serving registries (``ARBITERS``,
``ADMISSIONS``, ``PLACEMENTS``, ``MIGRATIONS``, ``SLA_CLASSES``,
``RENEGOTIATIONS``, ``SCENARIOS``), so SLA runs are plain
:class:`~repro.serving.spec.ServingSpec` documents with zero new
runner entry points.
"""

from repro.sla.admission import PriorityAdmissionController
from repro.sla.arbiter import SlaQualityFairArbiter, SlaWeightedArbiter
from repro.sla.classes import (
    BRONZE,
    GOLD,
    SILVER,
    STANDARD_CLASSES,
    UNCLASSED,
    ServiceClass,
    class_of,
    resolve_classes,
)
from repro.sla.migration import SlaMigration
from repro.sla.placement import SlaPlacement
from repro.sla.renegotiation import StepRenegotiation
from repro.sla.scenarios import gold_rush, sla_churn, sla_skewed_cluster
from repro.sla.signals import class_pressure_weights, weighted_pressure

__all__ = [
    "BRONZE",
    "GOLD",
    "PriorityAdmissionController",
    "SILVER",
    "STANDARD_CLASSES",
    "ServiceClass",
    "SlaMigration",
    "SlaPlacement",
    "SlaQualityFairArbiter",
    "SlaWeightedArbiter",
    "StepRenegotiation",
    "UNCLASSED",
    "class_of",
    "class_pressure_weights",
    "gold_rush",
    "resolve_classes",
    "sla_churn",
    "sla_skewed_cluster",
    "weighted_pressure",
]
