"""SLA-weighted scale signals: class pressure for the autoscaler.

The autoscaler (:mod:`repro.horizon.autoscaler`) reads per-class
renegotiation densities out of telemetry windows; this module maps
those densities onto a single *pressure* scalar using each class's
declared arbitration weight, so a window of gold down-steps pushes the
cluster toward scale-up three times harder than the same density of
bronze down-steps.  Keeping the weighting here (and not hard-coded in
the controller) means the scale trigger follows whatever catalog the
run was configured with — custom classes weigh in with their own
declared weights, unclassed streams at the neutral 1.0.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.sla.classes import UNCLASSED, resolve_classes


def class_pressure_weights(classes=None) -> dict[str, float]:
    """``{class_name: arbitration_weight}`` for a ``classes`` kwarg.

    Accepts everything :func:`repro.sla.classes.resolve_classes` does
    (``None`` for the standard catalog, mappings, iterables of classes /
    dicts / registered names).  Always includes the neutral
    ``"unclassed"`` entry so density maps can be folded without key
    checks.
    """
    catalog = resolve_classes(classes)
    weights = {name: cls.weight for name, cls in catalog.items()}
    weights.setdefault(UNCLASSED.name, UNCLASSED.weight)
    return weights


def weighted_pressure(
    density_by_class: Mapping[str, float], weights: Mapping[str, float]
) -> float:
    """Fold a per-class density map into one weighted pressure scalar.

    ``sum(weight * density)`` over every class in the density map;
    classes absent from ``weights`` count at the neutral 1.0 (same
    best-effort stance as :func:`repro.sla.classes.class_of`).
    """
    return sum(
        weights.get(name, UNCLASSED.weight) * density
        for name, density in density_by_class.items()
    )
