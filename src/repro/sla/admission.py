"""Priority admission: class-ordered queues and queued-spec preemption.

:class:`PriorityAdmissionController` keeps the base controller's
feasibility contract untouched — ACCEPTED still means the qmin
schedule fits the uncommitted budget, REJECTED still means infeasible
even alone — and changes only *who waits where*:

* the wait queue drains **highest admission priority first** (FIFO
  within a priority, and the chosen head still head-of-line blocks
  everyone behind it, so strict priority never silently skips a large
  gold stream in favour of small bronze ones);
* when the queue is full, an arriving stream whose class holds
  ``preempt`` rights may evict the lowest-priority queued spec of a
  strictly lower priority.  Only *queued* specs are ever preempted —
  a running session is never killed; its service degrades through
  arbitration and renegotiation instead.

Evicted specs travel back to the runner on the
:class:`~repro.streams.admission.AdmissionVerdict` (``preempted``) so
they are recorded as rejections and observed via ``on_reject``
**exactly once** (see ``tests/serving/test_serving_observers.py``).
"""

from __future__ import annotations

from repro.sla.classes import class_of, resolve_classes
from repro.streams.admission import AdmissionController


class PriorityAdmissionController(AdmissionController):
    """Feasibility-gated admission with SLA class priorities.

    Parameters match :class:`~repro.streams.admission.AdmissionController`
    plus ``classes`` — the service-class catalog (names, dicts, or
    :class:`~repro.sla.classes.ServiceClass` instances; ``None`` is the
    standard gold/silver/bronze catalog).  Streams without a class (or
    with an unknown one) queue at the lowest priority and hold no
    preemption rights.
    """

    def __init__(
        self,
        capacity: float,
        mode: str = "average",
        utilization_cap: float = 1.0,
        queue_limit: int | None = None,
        classes=None,
    ) -> None:
        super().__init__(
            capacity,
            mode=mode,
            utilization_cap=utilization_cap,
            queue_limit=queue_limit,
        )
        self.classes = resolve_classes(classes)
        self.preempted_count = 0

    def reset(self) -> None:
        super().reset()
        self.preempted_count = 0

    # ------------------------------------------------------------------
    # class signals
    # ------------------------------------------------------------------

    def priority_of(self, stream) -> int:
        name = getattr(stream, "service_class", None)
        return class_of(self.classes, name).admission_priority

    def may_preempt(self, stream) -> bool:
        name = getattr(stream, "service_class", None)
        return class_of(self.classes, name).preempt

    # ------------------------------------------------------------------
    # policy hooks
    # ------------------------------------------------------------------

    def _queue_head_index(self) -> int:
        """Earliest-queued stream of the highest waiting priority."""
        best_index = 0
        best_priority = self.priority_of(self.queue[0])
        for index in range(1, len(self.queue)):
            priority = self.priority_of(self.queue[index])
            if priority > best_priority:
                best_index, best_priority = index, priority
        return best_index

    def _try_queue(self, stream) -> tuple[bool, tuple]:
        """Queue the arrival, evicting a lower-priority spec if full."""
        if self.queue_limit is None or len(self.queue) < self.queue_limit:
            self.queue.append(stream)
            return True, ()
        if not self.may_preempt(stream) or not self.queue:
            return False, ()
        arriving = self.priority_of(stream)
        # latest-queued spec of the lowest priority: within the victim
        # class the newest arrival loses first (its wait is shortest)
        victim_index = None
        victim_priority = arriving
        for index, queued in enumerate(self.queue):
            priority = self.priority_of(queued)
            if priority < victim_priority or (
                victim_index is not None and priority == victim_priority
            ):
                victim_index, victim_priority = index, priority
        if victim_index is None:
            return False, ()
        victim = self.queue[victim_index]
        del self.queue[victim_index]
        self.rejected_count += 1
        self.preempted_count += 1
        self.queue.append(stream)
        return True, (victim,)
