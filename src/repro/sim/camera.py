"""The camera: a strictly periodic frame source.

"We consider a benchmark of 582 frames, consisting of 9 sequences
produced by a camera every P = 320 Mcycle (i.e. constant framerate of
25 frame/s)."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PeriodicCamera:
    """Frame ``f`` arrives at exactly ``f * period`` cycles."""

    period: float

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ConfigurationError(f"camera period must be positive, got {self.period}")

    def arrival(self, frame_index: int) -> float:
        """Arrival instant of a frame."""
        if frame_index < 0:
            raise ConfigurationError("frame index must be >= 0")
        return frame_index * self.period

    def arrivals(self, count: int) -> Iterator[tuple[int, float]]:
        """Iterate ``(frame_index, arrival_time)`` for ``count`` frames."""
        for f in range(count):
            yield f, f * self.period

    def frames_before(self, instant: float) -> int:
        """How many frames have arrived strictly before ``instant``.

        Arrivals sit at 0, P, 2P, ...; for ``instant = n*P`` exactly the
        frame arriving *at* that instant is not counted, leaving ``n``.
        Comparisons recompute ``n * period`` so that instants produced
        by :meth:`arrival` resolve exactly despite float rounding.
        """
        if instant <= 0:
            return 0
        import math

        candidate = math.floor(instant / self.period)
        if candidate * self.period >= instant:
            return candidate
        return candidate + 1
