"""System simulation: camera -> input buffer -> encoder (+controller) -> output.

This package reproduces the paper's experimental setup (Fig. 3): a
camera produces a frame every ``P`` cycles into an input buffer of size
``K``; the encoder consumes frames FIFO; arrivals that find the buffer
full are skipped.  The encoder's compute time per frame comes from the
platform timing model; its bits/PSNR from the analytic encoder model.
"""

from repro.sim.camera import PeriodicCamera
from repro.sim.encoder_loop import EncoderSimulation, SimulationConfig
from repro.sim.results import FrameRecord, RunResult
from repro.sim.runner import (
    run_adaptive,
    run_constant,
    run_controlled,
    run_paper_comparison,
)

__all__ = [
    "EncoderSimulation",
    "FrameRecord",
    "PeriodicCamera",
    "RunResult",
    "SimulationConfig",
    "run_adaptive",
    "run_constant",
    "run_controlled",
    "run_paper_comparison",
]
