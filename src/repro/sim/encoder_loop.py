"""The encoder system simulation (Fig. 3): camera, buffers, encoder, controller.

Timeline semantics (asserted by tests, derived from the paper's section 3):

* frame ``f`` arrives at ``f * P``; an arrival finding ``K`` frames
  waiting is skipped (dropped);
* the encoder serves waiting frames FIFO; frame ``f`` starting at ``s``
  receives the time budget ``arrival(f) + K*P - s`` — finish within it
  and the input buffer can never overflow (max latency ``K*P``, average
  budget ``P``, as stated in the paper);
* the *controlled* encoder runs the table-driven QoS controller inside
  the frame: at every macroblock's ``Motion_Estimate`` the maximal
  quality satisfying ``Qual_Const`` at the current cycle count is
  selected.  Decisions at the other actions would be no-ops (their
  times are quality-independent — Fig. 5), so the simulation evaluates
  the constraint only where it can change the outcome while still
  charging instrumentation overhead at *every* action boundary;
* the *constant-quality* encoder (industrial practice baseline) encodes
  every frame at a fixed level, pays no instrumentation, and overruns
  freely — overruns surface as buffer overflows, i.e. skips.

Two-pass structure: the timing pass walks the cycle-accurate timeline
(skips, budgets, per-macroblock qualities); the signal pass then walks
frames in display order through rate control and the PSNR model.  Bits
do not feed back into cycles, so the split is exact.
"""

from __future__ import annotations

import math
import zlib
from collections import deque
from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Callable, Sequence

import numpy as np

from repro.core.action import QualitySet
from repro.core.policies import DecisionContext
from repro.core.tables import ControllerTables
from repro.core.timing import QualityTimeTable
from repro.errors import ConfigurationError
from repro.platform.distributions import BoundedTimeDistribution
from repro.sim.camera import PeriodicCamera
from repro.sim.results import FrameRecord, RunResult
from repro.video.content import (
    FrameContent,
    MotionLoadModel,
    generate_content,
    macroblock_motion,
)
from repro.video.encoder_model import AnalyticEncoder
from repro.video.pipeline import (
    COMPRESS_ACTION,
    ENCODER_QUALITY_LEVELS,
    FIXED_ACTION_TIMES,
    GRAB_ACTION,
    MACROBLOCK_ACTIONS,
    ME_ACTION,
    MOTION_ESTIMATE_TIMES,
    macroblock_application,
)
from repro.video.ratecontrol import RateControlConfig, VirtualBufferRateController
from repro.video.rd_model import RateDistortionModel

#: Actions executed after Motion_Estimate within a macroblock.
_POST_ME_ACTIONS = tuple(
    a for a in MACROBLOCK_ACTIONS if a not in (GRAB_ACTION, ME_ACTION)
)


def _inflate_application(
    macroblocks: int,
    decision_overhead: float,
    average_times: QualityTimeTable | None = None,
):
    """The application with instrumentation overhead folded into the
    timing tables (every action's Cav/Cwc grows by the per-boundary
    overhead), exactly as the paper's compiler accounts for its own
    generated code — so the safety guarantee covers the instrumented
    application.  ``average_times`` (raw, un-inflated) overrides the
    published averages — the hook the learning controller uses.
    """
    application = macroblock_application(macroblocks)
    if average_times is not None:
        application = replace(application, average_times=average_times)
    if decision_overhead > 0:
        av_entries: dict[str, object] = {}
        wc_entries: dict[str, object] = {}
        base_av = application.average_times
        base_wc = application.worst_times
        for action in MACROBLOCK_ACTIONS:
            av_entries[action] = {
                q: base_av.time(action, q) + decision_overhead
                for q in ENCODER_QUALITY_LEVELS
            }
            wc_entries[action] = {
                q: base_wc.time(action, q) + decision_overhead
                for q in ENCODER_QUALITY_LEVELS
            }
        application = replace(
            application,
            average_times=QualityTimeTable(ENCODER_QUALITY_LEVELS, av_entries),
            worst_times=QualityTimeTable(ENCODER_QUALITY_LEVELS, wc_entries),
        )
    return application


@dataclass(frozen=True)
class CompiledController:
    """A compiled controller, shared across same-shape simulations.

    Everything here is a pure function of ``(macroblocks,
    nominal_budget, decision_overhead)`` — neither the content seed nor
    the rate-control/RD parameters enter table compilation — so a fleet
    of same-shape streams that differ only in content shares ONE table
    compile (the dominant construction cost).  All fields are treated
    as read-only by every holder.
    """

    application: object
    system: object
    tables: ControllerTables
    rows: dict
    me_positions: tuple


@lru_cache(maxsize=64)
def compiled_controller(
    macroblocks: int, nominal_budget: float, decision_overhead: float
) -> CompiledController:
    """Compile (and memoize) the controller tables for one shape."""
    application = _inflate_application(macroblocks, decision_overhead)
    system = application.system(budget=nominal_budget)
    system.validate()
    tables = ControllerTables.from_system(system)
    rows = {
        "both": tables.combined_bound.tolist(),
        "average": tables.average_bound.tolist(),
        "worst": tables.worst_bound.tolist(),
    }
    return CompiledController(
        application=application,
        system=system,
        tables=tables,
        rows=rows,
        me_positions=tuple(application.positions_of(ME_ACTION)),
    )


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of one simulated deployment.

    Defaults reproduce the paper's operating point: ``P = 320 Mcycle``,
    ``K = 1``, ``N = 1620`` macroblocks (PAL SD), 1.1 Mbit/s at 25 fps.
    """

    period: float = 320e6
    buffer_capacity: int = 1
    macroblocks: int = 1620
    frames: int | None = None
    seed: int = 42
    decision_overhead: float = 200.0
    floor_fraction: float = 0.2
    concentration: float = 8.0
    motion_spread: float = 0.08
    compress_motion_slope: float = 0.5
    rate_control: RateControlConfig = field(default_factory=RateControlConfig)
    rd_model: RateDistortionModel = field(default_factory=RateDistortionModel)
    load_model: MotionLoadModel = field(default_factory=MotionLoadModel)
    bits_noise: float = 0.05

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ConfigurationError("period must be positive")
        if self.buffer_capacity < 1:
            raise ConfigurationError("buffer capacity K must be >= 1")
        if self.macroblocks < 1:
            raise ConfigurationError("macroblocks N must be >= 1")
        if self.decision_overhead < 0:
            raise ConfigurationError("decision overhead must be >= 0")

    @property
    def frame_pixels(self) -> int:
        """256 pixels per macroblock (16x16 luma blocks)."""
        return 256 * self.macroblocks

    @property
    def nominal_budget(self) -> float:
        """The budget when the encoder starts a frame on arrival: K*P."""
        return self.buffer_capacity * self.period


@dataclass(frozen=True)
class FrameTiming:
    """Timing-pass output for one encoded frame.

    The quality-statistic fields are only filled by the engine kernels
    (:mod:`repro.engine.kernel`), which compute them where the decision
    history is already at hand — scalars stay exact because quality
    levels are small integers, so any summation order gives the same
    float64.  The simulation's own per-frame encoders leave them at
    their defaults.
    """

    cycles: float
    qualities: object  # scalar int or per-macroblock list
    controller_cycles: float
    decisions: int
    degraded: int
    deliberate_skip: bool = False
    mean_quality: float = float("nan")
    min_quality: int = 0
    max_quality: int = 0
    quality_churn: float = 0.0


class EncoderSimulation:
    """Simulates the full camera/buffer/encoder system on the benchmark.

    Build once per configuration; each ``run_*`` method is an
    independent, reproducible experiment (seeded off the config seed
    and a per-run salt).
    """

    def __init__(
        self,
        config: SimulationConfig | None = None,
        contents: Sequence[FrameContent] | None = None,
    ) -> None:
        self.config = config if config is not None else SimulationConfig()
        if contents is None:
            # limit= truncates the AR(1) draw sequence bit-identically,
            # so short clips skip the unused tail's generation cost
            contents = generate_content(
                seed=self.config.seed, limit=self.config.frames
            )
        if self.config.frames is not None:
            contents = list(contents)[: self.config.frames]
        self.contents: list[FrameContent] = list(contents)
        self.quality_set: QualitySet = ENCODER_QUALITY_LEVELS
        self._levels = list(self.quality_set)
        self._build_timing()
        self._build_controller_tables()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _build_timing(self) -> None:
        cfg = self.config
        self._me_dists = {
            q: BoundedTimeDistribution(
                average=av,
                ceiling=wc,
                floor_fraction=cfg.floor_fraction,
                concentration=cfg.concentration,
            )
            for q, (av, wc) in MOTION_ESTIMATE_TIMES.items()
        }
        self._fixed_dists = {
            action: BoundedTimeDistribution(
                average=av,
                ceiling=wc,
                floor_fraction=cfg.floor_fraction,
                concentration=cfg.concentration,
            )
            for action, (av, wc) in FIXED_ACTION_TIMES.items()
        }

    def _inflated_application(self, average_times: QualityTimeTable | None = None):
        """See :func:`_inflate_application` (kept as a method hook for the
        learning controller, which inflates re-learned tables per rebuild)."""
        cfg = self.config
        return _inflate_application(
            cfg.macroblocks, cfg.decision_overhead, average_times=average_times
        )

    def _build_controller_tables(self) -> None:
        """Attach the (shared) compiled controller for this shape.

        Table compilation is memoized across simulations through
        :func:`compiled_controller`: two configs that differ only in
        content seed, clip length or signal-side parameters reuse the
        same tables object — a 50-stream homogeneous fleet compiles
        once, not 50 times.
        """
        cfg = self.config
        compiled = compiled_controller(
            cfg.macroblocks, cfg.nominal_budget, cfg.decision_overhead
        )
        self.application = compiled.application
        self.system = compiled.system
        self.tables = compiled.tables
        self._me_positions = compiled.me_positions
        self._rows = compiled.rows
        # worst-case ceilings used to keep biased platforms inside the
        # C <= Cwc contract (DESIGN.md: the method's only assumption)
        self._grab_ceiling = FIXED_ACTION_TIMES[GRAB_ACTION][1]
        self._post_ceiling = sum(
            wc for action, (_, wc) in FIXED_ACTION_TIMES.items()
            if action != GRAB_ACTION
        )
        self._me_ceilings = [MOTION_ESTIMATE_TIMES[q][1] for q in self._levels]

    def _rng(self, salt: str) -> np.random.Generator:
        # zlib.crc32 (not hash()) so the stream is stable across
        # processes: hash() of a str is randomized per interpreter
        # (PYTHONHASHSEED), which made runs irreproducible between
        # pytest invocations and would break fleet determinism.
        digest = zlib.crc32(salt.encode("utf-8")) % (2**31)
        return np.random.default_rng(np.random.SeedSequence([self.config.seed, digest]))

    # ------------------------------------------------------------------
    # per-frame time draws
    # ------------------------------------------------------------------

    def _draw_frame_times(
        self,
        rng: np.random.Generator,
        content: FrameContent,
        quality: int | None,
        bias: float = 1.0,
    ) -> tuple[list, object, list]:
        """Draw (grab, ME, post-ME-sum) actual times for one frame.

        ``quality=None`` draws ME times for *all* levels (shape N x |Q|),
        otherwise only the requested level.  I-frames perform no real
        motion search: ME runs at its minimum-level cost whatever the
        controller asks for (the contract ``C <= Cwc_theta`` still holds
        since ``Cwc`` is non-decreasing in q).

        ``bias`` models a systematically mis-calibrated platform (the
        deployed silicon is slower/faster than the profiled one); biased
        times are clipped at the worst-case ceilings so the safety
        contract continues to hold — only the *average* estimates are
        wrong, which is precisely the situation the paper's section-4
        learning extension addresses.
        """
        cfg = self.config
        count = cfg.macroblocks
        mb_motion = macroblock_motion(
            rng, content.motion_activity, count, cfg.motion_spread
        )
        scales = cfg.load_model.scales(mb_motion)
        grab = self._fixed_dists[GRAB_ACTION].sample_many(rng, count)
        post = np.zeros(count)
        compress_scale = 0.8 + cfg.compress_motion_slope * mb_motion
        for action in _POST_ME_ACTIONS:
            action_scales = compress_scale if action == COMPRESS_ACTION else 1.0
            post += self._fixed_dists[action].sample_many(rng, count, action_scales)
        if content.is_iframe:
            intra = self._me_dists[self.quality_set.qmin].sample_many(rng, count)
            if quality is None:
                me_array: np.ndarray = np.tile(intra[:, None], (1, len(self._levels)))
            else:
                me_array = intra
        elif quality is None:
            me_array = np.column_stack([
                self._me_dists[q].sample_many(rng, count, scales)
                for q in self._levels
            ])
        else:
            me_array = self._me_dists[quality].sample_many(rng, count, scales)
        if bias != 1.0:
            grab = np.minimum(grab * bias, self._grab_ceiling)
            post = np.minimum(post * bias, self._post_ceiling)
            if me_array.ndim == 2:
                me_array = np.minimum(me_array * bias, np.asarray(self._me_ceilings))
            else:
                ceiling = self._me_ceilings[
                    self._levels.index(quality if quality is not None else 0)
                ]
                me_array = np.minimum(me_array * bias, ceiling)
        return grab.tolist(), me_array.tolist(), post.tolist()

    # ------------------------------------------------------------------
    # per-frame encoders (timing pass)
    # ------------------------------------------------------------------

    def _encode_controlled_frame(
        self,
        rng: np.random.Generator,
        content: FrameContent,
        budget: float,
        constraint_mode: str,
        granularity: int,
        policy=None,
        bias: float = 1.0,
    ) -> FrameTiming:
        cfg = self.config
        grab, me, post = self._draw_frame_times(rng, content, quality=None, bias=bias)
        rows = self._rows[constraint_mode]
        shift = budget - cfg.nominal_budget
        overhead = cfg.decision_overhead
        positions = self._me_positions
        level_count = len(self._levels)
        qmin_column = 0
        if policy is not None:
            reset = getattr(policy, "reset", None)
            if callable(reset):
                reset()

        elapsed = 0.0
        qualities: list[int] = []
        degraded = 0
        decisions = 0
        current_column = qmin_column
        previous_quality: int | None = None
        for k in range(cfg.macroblocks):
            elapsed += overhead + grab[k]
            elapsed += overhead  # the boundary before Motion_Estimate
            if k % granularity == 0:
                if policy is None:
                    column = -1
                    for candidate in range(level_count - 1, -1, -1):
                        if elapsed <= rows[positions[k]][candidate] + shift:
                            column = candidate
                            break
                    if column < 0:
                        column = qmin_column
                        degraded += 1
                else:
                    row = rows[positions[k]]
                    feasible = tuple(
                        self._levels[c]
                        for c in range(level_count)
                        if elapsed <= row[c] + shift
                    )
                    if not feasible:
                        column = qmin_column
                        degraded += 1
                    else:
                        context = DecisionContext(
                            step=positions[k],
                            previous_quality=previous_quality,
                            quality_set=self.quality_set,
                        )
                        column = self._levels.index(policy.select(feasible, context))
                current_column = column
                decisions += 1
            quality = self._levels[current_column]
            qualities.append(quality)
            previous_quality = quality
            elapsed += me[k][current_column]
            elapsed += 7 * overhead + post[k]
        controller_cycles = 9.0 * overhead * cfg.macroblocks
        return FrameTiming(
            cycles=elapsed,
            qualities=qualities,
            controller_cycles=controller_cycles,
            decisions=decisions,
            degraded=degraded,
        )

    def _encode_constant_frame(
        self, rng: np.random.Generator, content: FrameContent, quality: int
    ) -> FrameTiming:
        grab, me, post = self._draw_frame_times(rng, content, quality=quality)
        cycles = float(sum(grab) + sum(me) + sum(post))
        return FrameTiming(
            cycles=cycles,
            qualities=quality,
            controller_cycles=0.0,
            decisions=0,
            degraded=0,
        )

    # ------------------------------------------------------------------
    # the timeline (timing pass) and signal pass
    # ------------------------------------------------------------------

    def _run_timeline(
        self,
        label: str,
        encode_frame: Callable[[np.random.Generator, FrameContent, float], FrameTiming],
        rng: np.random.Generator,
        feedback: Callable[[FrameRecord], None] | None = None,
    ) -> RunResult:
        cfg = self.config
        camera = PeriodicCamera(cfg.period)
        horizon = cfg.buffer_capacity * cfg.period
        pending: deque[int] = deque()
        free_at = 0.0
        partial: dict[int, FrameRecord] = {}

        def start_pending_through(limit: float) -> None:
            nonlocal free_at
            while pending:
                frame = pending[0]
                start = max(free_at, camera.arrival(frame))
                if start > limit:
                    break
                pending.popleft()
                content = self.contents[frame]
                budget = camera.arrival(frame) + horizon - start
                timing = encode_frame(rng, content, budget)
                free_at = start + timing.cycles
                if timing.deliberate_skip:
                    # skip-over style policies drop the instance themselves
                    record = FrameRecord(
                        index=frame,
                        is_iframe=content.is_iframe,
                        skipped=True,
                        arrival=camera.arrival(frame),
                        motion=content.motion_activity,
                        start=start,
                        end=free_at,
                        budget=budget,
                        encode_cycles=timing.cycles,
                    )
                else:
                    qualities = np.atleast_1d(np.asarray(timing.qualities))
                    churn = (
                        float(np.mean(np.abs(np.diff(qualities))))
                        if qualities.size > 1
                        else 0.0
                    )
                    record = FrameRecord(
                        index=frame,
                        is_iframe=content.is_iframe,
                        skipped=False,
                        arrival=camera.arrival(frame),
                        motion=content.motion_activity,
                        start=start,
                        end=free_at,
                        budget=budget,
                        encode_cycles=timing.cycles,
                        controller_cycles=timing.controller_cycles,
                        decisions=timing.decisions,
                        degraded_steps=timing.degraded,
                        mean_quality=float(np.mean(qualities)),
                        min_quality=int(np.min(qualities)),
                        max_quality=int(np.max(qualities)),
                        quality_churn=churn,
                    )
                partial[frame] = record
                if feedback is not None and not timing.deliberate_skip:
                    feedback(record)

        for frame in range(len(self.contents)):
            arrival = camera.arrival(frame)
            start_pending_through(arrival)
            if len(pending) >= cfg.buffer_capacity:
                content = self.contents[frame]
                partial[frame] = FrameRecord(
                    index=frame,
                    is_iframe=content.is_iframe,
                    skipped=True,
                    arrival=arrival,
                    motion=content.motion_activity,
                )
            else:
                pending.append(frame)
        start_pending_through(math.inf)

        return self._signal_pass(label, partial)

    def _signal_pass(self, label: str, partial: dict[int, FrameRecord]) -> RunResult:
        cfg = self.config
        encoder = AnalyticEncoder(
            rd_model=cfg.rd_model,
            rate_controller=VirtualBufferRateController(cfg.rate_control),
            pixels=cfg.frame_pixels,
            rng=self._rng("signal"),
            bits_noise=cfg.bits_noise,
        )
        result = RunResult(
            label=label, period=cfg.period, buffer_capacity=cfg.buffer_capacity
        )
        quality_by_frame = self._timing_qualities
        for frame in range(len(self.contents)):
            record = partial[frame]
            content = self.contents[frame]
            if record.skipped:
                outcome = encoder.skip_frame(content)
                record = replace(record, psnr=outcome.psnr, bits=outcome.bits)
            else:
                qualities = quality_by_frame.pop(frame)
                outcome = encoder.encode_frame(content, qualities)
                record = replace(record, psnr=outcome.psnr, bits=outcome.bits)
            result.frames.append(record)
        return result

    # ------------------------------------------------------------------
    # public run drivers
    # ------------------------------------------------------------------

    def run_controlled(
        self,
        constraint_mode: str = "both",
        granularity: int = 1,
        label: str | None = None,
        time_bias: float = 1.0,
    ) -> RunResult:
        """The paper's controlled encoder.

        ``granularity`` counts macroblocks between quality re-decisions
        (1 = the paper's fine-grain control; ``macroblocks`` = decide
        once per frame, emulating coarse-grain prior art).
        ``time_bias`` deploys on a mis-calibrated platform (see
        :meth:`_draw_frame_times`) while the controller keeps trusting
        the published averages.
        """
        if constraint_mode not in self._rows:
            raise ConfigurationError(f"unknown constraint mode {constraint_mode!r}")
        if granularity < 1:
            raise ConfigurationError("granularity must be >= 1")
        if label is None:
            label = f"controlled(K={self.config.buffer_capacity})"
            if constraint_mode != "both":
                label += f"[{constraint_mode}]"
            if granularity != 1:
                label += f"[g={granularity}]"
            if time_bias != 1.0:
                label += f"[bias={time_bias}]"
        rng = self._rng(f"controlled-{constraint_mode}-{granularity}")
        self._timing_qualities: dict[int, object] = {}

        def encode(generator, content, budget):
            timing = self._encode_controlled_frame(
                generator, content, budget, constraint_mode, granularity,
                bias=time_bias,
            )
            self._timing_qualities[content.index] = np.asarray(timing.qualities)
            return timing

        return self._run_timeline(label, encode, rng)

    def run_learning_controlled(
        self,
        time_bias: float = 1.0,
        relearn_every: int = 25,
        alpha: float = 0.1,
        label: str | None = None,
        constraint_mode: str = "both",
    ) -> RunResult:
        """Controlled run with online average-time learning (paper §4).

        "Application of learning techniques for better estimation of
        the average execution times": an EWMA estimator observes actual
        durations and the controller tables are regenerated from the
        learned averages every ``relearn_every`` frames.  The
        *worst-case* tables stay untouched, so Proposition 2.1's safety
        guarantee is preserved no matter what the estimator does; what
        learning buys is decision accuracy — fewer late in-frame
        corrections when the platform's true means drift from the
        profiled ones (``time_bias``).

        Per-action observations: ME at its decided level; the grab and
        the aggregated post-ME sum split equally across their actions —
        with uniform cycle deadlines only suffix *sums* of averages
        enter the constraints, so any sum-preserving split yields
        identical tables.
        """
        from repro.tool.timing_analysis import EwmaAverageEstimator

        if constraint_mode not in self._rows:
            raise ConfigurationError(f"unknown constraint mode {constraint_mode!r}")
        if relearn_every < 1:
            raise ConfigurationError("relearn_every must be >= 1")
        if label is None:
            label = f"learning(K={self.config.buffer_capacity},bias={time_bias})"
        raw_application = macroblock_application(self.config.macroblocks)
        estimator = EwmaAverageEstimator(raw_application.average_times, alpha=alpha)
        post_actions = _POST_ME_ACTIONS
        state = {"frames_since_relearn": 0, "rows": self._rows[constraint_mode]}
        rng = self._rng(f"learning-{constraint_mode}-{time_bias}")
        self._timing_qualities = {}

        def rebuild_rows():
            learned_raw = estimator.learned_table(self.quality_set)
            # clamp into the model's Cav <= Cwc invariant
            entries: dict[str, dict[int, float]] = {}
            for action in MACROBLOCK_ACTIONS:
                entries[action] = {
                    q: min(
                        learned_raw.time(action, q),
                        raw_application.worst_times.time(action, q),
                    )
                    for q in self.quality_set
                }
            learned = QualityTimeTable(self.quality_set, entries)
            application = self._inflated_application(average_times=learned)
            system = application.system(budget=self.config.nominal_budget)
            tables = ControllerTables.from_system(system)
            mode_matrix = {
                "both": tables.combined_bound,
                "average": tables.average_bound,
                "worst": tables.worst_bound,
            }[constraint_mode]
            state["rows"] = mode_matrix.tolist()

        def encode(generator, content, budget):
            grab, me, post = self._draw_frame_times(
                generator, content, quality=None, bias=time_bias
            )
            timing = self._decide_and_execute(
                content, budget, constraint_mode, state["rows"], grab, me, post
            )
            # feed the estimator (skip the atypical intra frames); one
            # frame-mean observation per action keeps the loop cheap,
            # and quality-independent actions are credited at *every*
            # level so all candidate-q table rows stay calibrated
            if not content.is_iframe:
                share = 1.0 / len(post_actions)
                grab_mean = float(np.mean(grab))
                post_share_mean = float(np.mean(post)) * share
                for q in self._levels:
                    estimator.observe(GRAB_ACTION, q, grab_mean)
                    for action in post_actions:
                        estimator.observe(action, q, post_share_mean)
                q_array = np.asarray(timing.qualities)
                me_matrix = np.asarray(me)
                columns = np.array([self._levels.index(q) for q in timing.qualities])
                chosen_times = me_matrix[np.arange(len(q_array)), columns]
                for q in np.unique(q_array):
                    mask = q_array == q
                    estimator.observe(
                        ME_ACTION, int(q), float(np.mean(chosen_times[mask]))
                    )
            state["frames_since_relearn"] += 1
            if state["frames_since_relearn"] >= relearn_every:
                state["frames_since_relearn"] = 0
                rebuild_rows()
            self._timing_qualities[content.index] = np.asarray(timing.qualities)
            return timing

        return self._run_timeline(label, encode, rng)

    def _decide_and_execute(
        self, content, budget, constraint_mode, rows, grab, me, post
    ) -> FrameTiming:
        """The fine-grain decision loop over pre-drawn times."""
        cfg = self.config
        shift = budget - cfg.nominal_budget
        overhead = cfg.decision_overhead
        positions = self._me_positions
        level_count = len(self._levels)
        elapsed = 0.0
        qualities: list[int] = []
        degraded = 0
        for k in range(cfg.macroblocks):
            elapsed += 2 * overhead + grab[k]
            row = rows[positions[k]]
            column = -1
            for candidate in range(level_count - 1, -1, -1):
                if elapsed <= row[candidate] + shift:
                    column = candidate
                    break
            if column < 0:
                column = 0
                degraded += 1
            qualities.append(self._levels[column])
            elapsed += me[k][column]
            elapsed += 7 * overhead + post[k]
        return FrameTiming(
            cycles=elapsed,
            qualities=qualities,
            controller_cycles=9.0 * overhead * cfg.macroblocks,
            decisions=cfg.macroblocks,
            degraded=degraded,
        )

    def run_controlled_with_policy(
        self,
        policy,
        label: str,
        constraint_mode: str = "both",
        granularity: int = 1,
    ) -> RunResult:
        """Controlled run with a quality-selection policy (smoothness etc.).

        The policy picks from the constraint-satisfying set at each
        decision, so every policy inherits the safety guarantee.
        """
        if constraint_mode not in self._rows:
            raise ConfigurationError(f"unknown constraint mode {constraint_mode!r}")
        rng = self._rng(f"controlled-policy-{label}")
        self._timing_qualities = {}

        def encode(generator, content, budget):
            timing = self._encode_controlled_frame(
                generator, content, budget, constraint_mode, granularity,
                policy=policy,
            )
            self._timing_qualities[content.index] = np.asarray(timing.qualities)
            return timing

        return self._run_timeline(label, encode, rng)

    def run_constant(self, quality: int, label: str | None = None) -> RunResult:
        """The industrial-practice baseline: a fixed quality level."""
        if quality not in self.quality_set:
            raise ConfigurationError(f"quality {quality} not in Q")
        if label is None:
            label = f"constant(q={quality},K={self.config.buffer_capacity})"
        rng = self._rng(f"constant-{quality}")
        self._timing_qualities = {}

        def encode(generator, content, budget):
            timing = self._encode_constant_frame(generator, content, quality)
            self._timing_qualities[content.index] = quality
            return timing

        return self._run_timeline(label, encode, rng)

    def run_frame_adaptive(self, policy, label: str) -> RunResult:
        """Frame-level adaptive baselines (PID, elastic, skip-over...).

        ``policy`` follows :class:`repro.baselines.base.FramePolicy`:
        it proposes one quality level per frame from per-frame feedback —
        the coarse-grain adaptation granularity of the prior art the
        paper contrasts with.
        """
        rng = self._rng(f"adaptive-{label}")
        self._timing_qualities = {}
        from repro.baselines.skip_over import SKIP

        def encode(generator, content, budget):
            quality = int(policy.next_quality())
            if quality == SKIP:
                # the policy drops this instance: only the skip flag is
                # written, costing (almost) nothing
                return FrameTiming(
                    cycles=1_000.0,
                    qualities=self.quality_set.qmin,
                    controller_cycles=0.0,
                    decisions=1,
                    degraded=0,
                    deliberate_skip=True,
                )
            if quality not in self.quality_set:
                quality = min(max(quality, self.quality_set.qmin), self.quality_set.qmax)
            timing = self._encode_constant_frame(generator, content, quality)
            self._timing_qualities[content.index] = quality
            return timing

        def feedback(record: FrameRecord) -> None:
            policy.observe(
                encode_cycles=record.encode_cycles,
                budget=record.budget,
                period=self.config.period,
            )

        return self._run_timeline(label, encode, rng, feedback=feedback)
