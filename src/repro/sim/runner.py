"""High-level experiment drivers.

Thin, memoizing wrappers that build an :class:`EncoderSimulation` and
execute the runs the figures need.  All benches and examples go through
these entry points so results are consistent across the suite.

Caching contract (important for fleet / multi-stream use)
---------------------------------------------------------

The ``lru_cache`` wrappers below return **shared** objects:

* :func:`simulation_for` hands out one :class:`EncoderSimulation` per
  config.  Its ``run_*`` methods mutate per-run instance state
  (``_timing_qualities``), so a shared simulation must not execute two
  ``run_*`` calls concurrently.  The *pure* per-frame primitives
  (``_draw_frame_times``, ``_encode_controlled_frame``) only read the
  pre-built tables and are safe to call from many stream sessions
  interleaved — this is what :mod:`repro.streams.session` relies on to
  amortize table construction across a fleet.
* :func:`run_controlled` / :func:`run_constant` return shared, mutable
  :class:`RunResult` objects.  Treat them as **read-only**; never append
  to ``result.frames`` or ``replace``-in-place.  Code that needs a
  private copy should deep-copy, or call :func:`reset_caches` first.

:func:`reset_caches` drops all three caches — tests and long-lived
fleet processes call it to release memory and to guarantee isolation
between experiments.
"""

from __future__ import annotations

from functools import lru_cache

from repro.sim.encoder_loop import EncoderSimulation, SimulationConfig
from repro.sim.results import RunResult


@lru_cache(maxsize=1024)
def _simulation(config: SimulationConfig) -> EncoderSimulation:
    """Cache simulations per config: table construction is the setup cost.

    Sized for fleet scale: scenario generators salt each stream's seed,
    so a 256-stream fleet holds 256 distinct configs at once — a small
    cache would rebuild tables round-robin.
    """
    return EncoderSimulation(config)


def simulation_for(config: SimulationConfig) -> EncoderSimulation:
    """The shared simulation for ``config`` (see the caching contract above).

    Stream sessions use this to share controller tables between
    same-config streams; only the pure per-frame primitives may be
    called on the returned object when several users hold it at once.
    """
    return _simulation(config)


@lru_cache(maxsize=64)
def _controlled_cached(
    config: SimulationConfig, constraint_mode: str, granularity: int
) -> RunResult:
    return _simulation(config).run_controlled(
        constraint_mode=constraint_mode, granularity=granularity
    )


@lru_cache(maxsize=64)
def _constant_cached(config: SimulationConfig, quality: int) -> RunResult:
    return _simulation(config).run_constant(quality)


def reset_caches() -> None:
    """Drop every memoized simulation, run result and compiled controller.

    After this call previously returned ``RunResult``/``EncoderSimulation``
    objects stay valid but are no longer shared with future calls.
    """
    from repro.engine.bank import bank_for
    from repro.engine.kernel import clear_shifted_cache, decision_kernel
    from repro.sim.encoder_loop import compiled_controller
    from repro.streams.admission import (
        _completion_array,
        qmin_completions,
        qmin_demand,
    )

    _controlled_cached.cache_clear()
    _constant_cached.cache_clear()
    _simulation.cache_clear()
    compiled_controller.cache_clear()
    decision_kernel.cache_clear()
    clear_shifted_cache()
    bank_for.cache_clear()
    qmin_completions.cache_clear()
    _completion_array.cache_clear()
    qmin_demand.cache_clear()


def run_controlled(
    config: SimulationConfig | None = None,
    constraint_mode: str = "both",
    granularity: int = 1,
) -> RunResult:
    """Run the paper's controlled encoder over the benchmark.

    Results are cached per (config, mode, granularity): runs are
    deterministic given the config seed, and several figures share the
    same controlled run.  Treat the returned object as read-only.
    """
    config = config if config is not None else SimulationConfig()
    return _controlled_cached(config, constraint_mode, granularity)


def run_constant(
    quality: int, config: SimulationConfig | None = None
) -> RunResult:
    """Run the constant-quality baseline at one level (cached, read-only)."""
    config = config if config is not None else SimulationConfig()
    return _constant_cached(config, quality)


def run_adaptive(
    policy, label: str, config: SimulationConfig | None = None
) -> RunResult:
    """Run a frame-level adaptive baseline policy."""
    simulation = _simulation(config if config is not None else SimulationConfig())
    return simulation.run_frame_adaptive(policy, label)


def run_paper_comparison(
    config: SimulationConfig | None = None,
) -> dict[str, RunResult]:
    """The four runs behind Figs. 6-9.

    * ``controlled`` — controlled quality, K = config.buffer_capacity (paper: 1)
    * ``constant_q3`` — constant q=3, same K
    * ``constant_q4_k2`` — constant q=4 with K=2 buffers
    """
    from dataclasses import replace

    base = config if config is not None else SimulationConfig()
    k2 = replace(base, buffer_capacity=2)
    return {
        "controlled": run_controlled(base),
        "constant_q3": run_constant(3, base),
        "constant_q4_k2": run_constant(4, k2),
    }
