"""Per-frame records and whole-run results.

One :class:`FrameRecord` per benchmark frame (encoded *or* skipped);
:class:`RunResult` aggregates them into the quantities the paper plots:
per-frame encoding time (Figs. 6/7), per-frame PSNR (Figs. 8/9), skip
and deadline-miss counts, time-budget utilization, and quality
smoothness statistics.
"""

from __future__ import annotations

import csv
import math
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np


@dataclass(frozen=True)
class FrameRecord:
    """Everything measured about one frame of a run."""

    index: int
    is_iframe: bool
    skipped: bool
    arrival: float
    motion: float
    start: float = math.nan
    end: float = math.nan
    budget: float = math.nan
    encode_cycles: float = math.nan
    controller_cycles: float = 0.0
    decisions: int = 0
    degraded_steps: int = 0
    mean_quality: float = math.nan
    min_quality: int | None = None
    max_quality: int | None = None
    quality_churn: float = 0.0
    psnr: float = math.nan
    bits: float = math.nan

    @property
    def latency(self) -> float:
        """Arrival-to-completion latency (nan for skipped frames)."""
        if self.skipped or math.isnan(self.end):
            return math.nan
        return self.end - self.arrival

    @property
    def missed_budget(self) -> bool:
        """Did encoding overrun the budget granted at start time?"""
        if self.skipped or math.isnan(self.budget) or math.isnan(self.encode_cycles):
            return False
        return self.encode_cycles > self.budget


@dataclass
class RunResult:
    """A complete simulated run over the benchmark."""

    label: str
    period: float
    buffer_capacity: int
    frames: list[FrameRecord] = field(default_factory=list)

    # ------------------------------------------------------------------
    # counts
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.frames)

    @property
    def skip_count(self) -> int:
        return sum(1 for f in self.frames if f.skipped)

    @property
    def encoded_count(self) -> int:
        return sum(1 for f in self.frames if not f.skipped)

    @property
    def deadline_miss_count(self) -> int:
        return sum(1 for f in self.frames if f.missed_budget)

    @property
    def degraded_step_count(self) -> int:
        return sum(f.degraded_steps for f in self.frames)

    def skipped_indices(self) -> list[int]:
        return [f.index for f in self.frames if f.skipped]

    # ------------------------------------------------------------------
    # the paper's series
    # ------------------------------------------------------------------

    def encoding_times(self) -> np.ndarray:
        """Per-frame encoding time in cycles (nan where skipped) — Figs. 6/7."""
        return np.array(
            [math.nan if f.skipped else f.encode_cycles for f in self.frames]
        )

    def psnr_series(self) -> np.ndarray:
        """Per-frame PSNR including skip penalties — Figs. 8/9."""
        return np.array([f.psnr for f in self.frames])

    def utilization_series(self) -> np.ndarray:
        """Encoding time over the period P (the paper's 'time budget
        utilization' with the average budget P)."""
        return self.encoding_times() / self.period

    def quality_series(self) -> np.ndarray:
        """Per-frame mean ME quality (nan where skipped)."""
        return np.array([f.mean_quality for f in self.frames])

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------

    def mean_psnr(self, include_skips: bool = True) -> float:
        values = [
            f.psnr for f in self.frames if include_skips or not f.skipped
        ]
        return float(np.mean(values)) if values else math.nan

    def mean_utilization(self) -> float:
        values = self.utilization_series()
        return float(np.nanmean(values)) if len(values) else math.nan

    def mean_quality(self) -> float:
        # memoized per frame count: every attached observer reads this
        # at departure, and the frames list only ever grows (appends
        # invalidate the key), so repeat calls on a finished session
        # skip the whole-run pass
        cached = getattr(self, "_mean_quality_memo", None)
        if cached is not None and cached[0] == len(self.frames):
            return cached[1]
        values = [f.mean_quality for f in self.frames if not f.skipped]
        result = float(np.mean(values)) if values else math.nan
        self._mean_quality_memo = (len(self.frames), result)
        return result

    def max_latency(self) -> float:
        values = [f.latency for f in self.frames if not math.isnan(f.latency)]
        return float(max(values)) if values else math.nan

    def quality_smoothness(self) -> float:
        """Mean absolute quality change between consecutive encoded frames.

        The paper's section 4 mentions conditions guaranteeing
        smoothness of quality variations; this is the metric the
        smoothness bench sweeps.
        """
        qualities = [f.mean_quality for f in self.frames if not f.skipped]
        if len(qualities) < 2:
            return 0.0
        return float(np.mean(np.abs(np.diff(qualities))))

    def mean_quality_churn(self) -> float:
        """Mean within-frame quality churn (|delta q| between consecutive
        macroblock decisions), averaged over encoded frames."""
        values = [f.quality_churn for f in self.frames if not f.skipped]
        return float(np.mean(values)) if values else 0.0

    def total_controller_cycles(self) -> float:
        return sum(f.controller_cycles for f in self.frames)

    def controller_overhead_ratio(self) -> float:
        """Controller cycles over total encoding cycles (<1.5 % claim)."""
        total = sum(
            f.encode_cycles for f in self.frames if not math.isnan(f.encode_cycles)
        )
        if total == 0:
            return 0.0
        return self.total_controller_cycles() / total

    def frames_in(self, start: int, stop: int) -> list[FrameRecord]:
        """Records with ``start <= index < stop`` (region analysis)."""
        return [f for f in self.frames if start <= f.index < stop]

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    CSV_FIELDS = (
        "index", "is_iframe", "skipped", "arrival", "motion", "start", "end",
        "budget", "encode_cycles", "controller_cycles", "decisions",
        "degraded_steps", "mean_quality", "min_quality", "max_quality",
        "quality_churn", "psnr", "bits",
    )

    def to_csv(self, path) -> None:
        """Dump per-frame records for external plotting."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.CSV_FIELDS)
            for f in self.frames:
                writer.writerow([getattr(f, name) for name in self.CSV_FIELDS])

    def summary(self) -> dict:
        """Headline numbers for reports and assertions."""
        return {
            "label": self.label,
            "frames": len(self.frames),
            "encoded": self.encoded_count,
            "skipped": self.skip_count,
            "deadline_misses": self.deadline_miss_count,
            "mean_psnr": round(self.mean_psnr(), 3),
            "mean_psnr_encoded_only": round(self.mean_psnr(include_skips=False), 3),
            "mean_utilization": round(self.mean_utilization(), 4),
            "mean_quality": round(self.mean_quality(), 3),
            "max_latency_cycles": self.max_latency(),
            "quality_smoothness": round(self.quality_smoothness(), 4),
            "controller_overhead": round(self.controller_overhead_ratio(), 5),
        }


def skip_regions(results: Iterable[RunResult], margin: int = 2) -> set[int]:
    """Frame indices within ``margin`` of any skip in any of the runs.

    Used to compare PSNR *outside* skip regions as the paper does
    ("PSNR is higher for controlled quality ... except for regions where
    frames are skipped").
    """
    region: set[int] = set()
    for result in results:
        for index in result.skipped_indices():
            region.update(range(index - margin, index + margin + 1))
    return region
