"""Run-level metrics used by the figure assertions.

These encode the paper's qualitative claims as numbers:
skip bursts ("two bursts of jumps"), PSNR advantage outside skip
regions ("PSNR is higher for controlled quality ... except for regions
where frames are skipped"), and utilization statistics ("optimal time
budget utilization").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.sim.results import RunResult, skip_regions


def burst_count(indices: Sequence[int], max_gap: int = 30) -> int:
    """Group skip indices into bursts separated by more than ``max_gap``.

    The paper's constant-quality runs show two such bursts (the two
    high-motion sequences).
    """
    ordered = sorted(indices)
    if not ordered:
        return 0
    bursts = 1
    for previous, current in zip(ordered, ordered[1:]):
        if current - previous > max_gap:
            bursts += 1
    return bursts


def mean_outside_regions(
    values: Sequence[float], excluded: Iterable[int]
) -> float:
    """Mean of ``values`` at indices not in ``excluded`` (NaNs dropped)."""
    excluded_set = set(excluded)
    kept = [
        v
        for i, v in enumerate(values)
        if i not in excluded_set and np.isfinite(v)
    ]
    return float(np.mean(kept)) if kept else float("nan")


@dataclass(frozen=True)
class PsnrComparison:
    """Controlled-vs-baseline PSNR, split by skip regions.

    ``advantage_inside_encoded`` compares only frames the baseline
    actually *encoded* inside its skip regions — the paper's wording
    ("the PSNR is higher in these regions for constant quality" because
    "the bits corresponding to skipped frames are used") is about those
    frames; the skipped frames themselves score collapsed PSNR.
    """

    advantage_outside: float
    advantage_inside: float
    advantage_inside_encoded: float
    baseline_skip_count: int
    region_size: int


def psnr_advantage(
    controlled: RunResult, baseline: RunResult, margin: int = 2
) -> PsnrComparison:
    """The paper's Figs. 8/9 comparison.

    Outside the baseline's skip regions the controlled encoder should
    win; inside them the baseline's *encoded* frames typically win on
    PSNR because they spend the skipped frames' bits (while the
    displayed frame rate halves).
    """
    region = skip_regions([baseline], margin=margin)
    p_controlled = controlled.psnr_series()
    p_baseline = baseline.psnr_series()
    outside_c = mean_outside_regions(p_controlled, region)
    outside_b = mean_outside_regions(p_baseline, region)
    all_indices = set(range(len(p_controlled)))
    inside = all_indices & region
    inside_c = mean_outside_regions(p_controlled, all_indices - inside)
    inside_b = mean_outside_regions(p_baseline, all_indices - inside)
    skipped = set(baseline.skipped_indices())
    inside_encoded = inside - skipped
    inside_enc_c = mean_outside_regions(p_controlled, all_indices - inside_encoded)
    inside_enc_b = mean_outside_regions(p_baseline, all_indices - inside_encoded)
    return PsnrComparison(
        advantage_outside=outside_c - outside_b,
        advantage_inside=(inside_c - inside_b) if inside else float("nan"),
        advantage_inside_encoded=(
            (inside_enc_c - inside_enc_b) if inside_encoded else float("nan")
        ),
        baseline_skip_count=baseline.skip_count,
        region_size=len(inside),
    )


@dataclass(frozen=True)
class UtilizationStatistics:
    """Summary of a run's per-frame budget utilization."""

    mean: float
    p5: float
    median: float
    p95: float
    above_budget_frames: int


def utilization_statistics(result: RunResult) -> UtilizationStatistics:
    values = result.utilization_series()
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        nan = float("nan")
        return UtilizationStatistics(nan, nan, nan, nan, 0)
    above = sum(1 for f in result.frames if f.missed_budget)
    return UtilizationStatistics(
        mean=float(np.mean(finite)),
        p5=float(np.percentile(finite, 5)),
        median=float(np.percentile(finite, 50)),
        p95=float(np.percentile(finite, 95)),
        above_budget_frames=above,
    )


def jain_fairness_index(values: Sequence[float]) -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)`` over ``values``.

    1.0 when every stream gets the same share; 1/n when one stream gets
    everything.  NaNs (streams that never delivered a frame) count as
    zero allocation — maximal unfairness, not missing data.  Used by the
    fleet layer to compare capacity arbiters (quality-fair arbitration
    should push this toward 1 on heterogeneous mixes).
    """
    cleaned = [0.0 if not np.isfinite(v) else float(v) for v in values]
    if not cleaned:
        return float("nan")
    total = sum(cleaned)
    squares = sum(v * v for v in cleaned)
    if squares == 0.0:
        return 1.0 if total == 0.0 else 0.0
    return total * total / (len(cleaned) * squares)


def load_imbalance(loads: Sequence[float]) -> float:
    """Peak-to-mean ratio over per-shard realized loads.

    1.0 is a perfectly balanced cluster; ``n`` means one shard carried
    everything.  Loads are whatever cumulative per-shard measure the
    caller tracked (the cluster runner uses demand-cycles summed over
    rounds); an all-idle cluster reports 1.0.
    """
    cleaned = [float(v) for v in loads if np.isfinite(v)]
    if not cleaned:
        return float("nan")
    mean = sum(cleaned) / len(cleaned)
    if mean == 0.0:
        return 1.0
    return max(cleaned) / mean


def iframe_indices(result: RunResult) -> list[int]:
    """Frames encoded as I-frames (sequence changes)."""
    return [f.index for f in result.frames if f.is_iframe]


def encoding_time_drops_at_iframes(result: RunResult) -> int:
    """Count I-frames whose encoding time dips below their neighbours.

    I-frames skip motion estimation, so Figs. 6/7 show a downward jump
    at every sequence change; this metric verifies the reproduction
    shows them too.
    """
    times = result.encoding_times()
    drops = 0
    for index in iframe_indices(result):
        if index == 0 or index + 1 >= len(times):
            continue
        before = times[index - 1]
        at = times[index]
        if np.isfinite(before) and np.isfinite(at) and at < 0.75 * before:
            drops += 1
    return drops
