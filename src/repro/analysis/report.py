"""Plain-text reporting helpers for benches and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.sim.results import RunResult


def format_summary(result: RunResult) -> str:
    """One run's headline numbers as aligned text."""
    summary = result.summary()
    lines = [f"run: {summary['label']}"]
    for key in (
        "frames", "encoded", "skipped", "deadline_misses", "mean_psnr",
        "mean_psnr_encoded_only", "mean_utilization", "mean_quality",
        "quality_smoothness", "controller_overhead",
    ):
        lines.append(f"  {key:>24}: {summary[key]}")
    return "\n".join(lines)


def comparison_table(results: Sequence[RunResult]) -> str:
    """Side-by-side table of several runs (the per-figure bench output)."""
    columns = (
        ("label", "label", "s"),
        ("skips", "skipped", "d"),
        ("misses", "deadline_misses", "d"),
        ("PSNR", "mean_psnr", ".2f"),
        ("PSNR(enc)", "mean_psnr_encoded_only", ".2f"),
        ("util", "mean_utilization", ".3f"),
        ("q", "mean_quality", ".2f"),
        ("smooth", "quality_smoothness", ".3f"),
        ("ovh", "controller_overhead", ".4f"),
    )
    rows = [[_format(result.summary()[key], spec) for _, key, spec in columns]
            for result in results]
    headers = [name for name, _, _ in columns]
    return _aligned_table(headers, rows)


def _aligned_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Column-aligned plain-text table (shared renderer)."""
    widths = [
        max([len(h)] + [len(row[i]) for row in rows])
        for i, h in enumerate(headers)
    ]
    out = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    out.append("  ".join("-" * w for w in widths))
    for row in rows:
        out.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(out)


def _format(value, spec: str) -> str:
    if spec == "s":
        return str(value)
    if spec == "d":
        return str(int(value))
    return format(float(value), spec)


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """A GitHub-markdown table (EXPERIMENTS.md fragments)."""
    out = ["| " + " | ".join(str(h) for h in headers) + " |"]
    out.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        out.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(out)


def describe_runs(runs: Mapping[str, RunResult]) -> str:
    """Comparison table over a named run dictionary."""
    return comparison_table(list(runs.values()))


def fleet_table(results: Sequence) -> str:
    """Side-by-side serving metrics for several fleet runs.

    ``results`` are :class:`repro.streams.fleet.FleetResult` objects
    (typically one per arbiter over the same scenario).
    """
    columns = (
        ("arbiter", "arbiter", "s"),
        ("served", "served", "d"),
        ("rej", "rejected", "d"),
        ("accept", "acceptance_ratio", ".3f"),
        ("peak", "peak_concurrency", "d"),
        ("frames", "frames", "d"),
        ("skips", "skips", "d"),
        ("misses", "deadline_misses", "d"),
        ("q", "mean_quality", ".2f"),
        ("PSNR", "mean_psnr", ".2f"),
        ("fair(q)", "fairness_quality", ".3f"),
        ("fair(PSNR)", "fairness_psnr", ".3f"),
    )
    summaries = [result.summary() for result in results]
    rows = [[_format(summary[key], spec) for _, key, spec in columns]
            for summary in summaries]
    headers = [name for name, _, _ in columns]
    return _aligned_table(headers, rows)


def cluster_table(result) -> str:
    """Per-shard breakdown of one cluster run plus an aggregate row.

    ``result`` is a :class:`repro.cluster.runner.ClusterResult`.
    """
    headers = [
        "shard", "cap(M)", "served", "rej", "peak", "frames", "skips",
        "q", "fair(q)",
    ]
    rows = []
    for i, shard in enumerate(result.shard_results):
        rows.append([
            f"shard-{i}",
            f"{shard.capacity / 1e6:.1f}",
            str(shard.served_count),
            str(shard.rejected_count),
            str(shard.peak_concurrency),
            str(shard.total_frames()),
            str(shard.total_skips()),
            _format(shard.mean_quality(), ".2f"),
            _format(shard.fairness_quality(), ".3f"),
        ])
    rows.append([
        "cluster",
        f"{result.total_capacity / 1e6:.1f}",
        str(result.served_count),
        str(result.rejected_count),
        "-",
        str(result.total_frames()),
        str(result.total_skips()),
        _format(result.mean_quality(), ".2f"),
        _format(result.fairness_streams(), ".3f"),
    ])
    return _aligned_table(headers, rows)


def cluster_compare_table(results: Sequence) -> str:
    """Side-by-side cluster metrics for several runs (one per policy).

    ``results`` are :class:`repro.cluster.runner.ClusterResult` objects
    (typically one per placement/migration combination over the same
    scenario).
    """
    columns = (
        ("placement", "placement", "s"),
        ("migration", "migration", "s"),
        ("balancer", "balancer", "s"),
        ("served", "served", "d"),
        ("rej", "rejected", "d"),
        ("accept", "acceptance_ratio", ".3f"),
        ("moves", "migrations", "d"),
        ("skips", "skips", "d"),
        ("q", "mean_quality", ".2f"),
        ("fair(strm)", "fairness_streams", ".3f"),
        ("fair(shard)", "fairness_cross_shard", ".3f"),
        ("imbalance", "load_imbalance", ".2f"),
    )
    summaries = [result.summary() for result in results]
    rows = [[_format(summary[key], spec) for _, key, spec in columns]
            for summary in summaries]
    headers = [name for name, _, _ in columns]
    return _aligned_table(headers, rows)


def serving_table(results: Sequence) -> str:
    """Side-by-side topology-independent metrics for serving runs.

    ``results`` are :class:`repro.serving.result.ServingResult` objects
    (fleet and cluster runs mix freely — the unified summary keys are
    what make one table possible).  The optional ``label`` column uses
    each result's spec (arbiter or placement name) when available.
    """
    columns = (
        ("scenario", "scenario", "s"),
        ("topology", "topology", "s"),
        ("policy", "policy", "s"),
        ("served", "served", "d"),
        ("rej", "rejected", "d"),
        ("accept", "acceptance_ratio", ".3f"),
        ("frames", "frames", "d"),
        ("skips", "skips", "d"),
        ("misses", "deadline_misses", "d"),
        ("q", "mean_quality", ".2f"),
        ("PSNR", "mean_psnr", ".2f"),
        ("fair(q)", "fairness_quality", ".3f"),
    )
    summaries = []
    for result in results:
        summary = result.summary()
        spec = result.spec
        if spec is None:
            summary["policy"] = "-"
        elif spec.topology == "fleet":
            summary["policy"] = spec.arbiter.name
        else:
            summary["policy"] = spec.placement.name
        summaries.append(summary)
    rows = [[_format(summary[key], spec) for _, key, spec in columns]
            for summary in summaries]
    headers = [name for name, _, _ in columns]
    return _aligned_table(headers, rows)


def sla_table(result, classes=None) -> str:
    """Per-service-class breakdown of one serving run.

    ``result`` is anything with a ``per_class()`` breakdown — a
    :class:`~repro.serving.result.ServingResult`,
    :class:`~repro.streams.fleet.FleetResult`, or
    :class:`~repro.cluster.runner.ClusterResult`.  ``classes`` (a
    mapping of name to :class:`~repro.sla.classes.ServiceClass`, e.g.
    from :func:`repro.sla.resolve_classes`) adds each class's weight
    and normalized target columns; a final row aggregates the run and
    reports the cross-class Jain fairness.
    """
    from repro.streams.fleet import cross_class_fairness

    headers = [
        "class", "weight", "target", "served", "rej", "preempt",
        "accept", "q", "fair(q)", "reneg",
    ]
    breakdown = result.per_class()
    rows = []
    for name, entry in breakdown.items():
        cls = classes.get(name) if classes else None
        rows.append([
            name,
            f"{cls.weight:.1f}" if cls else "-",
            f"{cls.target_quality:.2f}" if cls else "-",
            str(entry["served"]),
            str(entry["rejected"]),
            str(entry["preempted"]),
            f"{entry['acceptance_ratio']:.3f}",
            _format(entry["mean_quality"], ".2f"),
            _format(entry["fairness_quality"], ".3f"),
            str(entry["renegotiations"]),
        ])
    summary = result.summary()
    rows.append([
        "all", "-", "-",
        str(summary["served"]),
        str(summary["rejected"]),
        str(summary["preempted"]),
        f"{summary['acceptance_ratio']:.3f}",
        _format(summary["mean_quality"], ".2f"),
        _format(cross_class_fairness(breakdown), ".3f"),
        str(summary["renegotiations"]),
    ])
    return _aligned_table(headers, rows)


def timeline_table(events, limit: int | None = None) -> str:
    """A structured event log rendered as a per-event timeline.

    ``events`` is a sequence of :class:`repro.obs.events.Event` records
    (``StructuredEventLog.events`` or :func:`repro.obs.load_events` on
    a JSONL file); ``limit`` keeps only the last N events.  Each row
    shows the round, pool, event kind, subject stream, and a
    kind-specific detail column.
    """
    events = list(events)
    if limit is not None:
        events = events[-limit:]
    rows = []
    for event in events:
        detail = "-"
        kind = event.kind
        if kind == "capacity":
            detail = f"capacity={event.capacity / 1e6:.1f}M"
        elif kind == "round":
            granted = sum(event.allocations.values())
            detail = (
                f"streams={len(event.allocations)} "
                f"granted={granted / 1e6:.1f}M/"
                f"{event.capacity / 1e6:.1f}M"
            )
        elif kind == "admit":
            detail = f"class={event.service_class or '-'} w={event.weight:.1f}"
        elif kind == "reject":
            detail = (
                f"class={event.service_class or '-'} "
                f"arrived={event.arrival_round}"
            )
        elif kind == "preempt":
            detail = f"class={event.service_class or '-'}"
        elif kind == "migrate":
            detail = f"-> {event.dest} ({event.move_kind})"
        elif kind == "renegotiate":
            detail = f"{event.old_target:.2f} -> {event.new_target:.2f}"
        elif kind == "depart":
            q = event.mean_quality
            detail = (
                f"frames={event.frames} skips={event.skips} "
                f"q={'-' if q is None else format(q, '.2f')}"
            )
        rows.append([
            str(event.round),
            event.shard or "-",
            kind,
            getattr(event, "stream", "-") or "-",
            detail,
        ])
    return _aligned_table(["round", "pool", "event", "stream", "detail"], rows)


def telemetry_table(windows: Sequence[Mapping]) -> str:
    """Closed telemetry windows as one row each.

    ``windows`` is ``TelemetryObserver.windows`` (each a plain summary
    dict); pass ``observer.windows + [observer.current()]`` to include
    the live window.
    """
    def opt(value, spec):
        return "-" if value is None else format(value, spec)

    rows = [
        [
            f"{w['start_round']}..{w['end_round']}",
            str(w["admitted"]),
            str(w["rejected"]),
            str(w["preempted"]),
            str(w["departed"]),
            f"{w['acceptance']:.3f}",
            f"{w['renegotiation_density']:.2f}",
            opt(w["mean_quality"], ".2f"),
            opt(w["min_quality"], ".2f"),
            opt(w["fairness_per_class"], ".3f"),
            opt(w["utilization"], ".3f"),
        ]
        for w in windows
    ]
    headers = [
        "rounds", "adm", "rej", "pre", "dep", "accept", "reneg/r",
        "q", "q_min", "fair", "util",
    ]
    return _aligned_table(headers, rows)


def invariant_table(observer) -> str:
    """An invariant ledger (``InvariantObserver``) as a pass/fail table."""
    rows = [
        [
            name,
            "ok" if entry["holds"] else "VIOLATED",
            str(entry["violations"]),
            entry["description"],
        ]
        for name, entry in observer.ledger().items()
    ]
    return _aligned_table(["invariant", "status", "count", "description"], rows)


def slo_table(reports) -> str:
    """End-of-run SLO error budgets as one row per objective.

    ``reports`` is a sequence of :class:`repro.obs.slo.SloReport`
    (``SloObserver.reports()`` or
    ``ServingResult.slo_reports()``).  ``budget`` is the fraction of
    the run's error budget still unspent (negative = overspent);
    ``ttfb`` is the round the first burn-rate alert fired.
    """
    def opt(value, spec):
        return "-" if value is None else format(value, spec)

    rows = [
        [
            report.name,
            report.objective,
            report.service_class or "-",
            opt(report.threshold, ".2f"),
            f"{report.target:.3f}",
            str(report.units),
            str(report.bad_units),
            f"{report.budget_remaining:.3f}",
            str(report.alerts),
            opt(report.time_to_first_burn, "d"),
            f"{report.worst_fast_burn:.1f}/{report.worst_slow_burn:.1f}",
            "ok" if report.met else "MISSED",
        ]
        for report in reports
    ]
    headers = [
        "slo", "objective", "class", "thresh", "target", "units", "bad",
        "budget", "alerts", "ttfb", "burn(f/s)", "status",
    ]
    return _aligned_table(headers, rows)


def trace_table(traces, limit: int | None = None) -> str:
    """Per-session causal traces as one row per session.

    ``traces`` is a sequence of :class:`repro.obs.tracing.TraceRecord`
    (``TraceObserver.records()``, ``ServingResult.traces()``, or
    :func:`repro.obs.load_traces` on a JSONL file); ``limit`` keeps
    only the first N sessions.  ``causes`` counts spans carrying a
    causal link to a capacity or scale event.
    """
    traces = list(traces)
    if limit is not None:
        traces = traces[:limit]
    rows = []
    for trace in traces:
        kinds: dict[str, int] = {}
        caused = 0
        for span in trace.spans:
            kinds[span.kind] = kinds.get(span.kind, 0) + 1
            if span.attrs.get("cause"):
                caused += 1
        depart = next(
            (s for s in trace.spans if s.kind == "depart"), None
        )
        quality = depart.attrs.get("mean_quality") if depart else None
        rows.append([
            trace.stream,
            trace.service_class or "-",
            str(trace.arrival_round),
            trace.outcome,
            str(len(trace.spans)),
            " ".join(
                f"{kind}:{kinds[kind]}" for kind in sorted(kinds)
            ),
            str(caused),
            "-" if quality is None else format(quality, ".2f"),
        ])
    headers = [
        "stream", "class", "arrived", "outcome", "spans", "kinds",
        "causes", "q",
    ]
    return _aligned_table(headers, rows)


def incident_table(incidents) -> str:
    """Attributed incidents: one row per fired alert per ranked cause.

    ``incidents`` is a sequence of
    :class:`repro.obs.attribution.Incident`
    (:func:`repro.obs.attribute_incidents` or
    ``ServingResult.incidents()``).
    """
    rows = []
    for incident in incidents:
        for i, cause in enumerate(incident.causes):
            rows.append([
                incident.slo if i == 0 else "",
                str(incident.alert_round) if i == 0 else "",
                (f"[{incident.window_start}, {incident.window_end}]"
                 if i == 0 else ""),
                f"{incident.burn_multiple:.1f}x" if i == 0 else "",
                cause.kind,
                f"{cause.share:.2f}",
                str(cause.units),
                cause.evidence,
            ])
    headers = [
        "slo", "alert", "window", "burn", "cause", "share", "units",
        "evidence",
    ]
    return _aligned_table(headers, rows)


def fleet_stream_table(result) -> str:
    """Per-stream breakdown of one fleet run (label, rounds, quality)."""
    rows = []
    for outcome in result.streams:
        run = outcome.result
        rows.append([
            outcome.spec.name,
            outcome.admitted_round,
            outcome.finished_round,
            len(run),
            run.skip_count,
            f"{run.mean_quality():.2f}",
            f"{run.mean_psnr():.2f}",
        ])
    return markdown_table(
        ["stream", "admitted", "finished", "frames", "skips", "q", "PSNR"], rows
    )
