"""Analysis utilities: metrics, ASCII figure rendering, report generation."""

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.metrics import (
    burst_count,
    mean_outside_regions,
    psnr_advantage,
    utilization_statistics,
)
from repro.analysis.report import comparison_table, format_summary

__all__ = [
    "ascii_plot",
    "burst_count",
    "comparison_table",
    "format_summary",
    "mean_outside_regions",
    "psnr_advantage",
    "utilization_statistics",
]
