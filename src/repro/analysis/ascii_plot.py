"""Terminal line plots.

matplotlib is not available offline, and the benches must still *show*
the figures they reproduce; this renders one or more per-frame series
as an ASCII chart close enough to eyeball against the paper's plots.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

#: Characters used for successive series.
SERIES_MARKS = "*o+x#@"


def ascii_plot(
    series: Mapping[str, Sequence[float]],
    height: int = 16,
    width: int = 90,
    title: str = "",
    y_label: str = "",
    y_min: float | None = None,
    y_max: float | None = None,
) -> str:
    """Render named series into a text chart.

    NaN points (skipped frames) are left blank, which makes skip bursts
    visible as gaps — just like the discontinuities in the paper's plots.
    """
    names = list(series)
    if not names:
        return "(no data)"
    arrays = [np.asarray(series[name], dtype=np.float64) for name in names]
    length = max(len(a) for a in arrays)
    if length == 0:
        return "(no data)"

    # resample every series to the plot width by bucket-averaging
    def resample(values: np.ndarray) -> np.ndarray:
        out = np.full(width, np.nan)
        edges = np.linspace(0, len(values), width + 1).astype(int)
        for i in range(width):
            bucket = values[edges[i] : max(edges[i + 1], edges[i] + 1)]
            finite = bucket[np.isfinite(bucket)]
            if finite.size:
                out[i] = float(np.mean(finite))
        return out

    sampled = [resample(a) for a in arrays]
    finite_all = np.concatenate([s[np.isfinite(s)] for s in sampled if np.isfinite(s).any()] or [np.array([0.0])])
    low = y_min if y_min is not None else float(finite_all.min())
    high = y_max if y_max is not None else float(finite_all.max())
    if high <= low:
        high = low + 1.0
    span = high - low

    grid = [[" "] * width for _ in range(height)]
    for mark, points in zip(SERIES_MARKS, sampled):
        for x, value in enumerate(points):
            if not math.isfinite(value):
                continue
            level = (value - low) / span
            row = height - 1 - int(round(level * (height - 1)))
            row = min(max(row, 0), height - 1)
            if grid[row][x] == " ":
                grid[row][x] = mark
            else:
                grid[row][x] = "#"  # overlap

    lines = []
    if title:
        lines.append(title)
    legend = "   ".join(
        f"{mark} {name}" for mark, name in zip(SERIES_MARKS, names)
    )
    lines.append(legend)
    top_label = f"{high:.6g}"
    bottom_label = f"{low:.6g}"
    label_width = max(len(top_label), len(bottom_label), len(y_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top_label
        elif row_index == height - 1:
            label = bottom_label
        elif row_index == height // 2 and y_label:
            label = y_label
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |{''.join(row)}")
    lines.append(f"{'':>{label_width}} +{'-' * width}")
    lines.append(f"{'':>{label_width}}  frame 0 .. {length - 1}")
    return "\n".join(lines)
