"""The unified serving result: one accessor surface over both topologies.

:func:`repro.serving.serve` returns a :class:`ServingResult` whatever
the spec's topology, so callers (report tables, benches, assertions)
read acceptance, fairness, quality, skips/misses, and per-stream
outcomes without caring whether a
:class:`~repro.streams.fleet.FleetResult` or a
:class:`~repro.cluster.runner.ClusterResult` sits underneath.  The raw
topology-specific result stays reachable as ``result.raw`` for
cluster-only detail (migrations, lent cycles, per-shard breakdowns).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.metrics import jain_fairness_index
from repro.cluster.runner import ClusterResult
from repro.streams.fleet import FleetResult, StreamOutcome
from repro.streams.scenarios import StreamSpec


@dataclass
class ServingResult:
    """One serving run, fleet or cluster, behind shared accessors.

    ``spec`` is the :class:`~repro.serving.spec.ServingSpec` that
    produced the run (``None`` when wrapping a hand-constructed
    result); ``runner`` is the runner instance that executed it, kept
    for post-run observability (e.g. ``runner.admission.queued_count``);
    ``observers`` is every observer attached to the run — caller-passed
    first, then the spec-declared ones — already ``close()``-d, so
    telemetry windows, event logs, and invariant ledgers are readable.
    """

    raw: FleetResult | ClusterResult
    spec: object | None = None
    runner: object | None = None
    observers: tuple = ()

    @property
    def topology(self) -> str:
        return "fleet" if isinstance(self.raw, FleetResult) else "cluster"

    @property
    def scenario_name(self) -> str:
        return self.raw.scenario_name

    @property
    def rounds(self) -> int:
        return self.raw.rounds

    # ------------------------------------------------------------------
    # per-stream views
    # ------------------------------------------------------------------

    @property
    def outcomes(self) -> list[StreamOutcome]:
        """Every served stream's outcome, across all pools."""
        if isinstance(self.raw, FleetResult):
            return list(self.raw.streams)
        return [o for shard in self.raw.shard_results for o in shard.streams]

    @property
    def rejected(self) -> list[StreamSpec]:
        if isinstance(self.raw, FleetResult):
            return list(self.raw.rejected)
        return [s for shard in self.raw.shard_results for s in shard.rejected]

    @property
    def preempted(self) -> list[StreamSpec]:
        """Queued specs evicted by priority admission (subset of
        ``rejected``)."""
        if isinstance(self.raw, FleetResult):
            return list(self.raw.preempted)
        return [s for shard in self.raw.shard_results for s in shard.preempted]

    def per_stream_quality(self) -> list[float]:
        return [o.result.mean_quality() for o in self.outcomes]

    def per_stream_psnr(self) -> list[float]:
        return [o.result.mean_psnr() for o in self.outcomes]

    # ------------------------------------------------------------------
    # shared aggregates
    # ------------------------------------------------------------------

    @property
    def served_count(self) -> int:
        return self.raw.served_count

    @property
    def rejected_count(self) -> int:
        return self.raw.rejected_count

    @property
    def acceptance_ratio(self) -> float:
        return self.raw.acceptance_ratio

    @property
    def preempted_count(self) -> int:
        return self.raw.preempted_count

    def total_renegotiations(self) -> int:
        return self.raw.total_renegotiations()

    def per_class(self) -> dict[str, dict]:
        """Per-service-class metrics (see
        :func:`repro.streams.fleet.class_breakdown`), either topology."""
        return self.raw.per_class()

    def fairness_cross_class(self) -> float:
        """Jain index over per-class mean quality."""
        return self.raw.fairness_cross_class()

    def fairness_quality(self) -> float:
        """Jain index over every served stream's mean quality."""
        return jain_fairness_index(self.per_stream_quality())

    def mean_quality(self) -> float:
        values = [v for v in self.per_stream_quality() if np.isfinite(v)]
        return float(np.mean(values)) if values else math.nan

    def mean_psnr(self) -> float:
        values = [v for v in self.per_stream_psnr() if np.isfinite(v)]
        return float(np.mean(values)) if values else math.nan

    def total_skips(self) -> int:
        return sum(o.result.skip_count for o in self.outcomes)

    def total_frames(self) -> int:
        return sum(len(o.result) for o in self.outcomes)

    def total_deadline_misses(self) -> int:
        return sum(o.result.deadline_miss_count for o in self.outcomes)

    # ------------------------------------------------------------------
    # observability views (SLOs, traces, incidents)
    # ------------------------------------------------------------------

    def _first_observer(self, cls):
        return next(
            (o for o in self.observers if isinstance(o, cls)), None
        )

    def slo_reports(self) -> tuple:
        """Every declared SLO's end-of-run
        :class:`~repro.obs.slo.SloReport` (empty without an attached
        SLO observer — declare ``spec.slos`` to get one)."""
        from repro.obs.slo import SloObserver

        observer = self._first_observer(SloObserver)
        return () if observer is None else observer.reports()

    def alerts(self) -> tuple:
        """Every burn-rate :class:`~repro.obs.events.AlertEvent` the
        run's SLO observer fired or resolved, in order."""
        from repro.obs.slo import SloObserver

        observer = self._first_observer(SloObserver)
        return () if observer is None else tuple(observer.alerts)

    def traces(self) -> tuple:
        """Every session's :class:`~repro.obs.tracing.TraceRecord`
        (empty without an attached trace observer)."""
        from repro.obs.tracing import TraceObserver

        observer = self._first_observer(TraceObserver)
        return () if observer is None else observer.records()

    def incidents(self, **kwargs) -> tuple:
        """Attributed :class:`~repro.obs.attribution.Incident` per
        fired alert; needs both an SLO and a trace observer attached
        (post-hoc and pure — calling this cannot change the run)."""
        from repro.obs.attribution import attribute_incidents
        from repro.obs.slo import SloObserver
        from repro.obs.tracing import TraceObserver

        slo = self._first_observer(SloObserver)
        trace = self._first_observer(TraceObserver)
        if slo is None or trace is None:
            return ()
        return attribute_incidents(slo, trace, **kwargs)

    def summary(self) -> dict:
        """Topology-independent headline numbers (stable keys).

        One pass over the outcome list (the ``outcomes`` property
        re-flattens per-shard results on every access, and benches call
        ``summary`` in loops).
        """
        outcomes = self.outcomes
        qualities = [o.result.mean_quality() for o in outcomes]
        psnrs = [o.result.mean_psnr() for o in outcomes]
        finite_q = [v for v in qualities if np.isfinite(v)]
        finite_p = [v for v in psnrs if np.isfinite(v)]
        return {
            "topology": self.topology,
            "scenario": self.scenario_name,
            "rounds": self.rounds,
            "served": self.served_count,
            "rejected": self.rejected_count,
            "preempted": self.preempted_count,
            "renegotiations": self.total_renegotiations(),
            "acceptance_ratio": round(self.acceptance_ratio, 4),
            "frames": sum(len(o.result) for o in outcomes),
            "skips": sum(o.result.skip_count for o in outcomes),
            "deadline_misses": sum(
                o.result.deadline_miss_count for o in outcomes
            ),
            "mean_quality": round(
                float(np.mean(finite_q)) if finite_q else math.nan, 3
            ),
            "mean_psnr": round(
                float(np.mean(finite_p)) if finite_p else math.nan, 3
            ),
            "fairness_quality": round(jain_fairness_index(qualities), 4),
        }
