"""One serving API: declarative specs, policy registries, unified runs.

The serving layers beneath this package expose three hand-wired entry
points (single-run convenience functions, ``FleetRunner``,
``ClusterRunner``).  This package puts one declarative surface over all
of them:

* :class:`ServingSpec` — a JSON-round-trippable document naming the
  topology, capacity, workload, and every policy **by registry name
  with kwargs**, validated eagerly with field-precise errors;
* the policy registries (:data:`ARBITERS`, :data:`ADMISSIONS`,
  :data:`PLACEMENTS`, :data:`MIGRATIONS`, :data:`BALANCERS`,
  :data:`SCENARIOS`) and their ``register_*`` helpers — third-party
  policies plug into every entry point without touching runner code;
* :class:`ServingRunner` — the protocol both runners implement
  (``run`` + ``reset``), and :func:`serve`, the facade that builds and
  runs a spec and returns a unified :class:`ServingResult`;
* :class:`RoundObserver` — lifecycle hooks (``on_round`` / ``on_admit``
  / ``on_reject`` / ``on_migrate`` / ``on_depart``) threaded through
  both runners, the attachment point for windowed metrics and
  autoscaling.

Quick start::

    import repro

    result = repro.serve({
        "topology": "fleet",
        "scenario": {"name": "heterogeneous-mix",
                     "kwargs": {"count": 12, "frames": 16}},
        "capacity": {"utilization": 0.6},
        "arbiter": "quality-fair",
    })
    print(result.summary())
"""

from repro.serving.observers import (
    CountingObserver,
    RoundObserver,
    phase_timing_enabled,
)
from repro.serving.registry import (
    ADMISSIONS,
    ARBITERS,
    AUTOSCALERS,
    BALANCERS,
    MIGRATIONS,
    OBSERVERS,
    PLACEMENTS,
    RENEGOTIATIONS,
    SCENARIOS,
    SLA_CLASSES,
    TOPOLOGIES,
    PolicyRegistry,
    register_admission,
    register_arbiter,
    register_autoscaler,
    register_balancer,
    register_migration,
    register_observer,
    register_placement,
    register_renegotiation,
    register_scenario,
    register_service_class,
    scenario_open_ended,
    scenario_topology,
)
from repro.serving.result import ServingResult
from repro.serving.runner import (
    ServingRunner,
    build_observers,
    build_runner,
    build_scenario,
    serve,
)
from repro.serving.spec import CONSTRAINT_MODES, PolicySpec, ServingSpec

__all__ = [
    "ADMISSIONS",
    "ARBITERS",
    "AUTOSCALERS",
    "BALANCERS",
    "CONSTRAINT_MODES",
    "CountingObserver",
    "MIGRATIONS",
    "OBSERVERS",
    "PLACEMENTS",
    "PolicyRegistry",
    "PolicySpec",
    "RENEGOTIATIONS",
    "RoundObserver",
    "SCENARIOS",
    "SLA_CLASSES",
    "ServingResult",
    "ServingRunner",
    "ServingSpec",
    "TOPOLOGIES",
    "build_observers",
    "build_runner",
    "build_scenario",
    "phase_timing_enabled",
    "register_admission",
    "register_arbiter",
    "register_autoscaler",
    "register_balancer",
    "register_migration",
    "register_observer",
    "register_placement",
    "register_renegotiation",
    "register_scenario",
    "register_service_class",
    "scenario_open_ended",
    "scenario_topology",
    "serve",
]
