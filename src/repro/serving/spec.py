"""The declarative serving configuration: one JSON document, one run.

A :class:`ServingSpec` names everything a serving run needs — the
topology (single-pool ``fleet`` or sharded ``cluster``), the capacity,
and every policy **by registry name with kwargs** — so a run is a plain
data document instead of hand-wired constructor calls.  Specs are
validated eagerly (every error is a
:class:`~repro.errors.ConfigurationError` naming the offending field)
and round-trip losslessly through JSON::

    spec = ServingSpec.from_json(text)
    assert ServingSpec.from_json(spec.to_json()) == spec
    result = repro.serve(spec)

Field reference
---------------

=================  ====================================================
``topology``       ``"fleet"`` (one shared pool) or ``"cluster"``
``scenario``       workload generator: name + kwargs (see ``SCENARIOS``)
``capacity``       fleet only: cycles/round, or ``{"utilization": f}``
                   for a fraction of the scenario's aggregate demand
                   (cluster capacity comes from the scenario's shards)
``arbiter``        per-pool capacity arbiter (default ``quality-fair``)
``admission``      admission gate (default ``feasibility``; ``"none"``
                   or ``null`` runs ungated)
``placement``      cluster only, required: arrival routing policy
``migration``      cluster only, optional: between-round rebalancing
``balancer``       cluster only, optional: cross-shard headroom lending
``autoscaler``     cluster only, optional: telemetry-driven elastic
                   provisioning (see ``AUTOSCALERS``)
``constraint_mode``/``granularity``  per-session controller settings
``engine``         session execution engine: ``"scalar"`` (reference),
                   ``"vectorized"`` (numpy batch stepping), or
                   ``"parallel"`` (vectorized + concurrent shard
                   stepping); all engines are bit-identical
``max_rounds``     the run's stop horizon; defaults to a 100k-round
                   safety valve for finite scenarios, **required
                   explicitly** for open-ended (always-on) ones
``service_classes``  SLA catalog: class dicts, registered names, or
                   ``ServiceClass`` instances; forwarded to every
                   SLA-aware policy and to the runners' sessions
``renegotiation``  mid-stream quality-target policy (``RENEGOTIATIONS``)
``observers``      telemetry attached by name (``OBSERVERS``): windowed
                   metrics, event logs, invariant checks, phase timing;
                   built observers are closed when the run ends
``slos``           declared service-level objectives (``SloSpec`` dicts
                   or instances); ``serve`` attaches an
                   ``SloObserver`` evaluating them as rolling error
                   budgets with burn-rate alerts, reported on
                   ``ServingResult.slo_reports()``
=================  ====================================================

Policy fields accept a bare name string as shorthand for
``{"name": ..., "kwargs": {}}``.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from dataclasses import dataclass, field, fields

from repro.engine import ENGINES
from repro.errors import ConfigurationError
from repro.serving.registry import (
    ADMISSIONS,
    ARBITERS,
    AUTOSCALERS,
    BALANCERS,
    MIGRATIONS,
    OBSERVERS,
    PLACEMENTS,
    RENEGOTIATIONS,
    SCENARIOS,
    TOPOLOGIES,
    scenario_open_ended,
    scenario_topology,
)
from repro.sla.classes import ServiceClass, resolve_classes

#: Controller constraint modes accepted by the simulator.
CONSTRAINT_MODES = ("both", "average", "worst")


@dataclass(frozen=True)
class PolicySpec:
    """One policy selection: registry name plus constructor kwargs."""

    name: str
    kwargs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ConfigurationError(
                f"policy name must be a non-empty string, got {self.name!r}"
            )
        if not isinstance(self.kwargs, Mapping):
            raise ConfigurationError(
                f"policy kwargs for {self.name!r} must be a mapping, "
                f"got {type(self.kwargs).__name__}"
            )
        if any(not isinstance(k, str) for k in self.kwargs):
            raise ConfigurationError(
                f"policy kwargs for {self.name!r} must have string keys"
            )
        object.__setattr__(self, "kwargs", dict(self.kwargs))

    @classmethod
    def coerce(cls, value, field_name: str) -> "PolicySpec":
        """Normalize a name string / mapping / PolicySpec."""
        if isinstance(value, PolicySpec):
            return value
        if isinstance(value, str):
            return cls(name=value)
        if isinstance(value, Mapping):
            unknown = set(value) - {"name", "kwargs"}
            if unknown:
                raise ConfigurationError(
                    f"{field_name}: unexpected keys {sorted(unknown)} "
                    "(a policy is {'name': ..., 'kwargs': {...}})"
                )
            if "name" not in value:
                raise ConfigurationError(f"{field_name}: policy needs a 'name'")
            return cls(name=value["name"], kwargs=value.get("kwargs") or {})
        raise ConfigurationError(
            f"{field_name}: expected a policy name or mapping, "
            f"got {type(value).__name__}"
        )

    def to_dict(self) -> dict:
        return {"name": self.name, "kwargs": dict(self.kwargs)}


def _check_policy(spec, registry, field_name, topology, allowed_topology):
    """Shared per-field validation: topology scoping + known name."""
    if spec is None:
        return
    if allowed_topology is not None and topology != allowed_topology:
        raise ConfigurationError(
            f"{field_name}: only meaningful for {allowed_topology!r} "
            f"topology (spec topology is {topology!r})"
        )
    if spec.name not in registry:
        raise ConfigurationError(
            f"{field_name}: unknown {registry.kind} {spec.name!r}; "
            f"expected one of {registry.names()}"
        )


@dataclass(frozen=True)
class ServingSpec:
    """A complete, validated, JSON-round-trippable serving run."""

    scenario: PolicySpec
    topology: str = "fleet"
    capacity: float | dict | None = None
    arbiter: PolicySpec = field(
        default_factory=lambda: PolicySpec("quality-fair")
    )
    admission: PolicySpec | None = field(
        default_factory=lambda: PolicySpec("feasibility")
    )
    placement: PolicySpec | None = None
    migration: PolicySpec | None = None
    balancer: PolicySpec | None = None
    autoscaler: PolicySpec | None = None
    constraint_mode: str = "both"
    granularity: int = 1
    engine: str = "scalar"
    max_rounds: int | None = None
    service_classes: tuple[ServiceClass, ...] | None = None
    renegotiation: PolicySpec | None = None
    observers: tuple[PolicySpec, ...] = ()
    slos: tuple = None

    # ------------------------------------------------------------------
    # eager validation — every error names its field
    # ------------------------------------------------------------------

    def __post_init__(self) -> None:
        for name in ("scenario", "arbiter"):
            object.__setattr__(
                self, name, PolicySpec.coerce(getattr(self, name), name)
            )
        for name in (
            "admission", "placement", "migration", "balancer",
            "autoscaler", "renegotiation",
        ):
            value = getattr(self, name)
            if value is not None:
                object.__setattr__(self, name, PolicySpec.coerce(value, name))
        self._validate_observers()
        self._validate_service_classes()
        self._validate_slos()

        if self.topology not in TOPOLOGIES:
            raise ConfigurationError(
                f"topology: must be one of {TOPOLOGIES}, got {self.topology!r}"
            )
        if self.scenario.name not in SCENARIOS:
            raise ConfigurationError(
                f"scenario: unknown scenario {self.scenario.name!r}; "
                f"expected one of {SCENARIOS.names()}"
            )
        declared = scenario_topology(self.scenario.name)
        if declared != self.topology:
            raise ConfigurationError(
                f"scenario: {self.scenario.name!r} is a {declared} scenario "
                f"but the spec's topology is {self.topology!r}"
            )
        self._validate_capacity()
        _check_policy(self.arbiter, ARBITERS, "arbiter", self.topology, None)
        _check_policy(
            self.admission, ADMISSIONS, "admission", self.topology, None
        )
        if self.topology == "cluster" and self.placement is None:
            raise ConfigurationError(
                "placement: required for cluster topology "
                f"(one of {PLACEMENTS.names()})"
            )
        _check_policy(
            self.placement, PLACEMENTS, "placement", self.topology, "cluster"
        )
        _check_policy(
            self.migration, MIGRATIONS, "migration", self.topology, "cluster"
        )
        _check_policy(
            self.balancer, BALANCERS, "balancer", self.topology, "cluster"
        )
        _check_policy(
            self.autoscaler, AUTOSCALERS, "autoscaler", self.topology, "cluster"
        )
        _check_policy(
            self.renegotiation,
            RENEGOTIATIONS,
            "renegotiation",
            self.topology,
            None,
        )
        if self.constraint_mode not in CONSTRAINT_MODES:
            raise ConfigurationError(
                f"constraint_mode: must be one of {CONSTRAINT_MODES}, "
                f"got {self.constraint_mode!r}"
            )
        if (
            isinstance(self.granularity, bool)
            or not isinstance(self.granularity, int)
            or self.granularity < 1
        ):
            raise ConfigurationError(
                f"granularity: must be an integer >= 1, got {self.granularity!r}"
            )
        if self.engine not in ENGINES:
            raise ConfigurationError(
                f"engine: must be one of {ENGINES}, got {self.engine!r}"
            )
        if self.max_rounds is not None and (
            isinstance(self.max_rounds, bool)
            or not isinstance(self.max_rounds, int)
            or self.max_rounds < 1
        ):
            raise ConfigurationError(
                f"max_rounds: must be an integer >= 1, got {self.max_rounds!r}"
            )
        if self.max_rounds is None and scenario_open_ended(self.scenario.name):
            raise ConfigurationError(
                f"max_rounds: scenario {self.scenario.name!r} is "
                "open-ended (arrivals never stop on their own) — the run "
                "needs an explicit max_rounds stop condition"
            )

    def _validate_observers(self) -> None:
        if isinstance(self.observers, (str, Mapping)) or not hasattr(
            self.observers, "__iter__"
        ):
            raise ConfigurationError(
                "observers: expected a list of observer policies "
                f"(name or {{'name': ..., 'kwargs': ...}}), got "
                f"{type(self.observers).__name__}"
            )
        coerced = tuple(
            PolicySpec.coerce(entry, "observers") for entry in self.observers
        )
        for policy in coerced:
            _check_policy(policy, OBSERVERS, "observers", self.topology, None)
        object.__setattr__(self, "observers", coerced)

    def _validate_service_classes(self) -> None:
        if self.service_classes is None:
            return
        # a spec declares a *list* of classes (a bare name or mapping
        # is almost certainly a forgotten pair of brackets); the item
        # shapes themselves are resolve_classes' contract
        if isinstance(self.service_classes, (str, Mapping)) or not hasattr(
            self.service_classes, "__iter__"
        ):
            raise ConfigurationError(
                "service_classes: expected a list of class dicts, "
                f"registered names, or ServiceClass instances, got "
                f"{type(self.service_classes).__name__}"
            )
        try:
            catalog = resolve_classes(list(self.service_classes))
        except ConfigurationError as error:
            raise ConfigurationError(f"service_classes: {error}") from None
        object.__setattr__(
            self, "service_classes", tuple(catalog.values())
        )

    def _validate_slos(self) -> None:
        if self.slos is None:
            return
        # deferred: the obs layer builds on serving, so importing it at
        # module scope would cycle (the registry-factory pattern)
        from repro.obs.slo import resolve_slos

        if isinstance(self.slos, (str, Mapping)) or not hasattr(
            self.slos, "__iter__"
        ):
            raise ConfigurationError(
                "slos: expected a list of slo dicts or SloSpec "
                f"instances, got {type(self.slos).__name__}"
            )
        try:
            resolved = resolve_slos(list(self.slos))
        except ConfigurationError as error:
            raise ConfigurationError(f"slos: {error}") from None
        object.__setattr__(self, "slos", resolved)

    def _validate_capacity(self) -> None:
        if self.topology == "cluster":
            if self.capacity is not None:
                raise ConfigurationError(
                    "capacity: cluster capacity comes from the scenario's "
                    "shard capacities; leave capacity unset"
                )
            return
        if self.capacity is None:
            raise ConfigurationError(
                "capacity: required for fleet topology (cycles per round, "
                "or {'utilization': fraction} of the scenario's demand)"
            )
        if isinstance(self.capacity, Mapping):
            unknown = set(self.capacity) - {"utilization"}
            if unknown:
                raise ConfigurationError(
                    f"capacity: unexpected keys {sorted(unknown)} "
                    "(relative capacity is {'utilization': fraction})"
                )
            utilization = self.capacity.get("utilization")
            if (
                isinstance(utilization, bool)
                or not isinstance(utilization, (int, float))
                or utilization <= 0
            ):
                raise ConfigurationError(
                    "capacity: utilization must be a positive number, "
                    f"got {utilization!r}"
                )
            object.__setattr__(self, "capacity", dict(self.capacity))
            return
        if isinstance(self.capacity, bool) or not isinstance(
            self.capacity, (int, float)
        ):
            raise ConfigurationError(
                f"capacity: must be a number or {{'utilization': f}}, "
                f"got {type(self.capacity).__name__}"
            )
        if self.capacity <= 0:
            raise ConfigurationError(
                f"capacity: must be positive, got {self.capacity!r}"
            )

    # ------------------------------------------------------------------
    # capacity resolution
    # ------------------------------------------------------------------

    def resolve_capacity(self, scenario) -> float:
        """The fleet pool in cycles/round, given the built scenario."""
        if isinstance(self.capacity, Mapping):
            return self.capacity["utilization"] * scenario.total_demand()
        return float(self.capacity)

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """A plain-dict form; ``from_dict(to_dict())`` is identity."""
        def policy(value):
            return None if value is None else value.to_dict()

        return {
            "topology": self.topology,
            "scenario": self.scenario.to_dict(),
            "capacity": (
                dict(self.capacity)
                if isinstance(self.capacity, Mapping)
                else self.capacity
            ),
            "arbiter": self.arbiter.to_dict(),
            "admission": policy(self.admission),
            "placement": policy(self.placement),
            "migration": policy(self.migration),
            "balancer": policy(self.balancer),
            "autoscaler": policy(self.autoscaler),
            "constraint_mode": self.constraint_mode,
            "granularity": self.granularity,
            "engine": self.engine,
            "max_rounds": self.max_rounds,
            "service_classes": (
                None
                if self.service_classes is None
                else [c.to_dict() for c in self.service_classes]
            ),
            "renegotiation": policy(self.renegotiation),
            "observers": [p.to_dict() for p in self.observers],
            "slos": (
                None
                if self.slos is None
                else [s.to_dict() for s in self.slos]
            ),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ServingSpec":
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"a ServingSpec document must be a mapping, "
                f"got {type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown ServingSpec field(s) {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        if "scenario" not in data:
            raise ConfigurationError("scenario: required field is missing")
        return cls(**dict(data))

    def to_json(self, indent: int | None = None) -> str:
        try:
            return json.dumps(self.to_dict(), indent=indent, sort_keys=True)
        except TypeError as error:
            raise ConfigurationError(
                f"spec is not JSON-serializable (policy kwargs must be "
                f"plain JSON values): {error}"
            ) from None

    @classmethod
    def from_json(cls, text: str) -> "ServingSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"spec is not valid JSON: {error}"
            ) from None
        return cls.from_dict(data)
