"""The unified runner protocol and the ``serve`` facade.

:class:`ServingRunner` is the structural contract both
:class:`~repro.streams.fleet.FleetRunner` and
:class:`~repro.cluster.runner.ClusterRunner` satisfy: ``run(scenario)``
serves one scenario to completion, ``reset()`` clears any cross-run
state so one runner instance can serve many scenarios bit-identically.

:func:`serve` is the one entry point the rest of the repo (examples,
benches, report tables) builds on: it takes a declarative
:class:`~repro.serving.spec.ServingSpec` (or its dict/JSON form),
instantiates every policy from the registries, runs the matching
topology, and returns a unified
:class:`~repro.serving.result.ServingResult`.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Protocol, runtime_checkable

from repro.cluster.runner import ClusterRunner
from repro.cluster.scenarios import ClusterScenario
from repro.errors import ConfigurationError
from repro.serving.registry import (
    ADMISSIONS,
    ARBITERS,
    AUTOSCALERS,
    BALANCERS,
    MIGRATIONS,
    OBSERVERS,
    PLACEMENTS,
    RENEGOTIATIONS,
    SCENARIOS,
)
from repro.serving.result import ServingResult
from repro.serving.spec import PolicySpec, ServingSpec
from repro.streams.fleet import FleetRunner
from repro.streams.scenarios import Scenario


@runtime_checkable
class ServingRunner(Protocol):
    """What every serving topology's runner provides.

    ``run`` serves one scenario to completion and returns that
    topology's result; ``reset`` restores the runner to its
    just-constructed state so back-to-back ``run`` calls replay
    bit-identically (see ``tests/serving/test_serving_reset.py``).
    """

    def run(self, scenario): ...

    def reset(self) -> None: ...


def _coerce_spec(spec) -> ServingSpec:
    if isinstance(spec, ServingSpec):
        return spec
    if isinstance(spec, str):
        return ServingSpec.from_json(spec)
    if isinstance(spec, Mapping):
        return ServingSpec.from_dict(spec)
    raise ConfigurationError(
        f"serve() takes a ServingSpec, mapping, or JSON string, "
        f"got {type(spec).__name__}"
    )


def _create(registry, policy: PolicySpec, field_name: str, *args,
            classes=None, slos=None):
    """Registry create with kwarg mistakes reported against the field.

    ``classes`` is the spec's ``service_classes`` catalog: factories
    registered with ``sla_aware=True`` metadata receive it as their
    ``classes`` kwarg unless the policy's own kwargs already name one.
    ``slos`` works the same way for ``slo_aware=True`` factories (the
    spec's declared objectives reach the SLO observer and the
    invariant ledger's budget-conservation law).
    """
    kwargs = policy.kwargs
    meta = registry.meta(policy.name)
    if (
        classes is not None
        and "classes" not in kwargs
        and meta.get("sla_aware")
    ):
        kwargs = {**kwargs, "classes": classes}
    if slos is not None and "slos" not in kwargs and meta.get("slo_aware"):
        kwargs = {**kwargs, "slos": slos}
    try:
        return registry.create(policy.name, *args, **kwargs)
    except TypeError as error:
        # chained, not suppressed: the TypeError may also be a bug
        # inside a third-party factory, so keep its traceback
        raise ConfigurationError(
            f"{field_name}: cannot construct {policy.name!r} "
            f"with kwargs {kwargs!r}: {error}"
        ) from error


def build_scenario(spec: ServingSpec):
    """Instantiate the spec's workload from the scenario registry."""
    scenario = _create(SCENARIOS, spec.scenario, "scenario")
    expected = Scenario if spec.topology == "fleet" else ClusterScenario
    if not isinstance(scenario, expected):
        raise ConfigurationError(
            f"scenario: generator {spec.scenario.name!r} returned "
            f"{type(scenario).__name__}, expected {expected.__name__} "
            f"for topology {spec.topology!r}"
        )
    return scenario


def _optional(registry, policy: PolicySpec | None, field_name: str,
              classes=None):
    if policy is None:
        return None
    return _create(registry, policy, field_name, classes=classes)


def build_runner(
    spec: ServingSpec,
    scenario=None,
    observers: Sequence = (),
) -> ServingRunner:
    """Instantiate the spec's runner (policies resolved by name).

    ``scenario`` is only needed to resolve a relative
    (``{"utilization": f}``) fleet capacity; pass the one you will run.
    """
    classes = spec.service_classes
    renegotiation = _optional(
        RENEGOTIATIONS, spec.renegotiation, "renegotiation"
    )
    max_rounds = 100_000 if spec.max_rounds is None else spec.max_rounds
    if spec.topology == "fleet":
        # the scenario is only needed to resolve a relative capacity
        if scenario is None and isinstance(spec.capacity, Mapping):
            scenario = build_scenario(spec)
        capacity = spec.resolve_capacity(scenario)
        admission = (
            None
            if spec.admission is None
            else _create(
                ADMISSIONS, spec.admission, "admission", capacity,
                classes=classes,
            )
        )
        return FleetRunner(
            capacity=capacity,
            arbiter=_create(ARBITERS, spec.arbiter, "arbiter",
                            classes=classes),
            admission=admission,
            constraint_mode=spec.constraint_mode,
            granularity=spec.granularity,
            max_rounds=max_rounds,
            observers=observers,
            service_classes=classes,
            renegotiation=renegotiation,
            engine=spec.engine,
        )
    if spec.admission is None:
        admission_factory = None
        admission = False
    else:
        gate = spec.admission
        admission_factory = lambda capacity: _create(
            ADMISSIONS, gate, "admission", capacity, classes=classes
        )
        admission = True
    return ClusterRunner(
        placement=_create(PLACEMENTS, spec.placement, "placement",
                          classes=classes),
        migration=_optional(MIGRATIONS, spec.migration, "migration",
                            classes=classes),
        balancer=_optional(BALANCERS, spec.balancer, "balancer"),
        autoscaler=_optional(AUTOSCALERS, spec.autoscaler, "autoscaler",
                             classes=classes),
        max_rounds=max_rounds,
        observers=observers,
        arbiter=_create(ARBITERS, spec.arbiter, "arbiter", classes=classes),
        admission=admission,
        admission_factory=admission_factory,
        constraint_mode=spec.constraint_mode,
        granularity=spec.granularity,
        service_classes=classes,
        renegotiation=renegotiation,
        engine=spec.engine,
    )


def build_observers(spec: ServingSpec, existing: Sequence = ()) -> tuple:
    """Instantiate the spec's declared observers from the registry.

    A spec that declares ``slos`` gets an
    :class:`~repro.obs.slo.SloObserver` evaluating them appended
    automatically, unless its ``observers`` list already names one
    (declare ``{"name": "slo", "kwargs": {...}}`` to override the
    wiring) or ``existing`` — the caller-passed instances — already
    contains one (the CLI builds its own to watch live status).
    """
    built = [
        _create(OBSERVERS, policy, "observers",
                classes=spec.service_classes, slos=spec.slos)
        for policy in spec.observers
    ]
    if spec.slos is not None and not any(
        policy.name == "slo" for policy in spec.observers
    ):
        from repro.obs.slo import SloObserver

        if not any(isinstance(o, SloObserver) for o in existing):
            built.append(_create(
                OBSERVERS, PolicySpec("slo"), "slos",
                classes=spec.service_classes, slos=spec.slos,
            ))
    return tuple(built)


def _wire_observers(observers) -> None:
    """Point every sink-less SLO observer at the run's first event log,
    so burn-rate alerts interleave into the JSONL event stream."""
    # deferred import: the obs layer builds on serving (registry-factory
    # pattern)
    from repro.obs.events import StructuredEventLog
    from repro.obs.slo import SloObserver

    log = next(
        (o for o in observers if isinstance(o, StructuredEventLog)), None
    )
    if log is None:
        return
    for observer in observers:
        if isinstance(observer, SloObserver) and observer.sink is None:
            observer.sink = log


def _close_observers(observers) -> None:
    """End-of-run lifecycle: flush/finalize observers that support it."""
    for observer in observers:
        close = getattr(observer, "close", None)
        if callable(close):
            close()


def serve(spec, observers: Sequence = ()) -> ServingResult:
    """Run one declarative serving spec end to end.

    ``spec`` may be a :class:`ServingSpec`, its ``to_dict`` mapping
    form, or a JSON string; ``observers`` are
    :class:`~repro.serving.observers.RoundObserver` instances threaded
    through the run's lifecycle hooks, in addition to any the spec
    itself declares (``spec.observers``, built from the ``OBSERVERS``
    registry).  When the run ends — normally or by raising — every
    attached observer that defines ``close()`` has it called (flushing
    partial telemetry windows, event-log file handles, and invariant
    finalizers); the full tuple is returned on
    :attr:`ServingResult.observers`.
    """
    spec = _coerce_spec(spec)
    scenario = build_scenario(spec)
    all_observers = tuple(observers) + build_observers(
        spec, existing=observers
    )
    _wire_observers(all_observers)
    runner = build_runner(spec, scenario=scenario, observers=all_observers)
    try:
        raw = runner.run(scenario)
    finally:
        _close_observers(all_observers)
    return ServingResult(
        raw=raw, spec=spec, runner=runner, observers=all_observers
    )
