"""String-keyed policy registries: the serving layer's extension point.

Every pluggable policy family of the serving stack — capacity arbiters,
admission gates, placement, migration, headroom balancing, and the
scenario generators themselves — is resolved **by name with kwargs**
through one :class:`PolicyRegistry` instance per family.  A
:class:`~repro.serving.spec.ServingSpec` validates its policy names
against these tables eagerly, and :func:`repro.serving.serve` builds
the runner from them, so a third-party policy plugs into every entry
point (specs, examples, benches, the CLI-ish factories) with one
``register_*`` call and zero runner changes::

    from repro.serving import register_arbiter

    @register_arbiter("lottery")
    class LotteryArbiter(CapacityArbiter):
        name = "lottery"
        ...

    serve({"scenario": {"name": "steady", "kwargs": {"count": 4}},
           "capacity": 64e6, "arbiter": "lottery"})

The legacy factories (``repro.streams.arbiter.make_arbiter``,
``repro.cluster.placement.make_placement``,
``repro.cluster.migration.make_migration``) are thin aliases over these
registries, so policies registered here are visible there too.
"""

from __future__ import annotations

from typing import Callable

from repro.cluster.migration import (
    LoadBalanceMigration,
    NoMigration,
    QueueRebalanceMigration,
)
from repro.cluster.placement import (
    BestFitPlacement,
    LeastLoadedPlacement,
    PredictivePlacement,
    QualityAwarePlacement,
    RoundRobinPlacement,
)
from repro.cluster.runner import HeadroomBalancer
from repro.cluster.scenarios import (
    flash_crowd_split,
    shard_outage,
    skewed_churn,
    skewed_cluster,
)
from repro.errors import ConfigurationError
from repro.serving.observers import CountingObserver
from repro.sla.admission import PriorityAdmissionController
from repro.sla.arbiter import SlaQualityFairArbiter, SlaWeightedArbiter
from repro.sla.classes import STANDARD_CLASSES, ServiceClass
from repro.sla.migration import SlaMigration
from repro.sla.placement import SlaPlacement
from repro.sla.renegotiation import StepRenegotiation
from repro.sla.scenarios import gold_rush, sla_churn, sla_skewed_cluster
from repro.streams.admission import AdmissionController
from repro.streams.arbiter import (
    EqualShareArbiter,
    QualityFairArbiter,
    WeightedShareArbiter,
)
from repro.streams.scenarios import (
    flash_crowd,
    heterogeneous_mix,
    poisson_churn,
    steady_fleet,
)


class PolicyRegistry:
    """A named factory table for one policy family.

    Entries map a policy name to a factory callable plus optional
    metadata (the scenario registry records each generator's topology
    there).  Registration rejects duplicates unless ``overwrite=True``
    so two plugins cannot silently shadow each other.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, tuple[Callable, dict]] = {}

    # ------------------------------------------------------------------

    def register(
        self,
        name: str,
        factory: Callable | None = None,
        *,
        overwrite: bool = False,
        **meta,
    ):
        """Register ``factory`` under ``name``; usable as a decorator."""
        if factory is None:
            return lambda f: self.register(name, f, overwrite=overwrite, **meta)
        if not isinstance(name, str) or not name:
            raise ConfigurationError(
                f"{self.kind} name must be a non-empty string, got {name!r}"
            )
        if not callable(factory):
            raise ConfigurationError(
                f"{self.kind} factory for {name!r} must be callable"
            )
        if name in self._entries and not overwrite:
            raise ConfigurationError(
                f"{self.kind} {name!r} is already registered "
                "(pass overwrite=True to replace it)"
            )
        self._entries[name] = (factory, meta)
        return factory

    def unregister(self, name: str) -> None:
        """Drop an entry (plugin teardown, tests)."""
        if name not in self._entries:
            raise ConfigurationError(f"unknown {self.kind} {name!r}")
        del self._entries[name]

    # ------------------------------------------------------------------

    def factory(self, name: str) -> Callable:
        try:
            return self._entries[name][0]
        except KeyError:
            raise ConfigurationError(
                f"unknown {self.kind} {name!r}; "
                f"expected one of {self.names()}"
            ) from None

    def meta(self, name: str) -> dict:
        self.factory(name)  # raises on unknown
        return dict(self._entries[name][1])

    def create(self, name: str, *args, **kwargs):
        """Instantiate the named policy with the given arguments."""
        return self.factory(name)(*args, **kwargs)

    def names(self) -> list[str]:
        return sorted(self._entries)

    def __contains__(self, name: object) -> bool:
        return name in self._entries


#: The serving stack's policy families, seeded with the built-ins below.
ARBITERS = PolicyRegistry("arbiter")
ADMISSIONS = PolicyRegistry("admission")
PLACEMENTS = PolicyRegistry("placement")
MIGRATIONS = PolicyRegistry("migration")
BALANCERS = PolicyRegistry("balancer")
SCENARIOS = PolicyRegistry("scenario")
SLA_CLASSES = PolicyRegistry("service class")
RENEGOTIATIONS = PolicyRegistry("renegotiation")
OBSERVERS = PolicyRegistry("observer")
AUTOSCALERS = PolicyRegistry("autoscaler")

#: Topologies a scenario generator may declare (and a spec may request).
TOPOLOGIES = ("fleet", "cluster")


def register_arbiter(name, factory=None, *, overwrite=False, **meta):
    """Register a :class:`~repro.streams.arbiter.CapacityArbiter` factory.

    ``sla_aware=True`` metadata marks factories accepting a ``classes``
    kwarg: :func:`~repro.serving.runner.build_runner` forwards a spec's
    ``service_classes`` catalog to them automatically.
    """
    return ARBITERS.register(name, factory, overwrite=overwrite, **meta)


def register_admission(name, factory=None, *, overwrite=False, **meta):
    """Register an admission factory called as ``factory(capacity, **kw)``.

    Returning ``None`` means the pool runs ungated (see ``"none"``).
    ``sla_aware=True`` metadata works as in :func:`register_arbiter`.
    """
    return ADMISSIONS.register(name, factory, overwrite=overwrite, **meta)


def register_placement(name, factory=None, *, overwrite=False, **meta):
    """Register a :class:`~repro.cluster.placement.PlacementPolicy` factory.

    ``sla_aware=True`` metadata works as in :func:`register_arbiter`.
    """
    return PLACEMENTS.register(name, factory, overwrite=overwrite, **meta)


def register_migration(name, factory=None, *, overwrite=False, **meta):
    """Register a :class:`~repro.cluster.migration.MigrationPolicy` factory.

    ``sla_aware=True`` metadata works as in :func:`register_arbiter`.
    """
    return MIGRATIONS.register(name, factory, overwrite=overwrite, **meta)


def register_balancer(name, factory=None, *, overwrite=False):
    """Register a cross-shard balancer factory (``None`` = no lending)."""
    return BALANCERS.register(name, factory, overwrite=overwrite)


def register_service_class(service_class: ServiceClass, *, overwrite=False):
    """Register a :class:`~repro.sla.classes.ServiceClass` by its name.

    Registered classes are resolvable anywhere a ``classes`` kwarg or a
    spec's ``service_classes`` field accepts a name string.
    """
    if not isinstance(service_class, ServiceClass):
        raise ConfigurationError(
            f"expected a ServiceClass, got {type(service_class).__name__}"
        )
    SLA_CLASSES.register(
        service_class.name,
        lambda sc=service_class: sc,
        overwrite=overwrite,
    )
    return service_class


def register_renegotiation(name, factory=None, *, overwrite=False):
    """Register a mid-stream renegotiation policy factory.

    Policies must be stateless (shared across every session of a run);
    see :class:`repro.sla.renegotiation.StepRenegotiation`.
    """
    return RENEGOTIATIONS.register(name, factory, overwrite=overwrite)


def register_observer(name, factory=None, *, overwrite=False, **meta):
    """Register a :class:`~repro.serving.observers.RoundObserver` factory.

    Named observers let a :class:`~repro.serving.spec.ServingSpec`
    declare its telemetry (``"observers": [{"name": "telemetry", ...}]``)
    the same way it declares policies; :func:`repro.serve` builds them,
    threads them through the run, and calls each one's ``close()`` when
    the run ends.  ``sla_aware=True`` metadata works as in
    :func:`register_arbiter`.
    """
    return OBSERVERS.register(name, factory, overwrite=overwrite, **meta)


def register_autoscaler(name, factory=None, *, overwrite=False, **meta):
    """Register an :class:`~repro.horizon.autoscaler.Autoscaler` factory.

    ``sla_aware=True`` metadata works as in :func:`register_arbiter`
    (the spec's catalog reaches the policy's ``classes`` kwarg, so its
    pressure weighting follows the run's declared tiers).
    """
    return AUTOSCALERS.register(name, factory, overwrite=overwrite, **meta)


def register_scenario(
    name, factory=None, *, topology="fleet", open_ended=False, overwrite=False
):
    """Register a scenario generator, tagged with its topology.

    ``topology="fleet"`` generators return a
    :class:`~repro.streams.scenarios.Scenario`; ``"cluster"`` generators
    return a :class:`~repro.cluster.scenarios.ClusterScenario`.  Specs
    check the tag eagerly so a cluster workload can never be handed to a
    fleet runner.  ``open_ended=True`` marks always-on generators whose
    arrivals never stop: a spec naming one must set an explicit
    ``max_rounds`` (checked eagerly too).
    """
    if topology not in TOPOLOGIES:
        raise ConfigurationError(
            f"scenario topology must be one of {TOPOLOGIES}, got {topology!r}"
        )
    return SCENARIOS.register(
        name, factory, overwrite=overwrite, topology=topology,
        open_ended=bool(open_ended),
    )


def scenario_topology(name: str) -> str:
    """Which topology the named scenario generator serves."""
    return SCENARIOS.meta(name)["topology"]


def scenario_open_ended(name: str) -> bool:
    """Is the named generator an always-on (never-ending) source?"""
    return bool(SCENARIOS.meta(name).get("open_ended", False))


# ----------------------------------------------------------------------
# built-ins
# ----------------------------------------------------------------------

register_arbiter("equal-share", EqualShareArbiter)
register_arbiter("weighted-share", WeightedShareArbiter)
register_arbiter("quality-fair", QualityFairArbiter)
register_arbiter("sla-weighted", SlaWeightedArbiter, sla_aware=True)
register_arbiter("sla-quality-fair", SlaQualityFairArbiter, sla_aware=True)


def _no_admission(capacity=None):
    """The ungated pool: every offer is accepted outright."""
    return None


register_admission("feasibility", AdmissionController)
register_admission("none", _no_admission)
register_admission("priority", PriorityAdmissionController, sla_aware=True)

register_placement("round-robin", RoundRobinPlacement)
register_placement("least-loaded", LeastLoadedPlacement)
register_placement("best-fit", BestFitPlacement)
register_placement("predictive", PredictivePlacement)
register_placement("quality-aware", QualityAwarePlacement)
register_placement("sla-aware", SlaPlacement, sla_aware=True)

register_migration("none", NoMigration)
register_migration("queue-rebalance", QueueRebalanceMigration)
register_migration("load-balance", LoadBalanceMigration)
register_migration("sla-aware", SlaMigration, sla_aware=True)

register_balancer("headroom", HeadroomBalancer)

register_renegotiation("step", StepRenegotiation)


# observer factories import repro.obs lazily: obs modules import this
# registry at module level (they *are* policy families), so eager
# imports here would be circular
def _telemetry_observer(**kwargs):
    from repro.obs.metrics import TelemetryObserver

    return TelemetryObserver(**kwargs)


def _event_log_observer(**kwargs):
    from repro.obs.events import StructuredEventLog

    return StructuredEventLog(**kwargs)


def _invariant_observer(**kwargs):
    from repro.obs.invariants import InvariantObserver

    return InvariantObserver(**kwargs)


def _perf_observer(**kwargs):
    from repro.obs.profiling import PerfObserver

    return PerfObserver(**kwargs)


def _slo_observer(**kwargs):
    from repro.obs.slo import SloObserver

    return SloObserver(**kwargs)


def _trace_observer(**kwargs):
    from repro.obs.tracing import TraceObserver

    return TraceObserver(**kwargs)


register_observer("telemetry", _telemetry_observer)
register_observer("events", _event_log_observer)
register_observer("invariants", _invariant_observer, sla_aware=True,
                  slo_aware=True)
register_observer("perf", _perf_observer)
register_observer("counting", CountingObserver)
register_observer("slo", _slo_observer, sla_aware=True, slo_aware=True)
register_observer("trace", _trace_observer)

for _service_class in STANDARD_CLASSES:
    register_service_class(_service_class)

register_scenario("steady", steady_fleet, topology="fleet")
register_scenario("heterogeneous-mix", heterogeneous_mix, topology="fleet")
register_scenario("poisson-churn", poisson_churn, topology="fleet")
register_scenario("flash-crowd", flash_crowd, topology="fleet")
register_scenario("sla-churn", sla_churn, topology="fleet")
register_scenario("gold-rush", gold_rush, topology="fleet")
register_scenario("skewed-cluster", skewed_cluster, topology="cluster")
register_scenario("skewed-churn", skewed_churn, topology="cluster")
register_scenario("shard-outage", shard_outage, topology="cluster")
register_scenario("flash-crowd-split", flash_crowd_split, topology="cluster")
register_scenario(
    "sla-skewed-cluster", sla_skewed_cluster, topology="cluster"
)


# the always-on sources live one layer up (repro.horizon imports the
# streams/cluster/sla/obs leaves, never this module), so importing them
# here — after every registry exists — closes the loop without a cycle
from repro.horizon.sources import (  # noqa: E402
    diurnal_cluster,
    diurnal_live,
    drift_cluster,
    drift_live,
    flash_crowd_cluster,
    flash_crowd_live,
)


def _signal_autoscaler(**kwargs):
    from repro.horizon.autoscaler import SignalAutoscaler

    return SignalAutoscaler(**kwargs)


register_autoscaler("signal", _signal_autoscaler, sla_aware=True)

register_scenario(
    "diurnal-live", diurnal_live, topology="fleet", open_ended=True
)
register_scenario(
    "flash-live", flash_crowd_live, topology="fleet", open_ended=True
)
register_scenario(
    "drift-live", drift_live, topology="fleet", open_ended=True
)
register_scenario(
    "diurnal-cluster", diurnal_cluster, topology="cluster", open_ended=True
)
register_scenario(
    "flash-cluster", flash_crowd_cluster, topology="cluster", open_ended=True
)
register_scenario(
    "drift-cluster", drift_cluster, topology="cluster", open_ended=True
)
