"""Lifecycle observers: hooks into the serving loop, zero side effects.

A :class:`RoundObserver` receives the serving loop's lifecycle events —
one ``on_round`` per scheduling round (per shard in a cluster), plus
admission, rejection, migration, and departure events.  Both
:class:`~repro.streams.fleet.FleetRunner` and
:class:`~repro.cluster.runner.ClusterRunner` accept a sequence of
observers and invoke every hook at the matching point of their loops;
the runners never read anything back, so observers cannot change a
run's results (asserted by ``tests/serving/test_serving_observers.py``).

This is the attachment point for windowed long-horizon metrics,
autoscaling controllers, and live dashboards: subclass, override the
hooks you care about (all default to no-ops), and pass the instance to
the runner or to :func:`repro.serving.serve`.

Hook conventions
----------------

* ``shard_id`` is ``None`` for single-pool (fleet) runs and the shard's
  id for cluster runs; ``on_round`` fires once per round per pool, even
  when the pool is idle (``allocations == {}``).
* ``on_admit`` fires when a stream starts (immediately on arrival or
  later from the admission queue); ``on_reject`` when it is finally
  refused; ``on_depart`` when it finishes, with its full
  :class:`~repro.streams.fleet.StreamOutcome`.
* ``on_migrate`` fires once per executed
  :class:`~repro.cluster.migration.MigrationMove` (cluster only).
* ``on_preempt`` fires when priority admission evicts a queued spec,
  immediately before that spec's final ``on_reject`` (the preempted
  stream is still counted exactly once as rejected).
* ``on_capacity`` declares a pool's nominal capacity: once per pool at
  run start (round 0) and again whenever a capacity event resizes a
  shard mid-run.
* ``on_phase`` reports wall-clock phase timings (``"admission"`` /
  ``"arbitration"`` / ``"step"`` per pool; ``"placement"`` /
  ``"migration"`` / ``"balancing"`` cluster-wide).  The runners only
  read the clock when an attached observer actually *overrides*
  ``on_phase`` (see :func:`phase_timing_enabled`), so bare runs pay
  nothing for the hook's existence.
"""

from __future__ import annotations


class RoundObserver:
    """Base lifecycle observer; every hook is a no-op.

    Subclass and override what you need — the runners call every hook
    unconditionally, so overriding none of them observes nothing and
    costs (almost) nothing.
    """

    def on_round(self, round_index, allocations, capacity, shard_id=None):
        """One scheduling round arbitrated on one pool.

        ``allocations`` maps stream id to granted cycles this round
        (empty when the pool had no active sessions); ``capacity`` is
        the pool the arbiter split — the *effective* budget when a
        headroom balancer lent cycles.
        """

    def on_admit(self, spec, round_index, shard_id=None):
        """``spec`` was admitted and its session started this round."""

    def on_reject(self, spec, round_index, shard_id=None):
        """``spec`` was finally rejected (at arrival or queue flush)."""

    def on_preempt(self, spec, round_index, shard_id=None):
        """A queued ``spec`` was evicted by a higher-priority arrival.

        Always followed by the same spec's ``on_reject`` in the same
        round — preemption explains *why* that rejection happened.
        """

    def on_migrate(self, move, round_index):
        """One queued or active migration move was executed."""

    def on_renegotiate(
        self, stream_id, old_target, new_target, round_index, shard_id=None
    ):
        """A session's SLA quality target stepped (down under sustained
        starvation, back up when headroom returned); targets are
        normalized [0, 1] (see :mod:`repro.sla.renegotiation`)."""

    def on_depart(self, outcome, round_index, shard_id=None):
        """A stream finished; ``outcome`` carries its full run result."""

    def on_capacity(self, capacity, round_index, shard_id=None):
        """A pool's nominal capacity was declared (run start) or
        changed (mid-run capacity event)."""

    def on_scale(self, action, round_index):
        """An autoscaler's :class:`~repro.horizon.autoscaler.ScaleAction`
        is about to be applied (cluster only).

        Fires *before* the cluster mutates, with ``action.created``
        filled in with the ids of the shards the action will create; the
        ``on_capacity`` declarations for created (positive capacity) and
        retired (zero capacity) shards, and the ``on_migrate`` events
        for relocated sessions, follow in the same round.
        """

    def on_phase(self, phase, seconds, round_index, shard_id=None):
        """One timed phase of one round took ``seconds`` of wall clock.

        Only fired when at least one attached observer overrides this
        hook — the timings are real (non-deterministic) wall-clock
        measurements, never part of a run's results.
        """


def phase_timing_enabled(observers) -> bool:
    """Does any observer actually override ``on_phase``?

    The runners gate every ``perf_counter`` read on this, so attaching
    counting/event observers (which ignore phases) keeps the loop free
    of clock syscalls and runs stay bit-identical in cost profile.
    """
    base = RoundObserver.on_phase
    return any(
        getattr(type(observer), "on_phase", base) is not base
        for observer in observers
    )


def phase_listeners(observers) -> tuple:
    """The observers that actually override ``on_phase``.

    Runners dispatch phase timings to this subset only: a typical
    telemetry stack has one phase listener among several observers, and
    fanning a few hundred phase reports per run out to base-class
    no-ops is measurable overhead.
    """
    base = RoundObserver.on_phase
    return tuple(
        observer
        for observer in observers
        if getattr(type(observer), "on_phase", base) is not base
    )


class CountingObserver(RoundObserver):
    """Tallies every lifecycle event — the smoke-test observer.

    ``rounds`` counts ``on_round`` invocations (rounds x pools),
    the rest count streams/moves.  Useful as a cheap cross-check that
    runner bookkeeping and observer plumbing agree, and as the simplest
    possible example of the API.
    """

    def __init__(self) -> None:
        self.rounds = 0
        self.admitted = 0
        self.rejected = 0
        self.preempted = 0
        self.migrated = 0
        self.renegotiated = 0
        self.departed = 0
        self.capacity_events = 0
        self.scaled = 0

    def on_round(self, round_index, allocations, capacity, shard_id=None):
        self.rounds += 1

    def on_admit(self, spec, round_index, shard_id=None):
        self.admitted += 1

    def on_reject(self, spec, round_index, shard_id=None):
        self.rejected += 1

    def on_preempt(self, spec, round_index, shard_id=None):
        self.preempted += 1

    def on_migrate(self, move, round_index):
        self.migrated += 1

    def on_renegotiate(
        self, stream_id, old_target, new_target, round_index, shard_id=None
    ):
        self.renegotiated += 1

    def on_depart(self, outcome, round_index, shard_id=None):
        self.departed += 1

    def on_capacity(self, capacity, round_index, shard_id=None):
        self.capacity_events += 1

    def on_scale(self, action, round_index):
        self.scaled += 1

    def counts(self) -> dict:
        return {
            "rounds": self.rounds,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "preempted": self.preempted,
            "migrated": self.migrated,
            "renegotiated": self.renegotiated,
            "departed": self.departed,
            "capacity_events": self.capacity_events,
            "scaled": self.scaled,
        }
