"""Lifecycle observers: hooks into the serving loop, zero side effects.

A :class:`RoundObserver` receives the serving loop's lifecycle events —
one ``on_round`` per scheduling round (per shard in a cluster), plus
admission, rejection, migration, and departure events.  Both
:class:`~repro.streams.fleet.FleetRunner` and
:class:`~repro.cluster.runner.ClusterRunner` accept a sequence of
observers and invoke every hook at the matching point of their loops;
the runners never read anything back, so observers cannot change a
run's results (asserted by ``tests/serving/test_serving_observers.py``).

This is the attachment point for windowed long-horizon metrics,
autoscaling controllers, and live dashboards: subclass, override the
hooks you care about (all default to no-ops), and pass the instance to
the runner or to :func:`repro.serving.serve`.

Hook conventions
----------------

* ``shard_id`` is ``None`` for single-pool (fleet) runs and the shard's
  id for cluster runs; ``on_round`` fires once per round per pool, even
  when the pool is idle (``allocations == {}``).
* ``on_admit`` fires when a stream starts (immediately on arrival or
  later from the admission queue); ``on_reject`` when it is finally
  refused; ``on_depart`` when it finishes, with its full
  :class:`~repro.streams.fleet.StreamOutcome`.
* ``on_migrate`` fires once per executed
  :class:`~repro.cluster.migration.MigrationMove` (cluster only).
"""

from __future__ import annotations


class RoundObserver:
    """Base lifecycle observer; every hook is a no-op.

    Subclass and override what you need — the runners call every hook
    unconditionally, so overriding none of them observes nothing and
    costs (almost) nothing.
    """

    def on_round(self, round_index, allocations, capacity, shard_id=None):
        """One scheduling round arbitrated on one pool.

        ``allocations`` maps stream id to granted cycles this round
        (empty when the pool had no active sessions); ``capacity`` is
        the pool the arbiter split — the *effective* budget when a
        headroom balancer lent cycles.
        """

    def on_admit(self, spec, round_index, shard_id=None):
        """``spec`` was admitted and its session started this round."""

    def on_reject(self, spec, round_index, shard_id=None):
        """``spec`` was finally rejected (at arrival or queue flush)."""

    def on_migrate(self, move, round_index):
        """One queued or active migration move was executed."""

    def on_renegotiate(
        self, stream_id, old_target, new_target, round_index, shard_id=None
    ):
        """A session's SLA quality target stepped (down under sustained
        starvation, back up when headroom returned); targets are
        normalized [0, 1] (see :mod:`repro.sla.renegotiation`)."""

    def on_depart(self, outcome, round_index, shard_id=None):
        """A stream finished; ``outcome`` carries its full run result."""


class CountingObserver(RoundObserver):
    """Tallies every lifecycle event — the smoke-test observer.

    ``rounds`` counts ``on_round`` invocations (rounds x pools),
    the rest count streams/moves.  Useful as a cheap cross-check that
    runner bookkeeping and observer plumbing agree, and as the simplest
    possible example of the API.
    """

    def __init__(self) -> None:
        self.rounds = 0
        self.admitted = 0
        self.rejected = 0
        self.migrated = 0
        self.renegotiated = 0
        self.departed = 0

    def on_round(self, round_index, allocations, capacity, shard_id=None):
        self.rounds += 1

    def on_admit(self, spec, round_index, shard_id=None):
        self.admitted += 1

    def on_reject(self, spec, round_index, shard_id=None):
        self.rejected += 1

    def on_migrate(self, move, round_index):
        self.migrated += 1

    def on_renegotiate(
        self, stream_id, old_target, new_target, round_index, shard_id=None
    ):
        self.renegotiated += 1

    def on_depart(self, outcome, round_index, shard_id=None):
        self.departed += 1

    def counts(self) -> dict:
        return {
            "rounds": self.rounds,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "migrated": self.migrated,
            "renegotiated": self.renegotiated,
            "departed": self.departed,
        }
