"""Skip-over scheduling (Koren & Shasha).

"Another common and simple way to treat CPU overload is to skip an
instance of a task."  The skip-over model allows dropping at most one
instance out of every ``skip_factor`` consecutive instances.  Here the
policy encodes at a deliberately high constant quality and, instead of
adapting the quality, *plans* skips: after an overrun it requests a
skip (encodes nothing) provided the skip distance respects the factor.

The simulation realizes a requested skip as an instantaneous frame
drop, which is what skipping an instance means for the encoder.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

#: Sentinel quality meaning "skip this frame deliberately".
SKIP = -1


class SkipOverPolicy:
    """Fixed quality with planned skips under overload (red-task model)."""

    def __init__(self, quality: int, skip_factor: int = 3):
        if quality < 0:
            raise ConfigurationError("quality must be >= 0")
        if skip_factor < 2:
            raise ConfigurationError(
                "skip_factor must be >= 2 (skip_factor=1 would skip everything)"
            )
        self.quality = quality
        self.skip_factor = skip_factor
        self._since_last_skip = skip_factor  # allowed to skip immediately
        self._want_skip = False

    def next_quality(self) -> int:
        # red-task rule: after a skip, the next (skip_factor - 1)
        # instances must execute before another skip is permitted
        if self._want_skip and self._since_last_skip >= self.skip_factor - 1:
            self._want_skip = False
            self._since_last_skip = 0
            return SKIP
        self._since_last_skip += 1
        return self.quality

    def observe(self, encode_cycles: float, budget: float, period: float) -> None:
        self._want_skip = encode_cycles > period

    def __repr__(self) -> str:
        return f"SkipOverPolicy(quality={self.quality}, skip_factor={self.skip_factor})"
