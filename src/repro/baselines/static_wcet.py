"""The classic hard-real-time static design point.

"When execution times are not precisely known, static computation of
feasible schedules requires the use of worst case execution times.
This may lead to solutions that are far from being optimal, especially
in the case where uncertainty about execution times is high."
(section 2.1)

This module computes that design point: the largest constant quality
level whose *worst-case* cycle load fits the budget.  On the paper's
tables the answer is q=0 for P=320 Mcycles (already q=1's worst-case
frame load is 1620 x 275 kc = 446 Mc, 139 % of P), which wastes ~60 %
of the budget in the average case — the quantitative motivation for
dynamic control.
"""

from __future__ import annotations

from repro.core.cycles import CyclicApplication
from repro.errors import ConfigurationError


def static_wcet_quality(application: CyclicApplication, budget: float) -> int:
    """Largest constant level with worst-case cycle load <= budget."""
    return application.max_sustainable_quality(budget, worst_case=True)


def static_average_quality(application: CyclicApplication, budget: float) -> int:
    """Largest constant level with *average* load <= budget.

    The soft-real-time static design point: efficient on average but
    with no protection against bursts (deadline misses and frame skips
    under load fluctuation) — the other half of the paper's motivation.
    """
    return application.max_sustainable_quality(budget, worst_case=False)


def utilization_at(application: CyclicApplication, quality: int, budget: float) -> float:
    """Average budget utilization of a constant-quality design."""
    if budget <= 0:
        raise ConfigurationError("budget must be positive")
    return application.average_cycle_load(quality) / budget
