"""PID feedback scheduling (Lu et al. style).

"Lu et al. propose a feedback scheduling based on PID controllers, but
deadline misses remain possible."  The policy regulates the measured
per-frame utilization toward a set point by moving a continuous quality
actuator, quantized to the available levels.  Adaptation happens once
per frame — after the damage of an overrun is already done — which is
precisely the reactivity gap the paper's fine-grain controller closes.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class PidFeedbackPolicy:
    """Discrete-quality PID regulator on the utilization error."""

    def __init__(
        self,
        levels: int = 8,
        set_point: float = 0.9,
        kp: float = 4.0,
        ki: float = 1.0,
        kd: float = 0.5,
        initial_quality: int | None = None,
    ):
        if levels < 1:
            raise ConfigurationError("levels must be >= 1")
        if not 0 < set_point <= 1.0:
            raise ConfigurationError("set_point must be in (0, 1]")
        self.levels = levels
        self.set_point = set_point
        self.kp = kp
        self.ki = ki
        self.kd = kd
        self._actuator = float(
            initial_quality if initial_quality is not None else levels // 2
        )
        self._integral = 0.0
        self._previous_error = 0.0

    def next_quality(self) -> int:
        quality = int(round(self._actuator))
        return min(max(quality, 0), self.levels - 1)

    def observe(self, encode_cycles: float, budget: float, period: float) -> None:
        utilization = encode_cycles / period
        error = self.set_point - utilization
        self._integral += error
        # standard anti-windup clamp
        self._integral = min(max(self._integral, -2.0), 2.0)
        derivative = error - self._previous_error
        self._previous_error = error
        delta = self.kp * error + self.ki * self._integral + self.kd * derivative
        self._actuator += delta
        self._actuator = min(max(self._actuator, 0.0), float(self.levels - 1))

    def __repr__(self) -> str:
        return (
            f"PidFeedbackPolicy(set_point={self.set_point}, kp={self.kp}, "
            f"ki={self.ki}, kd={self.kd})"
        )
