"""Baseline QoS/overload-management policies.

The paper's evaluation compares against constant quality (industrial
practice); its related-work section names the broader landscape, which
this package implements so the benches can position the fine-grain
controller against it:

* :mod:`repro.baselines.constant` — fixed quality level (the paper's
  Figs. 6-9 baseline);
* :mod:`repro.baselines.static_wcet` — the classic hard-real-time
  design point: the largest constant quality whose *worst-case* load
  fits the budget (safe but wasteful — the motivation of section 2.1);
* :mod:`repro.baselines.pid_feedback` — feedback scheduling in the
  style of Lu et al.: per-frame PID on the utilization error (deadline
  misses remain possible);
* :mod:`repro.baselines.elastic` — Buttazzo's elastic-task idea mapped
  to quality selection: compress "utilization" until the worst-case
  load fits;
* :mod:`repro.baselines.skip_over` — Koren & Shasha's skip-over:
  deliberately skip instances under overload with a bounded skip factor.

All frame-level policies adapt *between* cycles — exactly the coarse
granularity the paper improves on.
"""

from repro.baselines.base import FrameFeedback, FramePolicy
from repro.baselines.constant import ConstantQualityPolicy
from repro.baselines.elastic import ElasticQualityPolicy
from repro.baselines.pid_feedback import PidFeedbackPolicy
from repro.baselines.skip_over import SkipOverPolicy
from repro.baselines.static_wcet import static_wcet_quality

__all__ = [
    "ConstantQualityPolicy",
    "ElasticQualityPolicy",
    "FrameFeedback",
    "FramePolicy",
    "PidFeedbackPolicy",
    "SkipOverPolicy",
    "static_wcet_quality",
]
