"""Constant quality — the paper's baseline ("standard industrial practice").

The encoder is tuned once (a fixed quality level chosen offline) and
never adapts.  Load fluctuations then surface as buffer overflows
(frame skips) or under-utilization; the paper's Figs. 6-9 plot exactly
this against the controlled encoder.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class ConstantQualityPolicy:
    """Always the same level; ignores all feedback."""

    def __init__(self, quality: int):
        if quality < 0:
            raise ConfigurationError("quality must be >= 0")
        self.quality = int(quality)

    def next_quality(self) -> int:
        return self.quality

    def observe(self, encode_cycles: float, budget: float, period: float) -> None:
        """Industrial practice: nothing is observed, nothing changes."""

    def __repr__(self) -> str:
        return f"ConstantQualityPolicy(quality={self.quality})"
