"""Frame-level policy interface shared by the baseline controllers.

A frame policy proposes one quality level for the *next* frame and is
told, after each encoded frame, how long it actually took relative to
its budget.  This is the coarse-grain adaptation loop of the prior art:
one decision per cycle, no visibility inside the cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol


@dataclass(frozen=True)
class FrameFeedback:
    """What a frame-level policy learns after each encoded frame."""

    encode_cycles: float
    budget: float
    period: float

    @property
    def utilization(self) -> float:
        """Encoding time over the nominal period."""
        return self.encode_cycles / self.period

    @property
    def overran(self) -> bool:
        return self.encode_cycles > self.budget


class FramePolicy(Protocol):
    """One quality decision per frame, adapted from feedback."""

    def next_quality(self) -> int:
        """Quality level for the next frame."""
        ...

    def observe(self, encode_cycles: float, budget: float, period: float) -> None:
        """Feedback after a frame completes."""
        ...
