"""Elastic quality adaptation (Buttazzo et al.'s elastic task model).

"Buttazzo et al. propose the elastic tasks model, but their approach is
based on worst case execution times."  Mapped to our single-task,
quality-parameterized setting: treat the quality level as the task's
elastic utilization knob and *compress* it until the worst-case frame
load fits the period.  Because the test uses worst-case (not average)
times, the policy is safe but chronically conservative — it realizes
the "solutions far from optimal" behaviour the paper describes for
WCET-based design when uncertainty is high.

A mild adaptive element (as in elastic rate adaptation): when observed
load stays well below the period, the policy probes one level up, but
only if that level still passes the worst-case admission test.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError


class ElasticQualityPolicy:
    """WCET-admission-controlled quality selection."""

    def __init__(
        self,
        worst_case_frame_loads: Sequence[float],
        period: float,
        probe_threshold: float = 0.6,
    ):
        """``worst_case_frame_loads[q]`` is the WCET of a whole frame at
        quality ``q``; ``period`` is the cycle budget."""
        if not worst_case_frame_loads:
            raise ConfigurationError("need at least one quality level")
        if period <= 0:
            raise ConfigurationError("period must be positive")
        self.loads = [float(v) for v in worst_case_frame_loads]
        self.period = float(period)
        self.probe_threshold = probe_threshold
        admitted = [q for q, load in enumerate(self.loads) if load <= self.period]
        if not admitted:
            raise ConfigurationError(
                "elastic compression failed: even minimum quality does not "
                "fit the period under worst-case times"
            )
        #: the highest statically admissible level — the classic design point
        self.admissible_quality = admitted[-1]
        self._quality = self.admissible_quality
        self._calm_frames = 0

    def next_quality(self) -> int:
        return self._quality

    def observe(self, encode_cycles: float, budget: float, period: float) -> None:
        utilization = encode_cycles / period
        if utilization > 1.0:
            # compress: worst-case admission proved wrong only if the
            # contract was violated, but elastic adapts downward anyway
            self._quality = max(0, self._quality - 1)
            self._calm_frames = 0
        elif utilization < self.probe_threshold:
            self._calm_frames += 1
            if self._calm_frames >= 5 and self._quality < self.admissible_quality:
                self._quality += 1
                self._calm_frames = 0
        else:
            self._calm_frames = 0

    def __repr__(self) -> str:
        return f"ElasticQualityPolicy(admissible={self.admissible_quality})"
