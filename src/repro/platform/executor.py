"""Stochastic action executor.

Bridges the controller (which decides *what* to run and at *which*
quality) and the timing model (which decides *how long* it actually
takes).  A load function can modulate per-action means to model
content-dependent effort — e.g. motion activity driving
``Motion_Estimate`` toward its worst case on action-movie content.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.platform.distributions import TimingModel

#: ``load(action, index) -> scale`` — multiplicative mean modulation.
LoadFunction = Callable[[str, int], float]


class StochasticExecutor:
    """Draws actual execution times for (action, quality) requests.

    Parameters
    ----------
    timing_model:
        Per-(action, quality) bounded distributions.
    rng:
        numpy Generator (seed it for reproducible runs).
    load:
        Optional mean modulation; defaults to constant 1.
    """

    def __init__(
        self,
        timing_model: TimingModel,
        rng: np.random.Generator,
        load: LoadFunction | None = None,
    ) -> None:
        self.timing_model = timing_model
        self.rng = rng
        self.load = load
        self._executed = 0

    @property
    def executed_actions(self) -> int:
        """How many action executions this executor has served."""
        return self._executed

    def execute(self, action: str, quality: int) -> float:
        """Run one action; returns its actual duration in cycles."""
        scale = self.load(action, self._executed) if self.load is not None else 1.0
        duration = self.timing_model.sample(self.rng, action, quality, scale)
        self._executed += 1
        return duration

    def __call__(self, action: str, quality: int) -> float:
        """Alias so an executor can serve as a controller time source."""
        return self.execute(action, quality)


def fixed_fraction_executor(system, fraction: float):
    """A deterministic executor: every action takes ``fraction * Cwc_q``.

    Useful for adversarial tests (``fraction = 1`` is the worst case the
    safety proof covers).
    """

    def source(action: str, quality: int) -> float:
        return fraction * system.worst_times.time(action, quality)

    return source


def average_time_executor(system):
    """A deterministic executor running exactly at the published averages."""

    def source(action: str, quality: int) -> float:
        return system.average_times.time(action, quality)

    return source


def seeded_rng(seed: int) -> np.random.Generator:
    """The library-wide convention for reproducible generators."""
    return np.random.default_rng(np.random.SeedSequence(seed))
