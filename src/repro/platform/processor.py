"""Single-core processor simulation with controller-overhead accounting.

Runs one application cycle on a simulated single processor "without OS"
(section 3): actions execute atomically back-to-back; between actions
the (compiled) controller runs for a configurable number of cycles —
the instrumentation cost whose total the paper reports as <1.5 % of the
runtime.

The processor works with any controller exposing the
``start_cycle/decide/record_completion/done`` protocol (both
:class:`~repro.core.controller.ReferenceController` and
:class:`~repro.core.fast_controller.TableDrivenController`), or with no
controller at all (constant-quality baseline execution).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.sequences import INFINITY
from repro.platform.clock import CycleClock
from repro.platform.trace import ActionEvent, ExecutionTrace


@dataclass(frozen=True)
class CycleExecution:
    """Outcome of one application cycle on the processor."""

    total_cycles: float
    action_cycles: float
    controller_cycles: float
    qualities: tuple[int, ...]
    deadline_misses: int
    trace: ExecutionTrace | None

    @property
    def overhead_ratio(self) -> float:
        """Controller cycles as a fraction of the total (the <1.5 % claim)."""
        if self.total_cycles == 0:
            return 0.0
        return self.controller_cycles / self.total_cycles


class Processor:
    """A single-core, cycle-accounting platform.

    Parameters
    ----------
    decision_overhead:
        Cycles charged for every controller decision (table lookup +
        compare; default 200 cycles, of the order of a few hundred
        instructions on the paper's platform).
    boundary_overhead:
        Cycles charged at every action boundary even without a fresh
        decision (reading the cycle register and dispatching; default 40).
    """

    def __init__(
        self, decision_overhead: float = 200.0, boundary_overhead: float = 40.0
    ):
        self.decision_overhead = float(decision_overhead)
        self.boundary_overhead = float(boundary_overhead)

    def run_controlled_cycle(
        self,
        controller,
        executor,
        deadline_of=None,
        deadline_shift: float = 0.0,
        start_time: float = 0.0,
        keep_trace: bool = True,
    ) -> CycleExecution:
        """Execute a full cycle under a controller.

        ``executor(action, quality) -> duration``; ``deadline_of``
        (optional) supplies absolute deadlines for miss accounting in
        the trace (relative to cycle start, before the shift).
        """
        clock = CycleClock(start_time)
        trace = ExecutionTrace() if keep_trace else None
        if _accepts_shift(controller):
            controller.start_cycle(deadline_shift)
        elif deadline_shift != 0.0:
            raise TypeError(
                "this controller does not support per-cycle deadline shifts"
            )
        else:
            controller.start_cycle()
        controller_cycles = 0.0
        action_cycles = 0.0
        qualities: list[int] = []
        misses = 0
        while not controller.done:
            decision = controller.decide()
            fresh = getattr(decision, "fresh", True)
            cost = self.decision_overhead if fresh else self.boundary_overhead
            controller_cycles += cost
            clock.advance(cost)
            duration = executor(decision.action, decision.quality)
            start = clock.now
            clock.advance(duration)
            action_cycles += duration
            qualities.append(decision.quality)
            deadline = INFINITY
            if deadline_of is not None:
                deadline = deadline_of(decision.action) + deadline_shift + start_time
            if clock.now > deadline:
                misses += 1
            if trace is not None:
                trace.record(
                    ActionEvent(
                        action=decision.action,
                        quality=decision.quality,
                        start=start,
                        duration=duration,
                        deadline=deadline,
                    )
                )
            # The controller's notion of elapsed time must track the real
            # cycle register, so the instrumentation cost charged before
            # the action is included in what it observes.
            controller.record_completion(duration + cost)
        return CycleExecution(
            total_cycles=clock.now - start_time,
            action_cycles=action_cycles,
            controller_cycles=controller_cycles,
            qualities=tuple(qualities),
            deadline_misses=misses,
            trace=trace,
        )

    def run_constant_cycle(
        self,
        schedule,
        quality: int,
        executor,
        deadline_of=None,
        start_time: float = 0.0,
        keep_trace: bool = True,
    ) -> CycleExecution:
        """Execute a cycle at a fixed quality with no controller at all."""
        clock = CycleClock(start_time)
        trace = ExecutionTrace() if keep_trace else None
        action_cycles = 0.0
        misses = 0
        for action in schedule:
            duration = executor(action, quality)
            start = clock.now
            clock.advance(duration)
            action_cycles += duration
            deadline = INFINITY
            if deadline_of is not None:
                deadline = deadline_of(action) + start_time
            if clock.now > deadline:
                misses += 1
            if trace is not None:
                trace.record(
                    ActionEvent(
                        action=action,
                        quality=quality,
                        start=start,
                        duration=duration,
                        deadline=deadline,
                    )
                )
        return CycleExecution(
            total_cycles=clock.now - start_time,
            action_cycles=action_cycles,
            controller_cycles=0.0,
            qualities=tuple([quality] * len(schedule)),
            deadline_misses=misses,
            trace=trace,
        )


def _accepts_shift(controller) -> bool:
    """Does the controller's start_cycle take a deadline shift?"""
    import inspect

    try:
        signature = inspect.signature(controller.start_cycle)
    except (TypeError, ValueError):
        return False
    return "deadline_shift" in signature.parameters
