"""Execution-platform simulator.

Substitute for the paper's eliXim-simulated XiRisc processor: a
single-core, cycle-accounting platform on which actions execute
atomically and actual execution times are drawn from bounded
distributions (``mean ~ Cav_q``, ``max <= Cwc_q``), optionally modulated
by content-dependent load.
"""

from repro.platform.clock import CycleClock, MEGA, cycles, mcycles
from repro.platform.distributions import BoundedTimeDistribution, TimingModel
from repro.platform.executor import StochasticExecutor
from repro.platform.processor import CycleExecution, Processor
from repro.platform.trace import ActionEvent, ExecutionTrace

__all__ = [
    "ActionEvent",
    "BoundedTimeDistribution",
    "CycleClock",
    "CycleExecution",
    "ExecutionTrace",
    "MEGA",
    "Processor",
    "StochasticExecutor",
    "TimingModel",
    "cycles",
    "mcycles",
]
