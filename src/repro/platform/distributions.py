"""Bounded execution-time distributions.

The paper's method assumes only that actual execution times satisfy
``C <= Cwc_theta`` and that ``Cav_q`` estimates their averages.  The
platform simulator realizes this with scaled Beta distributions:

* support ``[floor, Cwc]`` where ``floor = floor_fraction * Cav``
  (an action never finishes faster than a fixed fraction of its
  average — there is always some irreducible work);
* mean ``scale * Cav`` clipped into the support, where ``scale`` is a
  content-dependent load factor (e.g. motion activity for
  ``Motion_Estimate``) with benchmark-wide expectation ~1;
* a concentration parameter controlling how heavy the spread is
  (small concentration = wild, bursty times — high uncertainty between
  average and worst case, which is exactly the regime the paper targets).

Degenerate case: when ``Cav == Cwc`` the time is deterministic
(the paper's ``Discrete_Cosine_Transform`` and ``Intra_Predict`` have
equal average and worst case in Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BoundedTimeDistribution:
    """A Beta law scaled to ``[floor, ceiling]`` with a target mean.

    Parameters
    ----------
    average:
        Nominal mean (``Cav``); the realized mean is ``scale * average``
        clipped into the open support.
    ceiling:
        Hard upper bound (``Cwc``) — never exceeded.
    floor_fraction:
        ``floor = floor_fraction * average``.
    concentration:
        Beta concentration ``kappa = a + b``; larger is tighter.
    """

    average: float
    ceiling: float
    floor_fraction: float = 0.2
    concentration: float = 8.0

    def __post_init__(self) -> None:
        if self.average < 0 or self.ceiling < 0:
            raise ConfigurationError("times must be non-negative")
        if self.average > self.ceiling:
            raise ConfigurationError(
                f"average {self.average} exceeds ceiling {self.ceiling}"
            )
        if not 0.0 <= self.floor_fraction <= 1.0:
            raise ConfigurationError(
                f"floor_fraction must be in [0, 1], got {self.floor_fraction}"
            )
        if self.concentration <= 0:
            raise ConfigurationError("concentration must be positive")

    @property
    def floor(self) -> float:
        return self.floor_fraction * self.average

    @property
    def deterministic(self) -> bool:
        """True when the law collapses to a point mass at ``average``."""
        return self.average == self.ceiling

    def _mean_fraction(self, scale: float) -> float:
        """Target mean as a fraction of the support, clipped away from 0/1."""
        span = self.ceiling - self.floor
        target = min(max(scale * self.average, self.floor), self.ceiling)
        fraction = (target - self.floor) / span
        return min(max(fraction, 0.02), 0.98)

    def sample(self, rng: np.random.Generator, scale: float = 1.0) -> float:
        """One draw; guaranteed ``<= ceiling`` and ``>= floor``."""
        if self.deterministic:
            return self.average
        mu = self._mean_fraction(scale)
        a = mu * self.concentration
        b = (1.0 - mu) * self.concentration
        return self.floor + (self.ceiling - self.floor) * float(rng.beta(a, b))

    def sample_many(
        self, rng: np.random.Generator, count: int, scales: np.ndarray | float = 1.0
    ) -> np.ndarray:
        """Vectorized draws, one per entry of ``scales`` (or ``count`` @ scalar)."""
        if self.deterministic:
            return np.full(count, self.average)
        scales = np.broadcast_to(np.asarray(scales, dtype=np.float64), (count,))
        span = self.ceiling - self.floor
        target = np.clip(scales * self.average, self.floor, self.ceiling)
        mu = np.clip((target - self.floor) / span, 0.02, 0.98)
        a = mu * self.concentration
        b = (1.0 - mu) * self.concentration
        return self.floor + span * rng.beta(a, b)


class TimingModel:
    """Per-(action, quality) distributions derived from a system's tables.

    Builds one :class:`BoundedTimeDistribution` per action and quality
    level from ``Cav_q`` / ``Cwc_q``; the executor samples actual times
    from it.  ``E[C] = Cav`` at ``scale = 1`` (up to the clipping of the
    mean into the support).
    """

    def __init__(
        self,
        average_times,
        worst_times,
        quality_set,
        floor_fraction: float = 0.2,
        concentration: float = 8.0,
    ) -> None:
        self._distributions: dict[tuple[str, int], BoundedTimeDistribution] = {}
        for action in average_times.actions():
            for q in quality_set:
                self._distributions[(action, q)] = BoundedTimeDistribution(
                    average=average_times.time(action, q),
                    ceiling=worst_times.time(action, q),
                    floor_fraction=floor_fraction,
                    concentration=concentration,
                )
        self._quality_set = quality_set

    def distribution(self, action: str, quality: int) -> BoundedTimeDistribution:
        """The law of one (base) action at one level."""
        key = (action, quality)
        if key not in self._distributions:
            from repro.core.action import split_iterated_action

            base, _ = split_iterated_action(action)
            key = (base, quality)
        try:
            return self._distributions[key]
        except KeyError:
            raise ConfigurationError(
                f"no timing distribution for action {action!r} at q={quality}"
            ) from None

    def sample(
        self, rng: np.random.Generator, action: str, quality: int, scale: float = 1.0
    ) -> float:
        return self.distribution(action, quality).sample(rng, scale)
