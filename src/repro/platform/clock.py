"""Cycle arithmetic and the platform clock.

The paper's time unit is one CPU cycle of an 8 GHz XiRisc; quantities in
the evaluation are given in Mcycles (e.g. the frame period
``P = 320 Mcycle``).  Times in this library are plain floats counting
cycles; this module provides the unit helpers and a monotonic cycle
counter ("a register counting the number of cycles elapsed", section 3).
"""

from __future__ import annotations

from repro.errors import ConfigurationError

#: One Mcycle (the unit of the paper's figures).
MEGA: float = 1_000_000.0


def mcycles(value: float) -> float:
    """Convert Mcycles to cycles: ``mcycles(320) == 320e6``."""
    return value * MEGA


def cycles(value: float) -> float:
    """Identity helper for readability when mixing units."""
    return float(value)


class CycleClock:
    """A monotonic cycle counter.

    The generated controller reads such a register at every action
    boundary; the simulator advances it explicitly.
    """

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ConfigurationError(f"clock cannot start at negative time {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current cycle count."""
        return self._now

    def advance(self, delta: float) -> float:
        """Advance by ``delta >= 0`` cycles; returns the new time."""
        if delta < 0:
            raise ConfigurationError(f"clock cannot go backwards (delta {delta})")
        self._now += delta
        return self._now

    def advance_to(self, instant: float) -> float:
        """Advance to an absolute instant (no-op if already past it)."""
        if instant > self._now:
            self._now = instant
        return self._now

    def reset(self, start: float = 0.0) -> None:
        if start < 0:
            raise ConfigurationError(f"clock cannot reset to negative time {start}")
        self._now = float(start)
