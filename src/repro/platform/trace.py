"""Execution traces.

Records what actually happened on the platform: which action ran, at
which quality, when, for how long, and against which deadline.  Used by
the metrics module, the timing-analysis profiler (which estimates
``Cav``/``Cwc`` tables back from traces), and the tests that check
Proposition 2.1 on simulated runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.sequences import INFINITY


@dataclass(frozen=True)
class ActionEvent:
    """One atomic action execution."""

    action: str
    quality: int
    start: float
    duration: float
    deadline: float = INFINITY

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def missed_deadline(self) -> bool:
        return self.end > self.deadline


@dataclass
class ExecutionTrace:
    """An append-only sequence of :class:`ActionEvent`."""

    events: list[ActionEvent] = field(default_factory=list)

    def record(self, event: ActionEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[ActionEvent]:
        return iter(self.events)

    @property
    def total_time(self) -> float:
        """Busy time (sum of durations; the platform is single-core)."""
        return sum(e.duration for e in self.events)

    @property
    def makespan(self) -> float:
        """Wall-clock span from first start to last end."""
        if not self.events:
            return 0.0
        return max(e.end for e in self.events) - min(e.start for e in self.events)

    def misses(self) -> list[ActionEvent]:
        """Events that completed after their deadline."""
        return [e for e in self.events if e.missed_deadline]

    def by_action(self, action: str) -> list[ActionEvent]:
        return [e for e in self.events if e.action == action]

    def durations_by_base_action(self) -> dict[str, list[float]]:
        """Durations grouped by base action name (profiling view)."""
        from repro.core.action import split_iterated_action

        grouped: dict[str, list[float]] = {}
        for event in self.events:
            base, _ = split_iterated_action(event.action)
            grouped.setdefault(base, []).append(event.duration)
        return grouped

    def quality_trace(self) -> list[int]:
        return [e.quality for e in self.events]
