"""The cluster runner: many shards, one placement brain, optional
migration and headroom rebalancing.

:class:`ClusterRunner` drives a
:class:`~repro.cluster.scenarios.ClusterScenario` round by round:

1. capacity events scheduled for this round hit their shards;
2. arrivals are routed to a shard by the
   :class:`~repro.cluster.placement.PlacementPolicy` and offered to
   that shard's admission gate (a single shot — a bad placement *is*
   the rejection, which is what the placement comparison measures);
3. the :class:`~repro.cluster.migration.MigrationPolicy` plans moves
   (queued specs toward headroom, starved sessions off overloaded
   shards) and the runner executes them;
4. shards re-examine their admission queues;
5. the optional :class:`HeadroomBalancer` — an arbiter of arbiters —
   computes this round's effective per-shard budgets by lending idle
   shards' spare cycles to overloaded ones (total conserved);
6. every shard arbitrates its (effective) budget and steps its
   sessions one scheduling round.

The run is deterministic for a fixed scenario; the result aggregates
per-shard :class:`~repro.streams.fleet.FleetResult`s into cluster
metrics — global acceptance ratio, per-stream and cross-shard Jain
fairness, load imbalance, migration counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from time import perf_counter

import numpy as np

from repro.analysis.metrics import jain_fairness_index, load_imbalance
from repro.cluster.migration import MigrationMove, MigrationPolicy
from repro.cluster.placement import PlacementPolicy
from repro.cluster.scenarios import ClusterScenario
from repro.cluster.shard import Shard
from repro.engine import validate_engine
from repro.errors import ConfigurationError
from repro.streams.admission import AdmissionController, qmin_demand
from repro.streams.arbiter import CapacityArbiter, make_arbiter
from repro.streams.fleet import (
    FleetResult,
    class_breakdown,
    cross_class_fairness,
)


class HeadroomBalancer:
    """The arbiter-of-arbiters: lend idle shards' cycles per round.

    Each round, a shard whose active demand sits below its capacity
    donates ``lend_fraction`` of the spare into a pool; the pool is
    split across shards whose demand exceeds capacity, proportionally
    to their deficit.  The total budget is conserved and no shard drops
    below what its own sessions can use, so admission guarantees
    (committed against *nominal* shard capacity) are never violated by
    the lending — it only moves cycles that would have idled.
    """

    def __init__(self, lend_fraction: float = 0.9) -> None:
        if not 0.0 <= lend_fraction <= 1.0:
            raise ConfigurationError("lend_fraction must be in [0, 1]")
        self.lend_fraction = lend_fraction
        self.lent_cycles = 0.0

    def reset(self) -> None:
        self.lent_cycles = 0.0

    def effective_capacities(self, shards: list[Shard]) -> dict[str, float]:
        effective = {s.shard_id: s.capacity for s in shards}
        pool = 0.0
        deficits: dict[str, float] = {}
        for shard in shards:
            demand = shard.active_demand
            spare = shard.capacity - demand
            if spare > 0:
                lend = self.lend_fraction * spare
                effective[shard.shard_id] -= lend
                pool += lend
            elif spare < 0:
                deficits[shard.shard_id] = -spare
        total_deficit = sum(deficits.values())
        if pool <= 0 or total_deficit <= 0:
            return {s.shard_id: s.capacity for s in shards}
        granted = min(pool, total_deficit)
        for shard_id, deficit in deficits.items():
            effective[shard_id] += granted * deficit / total_deficit
        # undistributed surplus returns to the donors pro rata
        leftover = pool - granted
        if leftover > 0:
            spares = {
                s.shard_id: max(0.0, s.capacity - s.active_demand)
                for s in shards
            }
            total_spare = sum(spares.values())
            for shard_id, spare in spares.items():
                effective[shard_id] += leftover * spare / total_spare
        self.lent_cycles += granted
        return effective


@dataclass
class ClusterResult:
    """Everything a cluster run produced, per shard and aggregated."""

    scenario_name: str
    placement_name: str
    migration_name: str
    total_capacity: float
    balancer_name: str = "none"
    rounds: int = 0
    shard_results: list[FleetResult] = field(default_factory=list)
    migrations: list[MigrationMove] = field(default_factory=list)
    shard_demand_cycles: list[float] = field(default_factory=list)
    lent_cycles: float = 0.0
    #: provisioned capacity summed over rounds (cycles x rounds) — what
    #: a statically provisioned cluster "pays for"; the autoscaler
    #: benchmarks compare this across provisioning strategies
    capacity_rounds: float = 0.0
    #: scale actions the autoscaler applied (empty without one)
    scale_actions: list = field(default_factory=list)

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self.shard_results)

    @property
    def served_count(self) -> int:
        return sum(r.served_count for r in self.shard_results)

    @property
    def rejected_count(self) -> int:
        return sum(r.rejected_count for r in self.shard_results)

    @property
    def acceptance_ratio(self) -> float:
        offered = self.served_count + self.rejected_count
        return self.served_count / offered if offered else 1.0

    @property
    def preempted_count(self) -> int:
        return sum(r.preempted_count for r in self.shard_results)

    def total_renegotiations(self) -> int:
        return sum(r.total_renegotiations() for r in self.shard_results)

    def per_class(self) -> dict[str, dict]:
        """Per-service-class metrics across every shard (see
        :func:`repro.streams.fleet.class_breakdown`)."""
        return class_breakdown(
            [o for r in self.shard_results for o in r.streams],
            [s for r in self.shard_results for s in r.rejected],
            [s for r in self.shard_results for s in r.preempted],
        )

    def fairness_cross_class(self) -> float:
        """Jain index over per-class mean quality, cluster-wide."""
        return cross_class_fairness(self.per_class())

    @property
    def migration_count(self) -> int:
        return len(self.migrations)

    @property
    def active_migration_count(self) -> int:
        return sum(1 for m in self.migrations if m.kind == "active")

    def per_stream_quality(self) -> list[float]:
        values: list[float] = []
        for result in self.shard_results:
            values.extend(result.per_stream_quality())
        return values

    def per_shard_quality(self) -> list[float]:
        """Mean served quality per shard (nan for idle shards)."""
        return [r.mean_quality() for r in self.shard_results]

    def fairness_streams(self) -> float:
        """Jain index over every served stream's mean quality."""
        return jain_fairness_index(self.per_stream_quality())

    def fairness_cross_shard(self) -> float:
        """Jain index over per-shard mean quality — the cluster-level
        quality-fair-delivery criterion (idle shards excluded: an
        unused pool is a placement problem, measured by imbalance)."""
        values = [v for v in self.per_shard_quality() if not math.isnan(v)]
        return jain_fairness_index(values)

    def load_imbalance(self) -> float:
        """Peak-to-mean realized shard load (1.0 = perfectly balanced)."""
        return load_imbalance(self.shard_demand_cycles)

    def mean_quality(self) -> float:
        values = [v for v in self.per_stream_quality() if np.isfinite(v)]
        return float(np.mean(values)) if values else math.nan

    def total_skips(self) -> int:
        return sum(r.total_skips() for r in self.shard_results)

    def total_frames(self) -> int:
        return sum(r.total_frames() for r in self.shard_results)

    def summary(self) -> dict:
        """Headline numbers for reports and assertions."""
        return {
            "scenario": self.scenario_name,
            "placement": self.placement_name,
            "migration": self.migration_name,
            "balancer": self.balancer_name,
            "shards": self.shard_count,
            "capacity": self.total_capacity,
            "rounds": self.rounds,
            "served": self.served_count,
            "rejected": self.rejected_count,
            "preempted": self.preempted_count,
            "renegotiations": self.total_renegotiations(),
            "acceptance_ratio": round(self.acceptance_ratio, 4),
            "migrations": self.migration_count,
            "active_migrations": self.active_migration_count,
            "scale_actions": len(self.scale_actions),
            "capacity_rounds": round(self.capacity_rounds, 3),
            "frames": self.total_frames(),
            "skips": self.total_skips(),
            "mean_quality": round(self.mean_quality(), 3),
            "fairness_streams": round(self.fairness_streams(), 4),
            "fairness_cross_shard": round(self.fairness_cross_shard(), 4),
            "load_imbalance": round(self.load_imbalance(), 4),
        }


def build_shards(
    capacities,
    arbiter: str | CapacityArbiter = "quality-fair",
    admission: bool = True,
    admission_mode: str = "average",
    constraint_mode: str = "both",
    granularity: int = 1,
    admission_factory=None,
    service_classes=None,
    renegotiation=None,
    engine: str = "scalar",
) -> list[Shard]:
    """Convenience: one shard per capacity, fresh arbiter + admission each.

    ``admission_factory`` (called as ``factory(capacity)``) overrides
    the default per-shard :class:`AdmissionController` — the serving
    layer uses it to build registry-selected admission gates; returning
    ``None`` leaves that shard ungated.  ``service_classes`` and
    ``renegotiation`` are passed through to every shard (the SLA
    session settings, see :class:`~repro.cluster.shard.Shard`).
    """
    shards = []
    for i, capacity in enumerate(capacities):
        # arbiters are stateless (allocate is pure), so one instance
        # may serve every shard
        shard_arbiter = (
            make_arbiter(arbiter) if isinstance(arbiter, str) else arbiter
        )
        if admission_factory is not None:
            gate = admission_factory(capacity)
        elif admission:
            gate = AdmissionController(capacity, mode=admission_mode)
        else:
            gate = None
        shards.append(
            Shard(
                shard_id=f"shard-{i}",
                capacity=capacity,
                arbiter=shard_arbiter,
                admission=gate,
                constraint_mode=constraint_mode,
                granularity=granularity,
                service_classes=service_classes,
                renegotiation=renegotiation,
                engine=engine,
            )
        )
    return shards


class ClusterRunner:
    """Round-robin concurrent serving across many shards.

    Parameters
    ----------
    placement:
        The :class:`PlacementPolicy` routing arrivals to shards.
    migration:
        Optional :class:`MigrationPolicy` (``None`` = streams never
        move).
    balancer:
        Optional :class:`HeadroomBalancer` lending idle capacity
        between shards each round.
    observers:
        :class:`~repro.serving.observers.RoundObserver` instances whose
        hooks fire per shard (``on_round`` / ``on_admit`` /
        ``on_reject`` / ``on_depart``, with the shard's id) and per
        executed migration move (``on_migrate``).  Observers are never
        read back, so they cannot change results.
    engine:
        Session execution engine (see :mod:`repro.engine`):
        ``"scalar"`` steps shards (and their sessions) sequentially one
        by one; ``"vectorized"`` batches each shard's sessions through
        the numpy kernel; ``"parallel"`` additionally steps independent
        shards concurrently on a worker pool that synchronizes only at
        the :class:`HeadroomBalancer` barrier, with observer events
        buffered per shard and replayed in scalar order.  The knob is
        pushed onto every shard at the start of each run (like
        ``observers``), so it also applies to caller-provided shards.
        All engines are bit-identical.
    shard_kwargs:
        Passed to :func:`build_shards` (arbiter, admission, ...).
    """

    def __init__(
        self,
        placement: PlacementPolicy,
        migration: MigrationPolicy | None = None,
        balancer: HeadroomBalancer | None = None,
        max_rounds: int = 100_000,
        observers=(),
        engine: str = "scalar",
        autoscaler=None,
        **shard_kwargs,
    ) -> None:
        if max_rounds < 1:
            raise ConfigurationError("max_rounds must be >= 1")
        self.placement = placement
        self.migration = migration
        self.balancer = balancer
        self.max_rounds = max_rounds
        self.observers = tuple(observers)
        self.engine = validate_engine(engine)
        self.autoscaler = autoscaler
        self.shard_kwargs = shard_kwargs
        self._scale_serial = 0
        self._action_serial = 0

    def reset(self) -> None:
        """Restore the just-constructed state for another ``run``.

        Clears every policy's cross-run memory (placement rotation,
        migration residency records, balancer lending tally, autoscaler
        telemetry).  ``run`` calls this on entry, so back-to-back runs
        on one instance are bit-identical to fresh-runner runs; it is
        public so callers holding a runner can also discard state
        explicitly.
        """
        self.placement.reset()
        if self.migration is not None:
            self.migration.reset()
        if self.balancer is not None:
            self.balancer.reset()
        if self.autoscaler is not None:
            self.autoscaler.reset()
        self._scale_serial = 0
        self._action_serial = 0

    def run(
        self,
        scenario: ClusterScenario,
        shards: list[Shard] | None = None,
    ) -> ClusterResult:
        """Serve the whole cluster scenario to completion.

        ``shards`` overrides the default :func:`build_shards` pools
        (they must match the scenario's shard count).
        """
        # a run is self-contained: replaying the same scenario on the
        # same runner must reproduce it exactly
        self.reset()
        if shards is None:
            shards = build_shards(scenario.shard_capacities, **self.shard_kwargs)
        if len(shards) != scenario.shard_count:
            raise ConfigurationError(
                f"scenario expects {scenario.shard_count} shards, "
                f"got {len(shards)}"
            )
        # the autoscaler's signal source (usually its private telemetry
        # observer) rides along with the caller's observers so it sees
        # every hook on every shard
        observers = self.observers
        if self.autoscaler is not None:
            signal_observer = self.autoscaler.observer()
            if signal_observer is not None:
                observers = observers + (signal_observer,)
        for shard in shards:
            shard.observers = observers
            shard.engine = self.engine
        timed = False
        phase_observers: tuple = ()
        if observers:
            # imported lazily — the cluster layer never depends on
            # repro.serving at import time
            from repro.serving.observers import phase_listeners

            phase_observers = phase_listeners(observers)
            timed = bool(phase_observers)
            for shard in shards:
                for observer in observers:
                    observer.on_capacity(
                        shard.capacity, 0, shard_id=shard.shard_id
                    )
        result = ClusterResult(
            scenario_name=scenario.name,
            placement_name=getattr(
                self.placement, "name", type(self.placement).__name__
            ),
            migration_name=(
                getattr(self.migration, "name", type(self.migration).__name__)
                if self.migration is not None
                else "none"
            ),
            total_capacity=scenario.total_capacity,
            balancer_name=(
                "headroom" if self.balancer is not None else "none"
            ),
        )
        by_id = {s.shard_id: s for s in shards}
        arrivals = scenario.arrivals
        open_ended = bool(getattr(scenario, "open_ended", False))
        if open_ended:
            # max_rounds is the *stop condition*: the last arrival round
            # is horizon, then cameras shut down and the backlog drains
            horizon = self.max_rounds - 1
        else:
            horizon = max(arrivals.last_arrival_round, scenario.last_event_round)
        # shards the autoscaler retired mid-run; their serving history
        # still counts in the aggregate result
        retired: list[Shard] = []
        executor = None
        if self.engine == "parallel" and len(shards) > 1:
            # one worker pool per run; shards share no mutable state,
            # so each round's shard steps are independent between the
            # balancer barrier and the next round's placement phase
            import os
            from concurrent.futures import ThreadPoolExecutor

            executor = ThreadPoolExecutor(
                max_workers=min(len(shards), os.cpu_count() or 2),
                thread_name_prefix="shard-step",
            )
        try:
            round_index = self._serve_rounds(
                scenario, shards, by_id, arrivals, horizon, timed, result,
                executor, observers, phase_observers, open_ended, retired,
            )
        finally:
            if executor is not None:
                executor.shutdown(wait=True)
        result.rounds = round_index
        result.shard_results = [
            s.result(scenario.name, round_index) for s in shards + retired
        ]
        result.shard_demand_cycles = [
            s.demand_cycles for s in shards + retired
        ]
        if self.balancer is not None:
            result.lent_cycles = self.balancer.lent_cycles
        return result

    def _serve_rounds(
        self, scenario, shards, by_id, arrivals, horizon, timed, result,
        executor, observers, phase_observers, open_ended, retired,
    ) -> int:
        """The round loop of :meth:`run`; returns the rounds served."""
        round_index = 0
        # the drain tail of an open-ended run extends past the stop
        # round, so the runaway valve has to sit beyond it
        round_limit = (
            2 * self.max_rounds + 1000 if open_ended else self.max_rounds
        )
        # capacity events address shards by scenario index; autoscaled
        # shards come and go, so keep the original index mapping stable
        event_targets: list[Shard] = list(shards)
        while round_index <= horizon or any(s.busy for s in shards):
            if round_index >= round_limit:
                raise ConfigurationError(
                    f"cluster exceeded max_rounds={self.max_rounds}"
                    + (
                        " (open-ended drain did not converge)"
                        if open_ended
                        else ""
                    )
                )
            draining = open_ended and round_index > horizon
            # 1. capacity events (admission re-checks its queue below:
            # an event changes feasibility without any release)
            event_shards: set[str] = set()
            for event in scenario.events_at(round_index):
                shard = event_targets[event.shard_index]
                if shard not in shards:
                    continue  # the autoscaler retired this pool
                shard.set_capacity(shard.nominal_capacity * event.factor)
                event_shards.add(shard.shard_id)
                for observer in observers:
                    observer.on_capacity(
                        shard.capacity, round_index, shard_id=shard.shard_id
                    )
            # 1b. open-ended stop condition reached: cameras stop, the
            # wait queues flush (nothing behind them will be served)
            if draining:
                for shard in shards:
                    shard.shutdown_sessions()
                    shard.flush_queue(round_index)
            # 2. arrivals through placement + shard admission
            t0 = perf_counter() if timed else 0.0
            if not draining:
                for spec in arrivals.arrivals_at(round_index):
                    shard = self.placement.choose(spec, shards, round_index)
                    shard.offer(spec, round_index)
            if timed:
                now = perf_counter()
                for observer in phase_observers:
                    observer.on_phase("placement", now - t0, round_index)
                t0 = now
            # 3. migration
            if self.migration is not None:
                moves = self.migration.plan(shards, round_index)
                for move in moves:
                    if self._execute(move, by_id, round_index):
                        result.migrations.append(move)
                        for observer in observers:
                            observer.on_migrate(move, round_index)
                if timed:
                    now = perf_counter()
                    for observer in phase_observers:
                        observer.on_phase("migration", now - t0, round_index)
            # 4. queued streams that now fit start
            if not draining:
                for shard in shards:
                    shard.admit_queued(
                        round_index, force=shard.shard_id in event_shards
                    )
            # stuck queues: nothing active anywhere, no arrivals or
            # events left — nothing will ever free capacity, flush
            if (
                not open_ended
                and round_index > horizon
                and not any(s.active for s in shards)
            ):
                for shard in shards:
                    shard.reject_stuck_queue(round_index)
                    # whatever survived the flush fits on an idle shard
                    shard.admit_queued(round_index, force=True)
            # 5 + 6. headroom lending, then every shard steps
            t0 = perf_counter() if timed else 0.0
            effective = (
                self.balancer.effective_capacities(shards)
                if self.balancer is not None
                else None
            )
            if timed and self.balancer is not None:
                now = perf_counter()
                for observer in phase_observers:
                    observer.on_phase("balancing", now - t0, round_index)
            result.capacity_rounds += sum(s.capacity for s in shards)
            if executor is not None:
                from repro.engine.parallel import step_shards

                step_shards(
                    executor,
                    shards,
                    round_index,
                    lambda shard: (
                        None if effective is None
                        else effective[shard.shard_id]
                    ),
                    observers,
                )
            else:
                for shard in shards:
                    shard.step(
                        round_index,
                        None
                        if effective is None
                        else effective[shard.shard_id],
                    )
            # 7. autoscaling: plan from this round's signals, apply the
            # actions between rounds (the next round sees the new pools)
            if self.autoscaler is not None:
                for action in self.autoscaler.plan(shards, round_index):
                    self._apply_scale(
                        action, shards, by_id, retired, round_index,
                        observers, result,
                    )
            round_index += 1
        return round_index

    # ------------------------------------------------------------------
    # autoscaling
    # ------------------------------------------------------------------

    def _provision(self, capacity: float, observers) -> Shard:
        """Build one fresh shard the way ``run`` builds the initial ones."""
        shard = build_shards([capacity], **self.shard_kwargs)[0]
        shard.shard_id = f"scale-{self._scale_serial}"
        self._scale_serial += 1
        shard.observers = observers
        shard.engine = self.engine
        return shard

    def _relocation_plan(self, moving, dests):
        """Greedy stream placement for a drained shard's population.

        ``moving`` is ``[(source, spec, kind), ...]`` in deterministic
        order; returns ``[(source, spec, kind, dest), ...]`` or ``None``
        when some *active* session fits nowhere — the caller must then
        drop the whole action (a scale-down never strands a live
        stream).  Queued specs always get a destination (its admission
        gate re-decides: admit, re-queue or reject honestly).
        """
        headroom = {d.shard_id: d.headroom() for d in dests}
        plan = []
        for source, spec, kind in moving:
            best = None
            for dest in dests:
                need = (
                    qmin_demand(spec.config, dest.admission.mode)
                    if dest.admission is not None
                    else spec.config.period
                )
                if need > headroom[dest.shard_id]:
                    continue
                if best is None or (
                    headroom[dest.shard_id] > headroom[best.shard_id]
                ):
                    best = dest
            if best is None:
                if kind == "active":
                    return None
                best = max(dests, key=lambda d: headroom[d.shard_id])
            else:
                need = (
                    qmin_demand(spec.config, best.admission.mode)
                    if best.admission is not None
                    else spec.config.period
                )
                headroom[best.shard_id] -= need
            plan.append((source, spec, kind, best))
        return plan

    def _population(self, shard: Shard):
        """A shard's streams in deterministic order: active, then queued."""
        return [
            (shard, shard.spec_of[s.stream_id], "active") for s in shard.active
        ] + [(shard, spec, "queued") for spec in shard.queue]

    def _apply_scale(
        self, action, shards, by_id, retired, round_index, observers, result,
    ) -> bool:
        """Apply one :class:`~repro.horizon.autoscaler.ScaleAction`.

        Structural problems (unknown kind or shard, non-conserving
        split/merge, removing the last shard) are configuration errors —
        an autoscaler that emits them is broken.  A *relocation* that
        cannot be done safely (a live session fits on no surviving
        shard) silently drops the action instead: capacity stays as it
        was and the policy may retry later.  Observers see the applied
        action via ``on_scale`` (fired before any mutation, with the
        created shard ids filled in), then ``on_capacity`` for every
        provisioned shard, then ``on_migrate`` per relocated stream,
        then ``on_capacity(0.0)`` for every retired shard.
        """
        kind = getattr(action, "kind", None)
        if kind not in ("add", "remove", "split", "merge"):
            raise ConfigurationError(f"unknown scale action kind {kind!r}")
        sources = []
        for shard_id in action.shards:
            shard = by_id.get(shard_id)
            if shard is None or shard not in shards:
                raise ConfigurationError(
                    f"scale action targets unknown shard {shard_id!r}"
                )
            sources.append(shard)
        created: list[Shard] = []
        plan = []
        if kind == "add":
            created = [self._provision(action.capacities[0], observers)]
        elif kind == "remove":
            survivors = [s for s in shards if s is not sources[0]]
            if not survivors:
                raise ConfigurationError("cannot remove the last shard")
            plan = self._relocation_plan(
                self._population(sources[0]), survivors
            )
            if plan is None:
                return False
        elif kind == "split":
            total = sum(action.capacities)
            if not math.isclose(
                total, sources[0].capacity, rel_tol=1e-9, abs_tol=1e-6
            ):
                raise ConfigurationError(
                    f"split of {sources[0].shard_id!r} does not conserve "
                    f"capacity: {total} != {sources[0].capacity}"
                )
            created = [
                self._provision(c, observers) for c in action.capacities
            ]
            plan = self._relocation_plan(
                self._population(sources[0]), created
            )
            if plan is None:
                return False
        else:  # merge
            total = sum(s.capacity for s in sources)
            if action.capacities and not math.isclose(
                action.capacities[0], total, rel_tol=1e-9, abs_tol=1e-6
            ):
                raise ConfigurationError(
                    f"merge does not conserve capacity: "
                    f"{action.capacities[0]} != {total}"
                )
            created = [self._provision(total, observers)]
            plan = self._relocation_plan(
                [m for s in sources for m in self._population(s)], created
            )
            if plan is None:
                return False
        applied = replace(
            action, created=tuple(s.shard_id for s in created),
            action_id=f"scale-action-{self._action_serial}",
        )
        self._action_serial += 1
        result.scale_actions.append(applied)
        for observer in observers:
            observer.on_scale(applied, round_index)
        for shard in created:
            shards.append(shard)
            by_id[shard.shard_id] = shard
            for observer in observers:
                observer.on_capacity(
                    shard.capacity, round_index, shard_id=shard.shard_id
                )
        for source, spec, move_kind, dest in plan:
            if move_kind == "active":
                session, live_spec, admitted = source.detach(spec.name)
                dest.attach(session, live_spec, admitted)
            else:
                popped = source.pop_queued(spec.name)
                if popped is None:
                    continue
                dest.offer(popped, round_index)
            move = MigrationMove(
                stream_id=spec.name,
                source=source.shard_id,
                dest=dest.shard_id,
                kind=move_kind,
            )
            result.migrations.append(move)
            for observer in observers:
                observer.on_migrate(move, round_index)
        for shard in sources:
            shards.remove(shard)
            del by_id[shard.shard_id]
            retired.append(shard)
            for observer in observers:
                observer.on_capacity(
                    0.0, round_index, shard_id=shard.shard_id
                )
        return True

    def _execute(
        self,
        move: MigrationMove,
        by_id: dict[str, Shard],
        round_index: int,
    ) -> bool:
        """Apply one planned move; returns False if it no longer applies."""
        source = by_id[move.source]
        dest = by_id[move.dest]
        if move.kind == "queued":
            spec = next(
                (s for s in source.queue if s.name == move.stream_id), None
            )
            if spec is None:
                return False
            # the policy checked feasibility, but a same-round earlier
            # move may have consumed the headroom — bounce BEFORE
            # popping so the source queue keeps its FIFO order and the
            # stream is never converted into a rejection
            if not dest.feasible_now(spec):
                return False
            source.pop_queued(move.stream_id)
            dest.offer(spec, round_index)
            return True
        session_entry = source.spec_of.get(move.stream_id)
        if session_entry is None:
            return False
        session, spec, admitted = source.detach(move.stream_id)
        dest.attach(session, spec, admitted)
        return True


def compare_placements(
    scenario: ClusterScenario,
    placements: list[PlacementPolicy],
    migration_factory=None,
    balancer_factory=None,
    **runner_kwargs,
) -> dict[str, ClusterResult]:
    """Run one cluster scenario under several placement policies.

    Fresh shards, migration and balancer per run so policies never
    share state; the bench and the acceptance tests use this to put
    round-robin and feasibility-aware placement side by side.
    """
    results: dict[str, ClusterResult] = {}
    for placement in placements:
        runner = ClusterRunner(
            placement=placement,
            migration=migration_factory() if migration_factory else None,
            balancer=balancer_factory() if balancer_factory else None,
            **runner_kwargs,
        )
        results[placement.name] = runner.run(scenario)
    return results
