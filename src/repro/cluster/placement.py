"""Placement policies: which shard an arriving stream lands on.

Placement is the cluster-level admission decision of Alaya et al. ("A
New Approach to Manage QoS in Distributed Multimedia Systems"): the
verdict a stream gets depends not only on *whether* the cluster has
capacity but on *where* the arrival is sent — a heavy stream routed to
a small shard is rejected even while a big shard sits half empty.

All policies are deterministic (ties break on shard order) so cluster
runs replay bit-identically:

* :class:`RoundRobinPlacement` — blind rotation, the baseline every
  smarter policy is measured against;
* :class:`LeastLoadedPlacement` — lowest (active + queued) demand over
  capacity;
* :class:`BestFitPlacement` — feasibility-aware: among the shards whose
  admission gate would accept the stream *right now*, pick the one that
  the stream fits most tightly (classic best-fit bin packing — large
  holes are preserved for large arrivals, which is exactly what lifts
  global acceptance over round-robin on skewed mixes);
* :class:`QualityAwarePlacement` — feasibility first, then send the
  arrival to the shard whose active streams report the healthiest
  recent quality, so newcomers do not pile onto a struggling pool.
"""

from __future__ import annotations

from repro.cluster.shard import Shard
from repro.errors import ConfigurationError
from repro.streams.scenarios import StreamSpec


class PlacementPolicy:
    """Base class: rank the shards, return the chosen one."""

    name = "abstract"

    def reset(self) -> None:
        """Forget any cross-run state (the runner calls this per run)."""

    def choose(
        self, spec: StreamSpec, shards: list[Shard], round_index: int
    ) -> Shard:
        if not shards:
            raise ConfigurationError("cannot place on an empty cluster")
        return self._choose(spec, shards, round_index)

    def _choose(
        self, spec: StreamSpec, shards: list[Shard], round_index: int
    ) -> Shard:
        raise NotImplementedError

    # shared fallback: prefer a shard that can serve the stream at all
    @staticmethod
    def _serviceable(spec: StreamSpec, shards: list[Shard]) -> list[Shard]:
        return [s for s in shards if s.feasible_alone(spec)]


class RoundRobinPlacement(PlacementPolicy):
    """Rotate through the shards, blind to load and feasibility."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def reset(self) -> None:
        self._next = 0

    def _choose(
        self, spec: StreamSpec, shards: list[Shard], round_index: int
    ) -> Shard:
        shard = shards[self._next % len(shards)]
        self._next += 1
        return shard


class LeastLoadedPlacement(PlacementPolicy):
    """Send the arrival to the shard with the lowest relative load."""

    name = "least-loaded"

    def _choose(
        self, spec: StreamSpec, shards: list[Shard], round_index: int
    ) -> Shard:
        return min(shards, key=lambda s: (s.load, shards.index(s)))


class BestFitPlacement(PlacementPolicy):
    """Feasibility-aware best-fit over admission headroom.

    Three tiers, each deterministic:

    1. shards that would ACCEPT the stream now — pick the tightest fit
       (smallest headroom left after placing), preserving big holes;
    2. no immediate fit: shards where the stream is feasible alone —
       pick the most headroom, so the queued wait is shortest;
    3. nowhere serviceable: least loaded (the rejection is inevitable,
       spread the bookkeeping).
    """

    name = "best-fit"

    def _choose(
        self, spec: StreamSpec, shards: list[Shard], round_index: int
    ) -> Shard:
        fits = [s for s in shards if s.feasible_now(spec)]
        if fits:
            # tightest fit = the accepting shard with the least
            # headroom (the stream's demand is the same everywhere)
            return min(fits, key=lambda s: (s.headroom(), shards.index(s)))
        alone = self._serviceable(spec, shards)
        if alone:
            return max(
                alone, key=lambda s: (s.headroom(), -shards.index(s))
            )
        return min(shards, key=lambda s: (s.load, shards.index(s)))


class PredictivePlacement(PlacementPolicy):
    """Blend feasibility with the *projected per-stream share*.

    Best-fit maximizes acceptance but packs small shards tight: a
    stream routed to a nearly-full small shard is admitted — and then
    starves, because the shard's arbitrated pool splits across too
    many sessions (the quality collapse the ROADMAP flags under
    churn).  Predictive placement keeps best-fit's feasibility gate
    but ranks the accepting shards by the capacity share the arrival
    would actually *receive*::

        projected = capacity / (active + queued + 1)

    so an arrival lands where its grant is largest, not where it fits
    most snugly.  ``headroom_bias`` (0..1) mixes a fraction of
    normalized admission headroom into the score — a tunable midpoint
    between pure share-seeking (0.0) and hole-preserving packing.
    Falls back to best-fit's tiers when no shard accepts immediately.
    """

    name = "predictive"

    def __init__(self, headroom_bias: float = 0.0) -> None:
        if not 0.0 <= headroom_bias <= 1.0:
            raise ConfigurationError("headroom_bias must be in [0, 1]")
        self.headroom_bias = headroom_bias
        self._fallback = BestFitPlacement()

    def projected_share(self, shard: Shard) -> float:
        """Cycles/round a new arrival would get on this shard."""
        occupants = len(shard.active) + len(shard.queue) + 1
        return shard.capacity / occupants

    def _choose(
        self, spec: StreamSpec, shards: list[Shard], round_index: int
    ) -> Shard:
        fits = [s for s in shards if s.feasible_now(spec)]
        if fits:
            reference = max(s.capacity for s in shards)

            def score(shard: Shard) -> float:
                share = self.projected_share(shard) / reference
                headroom = shard.headroom() / reference
                return share + self.headroom_bias * headroom

            return max(fits, key=lambda s: (score(s), -shards.index(s)))
        return self._fallback._choose(spec, shards, round_index)


class QualityAwarePlacement(PlacementPolicy):
    """Feasibility first, then the shard with the healthiest streams.

    Among the shards that would accept the stream now, pick the one
    whose active sessions report the highest mean recent quality
    (load as tie-break).  Falls back to best-fit ordering when no shard
    accepts immediately.
    """

    name = "quality-aware"

    def __init__(self) -> None:
        self._fallback = BestFitPlacement()

    def _choose(
        self, spec: StreamSpec, shards: list[Shard], round_index: int
    ) -> Shard:
        fits = [s for s in shards if s.feasible_now(spec)]
        if fits:
            return max(
                fits,
                key=lambda s: (
                    s.mean_recent_quality(),
                    -s.load,
                    -shards.index(s),
                ),
            )
        return self._fallback._choose(spec, shards, round_index)


def make_placement(name: str, **kwargs) -> PlacementPolicy:
    """Placement factory by policy name.

    Thin alias of the serving layer's ``PLACEMENTS`` registry
    (:mod:`repro.serving.registry`); policies registered with
    :func:`repro.serving.register_placement` resolve here too.
    """
    from repro.serving.registry import PLACEMENTS

    return PLACEMENTS.create(name, **kwargs)
