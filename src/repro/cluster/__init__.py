"""Sharded cluster serving: multiple capacity pools, one control plane.

PR 1's streams layer serves one pool; this package models a
multi-processor server as a cluster of :class:`Shard`s — each a pool
with its own :class:`~repro.streams.arbiter.CapacityArbiter` and
:class:`~repro.streams.admission.AdmissionController` — coordinated by
a :class:`ClusterRunner`:

* arrivals are routed by a pluggable :class:`PlacementPolicy`
  (round-robin / least-loaded / feasibility-aware best-fit /
  quality-aware);
* a :class:`MigrationPolicy` moves queued or quality-starved streams
  off overloaded shards between rounds;
* a :class:`HeadroomBalancer` (the arbiter-of-arbiters) lends idle
  shards' spare cycles to overloaded ones each round.

Everything reuses :class:`~repro.streams.session.StreamSession` and
:class:`~repro.streams.scenarios.Scenario` unchanged; per-shard history
aggregates into a :class:`ClusterResult` (global acceptance ratio,
per-stream and cross-shard Jain fairness, load imbalance, migration
counts).

Entry points: build a workload with :mod:`repro.cluster.scenarios`,
pick a placement (and optionally migration / balancing), hand both to
:class:`ClusterRunner`.
"""

from repro.cluster.migration import (
    LoadBalanceMigration,
    MigrationMove,
    MigrationPolicy,
    NoMigration,
    QueueRebalanceMigration,
    make_migration,
)
from repro.cluster.placement import (
    BestFitPlacement,
    LeastLoadedPlacement,
    PlacementPolicy,
    PredictivePlacement,
    QualityAwarePlacement,
    RoundRobinPlacement,
    make_placement,
)
from repro.cluster.runner import (
    ClusterResult,
    ClusterRunner,
    HeadroomBalancer,
    build_shards,
    compare_placements,
)
from repro.cluster.scenarios import (
    CapacityEvent,
    ClusterScenario,
    flash_crowd_split,
    shard_outage,
    skewed_churn,
    skewed_cluster,
)
from repro.cluster.shard import Shard

__all__ = [
    "BestFitPlacement",
    "CapacityEvent",
    "ClusterResult",
    "ClusterRunner",
    "ClusterScenario",
    "HeadroomBalancer",
    "LeastLoadedPlacement",
    "LoadBalanceMigration",
    "MigrationMove",
    "MigrationPolicy",
    "NoMigration",
    "PlacementPolicy",
    "PredictivePlacement",
    "QualityAwarePlacement",
    "QueueRebalanceMigration",
    "RoundRobinPlacement",
    "Shard",
    "build_shards",
    "compare_placements",
    "flash_crowd_split",
    "make_migration",
    "make_placement",
    "shard_outage",
    "skewed_churn",
    "skewed_cluster",
]
