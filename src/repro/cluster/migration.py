"""Migration policies: rebalancing streams between shards mid-run.

Placement decides once, at arrival; skew still accumulates — clips end
at different times, capacity events degrade a shard, a correlated
arrival pattern overloads one pool.  Between rounds the cluster runner
asks its :class:`MigrationPolicy` for a list of moves:

* **queued moves** relocate a spec waiting in one shard's admission
  queue to a shard that would accept it immediately (pure win: the
  stream starts rounds earlier and no session state is involved);
* **active moves** detach a live, quality-starved
  :class:`StreamSession` from an overloaded shard and attach it where
  qmin is feasible on the remaining headroom.  Sessions carry their
  whole timeline state, so a move is just a change of which pool
  grants them cycles from the next round on.

Guard rails: a stream is only moved where it is feasible, never twice
within ``min_residency`` rounds (no ping-pong), and at most
``max_moves_per_round`` active moves happen per round (migration has
real-world cost; the cap models it and keeps runs interpretable).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.shard import Shard
from repro.errors import ConfigurationError
from repro.streams.admission import qmin_demand


@dataclass(frozen=True)
class MigrationMove:
    """One planned move (queued spec or active session)."""

    stream_id: str
    source: str
    dest: str
    kind: str  # "queued" | "active"


class MigrationPolicy:
    """Base class; ``plan`` returns the moves for this round."""

    name = "abstract"

    def plan(self, shards: list[Shard], round_index: int) -> list[MigrationMove]:
        raise NotImplementedError

    def reset(self) -> None:
        """Forget any cross-run state (the runner calls this per run)."""


class NoMigration(MigrationPolicy):
    """Streams stay where placement put them (the baseline)."""

    name = "none"

    def plan(self, shards: list[Shard], round_index: int) -> list[MigrationMove]:
        return []


class QueueRebalanceMigration(MigrationPolicy):
    """Drain admission queues toward shards with immediate headroom."""

    name = "queue-rebalance"

    def plan(self, shards: list[Shard], round_index: int) -> list[MigrationMove]:
        moves, _ = self._plan_queued(shards)
        return moves

    def _plan_queued(
        self, shards: list[Shard]
    ) -> tuple[list[MigrationMove], dict[str, float]]:
        """Queued moves plus the per-destination headroom they claim
        (so follow-up planning cannot over-commit a destination)."""
        moves: list[MigrationMove] = []
        claimed = {s.shard_id: 0.0 for s in shards}
        for source in shards:
            for spec in self._queued_candidates(source):
                for dest in shards:
                    if dest is source or dest.admission is None:
                        continue
                    # reserve at the DESTINATION's admission mode — it
                    # is what the dest will actually commit on offer
                    demand = self._demand(spec, dest)
                    if demand > (
                        dest.admission.remaining - claimed[dest.shard_id]
                    ):
                        continue
                    claimed[dest.shard_id] += demand
                    moves.append(
                        MigrationMove(
                            stream_id=spec.name,
                            source=source.shard_id,
                            dest=dest.shard_id,
                            kind="queued",
                        )
                    )
                    break
        return moves, claimed

    def _queued_candidates(self, source: Shard) -> list:
        """Queue-move candidates in claim order (FIFO here; the SLA
        policy overrides this to give gold first claim on headroom)."""
        return source.queue

    @staticmethod
    def _demand(spec, shard: Shard) -> float:
        mode = shard.admission.mode if shard.admission else "average"
        return qmin_demand(spec.config, mode)


class LoadBalanceMigration(QueueRebalanceMigration):
    """Queue rebalancing plus moving quality-starved live sessions.

    A session whose normalized recent quality sits below
    ``quality_threshold`` on a shard loaded beyond ``overload`` is a
    candidate; it moves to the least-loaded shard whose remaining
    admission headroom fits its qmin demand (with ``margin`` slack so
    the move actually improves its service, not just its address).
    """

    name = "load-balance"

    def __init__(
        self,
        quality_threshold: float = 0.4,
        overload: float = 1.05,
        margin: float = 1.0,
        min_residency: int = 3,
        max_moves_per_round: int = 2,
    ) -> None:
        if not 0.0 <= quality_threshold <= 1.0:
            raise ConfigurationError("quality_threshold must be in [0, 1]")
        if min_residency < 1:
            raise ConfigurationError("min_residency must be >= 1")
        if max_moves_per_round < 1:
            raise ConfigurationError("max_moves_per_round must be >= 1")
        self.quality_threshold = quality_threshold
        self.overload = overload
        self.margin = margin
        self.min_residency = min_residency
        self.max_moves_per_round = max_moves_per_round
        self._moved_at: dict[str, int] = {}

    def reset(self) -> None:
        self._moved_at = {}

    def plan(self, shards: list[Shard], round_index: int) -> list[MigrationMove]:
        moves, claimed = self._plan_queued(shards)
        active_moves = 0
        # most loaded shards donate first; only overloaded shards donate
        for source in sorted(shards, key=lambda s: -s.load):
            if source.load < self.overload:
                break
            for session in self._active_candidates(source):
                if active_moves >= self.max_moves_per_round:
                    return moves
                quality = session.normalized_recent_quality()
                if not quality < self.quality_threshold:  # nan-safe
                    continue
                last = self._moved_at.get(session.stream_id)
                if last is not None and round_index - last < self.min_residency:
                    continue
                admitted = source.admitted_round.get(session.stream_id)
                if (
                    admitted is not None
                    and round_index - admitted < self.min_residency
                ):
                    continue
                dest = self._destination(session, source, shards, claimed)
                if dest is None:
                    continue
                spec = source.spec_of[session.stream_id]
                claimed[dest.shard_id] += self._demand(spec, dest)
                self._moved_at[session.stream_id] = round_index
                active_moves += 1
                moves.append(
                    MigrationMove(
                        stream_id=session.stream_id,
                        source=source.shard_id,
                        dest=dest.shard_id,
                        kind="active",
                    )
                )
        return moves

    def _active_candidates(self, source: Shard) -> list:
        """Active-move candidates in claim order (shard order here; the
        SLA policy overrides this to rescue gold sessions first)."""
        return list(source.active)

    def _destination(
        self,
        session,
        source: Shard,
        shards: list[Shard],
        claimed: dict[str, float],
    ) -> Shard | None:
        candidates = []
        for dest in shards:
            if dest is source:
                continue
            # the move must leave the stream better off: the dest's
            # per-stream share after adoption must beat the source's
            after = dest.capacity / (len(dest.active) + 1)
            before = source.capacity / max(1, len(source.active))
            if after <= before * self.margin:
                continue
            if dest.admission is not None:
                spec = source.spec_of[session.stream_id]
                remaining = (
                    dest.admission.remaining - claimed[dest.shard_id]
                )
                if self._demand(spec, dest) > remaining:
                    continue
            candidates.append(dest)
        if not candidates:
            return None
        return min(candidates, key=lambda s: (s.load, shards.index(s)))


def make_migration(name: str, **kwargs) -> MigrationPolicy:
    """Migration factory by policy name.

    Thin alias of the serving layer's ``MIGRATIONS`` registry
    (:mod:`repro.serving.registry`); policies registered with
    :func:`repro.serving.register_migration` resolve here too.
    """
    from repro.serving.registry import MIGRATIONS

    return MIGRATIONS.create(name, **kwargs)
