"""Cluster workloads: arrivals plus shard capacities plus events.

A :class:`ClusterScenario` extends the single-pool
:class:`~repro.streams.scenarios.Scenario` with the cluster-side state
the runner needs: per-shard capacities (heterogeneous pools model a
multi-processor server with unequal cores) and a replayable list of
:class:`CapacityEvent`s (outages, degradations, recoveries).  Like the
stream scenarios everything is a plain data list — deterministic,
seedable, trivially comparable across placement and migration policies.

Generators:

* :func:`skewed_cluster` — heavy/light stream mix over unequal shards
  at a fixed total capacity; the workload on which blind round-robin
  placement measurably rejects streams a feasibility-aware policy
  serves;
* :func:`shard_outage` — a steady fleet spread over equal shards, then
  one shard's capacity collapses mid-run (migration's rescue case);
* :func:`flash_crowd_split` — a base load plus a simultaneous crowd
  that only fits if placement splits it across pools.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.experiments.configs import scaled_config
from repro.streams.scenarios import Scenario, StreamSpec, poisson_churn


@dataclass(frozen=True)
class CapacityEvent:
    """At ``round_index``, shard ``shard_index`` runs at ``factor`` of
    its nominal capacity (1.0 restores it)."""

    round_index: int
    shard_index: int
    factor: float

    def __post_init__(self) -> None:
        if self.round_index < 0:
            raise ConfigurationError("round_index must be >= 0")
        if self.factor <= 0:
            raise ConfigurationError(
                "factor must be positive (use a small factor for an "
                "outage; zero-capacity shards cannot arbitrate)"
            )


@dataclass(frozen=True)
class ClusterScenario:
    """Arrivals + shard capacities + capacity events, all replayable."""

    name: str
    arrivals: Scenario
    shard_capacities: tuple[float, ...]
    events: tuple[CapacityEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.shard_capacities:
            raise ConfigurationError("need at least one shard")
        if any(c <= 0 for c in self.shard_capacities):
            raise ConfigurationError("shard capacities must be positive")
        for event in self.events:
            if not 0 <= event.shard_index < len(self.shard_capacities):
                raise ConfigurationError(
                    f"event shard_index {event.shard_index} out of range"
                )

    @property
    def open_ended(self) -> bool:
        """Do arrivals keep coming until the runner's stop condition?"""
        return bool(getattr(self.arrivals, "open_ended", False))

    @property
    def shard_count(self) -> int:
        return len(self.shard_capacities)

    @property
    def total_capacity(self) -> float:
        return sum(self.shard_capacities)

    @property
    def last_event_round(self) -> int:
        return max((e.round_index for e in self.events), default=0)

    def events_at(self, round_index: int) -> list[CapacityEvent]:
        return [e for e in self.events if e.round_index == round_index]


def _split_capacity(total: float, fractions: tuple[float, ...]) -> tuple[float, ...]:
    norm = sum(fractions)
    return tuple(total * f / norm for f in fractions)


def skewed_cluster(
    streams: int = 12,
    shards: int = 3,
    frames: int = 12,
    seed: int = 7,
    utilization: float = 0.5,
    skew: float = 8.0,
    heavy_scale: int = 12,
    light_scale: int = 27,
) -> ClusterScenario:
    """Heavy/light arrivals over unequal shards, fixed total capacity.

    Shard capacities follow a geometric skew (shard 0 is ``skew`` times
    shard ``n-1``); the stream mix alternates heavy (``heavy_scale``)
    and light (``light_scale``) clips, staggered a round apart.  The
    defaults put the smallest shard's whole budget *below* a heavy
    stream's qmin demand while the largest could absorb every heavy
    stream at once: where an arrival lands decides whether it is served
    at all, which is exactly the regime that separates blind from
    feasibility-aware placement.  Total capacity is ``utilization``
    times the mix's aggregate demand.
    """
    if streams < 1 or shards < 1:
        raise ConfigurationError("streams and shards must be >= 1")
    specs = []
    for i in range(streams):
        heavy = i % 2 == 0
        scale = heavy_scale if heavy else light_scale
        specs.append(
            StreamSpec(
                name=f"skew-{i}-s{scale}",
                arrival_round=i // 2,
                config=scaled_config(scale=scale, seed=seed + i, frames=frames),
            )
        )
    arrivals = Scenario(name=f"skewed[{streams}]", specs=tuple(specs))
    total = utilization * arrivals.total_demand()
    ratio = skew ** (1.0 / max(1, shards - 1)) if shards > 1 else 1.0
    fractions = tuple(ratio ** (shards - 1 - i) for i in range(shards))
    return ClusterScenario(
        name=f"skewed[{streams}x{shards}]",
        arrivals=arrivals,
        shard_capacities=_split_capacity(total, fractions),
    )


def skewed_churn(
    rate: float = 1.2,
    horizon: int = 14,
    shards: int = 3,
    mean_frames: int = 12,
    min_frames: int = 6,
    seed: int = 7,
    initial: int = 4,
    utilization: float = 0.55,
    skew: float = 8.0,
) -> ClusterScenario:
    """Poisson churn over geometrically skewed shard capacities.

    The regime the ROADMAP's predictive-placement item describes:
    under continuous arrivals and departures, feasibility-only
    best-fit keeps wedging newcomers into the small shards (they fit —
    tightly), so per-stream shares there collapse while the big shard
    idles.  Placement that weighs the *projected share* spreads the
    churn.  Total capacity is ``utilization`` times the aggregate
    demand, split with the same geometric ``skew`` as
    :func:`skewed_cluster`.
    """
    if shards < 1:
        raise ConfigurationError("shards must be >= 1")
    arrivals = poisson_churn(
        rate=rate,
        horizon=horizon,
        mean_frames=mean_frames,
        min_frames=min_frames,
        seed=seed,
        initial=initial,
    )
    total = utilization * arrivals.total_demand()
    ratio = skew ** (1.0 / max(1, shards - 1)) if shards > 1 else 1.0
    fractions = tuple(ratio ** (shards - 1 - i) for i in range(shards))
    return ClusterScenario(
        name=f"skewed-churn[rate={rate}x{shards}]",
        arrivals=arrivals,
        shard_capacities=_split_capacity(total, fractions),
    )


def shard_outage(
    streams: int = 9,
    shards: int = 3,
    frames: int = 16,
    seed: int = 7,
    scale: int = 20,
    utilization: float = 0.9,
    outage_round: int = 4,
    outage_factor: float = 0.25,
    outage_shard: int = 0,
    recovery_round: int | None = None,
) -> ClusterScenario:
    """Equal shards, steady arrivals, one shard degrades mid-run."""
    specs = tuple(
        StreamSpec(
            name=f"outage-{i}",
            arrival_round=0,
            config=scaled_config(scale=scale, seed=seed + i, frames=frames),
        )
        for i in range(streams)
    )
    arrivals = Scenario(name=f"outage[{streams}]", specs=specs)
    total = utilization * arrivals.total_demand()
    events = [CapacityEvent(outage_round, outage_shard, outage_factor)]
    if recovery_round is not None:
        events.append(CapacityEvent(recovery_round, outage_shard, 1.0))
    return ClusterScenario(
        name=f"outage[{streams}x{shards}@r{outage_round}]",
        arrivals=arrivals,
        shard_capacities=_split_capacity(total, (1.0,) * shards),
        events=tuple(events),
    )


def flash_crowd_split(
    base: int = 4,
    crowd: int = 8,
    crowd_round: int = 3,
    shards: int = 4,
    frames: int = 10,
    seed: int = 7,
    scale: int = 27,
    utilization: float = 0.8,
) -> ClusterScenario:
    """A steady base plus a burst no single shard can absorb alone."""
    specs = [
        StreamSpec(
            name=f"base-{i}",
            arrival_round=0,
            config=scaled_config(scale=scale, seed=seed + i, frames=frames),
        )
        for i in range(base)
    ]
    specs += [
        StreamSpec(
            name=f"crowd-{i}",
            arrival_round=crowd_round,
            config=scaled_config(
                scale=scale, seed=seed + 1000 + i, frames=frames
            ),
        )
        for i in range(crowd)
    ]
    arrivals = Scenario(
        name=f"flash[{base}+{crowd}@{crowd_round}]", specs=tuple(specs)
    )
    total = utilization * arrivals.total_demand()
    return ClusterScenario(
        name=f"flash[{base}+{crowd}x{shards}]",
        arrivals=arrivals,
        shard_capacities=_split_capacity(total, (1.0,) * shards),
    )
