"""One shard: a capacity pool with its own arbiter and admission gate.

A :class:`Shard` is the steppable building block of the cluster layer —
essentially one :class:`~repro.streams.fleet.FleetRunner` round opened
up so a :class:`~repro.cluster.runner.ClusterRunner` can interleave
many pools and move streams between them:

* ``offer`` routes an arriving :class:`StreamSpec` through the shard's
  own :class:`~repro.streams.admission.AdmissionController` (accept /
  queue / reject against the shard's remaining feasible capacity);
* ``step`` arbitrates the shard's budget across its active sessions and
  advances each one scheduling round, retiring finished streams;
* ``detach`` / ``attach`` move a live session (or a queued spec) out of
  / into the shard with its admission commitment, the primitive the
  migration policies are built on;
* ``set_capacity`` applies outage / capacity-drop events mid-run.

Per-shard serving history accumulates into the same
:class:`~repro.streams.fleet.FleetResult` the single-pool layer uses,
so every fleet metric (fairness, skips, acceptance) is available
per shard and the cluster result is a straight aggregation.
"""

from __future__ import annotations

import math
from time import perf_counter

from repro.errors import ConfigurationError
from repro.streams.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionVerdict,
    qmin_demand,
)
from repro.streams.arbiter import CapacityArbiter, CapacityRequest
from repro.streams.fleet import (
    FleetResult,
    StreamOutcome,
    _normalize_classes,
    session_sla_kwargs,
)
from repro.streams.scenarios import StreamSpec
from repro.streams.session import StreamSession


class Shard:
    """One capacity pool + arbiter + admission gate inside a cluster.

    Parameters
    ----------
    shard_id:
        Stable name (placement and migration records refer to it).
    capacity:
        The shard's share of the cluster budget (cycles per round).
    arbiter:
        The shard-local :class:`CapacityArbiter`.
    admission:
        Optional shard-local admission controller; its capacity should
        equal the shard's.  ``None`` admits everything.
    constraint_mode / granularity:
        Controller settings applied to every session on this shard.
    observers:
        :class:`~repro.serving.observers.RoundObserver` instances whose
        hooks fire with this shard's id.  The cluster runner overwrites
        this with its own observer set at the start of every run.
    service_classes / renegotiation:
        SLA catalog and mid-stream renegotiation policy, as on
        :class:`~repro.streams.fleet.FleetRunner` (sessions of classed
        specs get their class's quality band).
    engine:
        Session execution engine (see :mod:`repro.engine`):
        ``"scalar"`` steps sessions one by one, ``"vectorized"`` steps
        the shard's active sessions as numpy batches.  ``"parallel"``
        behaves as ``"vectorized"`` at shard level — the across-shard
        worker pool lives in the cluster runner, which also overwrites
        this knob (like ``observers``) at the start of every run.
    """

    def __init__(
        self,
        shard_id: str,
        capacity: float,
        arbiter: CapacityArbiter,
        admission: AdmissionController | None = None,
        constraint_mode: str = "both",
        granularity: int = 1,
        observers=(),
        service_classes=None,
        renegotiation=None,
        engine: str = "scalar",
    ) -> None:
        if capacity <= 0:
            raise ConfigurationError("shard capacity must be positive")
        self.observers = tuple(observers)
        self.shard_id = shard_id
        self.capacity = capacity
        self.nominal_capacity = capacity
        self.arbiter = arbiter
        self.admission = admission
        self.constraint_mode = constraint_mode
        self.granularity = granularity
        self.service_classes = _normalize_classes(service_classes)
        self.renegotiation = renegotiation
        self.engine = engine

        self.active: list[StreamSession] = []
        self.spec_of: dict[str, StreamSpec] = {}
        self.admitted_round: dict[str, int] = {}
        self.outcomes: list[StreamOutcome] = []
        self.rejected: list[StreamSpec] = []
        self.preempted: list[StreamSpec] = []
        self.peak_concurrency = 0
        self.rounds_stepped = 0
        #: cycles of active demand summed over rounds — the shard's
        #: realized load, the basis of the cluster imbalance metric
        self.demand_cycles = 0.0

    @property
    def observers(self):
        return self._observers

    @observers.setter
    def observers(self, value) -> None:
        # keep the phase-timing flag in sync: the cluster runner
        # reassigns observers at the start of every run
        self._observers = tuple(value)
        if self._observers:
            # imported lazily — the cluster layer never depends on
            # repro.serving at import time
            from repro.serving.observers import phase_listeners

            self._phase_observers = phase_listeners(self._observers)
        else:
            self._phase_observers = ()
        self._timed = bool(self._phase_observers)

    @property
    def engine(self) -> str:
        return self._engine

    @engine.setter
    def engine(self, value: str) -> None:
        from repro.engine import validate_engine

        self._engine = validate_engine(value)

    # ------------------------------------------------------------------
    # placement-facing signals
    # ------------------------------------------------------------------

    @property
    def queue(self) -> list[StreamSpec]:
        """Specs parked in the shard's admission queue (empty if none)."""
        if self.admission is None:
            return []
        return list(self.admission.queue)

    @property
    def active_demand(self) -> float:
        """Dedicated-speed cycles/round the active sessions would need."""
        return sum(s.demand for s in self.active)

    @property
    def load(self) -> float:
        """Active + queued demand over capacity — the placement signal."""
        queued = sum(spec.config.period for spec in self.queue)
        return (self.active_demand + queued) / self.capacity

    @property
    def busy(self) -> bool:
        return bool(self.active) or bool(self.queue)

    def feasible_now(self, spec: StreamSpec) -> bool:
        """Would the shard accept ``spec`` immediately?

        With the uniform cycle deadline the schedule-walk feasibility
        check reduces exactly to ``qmin_demand <= available`` (worst
        slack is ``available - sum(schedule times)``), so the hot
        placement/migration paths use the memoized demand instead of
        re-walking the schedule per (spec, shard, round).
        """
        if self.admission is None:
            return True
        return (
            qmin_demand(spec.config, self.admission.mode)
            <= self.admission.remaining
        )

    def feasible_alone(self, spec: StreamSpec) -> bool:
        """Is ``spec`` feasible on this shard's whole budget (else it
        can never be served here, only rejected)?"""
        if self.admission is None:
            return True
        return (
            qmin_demand(spec.config, self.admission.mode)
            <= self.admission.budget
        )

    def headroom(self) -> float:
        """Uncommitted feasible cycles/round (capacity if ungated)."""
        if self.admission is None:
            return max(0.0, self.capacity - self.active_demand)
        return max(0.0, self.admission.remaining)

    def mean_recent_quality(self) -> float:
        """Mean normalized recent quality of active sessions (1.0 when
        idle — an empty shard looks maximally healthy to placement)."""
        values = [
            q
            for q in (s.normalized_recent_quality() for s in self.active)
            if not math.isnan(q)
        ]
        if not values:
            return 1.0
        return sum(values) / len(values)

    # ------------------------------------------------------------------
    # arrivals and capacity events
    # ------------------------------------------------------------------

    def offer(self, spec: StreamSpec, round_index: int) -> AdmissionDecision:
        """Route one arrival through this shard's admission gate."""
        if self.admission is None:
            self._start(spec, round_index)
            return AdmissionDecision.ACCEPTED
        verdict: AdmissionVerdict = self.admission.offer(spec)
        # queue preemption: the evicted spec is finally rejected here
        # and only here — once in the totals, one on_reject
        for victim in verdict.preempted:
            self.rejected.append(victim)
            self.preempted.append(victim)
            for observer in self.observers:
                observer.on_preempt(victim, round_index, shard_id=self.shard_id)
                observer.on_reject(victim, round_index, shard_id=self.shard_id)
        if verdict.decision is AdmissionDecision.ACCEPTED:
            self._start(spec, round_index)
        elif verdict.decision is AdmissionDecision.REJECTED:
            self.rejected.append(spec)
            for observer in self.observers:
                observer.on_reject(spec, round_index, shard_id=self.shard_id)
        return verdict.decision

    def admit_queued(self, round_index: int, force: bool = False) -> int:
        """Start every queued spec that now fits; returns how many."""
        if self.admission is None:
            return 0
        admitted = self.admission.admit_queued(force=force)
        for spec in admitted:
            self._start(spec, round_index)
        return len(admitted)

    def set_capacity(self, capacity: float) -> None:
        """Apply a capacity event (outage, degradation, recovery).

        The arbiter pool and the admission budget both shrink; already
        committed demand may exceed the new budget, which simply blocks
        new admissions until departures (or migration) relieve it.
        """
        if capacity <= 0:
            raise ConfigurationError("shard capacity must stay positive")
        self.capacity = capacity
        if self.admission is not None:
            self.admission.capacity = capacity

    def reject_stuck_queue(self, round_index: int | None = None) -> int:
        """Reject queued specs that can no longer fit even when idle.

        After a capacity drop, a spec that was queued as "feasible
        alone" under the old budget may be unservable forever; without
        this flush the cluster loop would spin until ``max_rounds``.
        Only called by the runner once arrivals are exhausted and the
        shard has nothing active to depart.
        """
        if self.admission is None or not self.admission.queue:
            return 0
        flushed = 0
        kept = []
        while self.admission.queue:
            spec = self.admission.queue.popleft()
            if self.feasible_alone(spec):
                kept.append(spec)
            else:
                self.admission.rejected_count += 1
                self.rejected.append(spec)
                flushed += 1
                for observer in self.observers:
                    observer.on_reject(
                        spec, round_index, shard_id=self.shard_id
                    )
        self.admission.queue.extend(kept)
        return flushed

    def flush_queue(self, round_index: int | None = None) -> int:
        """Reject every queued spec unconditionally.

        Open-ended runs call this at their ``max_rounds`` stop
        condition: arrivals are over and active cameras are shutting
        down, so anything still waiting will never be served — letting
        it trickle into admission mid-drain would only spawn zero-value
        one-round sessions.
        """
        if self.admission is None or not self.admission.queue:
            return 0
        flushed = 0
        while self.admission.queue:
            spec = self.admission.queue.popleft()
            self.admission.rejected_count += 1
            self.rejected.append(spec)
            flushed += 1
            for observer in self.observers:
                observer.on_reject(spec, round_index, shard_id=self.shard_id)
        return flushed

    def shutdown_sessions(self) -> int:
        """Stop every unbounded camera on this shard (drain begins)."""
        return sum(1 for s in self.active if s.shutdown())

    # ------------------------------------------------------------------
    # migration primitives
    # ------------------------------------------------------------------

    def detach(self, stream_id: str) -> tuple[StreamSession, StreamSpec, int]:
        """Remove a live session, releasing its admission commitment."""
        for i, session in enumerate(self.active):
            if session.stream_id == stream_id:
                del self.active[i]
                spec = self.spec_of.pop(stream_id)
                admitted = self.admitted_round.pop(stream_id)
                if self.admission is not None:
                    self.admission.release(spec.config)
                return session, spec, admitted
        raise ConfigurationError(
            f"stream {stream_id!r} not active on shard {self.shard_id!r}"
        )

    def attach(
        self,
        session: StreamSession,
        spec: StreamSpec,
        admitted_round: int,
    ) -> None:
        """Adopt a migrated live session, committing its qmin demand.

        The migration policy is responsible for checking feasibility
        first; attach itself never refuses — a cluster must not lose a
        stream mid-flight.
        """
        if spec.name in self.spec_of:
            raise ConfigurationError(
                f"duplicate stream {spec.name!r} on shard {self.shard_id!r}"
            )
        self.active.append(session)
        self.spec_of[spec.name] = spec
        self.admitted_round[spec.name] = admitted_round
        if self.admission is not None:
            self.admission.committed += qmin_demand(
                spec.config, self.admission.mode
            )

    def pop_queued(self, name: str) -> StreamSpec | None:
        """Remove one spec from the admission queue (for queue moves).

        Removing a spec can unblock the head-of-line behind it, so the
        admission controller is told to re-check on the next retry.
        """
        if self.admission is None:
            return None
        for spec in list(self.admission.queue):
            if spec.name == name:
                self.admission.queue.remove(spec)
                self.admission.mark_freed()
                return spec
        return None

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------

    def step(self, round_index: int, capacity: float | None = None) -> int:
        """Arbitrate and advance every active session one round.

        ``capacity`` overrides the shard's own pool for this round only
        (the headroom balancer's lever).  Returns the number of streams
        that finished this round.
        """
        self.rounds_stepped += 1
        pool = self.capacity if capacity is None else capacity
        if not self.active:
            for observer in self.observers:
                observer.on_round(round_index, {}, pool, shard_id=self.shard_id)
            return 0
        self.peak_concurrency = max(self.peak_concurrency, len(self.active))
        self.demand_cycles += self.active_demand
        t0 = perf_counter() if self._timed else 0.0
        requests = [
            CapacityRequest(
                stream_id=s.stream_id,
                demand=s.demand,
                weight=s.weight,
                recent_quality=s.normalized_recent_quality(),
                backlog=s.backlog,
                service_class=s.service_class,
                target_quality=s.quality_target,
            )
            for s in self.active
        ]
        allocations = self.arbiter.allocate(requests, pool)
        if self._timed:
            now = perf_counter()
            for observer in self._phase_observers:
                observer.on_phase(
                    "arbitration", now - t0, round_index,
                    shard_id=self.shard_id,
                )
            t0 = now
        for observer in self.observers:
            observer.on_round(
                round_index, allocations, pool, shard_id=self.shard_id
            )
        if self._engine == "scalar":
            step_of = None
        else:
            # batched stepping computes every SessionStep up front; the
            # loop below still applies bookkeeping and fires hooks in
            # session order, so results and event logs match the
            # scalar engine bit for bit
            from repro.engine.vectorized import step_sessions

            step_of = step_sessions(self.active, allocations)
        finished = 0
        still_active: list[StreamSession] = []
        for session in self.active:
            step = (
                session.step(allocations[session.stream_id])
                if step_of is None
                else step_of[session.stream_id]
            )
            if step.renegotiated is not None:
                old, new = step.renegotiated
                for observer in self.observers:
                    observer.on_renegotiate(
                        session.stream_id,
                        old,
                        new,
                        round_index,
                        shard_id=self.shard_id,
                    )
            if step.finished:
                spec = self.spec_of.pop(session.stream_id)
                outcome = StreamOutcome(
                    spec=spec,
                    result=session.result(),
                    admitted_round=self.admitted_round.pop(session.stream_id),
                    finished_round=round_index,
                    renegotiations=session.renegotiation_count,
                )
                self.outcomes.append(outcome)
                if self.admission is not None:
                    self.admission.release(spec.config)
                finished += 1
                for observer in self.observers:
                    observer.on_depart(
                        outcome, round_index, shard_id=self.shard_id
                    )
            else:
                still_active.append(session)
        self.active = still_active
        if self._timed:
            now = perf_counter()
            for observer in self._phase_observers:
                observer.on_phase(
                    "step", now - t0, round_index, shard_id=self.shard_id
                )
        return finished

    def _start(self, spec: StreamSpec, round_index: int) -> None:
        if spec.name in self.spec_of:
            raise ConfigurationError(f"duplicate stream name {spec.name!r}")
        session = StreamSession(
            stream_id=spec.name,
            config=spec.config,
            constraint_mode=self.constraint_mode,
            granularity=self.granularity,
            weight=spec.weight,
            lifetime=getattr(spec, "lifetime", None),
            **session_sla_kwargs(
                spec, self.service_classes, self.renegotiation
            ),
        )
        self.active.append(session)
        self.spec_of[spec.name] = spec
        self.admitted_round[spec.name] = round_index
        for observer in self.observers:
            observer.on_admit(spec, round_index, shard_id=self.shard_id)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def result(self, scenario_name: str, rounds: int) -> FleetResult:
        """This shard's serving history as a standard FleetResult."""
        result = FleetResult(
            scenario_name=scenario_name,
            arbiter_name=getattr(
                self.arbiter, "name", type(self.arbiter).__name__
            ),
            capacity=self.nominal_capacity,
            rounds=rounds,
        )
        result.streams = list(self.outcomes)
        result.rejected = list(self.rejected)
        result.preempted = list(self.preempted)
        result.peak_concurrency = self.peak_concurrency
        return result
