"""Per-figure experiment functions.

One function per data figure of the paper; each returns the two series
the figure plots plus the runs behind them, so benches can assert the
qualitative shape and render the ASCII chart.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.sim.encoder_loop import SimulationConfig
from repro.sim.results import RunResult
from repro.sim.runner import run_constant, run_controlled


@dataclass(frozen=True)
class FigureData:
    """A reproduced two-series figure."""

    name: str
    description: str
    y_label: str
    controlled: RunResult
    baseline: RunResult
    controlled_series: np.ndarray
    baseline_series: np.ndarray

    def series(self) -> dict[str, np.ndarray]:
        return {
            self.controlled.label: self.controlled_series,
            self.baseline.label: self.baseline_series,
        }


def _budget_figure(name, description, config, baseline_quality, baseline_k) -> FigureData:
    controlled = run_controlled(config)
    baseline = run_constant(baseline_quality, replace(config, buffer_capacity=baseline_k))
    return FigureData(
        name=name,
        description=description,
        y_label="Mcycle",
        controlled=controlled,
        baseline=baseline,
        controlled_series=controlled.encoding_times() / 1e6,
        baseline_series=baseline.encoding_times() / 1e6,
    )


def _psnr_figure(name, description, config, baseline_quality, baseline_k) -> FigureData:
    controlled = run_controlled(config)
    baseline = run_constant(baseline_quality, replace(config, buffer_capacity=baseline_k))
    return FigureData(
        name=name,
        description=description,
        y_label="PSNR",
        controlled=controlled,
        baseline=baseline,
        controlled_series=controlled.psnr_series(),
        baseline_series=baseline.psnr_series(),
    )


def figure6_budget_vs_q3(config: SimulationConfig) -> FigureData:
    """Fig. 6: encoding time per frame — controlled K=1 vs constant q=3 K=1."""
    return _budget_figure(
        "figure6",
        "Time budget utilization: controlled quality (K=1) vs constant q=3 (K=1)",
        config,
        baseline_quality=3,
        baseline_k=1,
    )


def figure7_budget_vs_q4(config: SimulationConfig) -> FigureData:
    """Fig. 7: encoding time per frame — controlled K=1 vs constant q=4 K=2."""
    return _budget_figure(
        "figure7",
        "Time budget utilization: controlled quality (K=1) vs constant q=4 (K=2)",
        config,
        baseline_quality=4,
        baseline_k=2,
    )


def figure8_psnr_vs_q3(config: SimulationConfig) -> FigureData:
    """Fig. 8: PSNR per frame — controlled K=1 vs constant q=3 K=1."""
    return _psnr_figure(
        "figure8",
        "PSNR between input and output: controlled (K=1) vs constant q=3 (K=1)",
        config,
        baseline_quality=3,
        baseline_k=1,
    )


def figure9_psnr_vs_q4(config: SimulationConfig) -> FigureData:
    """Fig. 9: PSNR per frame — controlled K=1 vs constant q=4 K=2."""
    return _psnr_figure(
        "figure9",
        "PSNR between input and output: controlled (K=1) vs constant q=4 (K=2)",
        config,
        baseline_quality=4,
        baseline_k=2,
    )
