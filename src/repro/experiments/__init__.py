"""Experiment definitions reproducing the paper's evaluation (section 3).

:mod:`repro.experiments.paper_data` holds the published constants
(Fig. 5 tables, P, frame/sequence counts, bitrate);
:mod:`repro.experiments.configs` the simulator configurations (full
paper scale and a fast scaled-down variant with identical shape);
:mod:`repro.experiments.figures` one function per figure that returns
the data series the paper plots.
"""

from repro.experiments.configs import (
    full_config,
    scaled_config,
    tiny_config,
)
from repro.experiments.figures import (
    figure6_budget_vs_q3,
    figure7_budget_vs_q4,
    figure8_psnr_vs_q3,
    figure9_psnr_vs_q4,
)
from repro.experiments.paper_data import PAPER

__all__ = [
    "PAPER",
    "figure6_budget_vs_q3",
    "figure7_budget_vs_q4",
    "figure8_psnr_vs_q3",
    "figure9_psnr_vs_q4",
    "full_config",
    "scaled_config",
    "tiny_config",
]
