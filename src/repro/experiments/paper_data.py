"""Published constants from the paper's evaluation (section 3).

Everything numerical the paper states about its experimental setup, in
one place, so benches and docs quote a single source of truth.  The
Fig. 5 execution-time tables themselves live with the application model
in :mod:`repro.video.pipeline` (they are application data); this module
re-exports them for convenience.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.video.pipeline import (
    FIXED_ACTION_TIMES,
    MOTION_ESTIMATE_TIMES,
    per_macroblock_average_load,
    per_macroblock_worst_load,
)


@dataclass(frozen=True)
class PaperConstants:
    """Section 3's experimental constants."""

    #: frame period in cycles ("every P = 320 Mcycle")
    period: float = 320e6
    #: constant framerate (25 frame/s at 8 GHz)
    fps: float = 25.0
    #: processor clock (XiRisc at 8 GHz)
    clock_hz: float = 8e9
    #: benchmark length ("582 frames, consisting of 9 sequences")
    frames: int = 582
    sequences: int = 9
    #: target bitrate ("1.1 Mbit/s")
    bitrate: float = 1.1e6
    #: encoder source size ("more than 7000 loc" of C)
    encoder_loc: int = 7000
    #: quality levels of Motion_Estimate (Fig. 5)
    quality_levels: int = 8
    #: reported instrumentation overheads (section 3)
    code_size_overhead: float = 0.02
    memory_overhead: float = 0.01
    runtime_overhead: float = 0.015
    #: number of I-frame jumps / skip bursts visible in Figs. 6-9
    iframe_jumps: int = 8
    skip_bursts: int = 2
    #: skipped-frame PSNR bound ("e.g. lower than 25")
    skip_psnr_bound: float = 25.0
    #: macroblocks per frame — not stated in the paper; chosen so the
    #: Fig. 5 tables land on the paper's operating points (DESIGN.md 3.3)
    macroblocks: int = 1620

    @property
    def target_bits_per_frame(self) -> float:
        return self.bitrate / self.fps

    def average_frame_load(self, quality: int) -> float:
        """Expected cycles per frame at a constant quality level."""
        return self.macroblocks * per_macroblock_average_load(quality)

    def worst_frame_load(self, quality: int) -> float:
        return self.macroblocks * per_macroblock_worst_load(quality)

    def average_utilization(self, quality: int) -> float:
        """Average load over P — the design-point table in DESIGN.md 3.3."""
        return self.average_frame_load(quality) / self.period


PAPER = PaperConstants()

#: Re-exports of the Fig. 5 tables (defined with the application model).
FIG5_MOTION_ESTIMATE = MOTION_ESTIMATE_TIMES
FIG5_FIXED_ACTIONS = FIXED_ACTION_TIMES
