"""Simulator configurations for the reproduction runs.

``full_config`` is the paper-scale setup (N=1620 macroblocks,
P=320 Mcycles, 582 frames).  ``scaled_config`` divides the spatial
resolution and period by a common factor: per-frame load *fractions*
(and hence utilization, skip and quality dynamics) are preserved while
runs are ~scale x faster — averaging over fewer macroblocks adds a
little per-frame variance, which slightly exaggerates burstiness but
changes none of the qualitative outcomes.  Benches default to the
scaled setup; pass ``REPRO_FULL_SCALE=1`` in the environment to run the
full one.
"""

from __future__ import annotations

import os

from repro.errors import ConfigurationError
from repro.experiments.paper_data import PAPER
from repro.sim.encoder_loop import SimulationConfig
from repro.video.ratecontrol import RateControlConfig


def full_config(seed: int = 7, frames: int | None = None) -> SimulationConfig:
    """The paper-scale configuration (section 3's setup)."""
    return SimulationConfig(
        period=PAPER.period,
        buffer_capacity=1,
        macroblocks=PAPER.macroblocks,
        frames=frames,
        seed=seed,
        rate_control=RateControlConfig(bitrate=PAPER.bitrate, fps=PAPER.fps),
    )


def scaled_config(
    scale: int = 4, seed: int = 7, frames: int | None = None
) -> SimulationConfig:
    """Paper setup divided by ``scale`` in resolution, period and bitrate.

    The ratio of every quality level's load to the period is unchanged,
    so the controller and the baselines operate at the same utilization
    points as the full-scale run.
    """
    if scale < 1 or PAPER.macroblocks % scale != 0:
        raise ConfigurationError(
            f"scale must divide {PAPER.macroblocks} macroblocks, got {scale}"
        )
    return SimulationConfig(
        period=PAPER.period / scale,
        buffer_capacity=1,
        macroblocks=PAPER.macroblocks // scale,
        frames=frames,
        seed=seed,
        rate_control=RateControlConfig(bitrate=PAPER.bitrate / scale, fps=PAPER.fps),
    )


def tiny_config(seed: int = 7, frames: int = 60) -> SimulationConfig:
    """A very small configuration for unit/integration tests."""
    return scaled_config(scale=20, seed=seed, frames=frames)


def benchmark_config(seed: int = 7) -> SimulationConfig:
    """What the benches run: full scale if REPRO_FULL_SCALE=1, else /4."""
    if os.environ.get("REPRO_FULL_SCALE") == "1":
        return full_config(seed=seed)
    return scaled_config(scale=4, seed=seed)
