"""Multi-stream serving layer: many QoS-controlled encoders, one capacity.

The paper controls one application's quality/schedule trade-off on one
processor.  This package scales that controller out: a fleet of
:class:`StreamSession`s (each a full per-stream controller + executor +
cycle state) shares a simulated processor budget, partitioned every
scheduling round by a :class:`CapacityArbiter` and gated by an
:class:`AdmissionController` that reuses the paper's own feasibility
analysis (Definition 2.2) to accept, queue, or reject arriving streams.

Entry points: build a workload with :mod:`repro.streams.scenarios`,
pick an arbiter, hand both to :class:`FleetRunner`.
"""

from repro.streams.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionVerdict,
    qmin_demand,
)
from repro.streams.arbiter import (
    CapacityArbiter,
    CapacityRequest,
    EqualShareArbiter,
    QualityFairArbiter,
    WeightedShareArbiter,
    make_arbiter,
)
from repro.streams.fleet import (
    FleetResult,
    FleetRunner,
    StreamOutcome,
    compare_arbiters,
)
from repro.streams.scenarios import (
    Scenario,
    StreamSpec,
    flash_crowd,
    heterogeneous_mix,
    poisson_churn,
    steady_fleet,
    with_classes,
)
from repro.streams.session import SessionStep, StreamSession

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionVerdict",
    "CapacityArbiter",
    "CapacityRequest",
    "EqualShareArbiter",
    "FleetResult",
    "FleetRunner",
    "QualityFairArbiter",
    "Scenario",
    "SessionStep",
    "StreamOutcome",
    "StreamSession",
    "StreamSpec",
    "WeightedShareArbiter",
    "compare_arbiters",
    "flash_crowd",
    "heterogeneous_mix",
    "make_arbiter",
    "poisson_churn",
    "qmin_demand",
    "steady_fleet",
    "with_classes",
]
