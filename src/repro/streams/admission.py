"""Admission control: accept / queue / reject arriving streams.

Before a stream joins the fleet the admission controller asks the
paper's own schedulability machinery whether the stream could meet its
cycle deadline on the capacity that is still uncommitted.  The check is
Definition 2.2 applied at the *lowest* quality level: the qmin schedule
is the cheapest feasible service the controller can ever fall back to,
so if even qmin does not fit, no arbiter can save the stream and
admitting it would only push already-admitted streams into overload
(the congestion coupling of Alaya et al., "A New Approach to Manage QoS
in Distributed Multimedia Systems").

Decisions:

* ``ACCEPTED`` — qmin schedule feasible on the remaining capacity; the
  stream's qmin demand is committed until it departs.
* ``QUEUED``  — infeasible right now but feasible on an empty system;
  parked until departures free enough capacity.
* ``REJECTED`` — infeasible even with the whole capacity to itself (or
  the wait queue is full).
"""

from __future__ import annotations

import enum
from bisect import bisect_right
from collections import deque
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.core.feasibility import FeasibilityReport
from repro.core.sequences import INFINITY, cumulative
from repro.errors import ConfigurationError
from repro.sim.encoder_loop import SimulationConfig
from repro.sim.runner import simulation_for


class AdmissionDecision(enum.Enum):
    ACCEPTED = "accepted"
    QUEUED = "queued"
    REJECTED = "rejected"


@dataclass(frozen=True)
class AdmissionVerdict:
    """Decision plus the feasibility evidence it was based on.

    ``preempted`` lists queued specs this offer evicted from the wait
    queue (priority admission only — the base controller never
    preempts).  Each evicted spec is finally rejected: the runner
    records it in the result and fires ``on_reject`` exactly once.
    """

    decision: AdmissionDecision
    demand: float
    remaining_before: float
    report: FeasibilityReport | None
    preempted: tuple = ()


@lru_cache(maxsize=1024)
def qmin_completions(
    config: SimulationConfig, mode: str = "average"
) -> tuple[float, ...]:
    """Cumulative qmin completion times over the stream's schedule.

    The expensive part of every feasibility check — walking the
    schedule and summing per-action times — is deterministic per
    ``(config, mode)``, so it is computed once here and shared by
    :func:`qmin_demand` and :meth:`AdmissionController.feasibility`
    (which only shift it by the available budget).  ``cumulative`` is
    the same left-fold as ``sum``, so the last element *is* the qmin
    demand, to the bit.
    """
    simulation = simulation_for(config)
    system = simulation.system
    times = system.average_times if mode == "average" else system.worst_times
    qmin = system.qmin
    return tuple(
        cumulative(
            [times.time(action, qmin) for action in simulation.tables.schedule]
        )
    )


@lru_cache(maxsize=1024)
def _completion_array(
    config: SimulationConfig, mode: str
) -> np.ndarray:
    """:func:`qmin_completions` as a read-only float64 array (for the
    vectorized slack computation in ``feasibility``)."""
    array = np.asarray(qmin_completions(config, mode), dtype=np.float64)
    array.setflags(write=False)
    return array


@lru_cache(maxsize=256)
def qmin_demand(config: SimulationConfig, mode: str = "average") -> float:
    """Cycles per period the stream needs at its cheapest quality.

    ``mode="average"`` uses the expected-time tables (statistical
    admission, the default); ``"worst"`` uses the worst-case tables
    (hard admission — overrun-proof but pessimistic).  Memoized: the
    sum over the schedule is deterministic per (config, mode) and the
    fleet runner asks for it on every offer and release.
    """
    completions = qmin_completions(config, mode)
    return completions[-1] if completions else 0.0


class AdmissionController:
    """Feasibility-gated admission over a shared capacity budget.

    Parameters
    ----------
    capacity:
        Total shared cycles per scheduling round.
    mode:
        ``"average"`` or ``"worst"`` — which timing tables the
        feasibility check uses (see :func:`qmin_demand`).
    utilization_cap:
        Fraction of capacity admission may commit (headroom for the
        arbiter to lift quality above qmin).
    queue_limit:
        Maximum parked streams (None = unbounded).
    """

    def __init__(
        self,
        capacity: float,
        mode: str = "average",
        utilization_cap: float = 1.0,
        queue_limit: int | None = None,
    ) -> None:
        if capacity <= 0:
            raise ConfigurationError("capacity must be positive")
        if mode not in ("average", "worst"):
            raise ConfigurationError(f"unknown admission mode {mode!r}")
        if not 0.0 < utilization_cap <= 1.0:
            raise ConfigurationError("utilization_cap must be in (0, 1]")
        if queue_limit is not None and queue_limit < 0:
            raise ConfigurationError("queue_limit must be >= 0")
        self.capacity = capacity
        self.mode = mode
        self.utilization_cap = utilization_cap
        self.queue_limit = queue_limit
        self.committed = 0.0
        self.queue: deque = deque()
        self.accepted_count = 0
        self.rejected_count = 0
        self.queued_count = 0
        # capacity only frees on release(); until then re-checking the
        # queue head every fleet round would be wasted schedule walks
        self._freed_since_retry = False

    def reset(self) -> None:
        """Restore the just-constructed state (nothing committed,
        queued, or counted) so one controller can gate several runs
        bit-identically.  Called by ``FleetRunner.reset()``."""
        self.committed = 0.0
        self.queue.clear()
        self.accepted_count = 0
        self.rejected_count = 0
        self.queued_count = 0
        self._freed_since_retry = False

    # ------------------------------------------------------------------
    # feasibility
    # ------------------------------------------------------------------

    @property
    def budget(self) -> float:
        """Cycles per round admission is allowed to commit."""
        return self.capacity * self.utilization_cap

    @property
    def remaining(self) -> float:
        return self.budget - self.committed

    def feasibility(
        self, config: SimulationConfig, available: float | None = None
    ) -> FeasibilityReport:
        """Definition 2.2 for the stream's qmin schedule on ``available``.

        The schedule's only deadline is the uniform cycle deadline, so
        every action's deadline is the available per-round budget: the
        stream fits iff the worst slack is non-negative.
        """
        if available is None:
            available = self.remaining
        # fast path over check_feasibility: the completion times are
        # memoized per (config, mode) and the uniform deadline enters
        # as a constant, so slack_i = available - completion_i exactly
        # (IEEE subtraction is monotone, so the min slack is
        # available - max(completion) and the first violation is the
        # first completion above the budget — bit-identical to the
        # generic walk).
        completions = qmin_completions(config, self.mode)
        if not completions:
            return FeasibilityReport(
                feasible=True,
                worst_slack=INFINITY,
                completion_times=(),
                slacks=(),
                first_violation=None,
            )
        slacks = tuple(
            (available - _completion_array(config, self.mode)).tolist()
        )
        # completion times are a nonnegative-term running sum, so the
        # last element is the maximum and the sequence is sorted:
        # min slack = available - last, first violation by bisection
        worst = available - completions[-1]
        position = bisect_right(completions, available)
        first_violation = position if position < len(completions) else None
        return FeasibilityReport(
            feasible=worst >= 0,
            worst_slack=worst,
            completion_times=completions,
            slacks=slacks,
            first_violation=first_violation,
        )

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------

    def offer(self, stream) -> AdmissionVerdict:
        """Decide on an arriving stream (anything with a ``.config``)."""
        config = stream.config if hasattr(stream, "config") else stream
        demand = qmin_demand(config, self.mode)
        remaining = self.remaining
        report = self.feasibility(config, remaining)
        if report.feasible:
            self.committed += demand
            self.accepted_count += 1
            return AdmissionVerdict(
                AdmissionDecision.ACCEPTED, demand, remaining, report
            )
        alone = self.feasibility(config, self.budget)
        if alone.feasible:
            queued, preempted = self._try_queue(stream)
            if queued:
                self.queued_count += 1
                return AdmissionVerdict(
                    AdmissionDecision.QUEUED,
                    demand,
                    remaining,
                    report,
                    preempted=preempted,
                )
        self.rejected_count += 1
        return AdmissionVerdict(
            AdmissionDecision.REJECTED, demand, remaining, report
        )

    def _try_queue(self, stream) -> tuple[bool, tuple]:
        """Park a feasible-alone stream in the wait queue if possible.

        Returns ``(queued, preempted)``.  The base policy is plain
        bounded FIFO — a full queue refuses and never evicts; priority
        admission (:mod:`repro.sla.admission`) overrides this to evict
        lower-priority queued specs for arrivals with preemption
        rights.
        """
        if self.queue_limit is not None and len(self.queue) >= self.queue_limit:
            return False, ()
        self.queue.append(stream)
        return True, ()

    def release(self, config: SimulationConfig) -> None:
        """Return a departing stream's committed demand to the pool."""
        self.committed = max(0.0, self.committed - qmin_demand(config, self.mode))
        self._freed_since_retry = True

    def mark_freed(self) -> None:
        """Flag that queue feasibility may have changed without a
        release (a queued spec was removed externally, e.g. migrated),
        so the next ``admit_queued`` re-checks the head."""
        self._freed_since_retry = True

    def admit_queued(self, force: bool = False) -> list:
        """Pop every queued stream that now fits (FIFO, head-of-line).

        Head-of-line blocking is deliberate: skipping over a large
        queued stream in favour of later small ones would starve it.
        Cheap no-op unless a departure freed capacity since the last
        retry — ``force`` re-checks anyway (capacity events and
        migration change feasibility without a release).
        """
        if not (self._freed_since_retry or force):
            return []
        self._freed_since_retry = False
        admitted = []
        while self.queue:
            index = self._queue_head_index()
            head = self.queue[index]
            config = head.config if hasattr(head, "config") else head
            report = self.feasibility(config, self.remaining)
            if not report.feasible:
                break
            del self.queue[index]
            self.committed += qmin_demand(config, self.mode)
            self.accepted_count += 1
            admitted.append(head)
        return admitted

    def _queue_head_index(self) -> int:
        """Which queued stream is next in line (head-of-line FIFO here).

        Priority admission overrides this to drain the highest
        admission priority first (FIFO within a priority); the chosen
        stream still head-of-line blocks everyone behind it, so a
        class can never be starved by later same-class arrivals.
        """
        return 0

    @property
    def acceptance_ratio(self) -> float:
        """Accepted over finally-decided offers (queued are undecided)."""
        decided = self.accepted_count + self.rejected_count
        return self.accepted_count / decided if decided else 1.0
