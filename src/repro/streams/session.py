"""One QoS-controlled encoder stream inside a shared-capacity fleet.

A :class:`StreamSession` wraps the paper's single-application stack —
controller tables, stochastic timing draws, camera/buffer timeline and
the signal-side encoder — into an object the fleet runner can advance
**one scheduling round at a time**.  Each round spans one camera period
of the stream's own timeline: a new frame arrives (or the tail backlog
drains) and any frame whose start time falls inside the round is
encoded under the capacity the arbiter granted.

Capacity semantics
------------------

The arbiter grants ``allocation`` cycles of shared processor per round.
A stream whose config demands ``period`` cycles per round at dedicated
speed therefore runs at ``speed = allocation / period``:

* work of ``c`` cycles occupies ``c / speed`` wall-cycles of the
  stream's timeline (a starved encoder stays busy longer, so the input
  buffer overflows and frames skip — exactly the paper's overload
  surface), and
* a frame that would enjoy a wall-clock budget ``B`` only receives
  ``B * speed`` cycles of actual work, which the table-driven
  controller absorbs through its deadline-shift mechanism, degrading
  quality smoothly instead of overrunning.

Same-config sessions share one :class:`EncoderSimulation` (via
:func:`repro.sim.runner.simulation_for`) because table compilation
dominates construction cost; only the simulation's pure per-frame
primitives are used here, so the sharing is safe (see the caching
contract in :mod:`repro.sim.runner`).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.engine.bank import bank_for
from repro.engine.kernel import kernel_for, scalar_decide
from repro.errors import ConfigurationError
from repro.sim.encoder_loop import SimulationConfig
from repro.sim.results import FrameRecord, RunResult
from repro.sim.runner import simulation_for
from repro.video.encoder_model import AnalyticEncoder
from repro.video.ratecontrol import VirtualBufferRateController

#: Grants below this fraction of demand are clamped: the stream is
#: effectively paused rather than simulated at absurd slowdowns.
MIN_SPEED = 1e-3


@dataclass(frozen=True)
class EncodeJob:
    """One frame ready to encode on a session's timeline.

    Produced by :meth:`StreamSession.next_job` (which commits the pop
    from the input buffer) and consumed by an engine, which runs the
    decision kernel on the job's banked times and hands the resulting
    timing back to :meth:`StreamSession.complete_job`.  ``budget`` is
    the frame's *work* budget in processor cycles (wall budget times
    this round's speed).

    ``bank_frame`` is the physical index into the session's pre-drawn
    :class:`~repro.engine.bank.FrameTimeBank` — identical to ``frame``
    for finite clips, ``frame % clip_length`` for unbounded sessions
    whose content loops.  Engines must index banked times with it, not
    with ``frame``.
    """

    frame: int
    start: float
    budget: float
    bank_frame: int = -1

    def __post_init__(self) -> None:
        if self.bank_frame < 0:
            object.__setattr__(self, "bank_frame", self.frame)


@dataclass(frozen=True)
class SessionStep:
    """What one scheduling round did to one stream.

    ``renegotiated`` is ``(old_target, new_target)`` when this round's
    grant and quality history moved the session's SLA quality target
    (see :mod:`repro.sla.renegotiation`), else ``None``.
    """

    round_index: int
    granted: float
    speed: float
    arrived: int | None
    arrival_skipped: bool
    encoded: tuple[int, ...]
    backlog: int
    finished: bool
    renegotiated: tuple[float, float] | None = None


class StreamSession:
    """A steppable per-stream controller + executor + cycle state.

    Parameters
    ----------
    stream_id:
        Unique name inside the fleet; also salts this stream's random
        streams so same-config sessions see different content timing.
    config:
        The stream's :class:`SimulationConfig` (period, buffers, size).
    constraint_mode / granularity:
        Passed through to the fine-grain controller.
    weight:
        Relative importance for weighted arbiters.
    quality_ewma:
        Smoothing factor for the ``recent_quality`` feedback signal the
        quality-fair arbiter consumes (1.0 = last frame only).
    service_class:
        SLA class name carried into every capacity request (``None``
        = unclassed; SLA-aware policies serve best-effort).
    quality_target / quality_floor:
        Normalized [0, 1] delivered-quality contract: the current
        target (nan disables SLA targeting) and the floor
        renegotiation may step down to.  The initial target is also
        the ceiling a recovered session steps back up to.
    renegotiation:
        Optional stateless policy (see
        :class:`repro.sla.renegotiation.StepRenegotiation`) moving
        ``quality_target`` with observed starvation/headroom; all its
        counters live on this session.
    lifetime:
        Optional :class:`repro.streams.scenarios.IdleDeparture` policy
        switching the session to *unbounded* mode: the camera keeps
        producing frames past the clip length (content loops over the
        banked frames) until the idle detector — or an explicit
        :meth:`shutdown` — stops it, after which the backlog drains
        like any finite clip.  ``None`` keeps finite-clip semantics.
    """

    def __init__(
        self,
        stream_id: str,
        config: SimulationConfig,
        constraint_mode: str = "both",
        granularity: int = 1,
        weight: float = 1.0,
        quality_ewma: float = 0.35,
        service_class: str | None = None,
        quality_target: float = math.nan,
        quality_floor: float = 0.0,
        renegotiation=None,
        lifetime=None,
    ) -> None:
        if weight <= 0:
            raise ConfigurationError(f"stream weight must be positive, got {weight}")
        if not 0.0 < quality_ewma <= 1.0:
            raise ConfigurationError("quality_ewma must be in (0, 1]")
        if not math.isnan(quality_target) and not 0.0 <= quality_target <= 1.0:
            raise ConfigurationError("quality_target must be in [0, 1] or nan")
        if not 0.0 <= quality_floor <= 1.0:
            raise ConfigurationError("quality_floor must be in [0, 1]")
        if not math.isnan(quality_target) and quality_floor > quality_target:
            raise ConfigurationError(
                "quality_floor must not exceed quality_target"
            )
        self.stream_id = stream_id
        self.config = config
        self.constraint_mode = constraint_mode
        self.granularity = granularity
        self.weight = weight
        self.quality_ewma = quality_ewma
        self.service_class = service_class
        self.quality_target = quality_target
        self.quality_floor = quality_floor
        self.quality_ceiling = quality_target
        self.renegotiation = renegotiation
        self.renegotiation_count = 0
        self._starved_rounds = 0
        self._headroom_rounds = 0
        self.lifetime = lifetime

        self.simulation = simulation_for(config)
        if constraint_mode not in self.simulation._rows:
            raise ConfigurationError(f"unknown constraint mode {constraint_mode!r}")
        quality_set = self.simulation.quality_set
        self._qmin = quality_set.qmin
        self._qspan = max(1, quality_set.qmax - quality_set.qmin)
        # the engine split: pure decision math shared per shape, all
        # stochastic times pre-drawn per clip (one draw per frame and
        # macroblock, independent of how scheduling later plays out)
        self._kernel = kernel_for(self.simulation, constraint_mode)
        self._bank = bank_for(config, f"stream-timing-{stream_id}")
        self._horizon = config.buffer_capacity * config.period
        self._encoder = AnalyticEncoder(
            rd_model=config.rd_model,
            rate_controller=VirtualBufferRateController(config.rate_control),
            pixels=config.frame_pixels,
            rng=self.simulation._rng(f"stream-signal-{stream_id}"),
            bits_noise=config.bits_noise,
        )

        # timeline state (wall cycles of this stream's private clock)
        self._pending: deque[int] = deque()
        self._free_at = 0.0
        self._round = 0
        # frame -> (timing, start, end, budget), or None for a buffer
        # skip; the FrameRecord itself is built once, in the signal pass
        self._resolved: dict[int, tuple | None] = {}
        self._signal_next = 0
        self.records: list[FrameRecord] = []
        self.recent_quality = math.nan
        self._total_granted = 0.0
        self._total_used = 0.0

        # unbounded mode: activity draws are a private seeded stream so
        # the departure round is deterministic whichever engine steps us
        if lifetime is not None:
            self._activity_rng = self.simulation._rng(
                f"stream-activity-{stream_id}"
            )
            self._activity_ewma = 1.0
            self._idle_rounds = 0
        self._camera_stop: int | None = None

    # ------------------------------------------------------------------
    # fleet-facing signals
    # ------------------------------------------------------------------

    @property
    def demand(self) -> float:
        """Cycles per round this stream needs to run at dedicated speed."""
        return self.config.period

    @property
    def frame_count(self) -> int:
        """Physical clip length — the loop length for unbounded sessions."""
        return len(self.simulation.contents)

    @property
    def unbounded(self) -> bool:
        return self.lifetime is not None

    @property
    def finished(self) -> bool:
        """All frames arrived, encoded-or-skipped, and signal-processed.

        Unbounded sessions finish only once the camera has stopped
        (idle detection or :meth:`shutdown`) and the backlog + signal
        pass have caught up to the stop point.
        """
        if self.unbounded:
            stop = self._camera_stop
            return (
                stop is not None
                and not self._pending
                and self._signal_next >= stop
            )
        return (
            self._round >= self.frame_count
            and not self._pending
            and self._signal_next >= self.frame_count
        )

    @property
    def backlog(self) -> int:
        return len(self._pending)

    def normalized_recent_quality(self) -> float:
        """``recent_quality`` mapped to [0, 1] (nan while no frame done)."""
        if math.isnan(self.recent_quality):
            return math.nan
        return (self.recent_quality - self._qmin) / self._qspan

    def utilization(self) -> float:
        """Work cycles consumed over cycles granted so far."""
        if self._total_granted <= 0:
            return 0.0
        return self._total_used / self._total_granted

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------

    def step(self, allocation: float) -> SessionStep:
        """Advance one scheduling round under ``allocation`` shared cycles.

        Returns a :class:`SessionStep` describing the round.  Stepping a
        finished session is an error — the fleet runner retires sessions
        as soon as they report ``finished``.

        This is the scalar engine: it drives the same round protocol
        the vectorized engine uses (:meth:`begin_round` /
        :meth:`next_job` / :meth:`complete_job` / :meth:`process_arrival`
        / :meth:`finish_round`), running each job through the scalar
        decision kernel inline.
        """
        speed, arrival_limit = self.begin_round(allocation)
        encoded = self._encode_through(arrival_limit, speed)
        arrived, arrival_skipped, drain_limit = self.process_arrival()
        if drain_limit is not None:
            encoded += self._encode_through(drain_limit, speed)
        return self.finish_round(allocation, speed, arrived, arrival_skipped, encoded)

    # ------------------------------------------------------------------
    # the round protocol (engine-facing)
    # ------------------------------------------------------------------

    def begin_round(self, allocation: float) -> tuple[float, float]:
        """Validate the grant; return ``(speed, arrival_limit)``."""
        if self.finished:
            raise ConfigurationError(f"stream {self.stream_id!r} already finished")
        if allocation < 0:
            raise ConfigurationError("allocation must be >= 0")
        speed = max(allocation / self.config.period, MIN_SPEED)
        return speed, self._round * self.config.period

    def next_job(self, limit: float, speed: float) -> EncodeJob | None:
        """Pop the next frame whose start time falls within ``limit``.

        At most the buffer head is eligible: completing it moves
        ``_free_at``, which gates the frame behind it — so engines call
        this again after :meth:`complete_job` until it returns ``None``.
        """
        if not self._pending:
            return None
        frame = self._pending[0]
        arrival = frame * self.config.period
        start = max(self._free_at, arrival)
        if start > limit:
            return None
        self._pending.popleft()
        wall_budget = arrival + self._horizon - start
        return EncodeJob(
            frame=frame,
            start=start,
            budget=wall_budget * speed,
            bank_frame=self._content_index(frame),
        )

    def complete_job(self, job: EncodeJob, timing, speed: float) -> None:
        """Fold one encoded frame's timing back into session state."""
        wall_cycles = timing.cycles / speed
        self._free_at = job.start + wall_cycles
        self._total_used += timing.cycles
        # quality stats come precomputed from the decision kernel (both
        # kernels fold them in, bit-identically — see repro.engine.kernel);
        # the FrameRecord is deferred to the signal pass so each frame
        # builds exactly one record
        self._resolved[job.frame] = (timing, job.start, self._free_at, job.budget)
        self._observe_quality(timing.mean_quality)

    def process_arrival(self) -> tuple[int | None, bool, float | None]:
        """This round's camera arrival (or backlog-drain window).

        Returns ``(arrived, arrival_skipped, drain_limit)``; a non-None
        ``drain_limit`` means the camera has stopped and the engine
        should encode pending frames through that limit.
        """
        round_index = self._round
        arrival_limit = round_index * self.config.period
        arrived: int | None = None
        arrival_skipped = False
        drain_limit: float | None = None
        if self._arrivals_open(round_index):
            arrived = round_index
            if len(self._pending) >= self.config.buffer_capacity:
                arrival_skipped = True
                self._resolved[arrived] = None
            else:
                self._pending.append(arrived)
        elif self._pending:
            # camera stopped: drain the backlog, one round per period
            drain_limit = arrival_limit + self.config.period
        return arrived, arrival_skipped, drain_limit

    def _arrivals_open(self, round_index: int) -> bool:
        """Does the camera deliver a frame this round?

        Finite clips stop at ``frame_count``.  Unbounded sessions stop
        when the idle detector trips (or :meth:`shutdown` already
        stopped them); the per-round activity draw happens here, once
        per round, inside the session's own protocol — which is what
        keeps departure rounds identical across engines.
        """
        if self.lifetime is None:
            return round_index < self.frame_count
        if self._camera_stop is not None:
            return False
        policy = self.lifetime
        activity = float(self._activity_rng.random())
        a = policy.alpha
        self._activity_ewma = a * activity + (1.0 - a) * self._activity_ewma
        if round_index >= policy.min_rounds and (
            self._activity_ewma < policy.threshold
        ):
            self._idle_rounds += 1
        else:
            self._idle_rounds = 0
        if self._idle_rounds >= policy.patience or (
            round_index >= policy.max_lifetime
        ):
            self._camera_stop = round_index
            return False
        return True

    def shutdown(self) -> bool:
        """Stop an unbounded camera so the session drains and finishes.

        Runners call this when an open-ended run hits its
        ``max_rounds`` stop condition.  Returns ``True`` when it
        actually stopped the camera.  Finite-clip sessions are a no-op:
        their signal pass expects every frame below ``frame_count`` to
        arrive, so cutting them short would leave them unfinished
        forever — they drain on their own schedule instead.
        """
        if self.lifetime is None or self._camera_stop is not None:
            return False
        self._camera_stop = self._round
        return True

    def _content_index(self, frame: int) -> int:
        """Map a timeline frame to its physical banked/content index."""
        if self.lifetime is None:
            return frame
        return frame % self.frame_count

    def finish_round(
        self,
        allocation: float,
        speed: float,
        arrived: int | None,
        arrival_skipped: bool,
        encoded: list[int],
    ) -> SessionStep:
        """Close the round: signal pass, renegotiation, the step record."""
        round_index = self._round
        self._round += 1
        self._total_granted += allocation
        self._emit_signal()
        renegotiated = self._renegotiate(allocation)
        return SessionStep(
            round_index=round_index,
            granted=allocation,
            speed=speed,
            arrived=arrived,
            arrival_skipped=arrival_skipped,
            encoded=tuple(encoded),
            backlog=len(self._pending),
            finished=self.finished,
            renegotiated=renegotiated,
        )

    def _encode_through(self, limit: float, speed: float) -> list[int]:
        """Scalar inner loop: encode eligible frames one at a time."""
        encoded: list[int] = []
        while (job := self.next_job(limit, speed)) is not None:
            timing = scalar_decide(
                self._kernel,
                self.granularity,
                *self._bank.frame_lists(job.bank_frame),
                job.budget,
            )
            self.complete_job(job, timing, speed)
            encoded.append(job.frame)
        return encoded

    def _renegotiate(self, allocation: float) -> tuple[float, float] | None:
        """Move the quality target per this round's grant and quality."""
        policy = self.renegotiation
        if policy is None or math.isnan(self.quality_target):
            return None
        quality = self.normalized_recent_quality()
        if not math.isnan(quality) and policy.starved(
            quality, self.quality_target, allocation, self.demand
        ):
            self._starved_rounds += 1
            self._headroom_rounds = 0
        elif policy.headroom(allocation, self.demand):
            self._headroom_rounds += 1
            self._starved_rounds = 0
        else:
            self._starved_rounds = 0
            self._headroom_rounds = 0
        old = self.quality_target
        if (
            self._starved_rounds >= policy.patience
            and old > self.quality_floor
        ):
            self.quality_target = policy.step_down(old, self.quality_floor)
            self._starved_rounds = 0
        elif (
            self._headroom_rounds >= policy.recovery_patience
            and old < self.quality_ceiling
        ):
            self.quality_target = policy.step_up(old, self.quality_ceiling)
            self._headroom_rounds = 0
        if self.quality_target == old:
            return None
        self.renegotiation_count += 1
        return (old, self.quality_target)

    def _observe_quality(self, mean_quality: float) -> None:
        if math.isnan(self.recent_quality):
            self.recent_quality = mean_quality
        else:
            a = self.quality_ewma
            self.recent_quality = a * mean_quality + (1 - a) * self.recent_quality

    def _emit_signal(self) -> None:
        """Run the signal pass over every contiguous resolved frame.

        Rate control and PSNR depend on display order, while the
        timeline resolves frames slightly out of order (a buffer skip is
        known at arrival, before the previous frame finished encoding) —
        so the signal pass trails the timeline and only consumes
        frames once everything before them is resolved.
        """
        period = self.config.period
        while self._signal_next in self._resolved:
            index = self._signal_next
            resolved = self._resolved.pop(index)
            content = self.simulation.contents[self._content_index(index)]
            if resolved is None:
                outcome = self._encoder.skip_frame(content)
                record = FrameRecord(
                    index=index,
                    is_iframe=content.is_iframe,
                    skipped=True,
                    arrival=index * period,
                    motion=content.motion_activity,
                    psnr=outcome.psnr,
                    bits=outcome.bits,
                )
            else:
                timing, start, end, budget = resolved
                outcome = self._encoder.encode_frame(
                    content, timing.qualities, mean_quality=timing.mean_quality
                )
                record = FrameRecord(
                    index=index,
                    is_iframe=content.is_iframe,
                    skipped=False,
                    arrival=index * period,
                    motion=content.motion_activity,
                    start=start,
                    end=end,
                    budget=budget,
                    encode_cycles=timing.cycles,
                    controller_cycles=timing.controller_cycles,
                    decisions=timing.decisions,
                    degraded_steps=timing.degraded,
                    mean_quality=timing.mean_quality,
                    min_quality=timing.min_quality,
                    max_quality=timing.max_quality,
                    quality_churn=timing.quality_churn,
                    psnr=outcome.psnr,
                    bits=outcome.bits,
                )
            self.records.append(record)
            self._signal_next += 1

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def result(self, label: str | None = None) -> RunResult:
        """The per-stream :class:`RunResult` over the rounds run so far."""
        if label is None:
            label = f"stream({self.stream_id})"
        result = RunResult(
            label=label,
            period=self.config.period,
            buffer_capacity=self.config.buffer_capacity,
        )
        result.frames = list(self.records)
        return result
