"""One QoS-controlled encoder stream inside a shared-capacity fleet.

A :class:`StreamSession` wraps the paper's single-application stack —
controller tables, stochastic timing draws, camera/buffer timeline and
the signal-side encoder — into an object the fleet runner can advance
**one scheduling round at a time**.  Each round spans one camera period
of the stream's own timeline: a new frame arrives (or the tail backlog
drains) and any frame whose start time falls inside the round is
encoded under the capacity the arbiter granted.

Capacity semantics
------------------

The arbiter grants ``allocation`` cycles of shared processor per round.
A stream whose config demands ``period`` cycles per round at dedicated
speed therefore runs at ``speed = allocation / period``:

* work of ``c`` cycles occupies ``c / speed`` wall-cycles of the
  stream's timeline (a starved encoder stays busy longer, so the input
  buffer overflows and frames skip — exactly the paper's overload
  surface), and
* a frame that would enjoy a wall-clock budget ``B`` only receives
  ``B * speed`` cycles of actual work, which the table-driven
  controller absorbs through its deadline-shift mechanism, degrading
  quality smoothly instead of overrunning.

Same-config sessions share one :class:`EncoderSimulation` (via
:func:`repro.sim.runner.simulation_for`) because table compilation
dominates construction cost; only the simulation's pure per-frame
primitives are used here, so the sharing is safe (see the caching
contract in :mod:`repro.sim.runner`).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.encoder_loop import SimulationConfig
from repro.sim.results import FrameRecord, RunResult
from repro.sim.runner import simulation_for
from repro.video.encoder_model import AnalyticEncoder
from repro.video.ratecontrol import VirtualBufferRateController

#: Grants below this fraction of demand are clamped: the stream is
#: effectively paused rather than simulated at absurd slowdowns.
MIN_SPEED = 1e-3


@dataclass(frozen=True)
class SessionStep:
    """What one scheduling round did to one stream.

    ``renegotiated`` is ``(old_target, new_target)`` when this round's
    grant and quality history moved the session's SLA quality target
    (see :mod:`repro.sla.renegotiation`), else ``None``.
    """

    round_index: int
    granted: float
    speed: float
    arrived: int | None
    arrival_skipped: bool
    encoded: tuple[int, ...]
    backlog: int
    finished: bool
    renegotiated: tuple[float, float] | None = None


class StreamSession:
    """A steppable per-stream controller + executor + cycle state.

    Parameters
    ----------
    stream_id:
        Unique name inside the fleet; also salts this stream's random
        streams so same-config sessions see different content timing.
    config:
        The stream's :class:`SimulationConfig` (period, buffers, size).
    constraint_mode / granularity:
        Passed through to the fine-grain controller.
    weight:
        Relative importance for weighted arbiters.
    quality_ewma:
        Smoothing factor for the ``recent_quality`` feedback signal the
        quality-fair arbiter consumes (1.0 = last frame only).
    service_class:
        SLA class name carried into every capacity request (``None``
        = unclassed; SLA-aware policies serve best-effort).
    quality_target / quality_floor:
        Normalized [0, 1] delivered-quality contract: the current
        target (nan disables SLA targeting) and the floor
        renegotiation may step down to.  The initial target is also
        the ceiling a recovered session steps back up to.
    renegotiation:
        Optional stateless policy (see
        :class:`repro.sla.renegotiation.StepRenegotiation`) moving
        ``quality_target`` with observed starvation/headroom; all its
        counters live on this session.
    """

    def __init__(
        self,
        stream_id: str,
        config: SimulationConfig,
        constraint_mode: str = "both",
        granularity: int = 1,
        weight: float = 1.0,
        quality_ewma: float = 0.35,
        service_class: str | None = None,
        quality_target: float = math.nan,
        quality_floor: float = 0.0,
        renegotiation=None,
    ) -> None:
        if weight <= 0:
            raise ConfigurationError(f"stream weight must be positive, got {weight}")
        if not 0.0 < quality_ewma <= 1.0:
            raise ConfigurationError("quality_ewma must be in (0, 1]")
        if not math.isnan(quality_target) and not 0.0 <= quality_target <= 1.0:
            raise ConfigurationError("quality_target must be in [0, 1] or nan")
        if not 0.0 <= quality_floor <= 1.0:
            raise ConfigurationError("quality_floor must be in [0, 1]")
        if not math.isnan(quality_target) and quality_floor > quality_target:
            raise ConfigurationError(
                "quality_floor must not exceed quality_target"
            )
        self.stream_id = stream_id
        self.config = config
        self.constraint_mode = constraint_mode
        self.granularity = granularity
        self.weight = weight
        self.quality_ewma = quality_ewma
        self.service_class = service_class
        self.quality_target = quality_target
        self.quality_floor = quality_floor
        self.quality_ceiling = quality_target
        self.renegotiation = renegotiation
        self.renegotiation_count = 0
        self._starved_rounds = 0
        self._headroom_rounds = 0

        self.simulation = simulation_for(config)
        if constraint_mode not in self.simulation._rows:
            raise ConfigurationError(f"unknown constraint mode {constraint_mode!r}")
        quality_set = self.simulation.quality_set
        self._qmin = quality_set.qmin
        self._qspan = max(1, quality_set.qmax - quality_set.qmin)
        self._timing_rng = self.simulation._rng(f"stream-timing-{stream_id}")
        self._encoder = AnalyticEncoder(
            rd_model=config.rd_model,
            rate_controller=VirtualBufferRateController(config.rate_control),
            pixels=config.frame_pixels,
            rng=self.simulation._rng(f"stream-signal-{stream_id}"),
            bits_noise=config.bits_noise,
        )

        # timeline state (wall cycles of this stream's private clock)
        self._pending: deque[int] = deque()
        self._free_at = 0.0
        self._round = 0
        self._resolved: dict[int, tuple[FrameRecord, object]] = {}
        self._signal_next = 0
        self.records: list[FrameRecord] = []
        self.recent_quality = math.nan
        self._total_granted = 0.0
        self._total_used = 0.0

    # ------------------------------------------------------------------
    # fleet-facing signals
    # ------------------------------------------------------------------

    @property
    def demand(self) -> float:
        """Cycles per round this stream needs to run at dedicated speed."""
        return self.config.period

    @property
    def frame_count(self) -> int:
        return len(self.simulation.contents)

    @property
    def finished(self) -> bool:
        """All frames arrived, encoded-or-skipped, and signal-processed."""
        return (
            self._round >= self.frame_count
            and not self._pending
            and self._signal_next >= self.frame_count
        )

    @property
    def backlog(self) -> int:
        return len(self._pending)

    def normalized_recent_quality(self) -> float:
        """``recent_quality`` mapped to [0, 1] (nan while no frame done)."""
        if math.isnan(self.recent_quality):
            return math.nan
        return (self.recent_quality - self._qmin) / self._qspan

    def utilization(self) -> float:
        """Work cycles consumed over cycles granted so far."""
        if self._total_granted <= 0:
            return 0.0
        return self._total_used / self._total_granted

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------

    def step(self, allocation: float) -> SessionStep:
        """Advance one scheduling round under ``allocation`` shared cycles.

        Returns a :class:`SessionStep` describing the round.  Stepping a
        finished session is an error — the fleet runner retires sessions
        as soon as they report ``finished``.
        """
        if self.finished:
            raise ConfigurationError(f"stream {self.stream_id!r} already finished")
        if allocation < 0:
            raise ConfigurationError("allocation must be >= 0")
        cfg = self.config
        speed = max(allocation / cfg.period, MIN_SPEED)
        round_index = self._round
        arrival_limit = round_index * cfg.period

        encoded = self._start_pending_through(arrival_limit, speed)

        arrived: int | None = None
        arrival_skipped = False
        if round_index < self.frame_count:
            arrived = round_index
            if len(self._pending) >= cfg.buffer_capacity:
                arrival_skipped = True
                content = self.simulation.contents[arrived]
                self._resolved[arrived] = (
                    FrameRecord(
                        index=arrived,
                        is_iframe=content.is_iframe,
                        skipped=True,
                        arrival=arrival_limit,
                        motion=content.motion_activity,
                    ),
                    None,
                )
            else:
                self._pending.append(arrived)
        elif self._pending:
            # camera stopped: drain the backlog, one round per period
            encoded += self._start_pending_through(
                arrival_limit + cfg.period, speed
            )

        self._round += 1
        self._total_granted += allocation
        self._emit_signal()
        renegotiated = self._renegotiate(allocation)
        return SessionStep(
            round_index=round_index,
            granted=allocation,
            speed=speed,
            arrived=arrived,
            arrival_skipped=arrival_skipped,
            encoded=tuple(encoded),
            backlog=len(self._pending),
            finished=self.finished,
            renegotiated=renegotiated,
        )

    def _renegotiate(self, allocation: float) -> tuple[float, float] | None:
        """Move the quality target per this round's grant and quality."""
        policy = self.renegotiation
        if policy is None or math.isnan(self.quality_target):
            return None
        quality = self.normalized_recent_quality()
        if not math.isnan(quality) and policy.starved(
            quality, self.quality_target, allocation, self.demand
        ):
            self._starved_rounds += 1
            self._headroom_rounds = 0
        elif policy.headroom(allocation, self.demand):
            self._headroom_rounds += 1
            self._starved_rounds = 0
        else:
            self._starved_rounds = 0
            self._headroom_rounds = 0
        old = self.quality_target
        if (
            self._starved_rounds >= policy.patience
            and old > self.quality_floor
        ):
            self.quality_target = policy.step_down(old, self.quality_floor)
            self._starved_rounds = 0
        elif (
            self._headroom_rounds >= policy.recovery_patience
            and old < self.quality_ceiling
        ):
            self.quality_target = policy.step_up(old, self.quality_ceiling)
            self._headroom_rounds = 0
        if self.quality_target == old:
            return None
        self.renegotiation_count += 1
        return (old, self.quality_target)

    def _start_pending_through(self, limit: float, speed: float) -> list[int]:
        """Encode pending frames whose start time is <= ``limit``."""
        cfg = self.config
        sim = self.simulation
        horizon = cfg.buffer_capacity * cfg.period
        encoded: list[int] = []
        while self._pending:
            frame = self._pending[0]
            arrival = frame * cfg.period
            start = max(self._free_at, arrival)
            if start > limit:
                break
            self._pending.popleft()
            content = sim.contents[frame]
            wall_budget = arrival + horizon - start
            work_budget = wall_budget * speed
            timing = sim._encode_controlled_frame(
                self._timing_rng,
                content,
                work_budget,
                self.constraint_mode,
                self.granularity,
            )
            wall_cycles = timing.cycles / speed
            self._free_at = start + wall_cycles
            self._total_used += timing.cycles
            qualities = np.atleast_1d(np.asarray(timing.qualities))
            churn = (
                float(np.mean(np.abs(np.diff(qualities))))
                if qualities.size > 1
                else 0.0
            )
            record = FrameRecord(
                index=frame,
                is_iframe=content.is_iframe,
                skipped=False,
                arrival=arrival,
                motion=content.motion_activity,
                start=start,
                end=self._free_at,
                budget=work_budget,
                encode_cycles=timing.cycles,
                controller_cycles=timing.controller_cycles,
                decisions=timing.decisions,
                degraded_steps=timing.degraded,
                mean_quality=float(np.mean(qualities)),
                min_quality=int(np.min(qualities)),
                max_quality=int(np.max(qualities)),
                quality_churn=churn,
            )
            self._resolved[frame] = (record, qualities)
            self._observe_quality(record.mean_quality)
            encoded.append(frame)
        return encoded

    def _observe_quality(self, mean_quality: float) -> None:
        if math.isnan(self.recent_quality):
            self.recent_quality = mean_quality
        else:
            a = self.quality_ewma
            self.recent_quality = a * mean_quality + (1 - a) * self.recent_quality

    def _emit_signal(self) -> None:
        """Run the signal pass over every contiguous resolved frame.

        Rate control and PSNR depend on display order, while the
        timeline resolves frames slightly out of order (a buffer skip is
        known at arrival, before the previous frame finished encoding) —
        so the signal pass trails the timeline and only consumes
        frames once everything before them is resolved.
        """
        while self._signal_next in self._resolved:
            record, qualities = self._resolved.pop(self._signal_next)
            content = self.simulation.contents[record.index]
            if record.skipped:
                outcome = self._encoder.skip_frame(content)
            else:
                outcome = self._encoder.encode_frame(content, qualities)
            self.records.append(
                replace(record, psnr=outcome.psnr, bits=outcome.bits)
            )
            self._signal_next += 1

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def result(self, label: str | None = None) -> RunResult:
        """The per-stream :class:`RunResult` over the rounds run so far."""
        if label is None:
            label = f"stream({self.stream_id})"
        result = RunResult(
            label=label,
            period=self.config.period,
            buffer_capacity=self.config.buffer_capacity,
        )
        result.frames = list(self.records)
        return result
